#!/usr/bin/env sh
# Overload smoke test: the CI shape of the gateway overload-protection
# acceptance checks, kept to ~a minute so it can ride in tier-1:
#
#   1. Overload drill: lfbs_soak --overload dials a 32-connection storm at
#      a gateway admitting 8, with 4 slow best-effort consumers and one
#      priority subscriber, under a budget small enough to force shedding.
#      The run must end healthy: every deny typed with a retry-after hint,
#      the frame ledger closed exactly, the priority stream bit-identical
#      to the serial reference, and the budget drained back to zero.
#   2. Report round-trip: the drill's telemetry must render through
#      lfbs_report's "== overload ==" section, and the report's own ledger
#      check must agree that the accounting closes.
#   3. Gateway CLI: a malformed --quota spec and a bogus --slow-policy are
#      typed usage errors (exit 2 with the offending clause named); a
#      well-formed overload config must serve a capture to completion with
#      a priority tail proving completeness.
#
# Usage: scripts/overload_smoke.sh [build-dir]   (default: build)
set -e

build="${1:-build}"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

# --- 1. overload drill -------------------------------------------------------
"$build/tools/lfbs_soak" --overload --epochs 2 --tags 4 --duration-ms 100 \
    --budget-kb 96 --trace-out "$work/overload_trace.jsonl" \
    2> "$work/overload.err" || {
  echo "overload_smoke: overload drill FAILED" >&2
  cat "$work/overload.err" >&2
  exit 1
}
grep -q "health healthy" "$work/overload.err" || {
  echo "overload_smoke: overload drill did not end healthy" >&2
  cat "$work/overload.err" >&2
  exit 1
}
grep "overload epochs" "$work/overload.err"
# The budget must actually have been exercised — a drill that never shed
# anything proves nothing about the tiers.
grep -q "typed denies" "$work/overload.err" || {
  echo "overload_smoke: drill summary missing the deny accounting" >&2
  exit 1
}
echo "overload_smoke: overload drill healthy"

# --- 2. report round-trip ----------------------------------------------------
report="$("$build/tools/lfbs_report" "$work/overload_trace.jsonl")"
echo "$report" | grep -q "== overload ==" || {
  echo "overload_smoke: lfbs_report produced no overload section" >&2
  exit 1
}
echo "$report" | grep "frame ledger closes" || {
  echo "overload_smoke: report says the frame ledger does not close" >&2
  echo "$report" | grep "frame ledger" >&2 || true
  exit 1
}
echo "overload_smoke: report overload section round-trips"

# --- 3. gateway CLI: typed quota errors, then a real admitted serve ----------
bad_rc=0
"$build/tools/lfbs_gateway" --scenario --quota "bogus=4" \
    2> "$work/badquota.err" || bad_rc=$?
if [ "$bad_rc" -ne 2 ]; then
  echo "overload_smoke: bad --quota exited $bad_rc, expected 2" >&2
  cat "$work/badquota.err" >&2
  exit 1
fi
grep -q "bogus" "$work/badquota.err" || {
  echo "overload_smoke: bad --quota error does not name the clause" >&2
  cat "$work/badquota.err" >&2
  exit 1
}
bad_rc=0
"$build/tools/lfbs_gateway" --scenario --slow-policy sideways \
    2> "$work/badpolicy.err" || bad_rc=$?
if [ "$bad_rc" -ne 2 ]; then
  echo "overload_smoke: bad --slow-policy exited $bad_rc, expected 2" >&2
  exit 1
fi
echo "overload_smoke: malformed overload flags are typed usage errors"

capture="$work/capture.lfbsiq"
portfile="$work/gateway.port"
"$build/examples/capture_replay" "$capture" > /dev/null

"$build/tools/lfbs_gateway" "$capture" \
    --port-file "$portfile" --wait-subscriber 10 --workers 2 \
    --quota "conns=8,retry-after=0.2,be-queue-kb=64" \
    --queue-budget-kb 256 --client-queue 128 --slow-policy drop &
server_pid=$!

tries=0
while [ ! -s "$portfile" ]; do
  tries=$((tries + 1))
  if [ "$tries" -gt 100 ]; then
    echo "overload_smoke: server never wrote $portfile" >&2
    kill "$server_pid" 2> /dev/null || true
    exit 1
  fi
  sleep 0.1
done
port="$(cat "$portfile")"

# A priority tail through the admission path: exit 0 asserts a clean
# Bye(end-of-stream) and received == frames_published — admission on a
# fault-free run must not cost a single frame.
"$build/tools/lfbs_gateway" --connect "127.0.0.1:$port" --priority --quiet

wait "$server_pid"
server_status=$?
if [ "$server_status" -ne 0 ]; then
  echo "overload_smoke: admitted serve exited $server_status" >&2
  exit 1
fi
echo "overload_smoke: admitted serve delivered the full stream"
echo "overload_smoke: OK"

#!/usr/bin/env sh
# Federation smoke test, the CI shape of the src/net/federation acceptance
# check, all on loopback with real lfbs_gateway processes:
#
#   1. Serial reference: serve a real capture with lfbs_gateway, tail it,
#      and keep the decoded frame lines as ground truth.
#   2. Sharded decode: two `lfbs_gateway --shard-worker` processes, the
#      coordinator fanning windows to both (`--shard HOST:PORT` twice);
#      the tailed frames must be BIT-IDENTICAL to the serial reference.
#   3. 2-hop relay chain: source (gateway-id 1) -> relay (id 2) -> relay
#      (id 3) -> tail. The tail exits 0 only when its received count
#      matches the source's frames_published digest (frame-count closure),
#      and the relayed frames must again match the serial reference.
#      The second relay's telemetry must round-trip through lfbs_report's
#      "== federation ==" section.
#
# Usage: scripts/federation_smoke.sh [build-dir]   (default: build)
set -e

build="${1:-build}"
work="$(mktemp -d)"
pids=""
cleanup() {
  for p in $pids; do kill "$p" 2> /dev/null || true; done
  rm -rf "$work"
}
trap cleanup EXIT

capture="$work/capture.lfbsiq"
"$build/examples/capture_replay" "$capture" > /dev/null

wait_port_file() { # file
  tries=0
  while [ ! -s "$1" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
      echo "federation_smoke: no port file at $1" >&2
      exit 1
    fi
    sleep 0.1
  done
}

frames_of() { # log-file -> sorted frame lines
  grep '^frame:' "$1" | sort
}

# --- 1. serial reference ---------------------------------------------------
"$build/tools/lfbs_gateway" "$capture" \
    --port-file "$work/serial.port" --wait-subscriber 10 --quiet &
pids="$pids $!"
wait_port_file "$work/serial.port"
"$build/tools/lfbs_gateway" --connect "127.0.0.1:$(cat "$work/serial.port")" \
    > "$work/serial.out"
frames_of "$work/serial.out" > "$work/serial.frames"
serial_count=$(wc -l < "$work/serial.frames")
if [ "$serial_count" -eq 0 ]; then
  echo "federation_smoke: serial reference decoded no frames" >&2
  exit 1
fi
echo "federation_smoke: serial reference has $serial_count frames"

# --- 2. sharded decode across two worker processes -------------------------
"$build/tools/lfbs_gateway" --shard-worker \
    --port-file "$work/w1.port" > /dev/null 2>&1 &
pids="$pids $!"
"$build/tools/lfbs_gateway" --shard-worker \
    --port-file "$work/w2.port" > /dev/null 2>&1 &
pids="$pids $!"
wait_port_file "$work/w1.port"
wait_port_file "$work/w2.port"

"$build/tools/lfbs_gateway" "$capture" \
    --shard "127.0.0.1:$(cat "$work/w1.port")" \
    --shard "127.0.0.1:$(cat "$work/w2.port")" \
    --port-file "$work/shard.port" --wait-subscriber 10 --quiet &
shard_pid=$!
pids="$pids $shard_pid"
wait_port_file "$work/shard.port"
"$build/tools/lfbs_gateway" --connect "127.0.0.1:$(cat "$work/shard.port")" \
    > "$work/shard.out"
wait "$shard_pid"
frames_of "$work/shard.out" > "$work/shard.frames"
if ! diff -u "$work/serial.frames" "$work/shard.frames" > /dev/null; then
  echo "federation_smoke: sharded decode DIVERGED from serial" >&2
  diff -u "$work/serial.frames" "$work/shard.frames" >&2 || true
  exit 1
fi
echo "federation_smoke: sharded decode bit-identical to serial"

# --- 3. 2-hop relay chain --------------------------------------------------
"$build/tools/lfbs_gateway" "$capture" \
    --gateway-id 1 --port-file "$work/src.port" --wait-subscriber 10 \
    --quiet &
pids="$pids $!"
wait_port_file "$work/src.port"

"$build/tools/lfbs_gateway" --relay "127.0.0.1:$(cat "$work/src.port")" \
    --gateway-id 2 --port-file "$work/r1.port" --wait-subscriber 10 \
    2> /dev/null &
pids="$pids $!"
wait_port_file "$work/r1.port"

"$build/tools/lfbs_gateway" --relay "127.0.0.1:$(cat "$work/r1.port")" \
    --gateway-id 3 --port-file "$work/r2.port" --wait-subscriber 10 \
    --trace-out "$work/r2_trace.jsonl" 2> /dev/null &
r2_pid=$!
pids="$pids $r2_pid"
wait_port_file "$work/r2.port"

# Exit 0 from --connect asserts frame-count closure: received count ==
# frames_published in the relay's final stats digest.
"$build/tools/lfbs_gateway" --connect "127.0.0.1:$(cat "$work/r2.port")" \
    > "$work/relay.out"
wait "$r2_pid"
frames_of "$work/relay.out" > "$work/relay.frames"
if ! diff -u "$work/serial.frames" "$work/relay.frames" > /dev/null; then
  echo "federation_smoke: 2-hop relayed frames DIVERGED from serial" >&2
  diff -u "$work/serial.frames" "$work/relay.frames" >&2 || true
  exit 1
fi
echo "federation_smoke: 2-hop relay delivered all $serial_count frames" \
     "bit-identically"

report="$("$build/tools/lfbs_report" "$work/r2_trace.jsonl")"
echo "$report" | grep -q "== federation ==" || {
  echo "federation_smoke: lfbs_report produced no federation section" >&2
  exit 1
}
echo "$report" | grep "frames relayed"
echo "federation_smoke: OK"

#!/usr/bin/env sh
# Control-plane smoke test: the CI shape of the fleet-control acceptance
# checks, kept to seconds so it can ride in tier-1:
#
#   1. Serve with --control: a gateway decoding a multi-tag scenario under
#      the greedy scheduler must log the control plane coming up, step the
#      loop when the run drains, and broadcast the epoch plan — a tailing
#      subscriber must print the plan and its per-tag assignments.
#   2. Remote operability: --control-get against a live gateway must
#      answer with the loop's state (exit 0, "control:" lines).
#   3. Typed CLI: malformed --control / --control-policy / --epoch-budget
#      specs are usage errors (exit 2) naming the offending clause.
#   4. Report round-trip: the serve's telemetry must render through
#      lfbs_report's "== control ==" section with the plan history and
#      per-tag rate trajectories.
#
# Usage: scripts/control_smoke.sh [build-dir]   (default: build)
set -e

build="${1:-build}"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

# --- 1+2. serve with --control, probe it, tail it ---------------------------
portfile="$work/gateway.port"
"$build/tools/lfbs_gateway" --scenario --tags 8 --epochs 2 \
    --control "policy=greedy,penalty=2" \
    --port-file "$portfile" --wait-subscriber 10 --workers 2 \
    --trace-out "$work/control_trace.jsonl" 2> "$work/serve.err" &
server_pid=$!

tries=0
while [ ! -s "$portfile" ]; do
  tries=$((tries + 1))
  if [ "$tries" -gt 100 ]; then
    echo "control_smoke: server never wrote $portfile" >&2
    cat "$work/serve.err" >&2 || true
    kill "$server_pid" 2> /dev/null || true
    exit 1
  fi
  sleep 0.1
done
port="$(cat "$portfile")"

# Probe the control surface while the gateway waits for its subscriber.
"$build/tools/lfbs_gateway" --control-get "127.0.0.1:$port" \
    > "$work/probe.out" || {
  echo "control_smoke: --control-get against a live gateway failed" >&2
  exit 1
}
grep -q "^control:" "$work/probe.out" || {
  echo "control_smoke: --control-get printed no control state" >&2
  cat "$work/probe.out" >&2
  exit 1
}
echo "control_smoke: --control-get answers"

# Tail the stream; the final broadcast plan must reach the subscriber.
"$build/tools/lfbs_gateway" --connect "127.0.0.1:$port" \
    > "$work/tail.out"

wait "$server_pid"
server_status=$?
if [ "$server_status" -ne 0 ]; then
  echo "control_smoke: serve exited $server_status" >&2
  cat "$work/serve.err" >&2
  exit 1
fi
grep -q "control plane on" "$work/serve.err" || {
  echo "control_smoke: serve log missing the control-plane banner" >&2
  cat "$work/serve.err" >&2
  exit 1
}
grep -q "gateway: control epoch=" "$work/serve.err" || {
  echo "control_smoke: serve log missing the final control step" >&2
  cat "$work/serve.err" >&2
  exit 1
}
grep -q "^control: epoch=" "$work/tail.out" || {
  echo "control_smoke: tail never printed the broadcast plan" >&2
  cat "$work/tail.out" >&2
  exit 1
}
grep -q "^control: tag=" "$work/tail.out" || {
  echo "control_smoke: broadcast plan carried no per-tag assignments" >&2
  cat "$work/tail.out" >&2
  exit 1
}
echo "control_smoke: serve broadcast its epoch plan to the tail"

# --- 3. typed CLI errors -----------------------------------------------------
for bad in "--control warp=9" "--control policy=chaotic" \
           "--control-policy sideways" "--epoch-budget 12x"; do
  bad_rc=0
  # shellcheck disable=SC2086  # word splitting is the point here
  "$build/tools/lfbs_gateway" --scenario $bad 2> "$work/bad.err" || bad_rc=$?
  if [ "$bad_rc" -ne 2 ]; then
    echo "control_smoke: '$bad' exited $bad_rc, expected 2" >&2
    cat "$work/bad.err" >&2
    exit 1
  fi
  grep -q "error: bad" "$work/bad.err" || {
    echo "control_smoke: '$bad' produced no typed error" >&2
    cat "$work/bad.err" >&2
    exit 1
  }
done
echo "control_smoke: malformed control flags are typed usage errors"

# --- 4. report round-trip ----------------------------------------------------
report="$("$build/tools/lfbs_report" "$work/control_trace.jsonl")"
echo "$report" | grep -q "== control ==" || {
  echo "control_smoke: lfbs_report produced no control section" >&2
  exit 1
}
echo "$report" | grep -q "rate trajectory" || {
  echo "control_smoke: control section missing the rate trajectories" >&2
  echo "$report" >&2
  exit 1
}
echo "control_smoke: report control section round-trips"
echo "control_smoke: OK"

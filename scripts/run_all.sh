#!/usr/bin/env sh
# Build, test, and regenerate every paper table/figure, plus the runtime
# throughput record (BENCH_runtime.json: workers → effective Msps) and a
# consolidated BENCH_summary.json: per-bench wall seconds and, where a
# bench wrote its own JSON, its headline metric.
set -e
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

summary="BENCH_summary.json"
printf '{\n  "benches": {' > "$summary"
first=1
for b in build/bench/bench_*; do
  name="$(basename "$b")"
  start=$(date +%s)
  case "$name" in
    bench_runtime_throughput) "$b" --json BENCH_runtime.json ;;
    bench_robustness_sweep) "$b" --json BENCH_robustness.json ;;
    *) "$b" ;;
  esac
  wall=$(( $(date +%s) - start ))
  # Headline metric per bench, lifted from the JSON the bench itself wrote
  # (crude extraction, but the files are ours and single-level).
  metric=""
  case "$name" in
    bench_runtime_throughput)
      v=$(sed -n 's/.*"serial_msps": \([0-9.]*\).*/\1/p' BENCH_runtime.json | head -n 1)
      [ -n "$v" ] && metric=", \"serial_msps\": $v"
      o=$(sed -n 's/.*"tracer_overhead_pct": \(-\{0,1\}[0-9.]*\).*/\1/p' BENCH_runtime.json | head -n 1)
      [ -n "$o" ] && metric="$metric, \"tracer_overhead_pct\": $o"
      p=$(sed -n 's/.*"window_latency_p99_ms": \([0-9.]*\).*/\1/p' BENCH_runtime.json | head -n 1)
      [ -n "$p" ] && metric="$metric, \"window_latency_p99_ms\": $p"
      ;;
    bench_robustness_sweep)
      v=$(grep -o '"rescued_captures": [0-9]*' BENCH_robustness.json | \
          awk -F': ' '{s += $2} END {print s}')
      [ -n "$v" ] && metric=", \"rescued_captures\": $v"
      ;;
  esac
  [ $first -eq 0 ] && printf ',' >> "$summary"
  first=0
  printf '\n    "%s": {"wall_seconds": %s%s}' "$name" "$wall" "$metric" >> "$summary"
done
printf '\n  }\n}\n' >> "$summary"
echo "wrote $summary"

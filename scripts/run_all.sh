#!/usr/bin/env sh
# Build, test, and regenerate every paper table/figure, plus the runtime
# throughput record (BENCH_runtime.json: workers → effective Msps).
set -e
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/bench_*; do
  case "$(basename "$b")" in
    bench_runtime_throughput) "$b" --json BENCH_runtime.json ;;
    bench_robustness_sweep) "$b" --json BENCH_robustness.json ;;
    *) "$b" ;;
  esac
done

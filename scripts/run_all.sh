#!/usr/bin/env sh
# Build, test, and regenerate every paper table/figure.
set -e
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/bench_*; do "$b"; done

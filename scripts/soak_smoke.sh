#!/usr/bin/env sh
# Soak smoke test: the CI shape of the network chaos layer's acceptance
# checks, kept to ~a minute so it can ride in tier-1:
#
#   1. Fault-free soak: lfbs_soak must deliver every epoch exactly-once
#      (zero duplicates, closure on every attempt) and exit healthy.
#   2. Chaos soak: the same topology under a seeded --chaos spec (resets,
#      truncation, stalls, delays) must still converge to exit 0 — faults
#      are healed by reconnect/replay/failover, never absorbed silently —
#      and its telemetry must round-trip through lfbs_report's
#      "== chaos ==" section.
#   3. Push abort: killing an --iq-listen gateway mid-push must surface as
#      the documented typed failure on the pusher — exit code 3 and an
#      "aborted mid-stream" diagnostic — not a hang or a generic error.
#
# Usage: scripts/soak_smoke.sh [build-dir]   (default: build)
set -e

build="${1:-build}"
work="$(mktemp -d)"
pids=""
cleanup() {
  for p in $pids; do kill "$p" 2> /dev/null || true; done
  rm -rf "$work"
}
trap cleanup EXIT

# --- 1. fault-free soak ------------------------------------------------------
"$build/tools/lfbs_soak" --epochs 4 --duration-ms 40 --workers 2 \
    2> "$work/clean.err" || {
  echo "soak_smoke: fault-free soak FAILED" >&2
  cat "$work/clean.err" >&2
  exit 1
}
grep -q "health healthy" "$work/clean.err" || {
  echo "soak_smoke: fault-free soak did not end healthy" >&2
  cat "$work/clean.err" >&2
  exit 1
}
grep "^soak: [0-9]" "$work/clean.err"
echo "soak_smoke: fault-free soak healthy"

# --- 2. chaos soak + report round-trip ---------------------------------------
chaos="seed=11,reset=0.02,truncate=0.2,delay=0.15,delay-ms=2,stall=0.04,stall-ms=60"
"$build/tools/lfbs_soak" --epochs 6 --duration-ms 40 --workers 2 \
    --chaos "$chaos" --worker-deadline 5 \
    --trace-out "$work/chaos_trace.jsonl" 2> "$work/chaos.err" || {
  echo "soak_smoke: chaos soak FAILED" >&2
  cat "$work/chaos.err" >&2
  exit 1
}
grep "^soak: [0-9]" "$work/chaos.err"
grep "^soak: chaos injected" "$work/chaos.err"

report="$("$build/tools/lfbs_report" "$work/chaos_trace.jsonl")"
echo "$report" | grep -q "== chaos ==" || {
  echo "soak_smoke: lfbs_report produced no chaos section" >&2
  exit 1
}
echo "$report" | grep "faults injected"
echo "soak_smoke: chaos soak converged"

# --- 3. push abort: gateway dies mid-stream, pusher must exit 3 --------------
capture="$work/capture.lfbsiq"
"$build/examples/capture_replay" "$capture" > /dev/null

"$build/tools/lfbs_gateway" --iq-listen --iq-port-file "$work/iq.port" \
    --quiet 2> "$work/iqgw.err" &
gw_pid=$!
pids="$pids $gw_pid"
tries=0
while [ ! -s "$work/iq.port" ]; do
  tries=$((tries + 1))
  if [ "$tries" -gt 100 ]; then
    echo "soak_smoke: no iq port file" >&2
    exit 1
  fi
  sleep 0.1
done

# A write-side partition spec on the pusher stretches the stream out (reads
# stay clean, so the handshake is untouched) — the gateway is guaranteed to
# die while the push is still mid-flight.
"$build/tools/lfbs_gateway" --push "127.0.0.1:$(cat "$work/iq.port")" \
    "$capture" --chaos "seed=3,partition-out=0.85,partition-ms=200" \
    --trace-out "$work/push_trace.jsonl" 2> "$work/push.err" &
push_pid=$!
pids="$pids $push_pid"

tries=0
until grep -q "pusher connected" "$work/iqgw.err" 2> /dev/null; do
  tries=$((tries + 1))
  if [ "$tries" -gt 100 ]; then
    echo "soak_smoke: pusher never connected" >&2
    cat "$work/iqgw.err" >&2
    exit 1
  fi
  sleep 0.1
done
kill -9 "$gw_pid" 2> /dev/null || true

push_rc=0
wait "$push_pid" || push_rc=$?
if [ "$push_rc" -ne 3 ]; then
  echo "soak_smoke: pusher exited $push_rc, expected 3 (push abort)" >&2
  cat "$work/push.err" >&2
  exit 1
fi
grep -q "aborted mid-stream" "$work/push.err" || {
  echo "soak_smoke: pusher gave no mid-stream abort diagnostic" >&2
  cat "$work/push.err" >&2
  exit 1
}
grep -q "push-abort" "$work/push_trace.jsonl" || {
  echo "soak_smoke: pusher trace holds no push-abort event" >&2
  exit 1
}
echo "soak_smoke: push abort surfaced as exit 3"
echo "soak_smoke: OK"

#!/usr/bin/env sh
# Loopback gateway smoke test, the CI shape of the net subsystem's
# acceptance check: record a real capture, serve its decoded frames over
# TCP with lfbs_gateway, tail the stream with a second lfbs_gateway
# process, and require the tail to prove completeness (it exits 0 only
# when its received-frame count matches the frames_published total in the
# server's final stats message). Finishes by rendering the server's net.*
# telemetry through lfbs_report.
#
# Usage: scripts/gateway_smoke.sh [build-dir]   (default: build)
set -e

build="${1:-build}"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

capture="$work/capture.lfbsiq"
portfile="$work/gateway.port"
trace="$work/gateway_trace.jsonl"

# A capture with known content: the capture_replay example records one
# 8-tag epoch and replays it, so its file is a real decodeable capture.
"$build/examples/capture_replay" "$capture" > /dev/null

# Serve in the background; --wait-subscriber holds the decode until the
# tail below is attached, so no frame is published into the void.
"$build/tools/lfbs_gateway" "$capture" \
    --port-file "$portfile" --wait-subscriber 10 --workers 2 \
    --trace-out "$trace" &
server_pid=$!

# The server writes its ephemeral port once bound.
tries=0
while [ ! -s "$portfile" ]; do
  tries=$((tries + 1))
  if [ "$tries" -gt 100 ]; then
    echo "gateway_smoke: server never wrote $portfile" >&2
    kill "$server_pid" 2> /dev/null || true
    exit 1
  fi
  sleep 0.1
done
port="$(cat "$portfile")"

# Tail the stream. Exit 0 from --connect asserts: clean Bye(end-of-stream)
# AND received == frames_published from the final stats digest.
"$build/tools/lfbs_gateway" --connect "127.0.0.1:$port" --quiet

wait "$server_pid"
server_status=$?
if [ "$server_status" -ne 0 ]; then
  echo "gateway_smoke: server exited $server_status" >&2
  exit 1
fi

# The telemetry must round-trip: lfbs_report reconstructs the gateway
# section (connects, per-client frames sent, drops) from the JSONL alone.
report="$("$build/tools/lfbs_report" "$trace")"
echo "$report" | grep -q "== gateway ==" || {
  echo "gateway_smoke: lfbs_report produced no gateway section" >&2
  exit 1
}
echo "$report" | grep "frames delivered"
echo "gateway_smoke: OK"

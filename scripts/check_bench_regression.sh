#!/usr/bin/env sh
# Performance regression gate for bench_runtime_throughput, compared
# against the committed BENCH_summary.json baseline:
#
#   - effective decode throughput (serial_msps, samples/sec) may not drop
#     more than 15% below the baseline;
#   - window-latency p99 (window_latency_p99_ms) may not rise more than
#     15% above the baseline;
#   - gateway publish rate (publish_kfps, frames/sec through
#     FrameServer::publish with admission on) may not drop more than 15%
#     below the baseline;
#   - publish-path admission overhead (publish_admission_overhead_pct,
#     admission on vs off) is capped absolutely at 2% — overload
#     protection must cost the stitcher thread almost nothing when
#     nothing is shed;
#   - publish-path control-plane overhead (publish_control_overhead_pct,
#     the FleetTracker bus tap on vs off) is likewise capped absolutely
#     at 2% — fleet sensing rides every published frame, the scheduling
#     work happens off this path at epoch boundaries.
#
# The bench is run fresh (--json) and its numbers are compared with awk;
# a baseline that lacks a metric skips that check with a notice instead of
# failing, so the gate degrades gracefully on older baselines.
#
# Usage: scripts/check_bench_regression.sh [build-dir] [baseline.json]
#   build-dir defaults to build; baseline defaults to BENCH_summary.json.
# Env: LFBS_BENCH_TOLERANCE_PCT overrides the 15% threshold;
#      LFBS_PUBLISH_OVERHEAD_CAP_PCT overrides the 2% publish cap;
#      LFBS_CONTROL_OVERHEAD_CAP_PCT overrides the 2% control-tap cap.
set -e

build="${1:-build}"
baseline="${2:-BENCH_summary.json}"
tolerance="${LFBS_BENCH_TOLERANCE_PCT:-15}"
publish_cap="${LFBS_PUBLISH_OVERHEAD_CAP_PCT:-2}"
control_cap="${LFBS_CONTROL_OVERHEAD_CAP_PCT:-2}"

bench="$build/bench/bench_runtime_throughput"
if [ ! -x "$bench" ]; then
  echo "check_bench_regression: $bench not built" >&2
  exit 2
fi
if [ ! -f "$baseline" ]; then
  echo "check_bench_regression: no baseline at $baseline" >&2
  exit 2
fi

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT
fresh="$work/fresh.json"

"$bench" --json "$fresh" > "$work/bench.log" 2>&1 || {
  echo "check_bench_regression: bench failed" >&2
  cat "$work/bench.log" >&2
  exit 1
}

# Single-level JSON written by our own tools: sed extraction is enough.
extract() { # file key
  sed -n "s/.*\"$2\": \([0-9.]*\).*/\1/p" "$1" | head -n 1
}

failures=0

# check NAME fresh baseline direction
#   direction=min: fresh must stay >= baseline * (1 - tol)
#   direction=max: fresh must stay <= baseline * (1 + tol)
check() {
  name="$1"; fresh_v="$2"; base_v="$3"; direction="$4"
  if [ -z "$base_v" ]; then
    echo "check_bench_regression: baseline lacks $name, skipping"
    return 0
  fi
  if [ -z "$fresh_v" ]; then
    echo "check_bench_regression: FAIL — bench emitted no $name" >&2
    failures=$((failures + 1))
    return 0
  fi
  verdict=$(awk -v f="$fresh_v" -v b="$base_v" -v t="$tolerance" \
                -v d="$direction" 'BEGIN {
    if (d == "min") { limit = b * (1 - t / 100.0); ok = (f >= limit) }
    else            { limit = b * (1 + t / 100.0); ok = (f <= limit) }
    printf "%s %.3f", ok ? "OK" : "FAIL", limit
  }')
  status="${verdict%% *}"
  limit="${verdict#* }"
  echo "check_bench_regression: $name fresh=$fresh_v baseline=$base_v" \
       "limit=$limit -> $status"
  if [ "$status" = "FAIL" ]; then
    failures=$((failures + 1))
  fi
}

check serial_msps \
      "$(extract "$fresh" serial_msps)" \
      "$(extract "$baseline" serial_msps)" min
check window_latency_p99_ms \
      "$(extract "$fresh" window_latency_p99_ms)" \
      "$(extract "$baseline" window_latency_p99_ms)" max
check publish_kfps \
      "$(extract "$fresh" publish_kfps)" \
      "$(extract "$baseline" publish_kfps)" min

# Absolute cap, not baseline-relative: admission overhead on the publish
# path is a contract (≤2%), not a trend.
overhead="$(extract "$fresh" publish_admission_overhead_pct)"
if [ -z "$overhead" ]; then
  echo "check_bench_regression: FAIL — bench emitted no" \
       "publish_admission_overhead_pct" >&2
  failures=$((failures + 1))
else
  verdict=$(awk -v o="$overhead" -v cap="$publish_cap" \
                'BEGIN { print (o <= cap) ? "OK" : "FAIL" }')
  echo "check_bench_regression: publish_admission_overhead_pct" \
       "fresh=$overhead cap=$publish_cap -> $verdict"
  if [ "$verdict" = "FAIL" ]; then
    failures=$((failures + 1))
  fi
fi

# Same absolute-cap contract for the control plane's bus tap: the
# FleetTracker fold on every published frame must stay ≤2%.
control_overhead="$(extract "$fresh" publish_control_overhead_pct)"
if [ -z "$control_overhead" ]; then
  echo "check_bench_regression: FAIL — bench emitted no" \
       "publish_control_overhead_pct" >&2
  failures=$((failures + 1))
else
  verdict=$(awk -v o="$control_overhead" -v cap="$control_cap" \
                'BEGIN { print (o <= cap) ? "OK" : "FAIL" }')
  echo "check_bench_regression: publish_control_overhead_pct" \
       "fresh=$control_overhead cap=$control_cap -> $verdict"
  if [ "$verdict" = "FAIL" ]; then
    failures=$((failures + 1))
  fi
fi

if [ "$failures" -gt 0 ]; then
  echo "check_bench_regression: $failures metric(s) regressed >$tolerance%" >&2
  exit 1
fi
echo "check_bench_regression: OK (tolerance ${tolerance}%)"

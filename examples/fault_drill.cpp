// Fault drill: the same live deployment as runtime_stream, but the link
// misbehaves — chunks drop, samples corrupt to NaN/Inf/saturation, reads
// stall and throw transient errors. The paper's premise is that tags can
// fail-soft because the reader absorbs all complexity; this drill shows
// the software pipeline holding up its end: the run completes, health
// reports kDegraded with per-fault counters, and frames still decode from
// whatever survived.
//
//   sim::Scenario → ScenarioSource → FaultInjectingSource → runtime
//
// Exit status 0 iff the drill behaves: the run finishes degraded (not
// failed), every injected fault class is accounted for, and at least one
// CRC-valid frame made it through the damage.
#include <cstdio>

#include "runtime/fault_injector.h"
#include "runtime/runtime.h"
#include "sim/scenario.h"

using namespace lfbs;

int main() {
  Rng rng(77);

  sim::ScenarioConfig sc;
  sc.num_tags = 6;
  sim::Scenario scenario(sc, rng);

  runtime::ScenarioSource::Config source_config;
  source_config.epochs = 3;
  source_config.chunk_samples = 1 << 14;
  runtime::ScenarioSource source(scenario, rng, source_config);

  // The drill: 5% chunk loss, 1% sample corruption, occasional stalls and
  // transient read errors — deterministic from the seed.
  runtime::FaultPlan plan;
  plan.seed = 7;
  plan.drop_chunk = 0.05;
  plan.corrupt_sample = 0.01;
  plan.truncate_chunk = 0.02;
  plan.stall = 0.05;
  plan.stall_duration = 1e-3;
  plan.transient_error = 0.2;
  runtime::FaultInjectingSource faulty(source, plan);

  runtime::RuntimeConfig rc;
  rc.windowed.decoder = scenario.default_decoder();
  rc.workers = 2;
  rc.supervision.retry_backoff_initial = 0.5e-3;
  runtime::DecodeRuntime rt(rc);

  std::printf("drill: %zu epochs from %zu tags through a faulty link...\n",
              source_config.epochs, scenario.num_tags());
  const auto run = rt.run(faulty);

  std::size_t valid = 0;
  for (const auto& s : run.decode.streams) {
    for (const auto& f : s.frames) {
      if (f.valid()) ++valid;
    }
  }

  const auto& in = faulty.injected();
  const auto& st = run.stats;
  std::printf(
      "injected: %zu chunk drops, %zu truncations, %llu corrupted samples "
      "(%llu non-finite), %zu stalls, %zu transient errors\n",
      in.chunks_dropped, in.chunks_truncated,
      static_cast<unsigned long long>(in.samples_corrupted),
      static_cast<unsigned long long>(in.samples_non_finite), in.stalls,
      in.errors_thrown);
  std::printf(
      "observed: health=%s, retries=%zu, scrubbed=%llu, gap=%llu samples, "
      "windows=%zu, streams=%zu, %zu CRC-valid frames\n",
      runtime::to_string(st.health), st.faults.source_retries,
      static_cast<unsigned long long>(st.faults.samples_scrubbed),
      static_cast<unsigned long long>(st.samples_gap), st.windows_decoded,
      st.streams, valid);

  const bool contained =
      st.health == runtime::HealthState::kDegraded &&
      st.faults.source_retries > 0 && st.faults.samples_scrubbed > 0 &&
      st.samples_gap > 0 && valid > 0;
  std::printf(contained ? "drill passed: degraded, never down\n"
                        : "drill FAILED\n");
  return contained ? 0 : 1;
}

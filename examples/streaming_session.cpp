// The full system loop, end to end: a ReaderSession drives carrier epochs
// over a simulated deployment while a ReliableTransfer link retransmits
// anything the decoder missed, and broadcast rate control (§3.6) reacts to
// decode quality. This is the shape of a production deployment: swap the
// air-interface lambda for an SDR capture and everything else stays.
//
// Decoding runs through the concurrent runtime (src/runtime): each epoch
// capture streams chunk-wise through the worker pipeline, and every decoded
// frame also fans out live on the runtime's FrameBus.
#include <cstdio>
#include <memory>

#include "protocol/reliability.h"
#include "reader/session.h"
#include "runtime/session_decoder.h"
#include "sim/scenario.h"

using namespace lfbs;

int main() {
  Rng rng(7117);

  // The deployment: twelve 100 kbps tags two metres out.
  sim::ScenarioConfig sc;
  sc.num_tags = 12;
  sim::Scenario scenario(sc, rng);

  // Work to deliver: 5 frames per tag.
  protocol::ReliableTransfer link(sc.num_tags);
  for (std::size_t t = 0; t < sc.num_tags; ++t) {
    for (int f = 0; f < 5; ++f) link.enqueue(t, rng.bits(96));
  }

  // The reader session; its air interface asks the link what each tag
  // should send this epoch, then captures the epoch. Decode goes through
  // the streaming runtime with two window workers.
  reader::SessionConfig session_config;
  session_config.epoch.duration = sc.epoch_duration;
  session_config.decoder = scenario.default_decoder();
  runtime::RuntimeConfig rc;
  rc.windowed.decoder = session_config.decoder;
  rc.workers = 2;
  auto rt = std::make_shared<runtime::DecodeRuntime>(rc);
  std::size_t bus_frames = 0;
  rt->bus().subscribe([&](const runtime::FrameEvent& event) {
    if (event.frame.valid()) ++bus_frames;
  });
  reader::ReaderSession session(
      session_config,
      [&](BitRate max_rate, Seconds) {
        return scenario.capture_epoch(link.epoch_payloads(1), rng, max_rate);
      },
      runtime::session_decoder(rt));

  while (link.pending() > 0 && session.stats().epochs < 30) {
    const auto result = session.run_epoch();
    const std::size_t newly = link.on_epoch_decoded(result.valid_payloads());
    std::printf(
        "epoch %2zu @ max %-8s: %zu streams, +%zu delivered, %zu pending\n",
        session.stats().epochs,
        format_rate(session.current_max_rate()).c_str(),
        result.streams.size(), newly, link.pending());
  }

  const auto& stats = session.stats();
  std::printf(
      "\n(the scenario's tags are harvesting-class and ignore rate "
      "commands, as section 3.6 permits — the broadcasts above cost the "
      "reader nothing at the tags)\n");
  std::printf(
      "delivered %zu/%zu frames in %zu epochs (%.2f ms air time, "
      "%.0f kbps goodput, %zu rate commands)\n",
      link.delivered(), link.delivered() + link.pending() + link.abandoned(),
      stats.epochs, stats.air_time * 1e3, stats.goodput(96) / 1e3,
      stats.rate_commands);
  std::printf("frame bus delivered %zu CRC-valid frames live\n", bus_frames);
  const auto& lat = link.latency_histogram();
  for (std::size_t attempts = 1; attempts < lat.size(); ++attempts) {
    if (lat[attempts] > 0) {
      std::printf("  %zu frame(s) needed %zu attempt(s)\n", lat[attempts],
                  attempts);
    }
  }
  return link.pending() == 0 ? 0 : 1;
}

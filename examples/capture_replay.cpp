// Capture & replay: record an epoch's IQ samples to a file, then decode the
// file as if it were an SDR capture.
//
// The decoder consumes raw complex baseband samples, so anything that can
// produce an LFBSIQ1 file (including a converted UHD recording) replays
// through the exact same pipeline. Usage:
//
//   capture_replay [capture.lfbsiq]     # default: /tmp/lfbs_capture.lfbsiq
#include <cstdio>

#include "core/lf_decoder.h"
#include "protocol/frame.h"
#include "reader/receiver.h"
#include "signal/iq_io.h"
#include "sim/scenario.h"

using namespace lfbs;

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/lfbs_capture.lfbsiq";

  // --- capture: one 8-tag epoch ------------------------------------------
  Rng rng(606);
  sim::ScenarioConfig sc;
  sc.num_tags = 8;
  sim::Scenario scenario(sc, rng);

  // Reuse the scenario to synthesize the air interface, but keep the raw
  // samples: run through the receiver manually.
  std::vector<std::vector<bool>> sent;
  {
    // Scenario::run_epoch already decodes; to capture, rebuild the epoch at
    // a lower level with the same physics.
    reader::ReceiverConfig rc;
    channel::ChannelModel ch;
    std::vector<tag::Tag> tags;
    protocol::FrameConfig fc;
    std::vector<signal::StateTimeline> timelines;
    for (std::size_t i = 0; i < 8; ++i) {
      channel::TagPlacement placement;
      placement.reflection_phase = rng.uniform(0.0, 6.2831);
      ch.add_tag(placement, rng);
      ch.set_coefficient(i, ch.coefficient(i) * 0.5 * 4.0);
      tag::TagConfig tc;
      tc.incoming_energy = rng.uniform(0.7, 1.3);
      tags.emplace_back(tc, rng);
    }
    for (auto& t : tags) {
      sent.push_back(rng.bits(fc.payload_bits));
      timelines.push_back(
          t.transmit_epoch({protocol::build_frame(sent.back(), fc)}, 1.5e-3,
                           rng)
              .timeline);
    }
    reader::Receiver receiver(rc, ch);
    const auto buffer = receiver.receive_epoch(timelines, 1.5e-3, rng);
    signal::save_iq(buffer, path);
    std::printf("captured %zu samples at %.0f Msps -> %s\n", buffer.size(),
                buffer.sample_rate() / 1e6, path.c_str());
  }

  // --- replay: load the file cold and decode ------------------------------
  const signal::SampleBuffer replay = signal::load_iq(path);
  const core::LfDecoder decoder{core::DecoderConfig{}};
  const auto result = decoder.decode(replay);
  const auto payloads = result.valid_payloads();

  std::size_t recovered = 0;
  for (const auto& p : sent) {
    for (const auto& got : payloads) {
      if (got == p) {
        ++recovered;
        break;
      }
    }
  }
  std::printf("replayed: %zu streams decoded, %zu/%zu payloads recovered\n",
              result.streams.size(), recovered, sent.size());
  return recovered >= 6 ? 0 : 1;
}

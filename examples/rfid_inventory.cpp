// RFID inventory: read the EPC identifiers of a shelf of tags (§5.2).
//
// Every epoch, all tags blast their 96-bit EPC + CRC-5 with fresh random
// comparator offsets; colliding tags separate in later epochs. Compare the
// wall-clock air time against the TDMA (Gen 2 slotted ALOHA) baseline.
#include <cstdio>

#include "baseline/tdma.h"
#include "protocol/identification.h"
#include "sim/scenario.h"

using namespace lfbs;

int main() {
  Rng rng(2718);
  const std::size_t shelf_size = 12;

  const std::vector<protocol::EpcId> shelf =
      protocol::random_epcs(shelf_size, rng);
  protocol::IdentificationSession session(shelf);

  sim::ScenarioConfig sc;
  sc.num_tags = shelf_size;
  sc.frame.payload_bits = 96;
  sc.frame.crc = protocol::CrcKind::kCrc5;
  sc.epoch_duration = 1.3e-3;

  std::size_t epoch = 0;
  while (!session.complete() && epoch < 30) {
    Rng epoch_rng = rng.split();
    sim::Scenario scenario(sc, epoch_rng);  // fresh offsets every epoch
    std::vector<std::vector<std::vector<bool>>> payloads;
    for (std::size_t i = 0; i < shelf_size; ++i) payloads.push_back({shelf[i]});
    const auto outcome = scenario.run_epoch_with_payloads(
        scenario.default_decoder(), payloads, epoch_rng);
    session.record_round(outcome.decode.valid_payloads(), sc.epoch_duration);
    ++epoch;
    std::printf("epoch %zu: %zu/%zu tags identified (%.2f ms air time)\n",
                epoch, session.identified_count(), shelf_size,
                session.elapsed() * 1e3);
  }

  Rng tdma_rng(3141);
  const baseline::Tdma tdma{baseline::TdmaConfig{}};
  const Seconds tdma_time = tdma.identify(shelf_size, tdma_rng);
  std::printf(
      "\nLF-Backscatter inventoried %zu tags in %.2f ms; Gen 2-style TDMA "
      "needs %.2f ms (%.1fx slower)\n",
      shelf_size, session.elapsed() * 1e3, tdma_time * 1e3,
      tdma_time / session.elapsed());
  return 0;
}

// Link-budget planner: where does LF-Backscatter work, and where should a
// deployment fall back to plain ASK? (§5.4)
//
// Uses the radar equation to map reader power and tag distance to SNR, and
// the ~4 dB LF-vs-ASK gap to derate operating range.
#include <cstdio>

#include "channel/link_budget.h"
#include "sim/table.h"

using namespace lfbs;

int main() {
  channel::LinkBudget link;          // 1 W reader, 915 MHz, typical gains
  const double noise_w = 2e-12;      // receiver noise floor
  const double ask_min_snr_db = 11.0;   // where ASK goes error-free (Fig 14)
  const double lf_min_snr_db = 15.0;    // edge decoding needs ~4 dB more

  std::printf("reader: %.0f dBm tx, %.1f dBi antenna, 915 MHz\n\n",
              10.0 * std::log10(link.tx_power_w * 1e3),
              10.0 * std::log10(link.reader_gain));

  sim::Table table({"distance (m)", "received power (dBm)", "SNR (dB)",
                    "ASK decodes?", "LF-Backscatter decodes?"});
  for (double d : {0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0}) {
    const double pr = link.received_power(d);
    const double snr = link.snr_db(d, noise_w);
    table.add_row({sim::fmt(d, 1), sim::fmt(10.0 * std::log10(pr * 1e3), 1),
                   sim::fmt(snr, 1), snr >= ask_min_snr_db ? "yes" : "no",
                   snr >= lf_min_snr_db ? "yes" : "no"});
  }
  table.print();

  const double lf_range = link.range_for_snr(lf_min_snr_db, noise_w);
  const double ask_range = link.range_for_snr(ask_min_snr_db, noise_w);
  std::printf(
      "\nmax range: LF-Backscatter %.1f m, ASK %.1f m (ratio %.2f; the d^-4 "
      "law turns a 4 dB gap into 10^(4/40) = 1.26x)\n",
      lf_range, ask_range, ask_range / lf_range);
  std::printf(
      "paper's example: a 10 ft ASK link supports LF out to %.1f ft; a "
      "30 ft link out to %.1f ft\n",
      channel::LinkBudget::derated_range(10.0, 4.0),
      channel::LinkBudget::derated_range(30.0, 4.0));
  std::printf(
      "deployment guidance: run LF-Backscatter inside %.1f m for concurrent "
      "streams; between %.1f and %.1f m fall back to single-tag ASK\n",
      lf_range, lf_range, ask_range);
  return 0;
}

// Tag power budgeting: reproduce the paper's §1 motivating arithmetic.
//
// "A backscatter-based temperature sensor that samples at 1 Hz and operates
// in a sense-transmit loop with no other overheads would barely consume
// 10 uW" — and a data-rich sensor "can stream hundreds of kbps for a paltry
// tens of micro-watts". Both fall out of the duty-cycle model; this example
// also shows what the same sensors would pay under Gen 2 or Buzz, where the
// protocol forces buffers, receive paths, and lock-step retransmission.
#include <cstdio>

#include "energy/duty_cycle.h"
#include "sim/table.h"

using namespace lfbs;

int main() {
  const energy::PowerModel model;

  struct Design {
    const char* name;
    energy::SenseTransmitLoop loop;
  };
  const Design designs[] = {
      {"1 Hz temperature sensor (16-bit readings, 10 kbps burst)",
       {.sample_rate_hz = 1.0,
        .bits_per_sample = 16.0,
        .tx_rate = 10.0 * kKbps,
        .sense_energy_j = 0.5e-6}},
      {"50 Hz accelerometer (3x12-bit, 50 kbps burst)",
       {.sample_rate_hz = 50.0,
        .bits_per_sample = 36.0,
        .tx_rate = 50.0 * kKbps,
        .sense_energy_j = 0.1e-6}},
      {"8 kHz microphone (8-bit, streaming at 100 kbps)",
       {.sample_rate_hz = 8000.0,
        .bits_per_sample = 8.0,
        .tx_rate = 100.0 * kKbps,
        .sense_energy_j = 4e-9}},
  };

  sim::Table table({"sensor", "duty cycle", "LF-Backscatter", "Buzz",
                    "EPC Gen 2"});
  for (const Design& d : designs) {
    table.add_row(
        {d.name, sim::fmt_percent(d.loop.duty_cycle()),
         sim::fmt(d.loop.average_power_w(model,
                                         energy::Protocol::kLfBackscatter) *
                      1e6,
                  1) +
             " uW",
         sim::fmt(d.loop.average_power_w(model, energy::Protocol::kBuzz) * 1e6,
                  1) +
             " uW",
         sim::fmt(
             d.loop.average_power_w(model, energy::Protocol::kEpcGen2) * 1e6,
             1) +
             " uW"});
  }
  table.print();

  std::printf(
      "\npaper section 1: the 1 Hz sensor should land under ~10 uW with a "
      "blind protocol, and protocol choices that force buffers or receive "
      "paths add tens to hundreds of uW — enough to break battery-less "
      "operation.\n");
  return 0;
}

// Quickstart: one laissez-faire tag, one reader, one decoded frame.
//
// Shows the minimal end-to-end path through the public API:
//   1. build a frame (anchor + payload + CRC),
//   2. let a Tag blindly clock it out when it senses the carrier,
//   3. push it through the channel into the reader's sample buffer,
//   4. run the LF-Backscatter decoder and read the payload back.
#include <cstdio>

#include "channel/channel_model.h"
#include "core/lf_decoder.h"
#include "protocol/frame.h"
#include "reader/receiver.h"
#include "tag/tag.h"

using namespace lfbs;

int main() {
  Rng rng(1);

  // --- the tag: 100 kbps, normal crystal and comparator physics ----------
  tag::TagConfig tag_config;
  tag_config.rate = 100.0 * kKbps;
  tag::Tag tag(tag_config, rng);
  std::printf("tag: %.0f kbps, crystal error %+.0f ppm\n",
              tag_config.rate / 1e3, tag.clock_error_ppm());

  // --- the payload --------------------------------------------------------
  protocol::FrameConfig frame_config;  // 96-bit payload + CRC-16
  const std::vector<bool> payload = rng.bits(frame_config.payload_bits);
  const std::vector<bool> frame = protocol::build_frame(payload, frame_config);

  // --- one epoch on the air ----------------------------------------------
  const Seconds epoch = 1.5e-3;
  const auto tx = tag.transmit_epoch({frame}, epoch, rng);
  std::printf("tag woke %.1f us after carrier-on and sent %zu bits\n",
              tx.start_time * 1e6, tx.bits.size());

  channel::ChannelModel channel;
  channel::TagPlacement placement;  // ~2 m from the reader
  channel.add_tag(placement, rng);
  reader::ReceiverConfig rx_config;  // 25 Msps, like the paper's USRP N210
  reader::Receiver receiver(rx_config, channel);
  const signal::SampleBuffer buffer =
      receiver.receive_epoch({{tx.timeline}}, epoch, rng);
  std::printf("reader captured %zu samples at %.0f Msps\n", buffer.size(),
              buffer.sample_rate() / 1e6);

  // --- decode --------------------------------------------------------------
  core::DecoderConfig decoder_config;
  decoder_config.frame = frame_config;
  const core::LfDecoder decoder(decoder_config);
  const core::DecodeResult result = decoder.decode(buffer);

  std::printf("decoded %zu stream(s), %zu edge(s)\n", result.streams.size(),
              result.diagnostics.edges);
  for (const auto& stream : result.streams) {
    for (const auto& parsed : stream.frames) {
      std::printf("  frame: anchor %s, CRC %s, payload %s\n",
                  parsed.anchor_ok ? "ok" : "BAD",
                  parsed.crc_ok ? "ok" : "BAD",
                  parsed.payload == payload ? "matches what was sent"
                                            : "DIFFERS");
    }
  }
  return 0;
}

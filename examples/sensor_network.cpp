// A heterogeneous sensor network: the paper's motivating deployment.
//
// One battery-less temperature sensor trickles readings at 2 kbps while two
// data-rich microphone tags stream at 100 kbps, all concurrently, all
// blind. The reader separates the streams, and the broadcast rate
// controller (§3.6) shows how the reader would slow fast tags down if
// decoding degraded — which the constrained temperature tag may ignore.
#include <cstdio>

#include "protocol/rate_control.h"
#include "sim/scenario.h"
#include "tag/sensor.h"

using namespace lfbs;

int main() {
  Rng rng(99);

  sim::ScenarioConfig sc;
  sc.num_tags = 3;
  sc.rates = {2.0 * kKbps, 100.0 * kKbps, 100.0 * kKbps};
  sc.sample_rate = 5.0 * kMsps;
  // One 113-bit frame at 2 kbps = 56.5 ms.
  sc.epoch_duration = 58e-3;
  sim::Scenario scenario(sc, rng);

  // Sensors produce the payload bits.
  tag::TemperatureSensor thermometer;
  tag::MediaSensor mic_left("microphone-left");
  tag::MediaSensor mic_right("microphone-right");

  protocol::RateController controller(protocol::RatePlan::paper_rates(),
                                      100.0 * kKbps);

  for (int epoch = 0; epoch < 3; ++epoch) {
    std::vector<std::vector<std::vector<bool>>> payloads(3);
    payloads[0].push_back(thermometer.sample_bits(96, rng));
    // The microphones fill the epoch with back-to-back frames.
    const auto frames = static_cast<std::size_t>(
        (sc.epoch_duration - 2e-3) * 100.0 * kKbps / 113.0);
    for (std::size_t f = 0; f < frames; ++f) {
      payloads[1].push_back(mic_left.sample_bits(96, rng));
      payloads[2].push_back(mic_right.sample_bits(96, rng));
    }

    const auto outcome = scenario.run_epoch_with_payloads(
        scenario.default_decoder(), payloads, rng);

    std::printf(
        "epoch %d: %zu streams decoded; %zu/%zu frames recovered "
        "(%.1f kbps aggregate), temperature ~%.1f C\n",
        epoch, outcome.decode.streams.size(), outcome.payloads_recovered,
        outcome.sent_payloads.size(),
        static_cast<double>(outcome.bits_recovered) / outcome.duration / 1e3,
        thermometer.last_reading());

    // Reader-side rate control: broadcast a slow-down if the epoch was bad.
    const auto command = controller.on_epoch(
        outcome.decode.frames_attempted(), outcome.decode.frames_failed());
    if (command.has_value()) {
      std::printf("  reader broadcasts: max rate -> %s\n",
                  format_rate(*command).c_str());
    }
  }
  return 0;
}

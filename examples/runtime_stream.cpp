// Streaming quickstart: a live synthetic deployment feeds the concurrent
// decode runtime, and decoded frames arrive on the FrameBus as the
// pipeline stitches them — no whole-capture buffer anywhere.
//
//   sim::Scenario → ScenarioSource → [chunk ring] → workers → stitcher
//                                                                 │
//                                    subscriber callback ← FrameBus
//
// Swap ScenarioSource for IqFileSource to replay a recorded capture, or
// an SDR-backed source on hardware; nothing downstream changes.
#include <cstdio>

#include "runtime/runtime.h"
#include "sim/scenario.h"

using namespace lfbs;

int main() {
  Rng rng(2025);

  // Eight 100 kbps tags around the reader.
  sim::ScenarioConfig sc;
  sc.num_tags = 8;
  sim::Scenario scenario(sc, rng);

  // Live source: four epochs of one random frame per tag.
  runtime::ScenarioSource::Config source_config;
  source_config.epochs = 4;
  source_config.chunk_samples = 1 << 14;
  runtime::ScenarioSource source(scenario, rng, source_config);

  // The pipeline: 4 window workers, lossless backpressure.
  runtime::RuntimeConfig rc;
  rc.windowed.decoder = scenario.default_decoder();
  rc.workers = 4;
  runtime::DecodeRuntime rt(rc);
  std::size_t live_frames = 0;
  rt.bus().subscribe([&](const runtime::FrameEvent& event) {
    if (!event.frame.valid()) return;
    ++live_frames;
    std::printf("  frame %2zu: stream %zu at %s%s\n", live_frames,
                event.stream_index, format_rate(event.rate).c_str(),
                event.collided ? " (recovered from collision)" : "");
  });

  std::printf("streaming %zu epochs from %zu tags...\n",
              source_config.epochs, scenario.num_tags());
  const auto run = rt.run(source);

  // Score end-to-end recovery against what the tags actually sent.
  std::size_t recovered = 0;
  const auto decoded = run.decode.valid_payloads();
  for (const auto& sent : source.sent_payloads()) {
    for (const auto& got : decoded) {
      if (sent == got) {
        ++recovered;
        break;
      }
    }
  }
  const auto& st = run.stats;
  std::printf(
      "\nrecovered %zu/%zu payloads across %zu streams\n"
      "pipeline: %zu chunks in, %zu windows, %.2f effective Msps, "
      "window p50/p99 %.1f/%.1f ms, ring high-water %zu, health %s\n",
      recovered, source.sent_payloads().size(), st.streams, st.chunks_in,
      st.windows_decoded, st.effective_msps(), st.window_latency_p50_ms,
      st.window_latency_p99_ms, st.ring_high_watermark,
      runtime::to_string(st.health));
  return recovered > source.sent_payloads().size() / 2 ? 0 : 1;
}

#pragma once

#include "common/rng.h"
#include "common/units.h"
#include "signal/sample_buffer.h"

namespace lfbs::channel {

/// Complex additive white Gaussian noise.
///
/// `noise_power` is E[|n|^2]; each of I and Q gets variance noise_power/2.
void add_awgn(signal::SampleBuffer& buffer, double noise_power, Rng& rng);

/// Noise power required for a target per-sample SNR (dB) given a signal of
/// the stated power. SNR here is the convention used for Fig 14: the power
/// of the tag's reflected signal step (|h|^2) over the noise power.
double noise_power_for_snr(double signal_power, double snr_db);

/// Measured SNR (dB) between a signal power and noise power.
double measured_snr_db(double signal_power, double noise_power);

}  // namespace lfbs::channel

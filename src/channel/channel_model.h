#pragma once

#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "signal/sample_buffer.h"

namespace lfbs::channel {

/// Physical placement of one tag relative to the reader antenna. Drives the
/// complex channel coefficient: amplitude from the radar link budget,
/// phase from the round-trip path length plus reflection phase.
struct TagPlacement {
  double distance_m = 2.0;       ///< paper deployment: roughly 2 m
  double orientation_rad = 0.0;  ///< antenna orientation (affects gain)
  double reflection_phase = 0.0; ///< phase offset of the tag reflection
};

/// Linear multi-tag backscatter channel (Eq 2 of the paper):
///   S(t) = env + Σ_j h_j · level_j(t)
/// where level_j is tag j's antenna state in [0, 1] and h_j its complex
/// coefficient. AWGN is added separately (see noise.h) so tests can probe
/// the noiseless composition.
class ChannelModel {
 public:
  ChannelModel() = default;

  /// Adds a tag with an explicit coefficient; returns its index.
  std::size_t add_tag(Complex coefficient);

  /// Adds a tag whose coefficient is derived from a placement: amplitude
  /// falls off with distance^2 (one-way of the radar d^4 power law is
  /// amplitude d^2), phase from path length; small random perturbation
  /// models fabrication spread.
  std::size_t add_tag(const TagPlacement& placement, Rng& rng);

  std::size_t num_tags() const { return coefficients_.size(); }
  Complex coefficient(std::size_t tag) const;
  void set_coefficient(std::size_t tag, Complex h);

  Complex environment() const { return environment_; }
  void set_environment(Complex env) { environment_ = env; }

  /// Composes per-tag antenna level series into the received buffer.
  /// All series must have the same length.
  signal::SampleBuffer compose(
      SampleRate fs, const std::vector<std::vector<double>>& levels) const;

  /// Composes with per-sample time-varying coefficients (used by the Fig 1
  /// dynamics experiments). `coefficients[tag][sample]`.
  signal::SampleBuffer compose_time_varying(
      SampleRate fs, const std::vector<std::vector<double>>& levels,
      const std::vector<std::vector<Complex>>& coefficients) const;

 private:
  std::vector<Complex> coefficients_;
  Complex environment_{0.8, 0.3};  ///< static environment reflection
};

/// Carrier wavelength at 915 MHz (centre of the 902–928 MHz band the UMass
/// Moo operates in).
constexpr double kWavelength915MHz = 0.3275;

}  // namespace lfbs::channel

#include "channel/channel_model.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace lfbs::channel {

std::size_t ChannelModel::add_tag(Complex coefficient) {
  coefficients_.push_back(coefficient);
  return coefficients_.size() - 1;
}

std::size_t ChannelModel::add_tag(const TagPlacement& placement, Rng& rng) {
  LFBS_CHECK(placement.distance_m > 0.0);
  // Backscatter power falls as d^-4, so amplitude falls as d^-2. Normalise
  // so a tag at 1 m has unit amplitude before orientation loss.
  const double amplitude =
      std::pow(placement.distance_m, -2.0) *
      std::max(0.05, std::abs(std::cos(placement.orientation_rad))) *
      rng.uniform(0.9, 1.1);  // fabrication spread
  const double path_phase = 2.0 * std::numbers::pi *
                            (2.0 * placement.distance_m) / kWavelength915MHz;
  const double phase = path_phase + placement.reflection_phase;
  return add_tag(std::polar(amplitude, phase));
}

Complex ChannelModel::coefficient(std::size_t tag) const {
  LFBS_CHECK(tag < coefficients_.size());
  return coefficients_[tag];
}

void ChannelModel::set_coefficient(std::size_t tag, Complex h) {
  LFBS_CHECK(tag < coefficients_.size());
  coefficients_[tag] = h;
}

signal::SampleBuffer ChannelModel::compose(
    SampleRate fs, const std::vector<std::vector<double>>& levels) const {
  LFBS_CHECK(levels.size() == coefficients_.size());
  std::size_t n = 0;
  for (const auto& series : levels) {
    if (n == 0) n = series.size();
    LFBS_CHECK_MSG(series.size() == n, "level series lengths differ");
  }
  signal::SampleBuffer out(fs, n);
  for (std::size_t i = 0; i < n; ++i) out[i] = environment_;
  for (std::size_t tag = 0; tag < levels.size(); ++tag) {
    const Complex h = coefficients_[tag];
    const auto& series = levels[tag];
    for (std::size_t i = 0; i < n; ++i) out[i] += h * series[i];
  }
  return out;
}

signal::SampleBuffer ChannelModel::compose_time_varying(
    SampleRate fs, const std::vector<std::vector<double>>& levels,
    const std::vector<std::vector<Complex>>& coefficients) const {
  LFBS_CHECK(levels.size() == coefficients.size());
  std::size_t n = 0;
  for (const auto& series : levels) {
    if (n == 0) n = series.size();
    LFBS_CHECK_MSG(series.size() == n, "level series lengths differ");
  }
  signal::SampleBuffer out(fs, n);
  for (std::size_t i = 0; i < n; ++i) out[i] = environment_;
  for (std::size_t tag = 0; tag < levels.size(); ++tag) {
    LFBS_CHECK(coefficients[tag].size() == n);
    const auto& series = levels[tag];
    const auto& h = coefficients[tag];
    for (std::size_t i = 0; i < n; ++i) out[i] += h[i] * series[i];
  }
  return out;
}

}  // namespace lfbs::channel

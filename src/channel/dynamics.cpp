#include "channel/dynamics.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.h"

namespace lfbs::channel {

std::vector<Complex> PeopleMovementModel::generate(Complex h0, SampleRate fs,
                                                   Seconds duration,
                                                   Rng& rng) const {
  LFBS_CHECK(fs > 0.0 && duration > 0.0);
  const auto n = static_cast<std::size_t>(fs * duration);
  std::vector<double> freq(paths), phase(paths), weight(paths);
  double weight_sum = 0.0;
  for (std::size_t p = 0; p < paths; ++p) {
    // Jakes: Doppler of each path is f_max * cos(arrival angle).
    freq[p] = max_doppler_hz * std::cos(rng.uniform(0.0, std::numbers::pi));
    phase[p] = rng.uniform(0.0, 2.0 * std::numbers::pi);
    weight[p] = rng.uniform(0.5, 1.0);
    weight_sum += weight[p];
  }
  std::vector<Complex> out(n);
  const double scale = depth * std::abs(h0) / std::max(weight_sum, 1e-12);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / fs;
    Complex fade{};
    for (std::size_t p = 0; p < paths; ++p) {
      const double arg = 2.0 * std::numbers::pi * freq[p] * t + phase[p];
      fade += weight[p] * Complex{std::cos(arg), std::sin(arg)};
    }
    out[i] = h0 + scale * fade;
  }
  return out;
}

std::vector<Complex> TagRotationModel::generate(Complex h0, SampleRate fs,
                                                Seconds duration,
                                                Rng& rng) const {
  LFBS_CHECK(fs > 0.0 && duration > 0.0);
  const auto n = static_cast<std::size_t>(fs * duration);
  std::vector<Complex> out(n);
  const double theta0 = rng.uniform(0.0, 2.0 * std::numbers::pi);
  double wobble_state = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / fs;
    wobble_state += rng.gaussian(0.0, wobble / std::sqrt(std::max(fs, 1.0)));
    const double theta =
        theta0 + 2.0 * std::numbers::pi * rotation_hz * t + wobble_state;
    const double gain = std::max(min_gain, std::abs(std::cos(theta)));
    // Rotating the tag also rotates the reflection phase.
    out[i] = h0 * std::polar(gain, theta * 0.5);
  }
  return out;
}

double CouplingModel::distance_at(Seconds t, Seconds duration) const {
  const double frac = std::clamp(t / duration, 0.0, 1.0);
  return start_distance_m + (end_distance_m - start_distance_m) * frac;
}

std::vector<std::vector<Complex>> CouplingModel::generate(
    Complex h1, Complex h2, SampleRate fs, Seconds duration, Rng& rng) const {
  LFBS_CHECK(fs > 0.0 && duration > 0.0);
  const auto n = static_cast<std::size_t>(fs * duration);
  std::vector<std::vector<Complex>> out(2, std::vector<Complex>(n));
  const double coupling_phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / fs;
    const double d = distance_at(t, duration);
    // Coupling turns on smoothly below coupling_distance_m and intensifies
    // as the separation shrinks (near-field goes like 1/d^3; we saturate).
    double k = 0.0;
    if (d < coupling_distance_m) {
      k = coupling_strength *
          std::min(1.0, std::pow(coupling_distance_m / std::max(d, 0.01), 2.0) /
                            std::pow(coupling_distance_m / 0.05, 2.0) * 4.0);
    }
    const Complex leak = std::polar(k, coupling_phase);
    out[0][i] = h1 + leak * h2;
    out[1][i] = h2 + leak * h1;
  }
  return out;
}

TraceStats summarize_trace(std::span<const Complex> trace) {
  TraceStats stats;
  if (trace.empty()) return stats;
  double sum_mag = 0.0;
  double min_i = trace[0].real(), max_i = trace[0].real();
  double min_q = trace[0].imag(), max_q = trace[0].imag();
  for (const Complex& h : trace) {
    sum_mag += std::abs(h);
    min_i = std::min(min_i, h.real());
    max_i = std::max(max_i, h.real());
    min_q = std::min(min_q, h.imag());
    max_q = std::max(max_q, h.imag());
  }
  stats.mean_magnitude = sum_mag / static_cast<double>(trace.size());
  double var = 0.0;
  for (const Complex& h : trace) {
    const double d = std::abs(h) - stats.mean_magnitude;
    var += d * d;
  }
  stats.magnitude_stddev = std::sqrt(var / static_cast<double>(trace.size()));
  for (std::size_t i = 1; i < trace.size(); ++i) {
    stats.max_step = std::max(stats.max_step, std::abs(trace[i] - trace[i - 1]));
  }
  stats.total_excursion = std::hypot(max_i - min_i, max_q - min_q);
  return stats;
}

}  // namespace lfbs::channel

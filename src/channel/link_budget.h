#pragma once

#include "common/units.h"

namespace lfbs::channel {

/// Classical radar-equation link budget for backscatter (§5.4 of the paper):
///
///   Pr = Pt · Gt² · (λ / 4πd)⁴ · Gtag² · K
///
/// Received power falls with the fourth power of distance because the
/// carrier travels reader→tag→reader.
struct LinkBudget {
  double tx_power_w = 1.0;        ///< Pt (1 W = 30 dBm, typical UHF reader)
  double reader_gain = 4.0;       ///< Gt (≈ 6 dBi patch antenna)
  double tag_gain = 1.6;          ///< Gtag (≈ 2 dBi dipole)
  double wavelength_m = 0.3275;   ///< λ at 915 MHz
  double modulation_loss = 0.25;  ///< K, ASK modulation loss

  /// Received backscatter power at the reader for a tag at distance d.
  double received_power(double distance_m) const;

  /// SNR in dB at distance d given the reader's noise power.
  double snr_db(double distance_m, double noise_power_w) const;

  /// Maximum distance at which the link still delivers `snr_db` given the
  /// reader noise power (inverts the d⁻⁴ law).
  double range_for_snr(double snr_db, double noise_power_w) const;

  /// Range scaling under an SNR penalty: a scheme needing `delta_db` more
  /// SNR reaches range · 10^(−delta_db/40). This is how the paper turns the
  /// ≈4 dB LF-vs-ASK gap into "10 ft → 8.1 ft" (§5.4).
  static double derated_range(double range, double delta_db);
};

}  // namespace lfbs::channel

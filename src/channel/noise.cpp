#include "channel/noise.h"

#include <cmath>

#include "common/check.h"

namespace lfbs::channel {

void add_awgn(signal::SampleBuffer& buffer, double noise_power, Rng& rng) {
  LFBS_CHECK(noise_power >= 0.0);
  if (noise_power == 0.0) return;
  const double sigma = std::sqrt(noise_power / 2.0);
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    buffer[i] += Complex{rng.gaussian(0.0, sigma), rng.gaussian(0.0, sigma)};
  }
}

double noise_power_for_snr(double signal_power, double snr_db) {
  LFBS_CHECK(signal_power > 0.0);
  return signal_power / db_to_linear(snr_db);
}

double measured_snr_db(double signal_power, double noise_power) {
  LFBS_CHECK(noise_power > 0.0);
  return linear_to_db(signal_power / noise_power);
}

}  // namespace lfbs::channel

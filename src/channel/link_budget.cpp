#include "channel/link_budget.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace lfbs::channel {

double LinkBudget::received_power(double distance_m) const {
  LFBS_CHECK(distance_m > 0.0);
  const double path =
      wavelength_m / (4.0 * std::numbers::pi * distance_m);
  return tx_power_w * reader_gain * reader_gain * std::pow(path, 4.0) *
         tag_gain * tag_gain * modulation_loss;
}

double LinkBudget::snr_db(double distance_m, double noise_power_w) const {
  LFBS_CHECK(noise_power_w > 0.0);
  return linear_to_db(received_power(distance_m) / noise_power_w);
}

double LinkBudget::range_for_snr(double target_snr_db,
                                 double noise_power_w) const {
  LFBS_CHECK(noise_power_w > 0.0);
  // Pr(d) = C · d^-4  =>  d = (C / (noise · snr))^(1/4)
  const double c = received_power(1.0);  // Pr at 1 m
  const double required = noise_power_w * db_to_linear(target_snr_db);
  return std::pow(c / required, 0.25);
}

double LinkBudget::derated_range(double range, double delta_db) {
  return range * std::pow(10.0, -delta_db / 40.0);
}

}  // namespace lfbs::channel

#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace lfbs::channel {

/// Generators for the channel-coefficient dynamics of Figure 1. Each
/// produces a coefficient trace h(t) sampled at `fs` for `duration`
/// seconds, starting from a baseline coefficient h0. These are the
/// conditions under which Buzz must re-estimate channels while
/// LF-Backscatter keeps decoding (it only assumes stability within one
/// short epoch).

/// Fig 1(a): a person walking near a stationary tag. Modelled as Jakes-style
/// multipath fading: a sum of `paths` sinusoids with random Doppler shifts
/// up to `max_doppler_hz` (walking speed ≈ 1.5 m/s → ~9 Hz at 915 MHz),
/// scaled to `depth` of the static coefficient.
struct PeopleMovementModel {
  std::size_t paths = 8;
  double max_doppler_hz = 9.0;
  double depth = 0.45;  ///< fading amplitude relative to |h0|

  std::vector<Complex> generate(Complex h0, SampleRate fs, Seconds duration,
                                Rng& rng) const;
};

/// Fig 1(b): the tag rotates in place. The coefficient's amplitude follows
/// the antenna pattern (|cos θ| with a floor) and its phase tracks the
/// rotation; θ advances at `rotation_hz` revolutions per second with
/// small wobble.
struct TagRotationModel {
  double rotation_hz = 0.25;
  double wobble = 0.05;
  double min_gain = 0.1;  ///< pattern null floor

  std::vector<Complex> generate(Complex h0, SampleRate fs, Seconds duration,
                                Rng& rng) const;
};

/// Fig 1(c): two tags approach each other; under ~`coupling_distance_m`
/// their antennas near-field couple and both coefficients shift. Returns
/// one trace per tag. The tags close from `start_distance_m` to
/// `end_distance_m` linearly over the duration.
struct CouplingModel {
  double start_distance_m = 1.0;
  double end_distance_m = 0.05;
  double coupling_distance_m = 0.3;
  double coupling_strength = 0.5;

  std::vector<std::vector<Complex>> generate(Complex h1, Complex h2,
                                             SampleRate fs, Seconds duration,
                                             Rng& rng) const;

  /// Tag separation at time t under the linear approach.
  double distance_at(Seconds t, Seconds duration) const;
};

/// Summary statistics of a coefficient trace, used by the Fig 1 bench to
/// report "how much the channel moved".
struct TraceStats {
  double mean_magnitude = 0.0;
  double magnitude_stddev = 0.0;
  double max_step = 0.0;        ///< largest |h(t+1) - h(t)|
  double total_excursion = 0.0; ///< |max h - min h| over I and Q combined
};
TraceStats summarize_trace(std::span<const Complex> trace);

}  // namespace lfbs::channel

#pragma once

#include <cstdint>
#include <vector>

namespace lfbs {

/// Deterministic, seedable random number generator (xoshiro256**).
///
/// Every source of randomness in the library — payload bits, channel
/// coefficients, comparator jitter, AWGN — flows through an Rng so that
/// experiments are exactly reproducible from a seed. The generator is a
/// value type: copy it to fork an independent stream, or use split().
class Rng {
 public:
  /// Seeds the four 64-bit words of state via splitmix64, so that even
  /// adjacent seeds produce uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_u64(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (cached second deviate).
  double gaussian();

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Bernoulli trial.
  bool bernoulli(double p);

  /// Random bit vector of the given length.
  std::vector<bool> bits(std::size_t n);

  /// Derive an independent child generator. Deterministic: the same parent
  /// state always yields the same child.
  Rng split();

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_u64(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4]{};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace lfbs

#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace lfbs {

/// Thrown when a precondition or invariant stated with LFBS_CHECK fails.
/// Library code uses exceptions only for programming errors and unrecoverable
/// configuration mistakes; expected decode failures are reported via status
/// fields in results, never via exceptions.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "LFBS_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace lfbs

/// Precondition / invariant check. Always on (decode pipelines are not hot
/// enough for this to matter, and silent corruption is worse than a throw).
#define LFBS_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr))                                                      \
      ::lfbs::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (false)

#define LFBS_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr))                                                      \
      ::lfbs::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

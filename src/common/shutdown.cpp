#include "common/shutdown.h"

#include <csignal>

namespace lfbs {

namespace {

std::atomic<bool> g_requested{false};
std::atomic<int> g_signal{0};

extern "C" void handle_signal(int signum) {
  g_requested.store(true, std::memory_order_relaxed);
  g_signal.store(signum, std::memory_order_relaxed);
  // Restore the default disposition so a second signal terminates
  // immediately instead of being absorbed by a wedged drain.
  std::signal(signum, SIG_DFL);
}

}  // namespace

void install_shutdown_handlers() {
  static_assert(std::atomic<bool>::is_always_lock_free &&
                    std::atomic<int>::is_always_lock_free,
                "signal handler stores must be lock-free");
  struct sigaction action {};
  action.sa_handler = handle_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: interrupt blocking reads
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

const std::atomic<bool>& shutdown_flag() { return g_requested; }

int shutdown_signal() { return g_signal.load(std::memory_order_relaxed); }

int shutdown_exit_code(int clean) {
  const int signum = shutdown_signal();
  return signum != 0 ? 128 + signum : clean;
}

}  // namespace lfbs

#pragma once

#include <atomic>

namespace lfbs {

/// Process-wide graceful-shutdown latch for the long-running tools.
///
/// install_shutdown_handlers() registers SIGINT and SIGTERM handlers that
/// do nothing but store into two lock-free atomics — async-signal-safe by
/// construction. The tools hand shutdown_flag() to RuntimeConfig::
/// stop_flag, so the first Ctrl-C stops ingest, drains every window
/// already in flight, flushes sinks, prints final stats, and exits with
/// the conventional 128 + signal (130 for SIGINT). A second signal while
/// draining falls back to the default disposition and kills the process —
/// the operator's escape hatch from a wedged drain.
void install_shutdown_handlers();

/// The latch the signal handler sets; pass &shutdown_flag() around.
const std::atomic<bool>& shutdown_flag();

/// The signal that fired, or 0 if none yet.
int shutdown_signal();

/// Conventional exit code for a signal-terminated-but-graceful run:
/// 128 + signal when one fired, `clean` otherwise.
int shutdown_exit_code(int clean = 0);

}  // namespace lfbs

#pragma once

#include <complex>
#include <cstdint>
#include <string>

namespace lfbs {

/// Complex baseband sample / vector type used throughout decode paths.
/// Double precision: decode math (cluster geometry, Viterbi emissions)
/// is numerically gentler in double, and the pipelines are nowhere near
/// memory-bandwidth bound at the simulated sample counts.
using Complex = std::complex<double>;

/// Bits per second. Tag bitrates in the paper range 0.5 kbps – 250 kbps.
using BitRate = double;

/// Samples per second at the reader ADC (paper: 25 Msps USRP N210).
using SampleRate = double;

/// Seconds.
using Seconds = double;

/// Index into a sample buffer.
using SampleIndex = std::int64_t;

constexpr double kKbps = 1e3;
constexpr double kMbps = 1e6;
constexpr double kMsps = 1e6;
constexpr double kMicro = 1e-6;
constexpr double kMilli = 1e-3;

/// Decibels <-> linear power ratio.
double db_to_linear(double db);
double linear_to_db(double linear);

/// Pretty printers used by the bench tables ("100 kbps", "25 Msps", ...).
std::string format_rate(BitRate bps);
std::string format_duration(Seconds s);

/// Number of reader samples in one bit period; e.g. 250 at 25 Msps / 100 kbps.
inline double samples_per_bit(SampleRate fs, BitRate rate) {
  return fs / rate;
}

}  // namespace lfbs

#include "common/kv_spec.h"

#include <cstdint>
#include <stdexcept>

#include "common/check.h"

namespace lfbs {

std::vector<KvField> parse_kv_spec(const std::string& spec) {
  std::vector<KvField> fields;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string field = spec.substr(begin, end - begin);
    begin = end + 1;
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    LFBS_CHECK_MSG(eq != std::string::npos,
                   "spec field needs key=value: " + field);
    fields.push_back({field.substr(0, eq), field.substr(eq + 1)});
  }
  return fields;
}

double kv_number(const KvField& field) {
  try {
    return std::stod(field.value);
  } catch (const std::exception&) {
    LFBS_CHECK_MSG(false, "spec key '" + field.key +
                              "' needs a number, got: " + field.value);
  }
  return 0.0;  // unreachable
}

std::uint64_t kv_u64(const KvField& field) {
  try {
    return std::stoull(field.value);
  } catch (const std::exception&) {
    LFBS_CHECK_MSG(false, "spec key '" + field.key +
                              "' needs an integer, got: " + field.value);
  }
  return 0;  // unreachable
}

}  // namespace lfbs

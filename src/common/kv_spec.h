#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace lfbs {

/// One "key=value" field of a comma-separated spec string.
struct KvField {
  std::string key;
  std::string value;
};

/// Splits a comma-separated "key=value" spec — the grammar shared by
/// `--inject-faults` (runtime::parse_fault_plan) and `--chaos`
/// (net::parse_chaos_config) — into ordered fields. Empty fields between
/// commas are skipped; a field without '=' throws CheckError so the CLIs
/// can report it as a usage error. Key interpretation is the caller's job.
std::vector<KvField> parse_kv_spec(const std::string& spec);

/// std::stod with a typed error naming the offending key (std::stod alone
/// throws std::invalid_argument with no context).
double kv_number(const KvField& field);

/// std::stoull with the same typed-error contract as kv_number.
std::uint64_t kv_u64(const KvField& field);

}  // namespace lfbs

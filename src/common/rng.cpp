#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace lfbs {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  LFBS_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ull - (~0ull % n + 1) % n;
  std::uint64_t v = next_u64();
  while (v > limit) v = next_u64();
  return v % n;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  LFBS_CHECK(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<bool> Rng::bits(std::size_t n) {
  std::vector<bool> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = bernoulli(0.5);
  return out;
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace lfbs

#include "common/units.h"

#include <cmath>
#include <cstdio>

namespace lfbs {

double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }

double linear_to_db(double linear) { return 10.0 * std::log10(linear); }

std::string format_rate(BitRate bps) {
  char buf[64];
  if (bps >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.6g Mbps", bps / 1e6);
  } else if (bps >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.6g kbps", bps / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.6g bps", bps);
  }
  return buf;
}

std::string format_duration(Seconds s) {
  char buf[64];
  if (s >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.4g s", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.4g ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.4g us", s * 1e6);
  }
  return buf;
}

}  // namespace lfbs

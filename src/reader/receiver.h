#pragma once

#include <span>

#include "channel/channel_model.h"
#include "channel/noise.h"
#include "common/rng.h"
#include "common/units.h"
#include "signal/sample_buffer.h"
#include "signal/waveform.h"

namespace lfbs::reader {

/// Receive front end: renders every tag's antenna-state timeline onto the
/// ADC sample grid, pushes them through the linear channel, and adds
/// receiver noise. The output buffer is exactly what a USRP-style reader
/// would hand the decoder for one epoch.
struct ReceiverConfig {
  SampleRate sample_rate = 25.0 * kMsps;  ///< paper: USRP N210 at 25 Msps
  /// RF-transistor switching time. 0.12 µs ≈ 3 samples at 25 Msps, matching
  /// the paper's "an edge is roughly 3 samples wide" (§2.4).
  Seconds rise_time = 0.12e-6;
  /// Receiver noise power E[|n|²] added to the composed signal.
  double noise_power = 1e-6;
  /// Above this many tag-samples (tags x buffer length) the epoch is
  /// composed sparsely from transitions instead of dense per-tag renders —
  /// same physics, O(transitions) instead of O(tags x samples).
  std::size_t sparse_threshold = 50'000'000;
};

class Receiver {
 public:
  Receiver(ReceiverConfig config, channel::ChannelModel channel);

  const ReceiverConfig& config() const { return config_; }
  const channel::ChannelModel& channel() const { return channel_; }
  channel::ChannelModel& channel() { return channel_; }

  /// Receives one epoch of `duration` seconds. `timelines[i]` is the
  /// antenna-state timeline of the tag registered as channel index i; the
  /// vector length must match the channel's tag count.
  signal::SampleBuffer receive_epoch(
      std::span<const signal::StateTimeline> timelines, Seconds duration,
      Rng& rng) const;

 private:
  ReceiverConfig config_;
  channel::ChannelModel channel_;
};

}  // namespace lfbs::reader

#include "reader/carrier.h"

#include "common/check.h"

namespace lfbs::reader {

Carrier::Carrier(Seconds epoch_duration, Seconds gap)
    : epoch_duration_(epoch_duration), gap_(gap) {
  LFBS_CHECK(epoch_duration_ > 0.0);
  LFBS_CHECK(gap_ >= 0.0);
}

Seconds Carrier::epoch_start(std::size_t k) const {
  return static_cast<double>(k) * cycle();
}

Seconds Carrier::total_time(std::size_t n) const {
  return static_cast<double>(n) * cycle();
}

}  // namespace lfbs::reader

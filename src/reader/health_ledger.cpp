#include "reader/health_ledger.h"

#include <algorithm>
#include <cmath>

#include "obs/events.h"
#include "obs/metrics.h"

namespace lfbs::reader {

namespace {

/// Ledger transitions are rare and diagnostic gold: mirror each one into
/// the JSONL event log (when attached) and the global counters.
void note_transition(const HealthEntry& e, const char* transition) {
  if (obs::EventLog* log = obs::event_log()) {
    log->emit("ledger",
              {obs::Field::str("transition", transition),
               obs::Field::str("state", to_string(e.state)),
               obs::Field::num("edge_re", e.edge_vector.real()),
               obs::Field::num("edge_im", e.edge_vector.imag()),
               obs::Field::integer(
                   "consecutive_failures",
                   static_cast<std::int64_t>(e.consecutive_failures)),
               obs::Field::num("last_confidence", e.last_confidence)});
  }
}

}  // namespace

const char* to_string(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kQuarantined:
      return "quarantined";
    case HealthState::kProbation:
      return "probation";
  }
  return "?";
}

HealthLedger::HealthLedger(HealthLedgerConfig config) : config_(config) {}

HealthEntry* HealthLedger::match(Complex edge_vector) {
  HealthEntry* best = nullptr;
  double best_dist = config_.vector_tolerance;
  for (HealthEntry& e : entries_) {
    const double scale = std::max(std::abs(e.edge_vector), 1e-12);
    // Polarity-tolerant: a decode can recover the same tag with flipped
    // levels, negating the vector (same convention as the stitcher).
    const double dist = std::min(std::abs(edge_vector - e.edge_vector),
                                 std::abs(edge_vector + e.edge_vector)) /
                        scale;
    if (dist < best_dist) {
      best_dist = dist;
      best = &e;
    }
  }
  return best;
}

EpochHealth HealthLedger::observe(const core::DecodeResult& result) {
  static obs::Counter& epochs =
      obs::metrics().counter("reader.ledger_epochs");
  static obs::Counter& quarantines =
      obs::metrics().counter("reader.ledger_quarantines");
  static obs::Counter& recoveries =
      obs::metrics().counter("reader.ledger_recoveries");
  epochs.add();
  EpochHealth out;
  std::vector<bool> seen(entries_.size(), false);
  double conf_sum = 0.0;
  std::size_t conf_n = 0;

  for (const core::DecodedStream& s : result.streams) {
    std::size_t valid = 0;
    for (const auto& f : s.frames) valid += f.valid();
    const double conf = s.confidence.score();
    conf_sum += conf;
    ++conf_n;
    const bool failed = valid == 0 || conf < config_.min_confidence;

    HealthEntry* e = match(s.edge_vector);
    if (e == nullptr) {
      entries_.push_back({});
      e = &entries_.back();
      seen.push_back(false);
    }
    seen[static_cast<std::size_t>(e - entries_.data())] = true;
    e->edge_vector = s.edge_vector;
    e->missing_epochs = 0;
    ++e->epochs_seen;
    e->last_confidence = conf;

    if (failed) {
      ++e->epochs_failed;
      ++e->consecutive_failures;
      e->probation_progress = 0;
      if (e->state != HealthState::kQuarantined &&
          e->consecutive_failures >= config_.quarantine_after) {
        e->state = HealthState::kQuarantined;
        ++e->quarantines;
        ++total_quarantines_;
        ++out.newly_quarantined;
        quarantines.add();
        note_transition(*e, "quarantined");
      } else if (e->state == HealthState::kProbation) {
        // One bad epoch on probation and it is back in quarantine.
        e->state = HealthState::kQuarantined;
        ++e->quarantines;
        ++total_quarantines_;
        ++out.newly_quarantined;
        quarantines.add();
        note_transition(*e, "requarantined");
      }
    } else {
      e->consecutive_failures = 0;
      if (e->state == HealthState::kQuarantined) {
        e->state = HealthState::kProbation;
        e->probation_progress = 1;
      } else if (e->state == HealthState::kProbation) {
        ++e->probation_progress;
      }
      if (e->state == HealthState::kProbation &&
          e->probation_progress > config_.probation_epochs) {
        e->state = HealthState::kHealthy;
        e->probation_progress = 0;
        ++out.recovered;
        recoveries.add();
        note_transition(*e, "recovered");
      }
    }
  }

  // Age entries the epoch did not see; forget long-gone tags. Absence is
  // not a failure (an idle tag simply has nothing to say) but it does not
  // advance probation either.
  for (std::size_t i = entries_.size(); i-- > 0;) {
    if (seen[i]) continue;
    if (++entries_[i].missing_epochs > config_.forget_after) {
      entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }

  out.tracked = entries_.size();
  for (const HealthEntry& e : entries_) {
    if (e.state == HealthState::kQuarantined) ++out.quarantined;
    if (e.state == HealthState::kProbation) ++out.probation;
  }
  out.mean_confidence =
      conf_n > 0 ? conf_sum / static_cast<double>(conf_n) : 0.0;
  return out;
}

}  // namespace lfbs::reader

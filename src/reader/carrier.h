#pragma once

#include "common/units.h"

namespace lfbs::reader {

/// Carrier on/off scheduling. The reader signals epoch boundaries by
/// shutting the carrier off for `gap` seconds and restarting it (§3.2);
/// tags re-trigger on each restart. This class just does the time
/// bookkeeping for a sequence of epochs.
class Carrier {
 public:
  Carrier(Seconds epoch_duration, Seconds gap);

  Seconds epoch_duration() const { return epoch_duration_; }
  Seconds gap() const { return gap_; }
  Seconds cycle() const { return epoch_duration_ + gap_; }

  /// Wall-clock start of epoch `k`'s carrier-on instant.
  Seconds epoch_start(std::size_t k) const;

  /// Total air time consumed by `n` complete epochs (including gaps after
  /// each; the final gap is counted because the carrier must drop to end
  /// the last epoch).
  Seconds total_time(std::size_t n) const;

 private:
  Seconds epoch_duration_;
  Seconds gap_;
};

}  // namespace lfbs::reader

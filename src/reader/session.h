#pragma once

#include <functional>

#include "core/lf_decoder.h"
#include "protocol/epoch.h"
#include "protocol/rate_control.h"
#include "reader/carrier.h"
#include "reader/health_ledger.h"

namespace lfbs::reader {

/// High-level reader loop: carrier epochs → capture → decode → broadcast
/// rate control. This is the object a deployment actually drives; the
/// pieces (LfDecoder, RateController, Carrier) stay usable on their own.
///
/// The air interface is injected: the session asks it to run one epoch at
/// the commanded maximum bitrate and hand back the captured samples. In the
/// simulator that is a Scenario; on hardware it would be a carrier-gated
/// SDR capture.
struct SessionConfig {
  protocol::EpochConfig epoch{};
  core::DecoderConfig decoder{};
  /// Enable §3.6 broadcast rate control between epochs.
  bool rate_control = true;
  protocol::RateController::Config rate_controller{};
  /// Track per-stream decode health across epochs; a newly quarantined
  /// stream immediately steps the broadcast rate down one notch (when
  /// rate_control is on) instead of waiting for the loss-ratio trigger.
  bool health_tracking = true;
  HealthLedgerConfig health{};
};

struct SessionStats {
  std::size_t epochs = 0;
  std::size_t frames_valid = 0;
  std::size_t frames_failed = 0;
  std::size_t streams = 0;
  Seconds air_time = 0.0;
  std::size_t rate_commands = 0;
  std::size_t quarantines = 0;       ///< newly quarantined streams, total
  std::size_t health_step_downs = 0; ///< rate step-downs the ledger forced
  std::size_t fallback_recoveries = 0;
  double confidence_sum = 0.0;  ///< sum of per-epoch mean confidences
  std::size_t confidence_epochs = 0;

  /// Mean decode confidence over epochs that produced streams.
  double mean_confidence() const {
    return confidence_epochs > 0
               ? confidence_sum / static_cast<double>(confidence_epochs)
               : 0.0;
  }

  BitRate goodput(std::size_t payload_bits) const {
    return air_time > 0.0 ? static_cast<double>(frames_valid * payload_bits) /
                                air_time
                          : 0.0;
  }
};

class ReaderSession {
 public:
  /// Runs one epoch of `duration` seconds with the network's maximum
  /// bitrate commanded to `max_rate`; returns the captured samples.
  using AirInterface =
      std::function<signal::SampleBuffer(BitRate max_rate, Seconds duration)>;

  /// Decodes one epoch capture. The default (empty) hook decodes serially
  /// with core::LfDecoder on the calling thread; runtime::session_decoder
  /// swaps in the concurrent streaming pipeline without the session (or
  /// its callers) changing shape.
  using Decode =
      std::function<core::DecodeResult(const signal::SampleBuffer&)>;

  ReaderSession(SessionConfig config, AirInterface air, Decode decode = {});

  const SessionConfig& config() const { return config_; }
  const SessionStats& stats() const { return stats_; }
  const HealthLedger& health() const { return ledger_; }
  BitRate current_max_rate() const;

  /// Direct access to the broadcast rate controller, so the fleet control
  /// plane (src/control) can drive step_up()/step_down() between epochs
  /// through the same hooks the session's own health ledger uses.
  protocol::RateController& controller() { return controller_; }
  const protocol::RateController& controller() const { return controller_; }

  /// Runs one full epoch cycle: capture, decode, account, and (optionally)
  /// issue a broadcast rate command for the *next* epoch.
  core::DecodeResult run_epoch();

 private:
  SessionConfig config_;
  AirInterface air_;
  Decode decode_;
  Carrier carrier_;
  protocol::RateController controller_;
  HealthLedger ledger_;
  SessionStats stats_;
};

}  // namespace lfbs::reader

#include "reader/session.h"

#include "common/check.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lfbs::reader {

ReaderSession::ReaderSession(SessionConfig config, AirInterface air,
                             Decode decode)
    : config_(config),
      air_(std::move(air)),
      decode_(std::move(decode)),
      carrier_(config.epoch.duration, config.epoch.gap),
      controller_(config.decoder.rate_plan, config.epoch.max_rate,
                  config.rate_controller),
      ledger_(config.health) {
  LFBS_CHECK_MSG(static_cast<bool>(air_), "an air interface is required");
  LFBS_CHECK_MSG(config_.decoder.rate_plan.is_valid(config_.epoch.max_rate),
                 "epoch max rate must be in the decoder's rate plan");
}

BitRate ReaderSession::current_max_rate() const {
  return controller_.current_max();
}

core::DecodeResult ReaderSession::run_epoch() {
  LFBS_OBS_SPAN(span, "epoch", "reader");
  static obs::Counter& epochs = obs::metrics().counter("reader.epochs");
  static obs::Counter& rate_commands =
      obs::metrics().counter("reader.rate_commands");
  static obs::Counter& step_downs =
      obs::metrics().counter("reader.health_step_downs");
  epochs.add();
  const BitRate epoch_rate = controller_.current_max();
  span.attr("max_rate", epoch_rate);
  const signal::SampleBuffer buffer =
      air_(controller_.current_max(), config_.epoch.duration);
  core::DecodeResult result =
      decode_ ? decode_(buffer) : core::LfDecoder(config_.decoder).decode(buffer);

  ++stats_.epochs;
  stats_.air_time += carrier_.cycle();
  stats_.streams += result.streams.size();
  const std::size_t attempted = result.frames_attempted();
  const std::size_t failed = result.frames_failed();
  stats_.frames_valid += attempted - failed;
  stats_.frames_failed += failed;
  stats_.fallback_recoveries += result.diagnostics.fallback_recoveries;

  if (config_.health_tracking) {
    const EpochHealth health = ledger_.observe(result);
    stats_.quarantines += health.newly_quarantined;
    if (!result.streams.empty()) {
      stats_.confidence_sum += health.mean_confidence;
      ++stats_.confidence_epochs;
    }
    // A chronically failing stream is stronger evidence than one epoch's
    // loss ratio: drop the broadcast rate immediately rather than letting
    // the controller re-discover it over several epochs.
    if (health.newly_quarantined > 0 && config_.rate_control &&
        controller_.step_down().has_value()) {
      ++stats_.rate_commands;
      ++stats_.health_step_downs;
      rate_commands.add();
      step_downs.add();
      if (obs::EventLog* log = obs::event_log()) {
        log->emit("rate",
                  {obs::Field::str("cause", "health_step_down"),
                   obs::Field::num("from_rate", epoch_rate),
                   obs::Field::num("to_rate", controller_.current_max())});
      }
    }
  }

  if (config_.rate_control) {
    if (controller_.on_epoch(attempted, failed).has_value()) {
      ++stats_.rate_commands;
      rate_commands.add();
      if (obs::EventLog* log = obs::event_log()) {
        log->emit("rate",
                  {obs::Field::str("cause", "loss_ratio"),
                   obs::Field::num("from_rate", epoch_rate),
                   obs::Field::num("to_rate", controller_.current_max())});
      }
    }
  }
  return result;
}

}  // namespace lfbs::reader

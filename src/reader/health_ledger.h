#pragma once

#include <cstddef>
#include <vector>

#include "core/lf_decoder.h"

namespace lfbs::reader {

/// Per-stream decode-health bookkeeping across epochs.
///
/// The decoder reports per-stream confidence (edge SNR, Viterbi margin,
/// cluster separation) but has no memory between epochs; the session needs
/// memory to tell a one-epoch fade from a chronically failing tag. The
/// ledger identifies streams across epochs by their channel edge vector
/// (the same polarity-tolerant identity the window stitcher uses — tags
/// move slowly relative to an epoch, so the vector is the stable
/// fingerprint) and tracks consecutive all-failed epochs per entry.
///
/// State machine per entry:
///   healthy --(quarantine_after consecutive failed epochs)--> quarantined
///   quarantined --(one clean epoch)--> probation
///   probation --(probation_epochs consecutive clean epochs)--> healthy
///   probation --(any failed epoch)--> quarantined
///
/// A "failed epoch" is one where the entry's stream decoded with zero
/// CRC-valid frames, or with a confidence score below min_confidence.
/// Quarantine itself is advisory: the ledger never drops data, it feeds
/// the session's rate controller (a newly quarantined tag triggers an
/// immediate step_down) and the operator-facing stats.
struct HealthLedgerConfig {
  /// Consecutive failed epochs before an entry is quarantined.
  std::size_t quarantine_after = 3;
  /// Consecutive clean epochs a quarantined entry must string together
  /// (after the first one that moves it to probation) to be healthy again.
  std::size_t probation_epochs = 2;
  /// Confidence score below which even a CRC-clean epoch counts as failed.
  double min_confidence = 0.15;
  /// Edge-vector matching tolerance, relative to the stored vector.
  double vector_tolerance = 0.35;
  /// Entries unseen for this many epochs are forgotten (tag left range).
  std::size_t forget_after = 8;
};

enum class HealthState { kHealthy, kQuarantined, kProbation };

const char* to_string(HealthState state);

struct HealthEntry {
  Complex edge_vector;  ///< freshest fingerprint
  HealthState state = HealthState::kHealthy;
  std::size_t consecutive_failures = 0;
  std::size_t probation_progress = 0;  ///< clean epochs while in probation
  std::size_t missing_epochs = 0;
  std::size_t epochs_seen = 0;
  std::size_t epochs_failed = 0;
  std::size_t quarantines = 0;  ///< times this entry entered quarantine
  double last_confidence = 0.0;
};

/// One epoch's digest, returned by observe().
struct EpochHealth {
  std::size_t tracked = 0;      ///< live ledger entries after the epoch
  std::size_t quarantined = 0;  ///< entries currently quarantined
  std::size_t probation = 0;
  std::size_t newly_quarantined = 0;  ///< transitions this epoch
  std::size_t recovered = 0;          ///< probation → healthy this epoch
  double mean_confidence = 0.0;       ///< over streams seen this epoch
};

class HealthLedger {
 public:
  explicit HealthLedger(HealthLedgerConfig config = {});

  const HealthLedgerConfig& config() const { return config_; }
  const std::vector<HealthEntry>& entries() const { return entries_; }

  /// Folds one epoch's decode result into the ledger.
  EpochHealth observe(const core::DecodeResult& result);

  std::size_t total_quarantines() const { return total_quarantines_; }

 private:
  HealthEntry* match(Complex edge_vector);

  HealthLedgerConfig config_;
  std::vector<HealthEntry> entries_;
  std::size_t total_quarantines_ = 0;
};

}  // namespace lfbs::reader

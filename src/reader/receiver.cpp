#include "reader/receiver.h"

#include <algorithm>
#include <span>

#include "common/check.h"

namespace lfbs::reader {

Receiver::Receiver(ReceiverConfig config, channel::ChannelModel channel)
    : config_(config), channel_(std::move(channel)) {
  LFBS_CHECK(config_.sample_rate > 0.0);
  LFBS_CHECK(config_.rise_time >= 0.0);
  LFBS_CHECK(config_.noise_power >= 0.0);
}

namespace {

/// Sparse composition for large deployments: instead of rendering a dense
/// per-tag level series (O(tags x samples)), accumulate each transition as
/// a run of per-sample increments over its ramp into one difference array,
/// then prefix-sum once — O(total transitions x ramp + samples).
signal::SampleBuffer compose_sparse(
    const channel::ChannelModel& channel,
    std::span<const signal::StateTimeline> timelines, SampleRate fs,
    std::size_t n, Seconds rise_time) {
  std::vector<Complex> diff(n + 1);
  for (std::size_t tag = 0; tag < timelines.size(); ++tag) {
    const Complex h = channel.coefficient(tag);
    double level = timelines[tag].initial_level();
    for (const signal::Transition& tr : timelines[tag].transitions()) {
      const double delta = tr.level - level;
      level = tr.level;
      const double half = rise_time / 2.0;
      auto lo = static_cast<SampleIndex>((tr.time - half) * fs);
      auto hi = static_cast<SampleIndex>((tr.time + half) * fs) + 1;
      lo = std::clamp<SampleIndex>(lo, 0, static_cast<SampleIndex>(n));
      hi = std::clamp<SampleIndex>(hi, 0, static_cast<SampleIndex>(n));
      if (hi <= lo) {
        // Instantaneous (sub-sample ramp) step.
        if (lo < static_cast<SampleIndex>(n)) {
          diff[static_cast<std::size_t>(lo)] += delta * h;
        }
        continue;
      }
      const Complex step = delta * h / static_cast<double>(hi - lo);
      for (SampleIndex i = lo; i < hi; ++i) {
        diff[static_cast<std::size_t>(i)] += step;
      }
    }
  }
  signal::SampleBuffer buffer(fs, n);
  Complex acc = channel.environment();
  for (std::size_t i = 0; i < n; ++i) {
    acc += diff[i];
    buffer[i] = acc;
  }
  return buffer;
}

}  // namespace

signal::SampleBuffer Receiver::receive_epoch(
    std::span<const signal::StateTimeline> timelines, Seconds duration,
    Rng& rng) const {
  LFBS_CHECK(duration > 0.0);
  LFBS_CHECK_MSG(timelines.size() == channel_.num_tags(),
                 "one timeline per registered tag required");
  const auto n = static_cast<std::size_t>(duration * config_.sample_rate);

  signal::SampleBuffer buffer(config_.sample_rate, std::size_t{0});
  if (timelines.size() * n > config_.sparse_threshold) {
    buffer = compose_sparse(channel_, timelines, config_.sample_rate, n,
                            config_.rise_time);
  } else {
    std::vector<std::vector<double>> levels;
    levels.reserve(timelines.size());
    for (const auto& timeline : timelines) {
      levels.push_back(
          timeline.render(config_.sample_rate, n, config_.rise_time));
    }
    buffer = channel_.compose(config_.sample_rate, levels);
  }
  channel::add_awgn(buffer, config_.noise_power, rng);
  return buffer;
}

}  // namespace lfbs::reader

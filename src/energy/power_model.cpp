#include "energy/power_model.h"

#include "common/check.h"

namespace lfbs::energy {

PowerModel::PowerModel(PowerModelConfig config) : config_(config) {
  LFBS_CHECK(config_.toggle_energy_j > 0.0);
}

PowerEstimate PowerModel::tag_power(Protocol protocol, BitRate bitrate,
                                    bool with_fifo) const {
  LFBS_CHECK(bitrate > 0.0);
  const TransistorBreakdown b = transistor_breakdown(protocol, with_fifo);

  PowerEstimate p;
  // Digital logic clocks at the bitrate, except the Gen 2 command decoder,
  // which runs its own oversampled clock whenever the reader might speak.
  double logic_hz = bitrate;
  double demod_w = 0.0;
  if (protocol == Protocol::kEpcGen2) {
    logic_hz = config_.gen2_decode_clock_hz;
    demod_w = config_.gen2_demod_w;
  } else if (protocol == Protocol::kBuzz) {
    demod_w = config_.buzz_sync_w;
  }
  p.digital_w = static_cast<double>(b.total()) * config_.activity *
                config_.toggle_energy_j * logic_hz;
  p.leakage_w = static_cast<double>(b.total()) * config_.static_power_w;
  p.analog_w = config_.modulator_drive_w + config_.clock_base_w +
               config_.clock_per_hz_w * bitrate + demod_w;
  p.total_w = p.digital_w + p.leakage_w + p.analog_w;
  return p;
}

double PowerModel::bits_per_microjoule(Protocol protocol, BitRate bitrate,
                                       BitRate per_node_goodput,
                                       bool with_fifo) const {
  const PowerEstimate p = tag_power(protocol, bitrate, with_fifo);
  // bits/s over µJ/s(=µW) gives bits/µJ.
  return per_node_goodput / (p.total_w * 1e6);
}

}  // namespace lfbs::energy

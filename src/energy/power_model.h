#pragma once

#include "common/units.h"
#include "energy/transistor_model.h"

namespace lfbs::energy {

/// Activity-based tag power model (the SPICE-simulation substitute behind
/// Fig 13).
///
/// Power is decomposed into
///   - digital switching: transistors × activity × clock × toggle energy,
///   - leakage: transistors × static power,
///   - analog fixed costs: modulator switch driver, low-drift clock source
///     (§3.6: e.g. the 1.2 µW PCF8523 RTC), and — for Gen 2 — the always-on
///     command demodulation front end.
///
/// The constants are calibrated so the three designs land at the operating
/// points the paper reports (LF-Backscatter ≈ 3200 bits/µJ at 100 kbps;
/// Buzz about 20× lower at 16 nodes; Gen 2 about two orders lower); the
/// *trends* across node count then follow from the protocols themselves.
/// EXPERIMENTS.md records the calibration.
struct PowerModelConfig {
  /// Effective energy per transistor toggle (gate + wiring), joules.
  double toggle_energy_j = 40e-15;
  /// Leakage per transistor, watts.
  double static_power_w = 1e-10;
  /// Switching activity factor of the digital logic.
  double activity = 0.15;
  /// Fixed analog cost of driving the backscatter switch, watts.
  double modulator_drive_w = 12e-6;
  /// Low-drift clock source (crystal + divider chain), watts. Scales mildly
  /// with the clocked bitrate.
  double clock_base_w = 15e-6;
  double clock_per_hz_w = 4e-11;
  /// Gen 2 command demodulator/decoder front end: envelope detector plus
  /// a ~1.92 MHz oversampled decode clock, always on between slots.
  double gen2_demod_w = 35e-6;
  double gen2_decode_clock_hz = 1.92e6;
  /// Buzz lock-step synchronization receiver: tags must track the reader's
  /// round boundaries to transmit bit-by-bit in unison (§2.2).
  double buzz_sync_w = 25e-6;
};

struct PowerEstimate {
  double digital_w = 0.0;
  double leakage_w = 0.0;
  double analog_w = 0.0;
  double total_w = 0.0;
};

class PowerModel {
 public:
  explicit PowerModel(PowerModelConfig config);
  PowerModel() : PowerModel(PowerModelConfig{}) {}

  const PowerModelConfig& config() const { return config_; }

  /// Tag power when transmitting at `bitrate` under the given protocol.
  /// `with_fifo` adds the 1 kB packet buffer where the protocol needs one.
  PowerEstimate tag_power(Protocol protocol, BitRate bitrate,
                          bool with_fifo) const;

  /// Energy efficiency in bits per microjoule: the tag's *delivered*
  /// per-node goodput divided by its power draw. This is the Fig 13 metric.
  double bits_per_microjoule(Protocol protocol, BitRate bitrate,
                             BitRate per_node_goodput, bool with_fifo) const;

 private:
  PowerModelConfig config_;
};

}  // namespace lfbs::energy

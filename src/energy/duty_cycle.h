#pragma once

#include "common/units.h"
#include "energy/power_model.h"

namespace lfbs::energy {

/// Sense-transmit duty-cycle analysis — the paper's motivating arithmetic
/// (§1): a blind LF-Backscatter tag wakes, samples, clocks the bits out,
/// and sleeps; because there is no buffering, no MAC and no receive slot,
/// its average power is the transmit power scaled by a tiny duty cycle
/// plus a sleep floor. This is how "a 1 Hz temperature sensor under 10 µW"
/// and "hundreds of kbps at tens of µW" both fall out of one model.
struct SenseTransmitLoop {
  /// Sensor sampling rate (readings per second).
  double sample_rate_hz = 1.0;
  /// Payload bits produced per reading (ADC resolution + framing share).
  double bits_per_sample = 16.0;
  /// Tag transmit bitrate while actively modulating.
  BitRate tx_rate = 10.0 * kKbps;
  /// Sleep-state power: leakage plus the (optional) low-drift RTC that
  /// wakes the loop — e.g. the 1.2 µW PCF8523 the paper cites (§3.6).
  double sleep_power_w = 1.5e-6;
  /// Sensing cost per reading, joules (ADC conversion + sensor bias).
  double sense_energy_j = 0.5e-6;

  /// Fraction of time the radio is actively modulating.
  double duty_cycle() const;
  /// Average power of the whole loop under the given tag power model.
  double average_power_w(const PowerModel& model, Protocol protocol) const;
  /// Effective delivered bitrate (bits per second of wall-clock).
  double effective_bitrate() const;
};

}  // namespace lfbs::energy

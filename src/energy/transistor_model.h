#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace lfbs::energy {

/// Tag-side hardware protocol variants compared in Table 3 / Fig 13.
enum class Protocol {
  kEpcGen2,        ///< full EPC Gen 2 RFID chip (Yeager et al. [23])
  kBuzz,           ///< Buzz tag logic (lock-step retransmission)
  kLfBackscatter,  ///< LF-Backscatter tag (modulator + clock divider only)
};

std::string protocol_name(Protocol p);

/// Transistor inventory of one tag design — the Table 3 study. The paper
/// synthesized Verilog for each protocol; here the per-component counts are
/// reconstructed so that the totals match the published numbers exactly
/// (22704 / 1792 / 176 without FIFO; a 1 kB FIFO adds 12288).
struct TransistorBreakdown {
  std::size_t control_logic = 0;   ///< protocol FSM, slot/round sequencing
  std::size_t demodulator = 0;     ///< reader-command decode path
  std::size_t crc = 0;             ///< CRC generation/check
  std::size_t rng = 0;             ///< slot-pick randomizer (Gen 2 only)
  std::size_t modulator = 0;       ///< backscatter switch driver
  std::size_t clocking = 0;        ///< dividers / bit timers
  std::size_t fifo = 0;            ///< packet buffer (0 or 1 kB)

  std::size_t total() const {
    return control_logic + demodulator + crc + rng + modulator + clocking +
           fifo;
  }
};

/// Transistors added by a 1 kB packet FIFO (Table 3: 34992-22704 = 12288).
constexpr std::size_t kFifo1KBTransistors = 12288;

/// Inventory for a protocol, with or without the 1 kB packet FIFO. LF-
/// Backscatter never needs the FIFO (samples are clocked straight out), so
/// `with_fifo` is ignored for it — exactly the point of Table 3.
TransistorBreakdown transistor_breakdown(Protocol protocol, bool with_fifo);

/// Convenience: the Table 3 headline number.
std::size_t transistor_count(Protocol protocol, bool with_fifo);

}  // namespace lfbs::energy

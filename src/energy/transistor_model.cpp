#include "energy/transistor_model.h"

#include "common/check.h"

namespace lfbs::energy {

std::string protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kEpcGen2:
      return "EPC Gen 2";
    case Protocol::kBuzz:
      return "Buzz";
    case Protocol::kLfBackscatter:
      return "LF-Backscatter";
  }
  return "unknown";
}

TransistorBreakdown transistor_breakdown(Protocol protocol, bool with_fifo) {
  TransistorBreakdown b;
  switch (protocol) {
    case Protocol::kEpcGen2:
      // Gen 2 needs the full stack: command demodulation/decode, the
      // inventory FSM (Query/ACK state machine), CRC-5 and CRC-16, the
      // RN16 randomizer, plus modulator and timers. Component split
      // reconstructed to the published total of 22704.
      b.control_logic = 9200;
      b.demodulator = 7400;
      b.crc = 2800;
      b.rng = 2200;
      b.modulator = 500;
      b.clocking = 604;
      break;
    case Protocol::kBuzz:
      // Buzz drops the Gen 2 command set but keeps lock-step round
      // sequencing and the PN combination generator. Total 1792.
      b.control_logic = 900;
      b.demodulator = 0;
      b.crc = 0;
      b.rng = 420;
      b.modulator = 280;
      b.clocking = 192;
      break;
    case Protocol::kLfBackscatter:
      // LF-Backscatter: a modulator switch driver and a bit-period divider.
      // No receive path, no MAC, no CRC engine, no buffers. Total 176.
      b.control_logic = 0;
      b.demodulator = 0;
      b.crc = 0;
      b.rng = 0;
      b.modulator = 96;
      b.clocking = 80;
      break;
  }
  if (with_fifo && protocol != Protocol::kLfBackscatter) {
    // Gen 2 buffers sensor samples between its slots; Buzz buffers samples
    // while bits are retransmitted in lock-step. LF-Backscatter clocks
    // samples straight out and never needs the FIFO (§5.3).
    b.fifo = kFifo1KBTransistors;
  }
  return b;
}

std::size_t transistor_count(Protocol protocol, bool with_fifo) {
  return transistor_breakdown(protocol, with_fifo).total();
}

}  // namespace lfbs::energy

#include "energy/duty_cycle.h"

#include <algorithm>

#include "common/check.h"

namespace lfbs::energy {

double SenseTransmitLoop::duty_cycle() const {
  LFBS_CHECK(tx_rate > 0.0);
  LFBS_CHECK(sample_rate_hz > 0.0);
  const double tx_seconds_per_sample = bits_per_sample / tx_rate;
  return std::min(1.0, tx_seconds_per_sample * sample_rate_hz);
}

double SenseTransmitLoop::average_power_w(const PowerModel& model,
                                          Protocol protocol) const {
  const double duty = duty_cycle();
  // Blind protocols (LF-Backscatter) need no buffer: samples are clocked
  // straight out, so the FIFO-free inventory applies. Slotted or lock-step
  // protocols must hold samples between their transmit opportunities.
  const bool fifo = protocol != Protocol::kLfBackscatter;
  const double active = model.tag_power(protocol, tx_rate, fifo).total_w;
  // Non-blind protocols cannot duty-cycle their receive path with the
  // sensor: a Gen 2 tag must keep listening for its slot assignments, and a
  // Buzz tag for round boundaries. This always-on listening is exactly the
  // "several tens of uW over a simpler design" of §1.
  double listen_w = 0.0;
  if (protocol == Protocol::kEpcGen2) {
    listen_w = model.config().gen2_demod_w;
  } else if (protocol == Protocol::kBuzz) {
    listen_w = model.config().buzz_sync_w;
  }
  return active * duty + (sleep_power_w + listen_w) * (1.0 - duty) +
         sense_energy_j * sample_rate_hz;
}

double SenseTransmitLoop::effective_bitrate() const {
  return std::min(bits_per_sample * sample_rate_hz,
                  static_cast<double>(tx_rate));
}

}  // namespace lfbs::energy

#include "sim/metrics.h"

#include <vector>

#include "common/check.h"

namespace lfbs::sim {

void ThroughputMeter::add(std::size_t bits_delivered, Seconds air_time) {
  LFBS_CHECK(air_time >= 0.0);
  bits_ += bits_delivered;
  time_ += air_time;
}

BitRate ThroughputMeter::goodput() const {
  return time_ > 0.0 ? static_cast<double>(bits_) / time_ : 0.0;
}

void BerMeter::add(std::size_t errors, std::size_t bits) {
  LFBS_CHECK(errors <= bits);
  errors_ += errors;
  bits_ += bits;
}

void BerMeter::compare(const std::vector<bool>& sent,
                       const std::vector<bool>& got) {
  const std::size_t n = std::min(sent.size(), got.size());
  std::size_t errors = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (sent[i] != got[i]) ++errors;
  }
  // Bits missing entirely from the decode count as errors.
  errors += sent.size() - n;
  add(errors, sent.size());
}

double BerMeter::ber() const {
  return bits_ > 0 ? static_cast<double>(errors_) / static_cast<double>(bits_)
                   : 0.0;
}

}  // namespace lfbs::sim

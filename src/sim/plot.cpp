#include "sim/plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/check.h"

namespace lfbs::sim {

namespace {
constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@'};
}

AsciiPlot::AsciiPlot(std::size_t width, std::size_t height)
    : width_(width), height_(height) {
  LFBS_CHECK(width_ >= 10 && height_ >= 4);
}

void AsciiPlot::add_series(const std::string& name, std::vector<double> xs,
                           std::vector<double> ys) {
  LFBS_CHECK(xs.size() == ys.size());
  LFBS_CHECK(!xs.empty());
  Series s;
  s.name = name;
  s.xs = std::move(xs);
  s.ys = std::move(ys);
  s.glyph = kGlyphs[series_.size() % sizeof kGlyphs];
  series_.push_back(std::move(s));
}

void AsciiPlot::print(std::ostream& os) const {
  if (series_.empty()) return;

  double xmin = std::numeric_limits<double>::infinity(), xmax = -xmin;
  double ymin = std::numeric_limits<double>::infinity(), ymax = -ymin;
  for (const Series& s : series_) {
    for (double x : s.xs) {
      xmin = std::min(xmin, x);
      xmax = std::max(xmax, x);
    }
    for (double y : s.ys) {
      if (log_y_ && y <= 0.0) continue;
      ymin = std::min(ymin, y);
      ymax = std::max(ymax, y);
    }
  }
  if (!std::isfinite(ymin)) {
    ymin = 0.0;
    ymax = 1.0;
  }
  if (log_y_) {
    ymin = std::log10(ymin);
    ymax = std::log10(ymax);
    ymin -= 0.5;  // floor for clamped zero values
  }
  if (xmax - xmin < 1e-12) xmax = xmin + 1.0;
  if (ymax - ymin < 1e-12) ymax = ymin + 1.0;

  std::vector<std::string> canvas(height_, std::string(width_, ' '));
  for (const Series& s : series_) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      double y = s.ys[i];
      if (log_y_) y = y > 0.0 ? std::log10(y) : ymin;
      const auto col = static_cast<std::size_t>(
          std::lround((s.xs[i] - xmin) / (xmax - xmin) *
                      static_cast<double>(width_ - 1)));
      const auto row = static_cast<std::size_t>(
          std::lround((1.0 - (y - ymin) / (ymax - ymin)) *
                      static_cast<double>(height_ - 1)));
      canvas[std::min(row, height_ - 1)][std::min(col, width_ - 1)] = s.glyph;
    }
  }

  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3g", log_y_ ? std::pow(10.0, ymax) : ymax);
  os << std::string(10 - std::min<std::size_t>(9, std::string(buf).size()),
                    ' ')
     << buf << " +" << std::string(width_, '-') << "+\n";
  for (const std::string& row : canvas) {
    os << std::string(11, ' ') << '|' << row << "|\n";
  }
  std::snprintf(buf, sizeof buf, "%.3g", log_y_ ? std::pow(10.0, ymin) : ymin);
  os << std::string(10 - std::min<std::size_t>(9, std::string(buf).size()),
                    ' ')
     << buf << " +" << std::string(width_, '-') << "+\n";
  std::snprintf(buf, sizeof buf, "%.4g", xmin);
  std::string footer = std::string(12, ' ') + buf;
  std::snprintf(buf, sizeof buf, "%.4g", xmax);
  const std::string right(buf);
  if (footer.size() + right.size() + 1 < 12 + width_) {
    footer += std::string(12 + width_ - footer.size() - right.size(), ' ');
    footer += right;
  }
  os << footer << "\n  legend: ";
  for (const Series& s : series_) {
    os << s.glyph << "=" << s.name << "  ";
  }
  os << "\n";
}

}  // namespace lfbs::sim

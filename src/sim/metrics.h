#pragma once

#include <cstddef>
#include <vector>

#include "common/units.h"

namespace lfbs::sim {

/// Accumulates goodput over a sequence of epochs/rounds.
class ThroughputMeter {
 public:
  void add(std::size_t bits_delivered, Seconds air_time);

  std::size_t bits() const { return bits_; }
  Seconds time() const { return time_; }
  /// Delivered bits per second of air time; 0 before any time accrues.
  BitRate goodput() const;

 private:
  std::size_t bits_ = 0;
  Seconds time_ = 0.0;
};

/// Accumulates bit errors for BER curves (Fig 14).
class BerMeter {
 public:
  void add(std::size_t errors, std::size_t bits);
  /// Convenience: compare two bit strings of equal length.
  void compare(const std::vector<bool>& sent, const std::vector<bool>& got);

  std::size_t errors() const { return errors_; }
  std::size_t bits() const { return bits_; }
  double ber() const;

 private:
  std::size_t errors_ = 0;
  std::size_t bits_ = 0;
};

}  // namespace lfbs::sim

#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace lfbs::sim {

/// Minimal aligned ASCII table for the bench binaries: every experiment
/// prints the same rows/series its paper table or figure reports.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os = std::cout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Number formatting helpers for bench output.
std::string fmt(double value, int precision = 2);
std::string fmt_ratio(double value);    ///< "7.9x"
std::string fmt_percent(double value);  ///< 0.805 -> "80.5%"

/// Prints a figure/table banner: id, paper caption, and our setup note.
void print_banner(const std::string& id, const std::string& caption,
                  const std::string& setup, std::ostream& os = std::cout);

}  // namespace lfbs::sim

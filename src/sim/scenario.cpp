#include "sim/scenario.h"

#include <algorithm>
#include <set>

#include "common/check.h"

namespace lfbs::sim {

namespace {

reader::Receiver build_receiver(const ScenarioConfig& config,
                                std::vector<double>* energies, Rng& rng) {
  channel::ChannelModel channel;
  for (std::size_t i = 0; i < config.num_tags; ++i) {
    channel::TagPlacement placement;
    placement.distance_m =
        std::max(0.3, rng.gaussian(config.mean_distance_m,
                                   config.distance_spread_m / 2.0));
    placement.orientation_rad = rng.uniform(-0.6, 0.6);
    placement.reflection_phase = rng.uniform(0.0, 6.283185307179586);
    channel.add_tag(placement, rng);
    // Comparator energy tracks the link budget of the placement.
    energies->push_back(
        rng.uniform(1.0 - config.energy_spread, 1.0 + config.energy_spread));
  }
  // Scale amplitudes into a convenient range against the noise floor.
  for (std::size_t i = 0; i < config.num_tags; ++i) {
    channel.set_coefficient(
        i, channel.coefficient(i) * config.amplitude_scale *
               config.mean_distance_m * config.mean_distance_m);
  }
  reader::ReceiverConfig rc;
  rc.sample_rate = config.sample_rate;
  rc.noise_power = config.noise_power;
  return reader::Receiver(rc, std::move(channel));
}

}  // namespace

Scenario::Scenario(ScenarioConfig config, Rng& rng)
    : config_(std::move(config)),
      receiver_(reader::ReceiverConfig{}, channel::ChannelModel{}) {
  LFBS_CHECK(config_.num_tags > 0);
  LFBS_CHECK(!config_.rates.empty());
  std::vector<double> energies;
  receiver_ = build_receiver(config_, &energies, rng);
  for (std::size_t i = 0; i < config_.num_tags; ++i) {
    tag::TagConfig tc;
    tc.rate = rate_of(i);
    tc.clock.drift_ppm = config_.clock_drift_ppm;
    tc.incoming_energy = energies[i];
    tags_.emplace_back(tc, rng);
  }
}

BitRate Scenario::rate_of(std::size_t tag) const {
  LFBS_CHECK(tag < config_.num_tags);
  return config_.rates[std::min(tag, config_.rates.size() - 1)];
}

Complex Scenario::coefficient(std::size_t tag) const {
  return receiver_.channel().coefficient(tag);
}

void Scenario::set_tag_rate(std::size_t tag, BitRate rate) {
  LFBS_CHECK(tag < tags_.size());
  LFBS_CHECK(rate > 0.0);
  // Expand the "last entry repeats" shorthand so one tag's assignment
  // cannot alias the tags after it.
  if (config_.rates.size() < config_.num_tags) {
    config_.rates.resize(config_.num_tags, config_.rates.back());
  }
  config_.rates[tag] = rate;
  tags_[tag].set_rate(rate);
}

core::DecoderConfig Scenario::default_decoder() const {
  core::DecoderConfig dc;
  dc.frame = config_.frame;
  dc.rate_plan = protocol::RatePlan::paper_rates();
  for (BitRate r : config_.rates) {
    if (!dc.rate_plan.is_valid(r)) dc.rate_plan.rates.push_back(r);
  }
  dc.max_rate = dc.rate_plan.max();
  return dc;
}

EpochOutcome Scenario::run_epoch(const core::DecoderConfig& decoder_config,
                                 Rng& rng, std::size_t frames_per_tag) {
  std::vector<std::vector<std::vector<bool>>> payloads(tags_.size());
  for (auto& per_tag : payloads) {
    for (std::size_t f = 0; f < frames_per_tag; ++f) {
      per_tag.push_back(rng.bits(config_.frame.payload_bits));
    }
  }
  return run_epoch_with_payloads(decoder_config, payloads, rng);
}

signal::SampleBuffer Scenario::capture_epoch(
    const std::vector<std::vector<std::vector<bool>>>& payloads_per_tag,
    Rng& rng, BitRate max_rate) {
  LFBS_CHECK(payloads_per_tag.size() == tags_.size());
  std::vector<signal::StateTimeline> timelines;
  timelines.reserve(tags_.size());
  for (std::size_t i = 0; i < tags_.size(); ++i) {
    if (max_rate > 0.0) tags_[i].apply_rate_command(max_rate);
    std::vector<std::vector<bool>> frames;
    frames.reserve(payloads_per_tag[i].size());
    for (const auto& payload : payloads_per_tag[i]) {
      LFBS_CHECK(payload.size() == config_.frame.payload_bits);
      frames.push_back(protocol::build_frame(payload, config_.frame));
    }
    const tag::EpochTransmission tx =
        tags_[i].transmit_epoch(frames, config_.epoch_duration, rng);
    timelines.push_back(tx.timeline);
  }
  return receiver_.receive_epoch(timelines, config_.epoch_duration, rng);
}

EpochOutcome Scenario::run_epoch_with_payloads(
    const core::DecoderConfig& decoder_config,
    const std::vector<std::vector<std::vector<bool>>>& payloads_per_tag,
    Rng& rng) {
  LFBS_CHECK(payloads_per_tag.size() == tags_.size());
  EpochOutcome outcome;
  outcome.duration = config_.epoch_duration;
  for (std::size_t i = 0; i < tags_.size(); ++i) {
    for (const auto& payload : payloads_per_tag[i]) {
      outcome.sent_payloads.push_back(payload);
      outcome.bits_sent += payload.size();
    }
  }

  const signal::SampleBuffer buffer = capture_epoch(payloads_per_tag, rng);
  const core::LfDecoder decoder(decoder_config);
  outcome.decode = decoder.decode(buffer);

  // Match recovered payloads against what was sent. Multiset semantics:
  // two tags sending the same payload need two recoveries.
  std::multiset<std::vector<bool>> recovered;
  for (const auto& payload : outcome.decode.valid_payloads()) {
    recovered.insert(payload);
  }
  for (const auto& sent : outcome.sent_payloads) {
    const auto it = recovered.find(sent);
    if (it != recovered.end()) {
      recovered.erase(it);
      ++outcome.payloads_recovered;
      outcome.bits_recovered += sent.size();
    }
  }
  return outcome;
}

}  // namespace lfbs::sim

#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace lfbs::sim {

/// Minimal ASCII line/series plot so the figure benches can show *shapes*
/// (rise, crash, waterfall) directly in the terminal, next to the tables.
class AsciiPlot {
 public:
  /// `height` rows by `width` columns of plotting area.
  AsciiPlot(std::size_t width, std::size_t height);

  /// Adds a named series; x values must be ascending. Each series is drawn
  /// with its own glyph ('*', 'o', '+', 'x', ...).
  void add_series(const std::string& name, std::vector<double> xs,
                  std::vector<double> ys);

  /// Use a log10 y-axis (for BER-style plots). Non-positive values clamp to
  /// the axis floor.
  void set_log_y(bool log_y) { log_y_ = log_y; }

  void print(std::ostream& os = std::cout) const;

 private:
  struct Series {
    std::string name;
    std::vector<double> xs, ys;
    char glyph;
  };
  std::size_t width_;
  std::size_t height_;
  bool log_y_ = false;
  std::vector<Series> series_;
};

}  // namespace lfbs::sim

#pragma once

#include <vector>

#include "channel/channel_model.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/lf_decoder.h"
#include "protocol/frame.h"
#include "reader/receiver.h"
#include "tag/tag.h"

namespace lfbs::sim {

/// A deployment: tags placed around a reader, with channel coefficients and
/// comparator energies derived from the placements. This is the shared
/// substrate of the evaluation benches (paper setup: sixteen tags roughly
/// two metres from the reader, §5.1).
struct ScenarioConfig {
  std::size_t num_tags = 16;
  /// Per-tag bitrates; if shorter than num_tags the last entry repeats.
  std::vector<BitRate> rates = {100.0 * kKbps};
  SampleRate sample_rate = 25.0 * kMsps;
  double noise_power = 1e-5;
  Seconds epoch_duration = 1.5e-3;
  protocol::FrameConfig frame{};
  /// Placement spread around the nominal 2 m reader distance.
  double mean_distance_m = 2.0;
  double distance_spread_m = 0.5;
  /// Relative incoming-energy spread across placements (drives the
  /// comparator start-time randomness of Fig 4).
  double energy_spread = 0.3;
  /// Tag crystal tolerance in ppm. The default matches the paper's 150 ppm
  /// crystal; long-epoch experiments (very slow tags) use batch-matched
  /// parts so that faster tags do not drift across slower tags' lattices
  /// within one epoch.
  double clock_drift_ppm = 150.0;
  /// Scale applied to all channel amplitudes so the nominal 2 m tag has a
  /// conveniently-sized coefficient against the default noise power.
  double amplitude_scale = 0.5;
};

/// Outcome of one epoch of concurrent laissez-faire transfer.
struct EpochOutcome {
  core::DecodeResult decode;
  std::vector<std::vector<bool>> sent_payloads;  ///< all frames, all tags
  std::size_t payloads_recovered = 0;  ///< sent payloads found CRC-clean
  std::size_t bits_sent = 0;
  std::size_t bits_recovered = 0;      ///< payload bits of recovered frames
  Seconds duration = 0.0;
};

class Scenario {
 public:
  Scenario(ScenarioConfig config, Rng& rng);

  const ScenarioConfig& config() const { return config_; }
  std::size_t num_tags() const { return tags_.size(); }
  BitRate rate_of(std::size_t tag) const;
  Complex coefficient(std::size_t tag) const;

  /// Directly sets tag i's rate (fleet control-plane experiments: the
  /// scheduler assigns per-tag rates rather than one broadcast maximum).
  /// The rate must come from the decoder's rate plan.
  void set_tag_rate(std::size_t tag, BitRate rate);

  /// Runs one epoch where every tag streams `frames_per_tag` random
  /// payload frames (or as many as fit the epoch).
  EpochOutcome run_epoch(const core::DecoderConfig& decoder_config, Rng& rng,
                         std::size_t frames_per_tag = 1);

  /// Runs one epoch where tag i transmits the given payloads.
  EpochOutcome run_epoch_with_payloads(
      const core::DecoderConfig& decoder_config,
      const std::vector<std::vector<std::vector<bool>>>& payloads_per_tag,
      Rng& rng);

  /// Puts the given payloads on the air and returns the raw epoch capture
  /// without decoding — the hook for driving a reader::ReaderSession (or
  /// recording with signal::save_iq). Tags whose rate exceeds `max_rate`
  /// and that listen to the reader are slowed to it (§3.6 rate commands).
  signal::SampleBuffer capture_epoch(
      const std::vector<std::vector<std::vector<bool>>>& payloads_per_tag,
      Rng& rng, BitRate max_rate = 0.0);

  /// Default decoder configuration matching this scenario (frame layout,
  /// rate plan including every rate in use).
  core::DecoderConfig default_decoder() const;

 private:
  ScenarioConfig config_;
  std::vector<tag::Tag> tags_;
  reader::Receiver receiver_;
};

}  // namespace lfbs::sim

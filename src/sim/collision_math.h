#pragma once

#include <cstddef>

#include "common/rng.h"
#include "common/units.h"

namespace lfbs::sim {

/// Closed-form and Monte-Carlo collision analysis of §2.4.
///
/// Model: n tags pick start offsets uniformly in one bit period of
/// `samples_per_bit` reader samples; an edge occupies `edge_width` samples;
/// at any boundary a tag toggles with probability `toggle_probability`
/// (random payloads toggle half the time). Two edges collide when their
/// offsets land within one edge width.
struct CollisionModel {
  std::size_t num_tags = 16;
  double samples_per_bit = 250.0;  ///< 25 Msps / 100 kbps
  double edge_width = 3.0;         ///< §2.4: "roughly 3 samples wide"
  double toggle_probability = 0.5;

  /// How many edges fit one bit period "stacked one after the other" —
  /// the paper's 250/3 ≈ 83 headline.
  double edge_capacity() const { return samples_per_bit / edge_width; }

  /// Closed form: probability that a given tag's edge overlaps the edge of
  /// exactly k-1 other toggling tags (binomial over the n-1 others with
  /// per-pair probability toggle_probability · edge_width / samples_per_bit).
  double collision_probability(std::size_t k) const;

  /// Monte-Carlo estimate of the same quantity over `trials` epochs.
  double monte_carlo(std::size_t k, std::size_t trials, Rng& rng) const;
};

}  // namespace lfbs::sim

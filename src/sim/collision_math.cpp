#include "sim/collision_math.h"

#include <cmath>
#include <vector>

#include "common/check.h"

namespace lfbs::sim {

namespace {

double binomial(std::size_t n, std::size_t k) {
  if (k > n) return 0.0;
  double result = 1.0;
  for (std::size_t i = 0; i < k; ++i) {
    result *= static_cast<double>(n - i) / static_cast<double>(i + 1);
  }
  return result;
}

}  // namespace

double CollisionModel::collision_probability(std::size_t k) const {
  LFBS_CHECK(k >= 1 && k <= num_tags);
  // A pair collides when offsets land within ±edge_width and the other
  // tag actually toggles at the shared boundary.
  const double p = toggle_probability * 2.0 * edge_width / samples_per_bit;
  const auto others = num_tags - 1;
  return binomial(others, k - 1) * std::pow(p, static_cast<double>(k - 1)) *
         std::pow(1.0 - p, static_cast<double>(others - (k - 1)));
}

double CollisionModel::monte_carlo(std::size_t k, std::size_t trials,
                                   Rng& rng) const {
  LFBS_CHECK(k >= 1 && k <= num_tags);
  LFBS_CHECK(trials > 0);
  std::size_t hits = 0;
  std::vector<double> offsets(num_tags);
  for (std::size_t t = 0; t < trials; ++t) {
    for (double& o : offsets) o = rng.uniform(0.0, samples_per_bit);
    // Tag 0's edge; count the toggling others whose offset lands within one
    // edge width (circularly).
    std::size_t overlapping = 0;
    for (std::size_t i = 1; i < num_tags; ++i) {
      if (!rng.bernoulli(toggle_probability)) continue;
      double d = std::fmod(std::abs(offsets[i] - offsets[0]), samples_per_bit);
      d = std::min(d, samples_per_bit - d);
      if (d < edge_width) ++overlapping;
    }
    if (overlapping == k - 1) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(trials);
}

}  // namespace lfbs::sim

#include "sim/table.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace lfbs::sim {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  LFBS_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  LFBS_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string fmt_ratio(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1fx", value);
  return buf;
}

std::string fmt_percent(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f%%", value * 100.0);
  return buf;
}

void print_banner(const std::string& id, const std::string& caption,
                  const std::string& setup, std::ostream& os) {
  os << "\n=== " << id << " — " << caption << " ===\n";
  if (!setup.empty()) os << "setup: " << setup << "\n";
  os << '\n';
}

}  // namespace lfbs::sim

#include "obs/trace.h"

#include <atomic>
#include <cstdio>

#include "obs/events.h"

namespace lfbs::obs {

Tracer::Tracer(TracerConfig config) : config_(config) {
  if (config_.ring_capacity == 0) config_.ring_capacity = 1;
}

void Tracer::set_sink(JsonlWriter* sink) {
  std::lock_guard lock(mutex_);
  sink_ = sink;
}

void Tracer::record(SpanRecord record) {
  std::lock_guard lock(mutex_);
  ++recorded_;
  if (ring_.size() >= config_.ring_capacity) {
    if (sink_ != nullptr) {
      flush_locked();
    } else {
      ring_.pop_front();
      ++dropped_;
    }
  }
  ring_.push_back(std::move(record));
}

std::size_t Tracer::recorded() const {
  std::lock_guard lock(mutex_);
  return recorded_;
}

std::size_t Tracer::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

std::vector<SpanRecord> Tracer::drain() {
  std::lock_guard lock(mutex_);
  std::vector<SpanRecord> out(ring_.begin(), ring_.end());
  ring_.clear();
  return out;
}

void Tracer::flush() {
  std::lock_guard lock(mutex_);
  flush_locked();
}

void Tracer::flush_locked() {
  if (sink_ == nullptr) return;
  for (const SpanRecord& record : ring_) {
    sink_->write_line(to_jsonl(record));
  }
  ring_.clear();
}

std::string Tracer::to_jsonl(const SpanRecord& record) {
  std::string line = "{\"type\":\"span\",\"name\":\"";
  line += json_escape(record.name);
  line += "\",\"cat\":\"";
  line += json_escape(record.category);
  line += "\",\"ts_us\":" + std::to_string(record.start_us);
  line += ",\"dur_us\":" + std::to_string(record.dur_us);
  line += ",\"tid\":" + std::to_string(record.tid);
  line += ",\"depth\":" + std::to_string(record.depth);
  if (!record.attrs.empty()) {
    line += ",\"attrs\":{";
    bool first = true;
    for (const auto& [key, value] : record.attrs) {
      if (!first) line += ",";
      first = false;
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.9g", value);
      line += "\"";
      line += json_escape(key);
      line += "\":";
      line += buf;
    }
    line += "}";
  }
  line += "}";
  return line;
}

void Tracer::export_chrome(std::ostream& os) const {
  std::lock_guard lock(mutex_);
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& record : ring_) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << json_escape(record.name) << "\",\"cat\":\""
       << json_escape(record.category) << "\",\"ph\":\"X\",\"ts\":"
       << record.start_us << ",\"dur\":" << record.dur_us
       << ",\"pid\":1,\"tid\":" << record.tid;
    if (!record.attrs.empty()) {
      os << ",\"args\":{";
      bool afirst = true;
      for (const auto& [key, value] : record.attrs) {
        if (!afirst) os << ",";
        afirst = false;
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.9g", value);
        os << "\"" << json_escape(key) << "\":" << buf;
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n]}\n";
}

namespace {
std::atomic<Tracer*> g_tracer{nullptr};
thread_local std::int32_t t_span_depth = 0;
}  // namespace

Tracer* tracer() { return g_tracer.load(std::memory_order_acquire); }

void set_tracer(Tracer* t) { g_tracer.store(t, std::memory_order_release); }

std::uint32_t this_thread_trace_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Span::Span(Tracer* tracer, const char* name, const char* category)
    : tracer_(tracer) {
  if (tracer_ == nullptr) return;
  record_.name = name;
  record_.category = category;
  record_.tid = this_thread_trace_id();
  record_.depth = t_span_depth++;
  record_.start_us = now_us();
}

Span::~Span() {
  if (tracer_ == nullptr) return;
  --t_span_depth;
  record_.dur_us = now_us() - record_.start_us;
  tracer_->record(std::move(record_));
}

void Span::attr(const char* key, double value) {
  if (tracer_ == nullptr) return;
  record_.attrs.emplace_back(key, value);
}

}  // namespace lfbs::obs

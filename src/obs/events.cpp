#include "obs/events.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>

#include "obs/metrics.h"

namespace lfbs::obs {

std::int64_t now_us() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonlWriter::JsonlWriter(const std::string& path) {
  if (path == "-") {
    out_ = &std::cout;
  } else {
    owned_.open(path);
    if (owned_.is_open()) out_ = &owned_;
  }
}

JsonlWriter::JsonlWriter(std::ostream& os) : out_(&os) {}

void JsonlWriter::write_line(std::string_view line) {
  std::lock_guard lock(mutex_);
  if (out_ == nullptr) return;
  out_->write(line.data(), static_cast<std::streamsize>(line.size()));
  out_->put('\n');
  ++lines_;
}

std::size_t JsonlWriter::lines() const {
  std::lock_guard lock(mutex_);
  return lines_;
}

void JsonlWriter::flush() {
  std::lock_guard lock(mutex_);
  if (out_ != nullptr) out_->flush();
}

Field Field::num(std::string_view key, double value) {
  Field f;
  f.key = key;
  f.kind = Kind::kNumber;
  f.number = value;
  return f;
}

Field Field::integer(std::string_view key, std::int64_t value) {
  Field f;
  f.key = key;
  f.kind = Kind::kInteger;
  f.integer_value = value;
  return f;
}

Field Field::str(std::string_view key, std::string_view value) {
  Field f;
  f.key = key;
  f.kind = Kind::kString;
  f.string_value = value;
  return f;
}

Field Field::flag(std::string_view key, bool value) {
  Field f;
  f.key = key;
  f.kind = Kind::kBool;
  f.flag_value = value;
  return f;
}

namespace {

void append_number(std::string& line, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  line += buf;
}

void append_field(std::string& line, const Field& f) {
  line += "\"";
  line += json_escape(f.key);
  line += "\":";
  switch (f.kind) {
    case Field::Kind::kNumber: append_number(line, f.number); break;
    case Field::Kind::kInteger:
      line += std::to_string(f.integer_value);
      break;
    case Field::Kind::kString:
      line += "\"";
      line += json_escape(f.string_value);
      line += "\"";
      break;
    case Field::Kind::kBool: line += f.flag_value ? "true" : "false"; break;
  }
}

}  // namespace

void EventLog::emit(std::string_view type,
                    std::initializer_list<Field> fields) {
  emit(type, std::span<const Field>(fields.begin(), fields.size()));
}

void EventLog::emit(std::string_view type, std::span<const Field> fields) {
  std::string line = "{\"type\":\"";
  line += json_escape(type);
  line += "\",\"ts_us\":";
  line += std::to_string(now_us());
  for (const Field& f : fields) {
    line += ",";
    append_field(line, f);
  }
  line += "}";
  out_.write_line(line);
}

void EventLog::snapshot(const MetricsSnapshot& snap) {
  std::string line = "{\"type\":\"snapshot\",\"ts_us\":";
  line += std::to_string(now_us());
  line += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) line += ",";
    first = false;
    line += "\"";
    line += json_escape(name);
    line += "\":";
    line += std::to_string(value);
  }
  line += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) line += ",";
    first = false;
    line += "\"" + json_escape(name) + "\":";
    append_number(line, value);
  }
  line += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) line += ",";
    first = false;
    line += "\"" + json_escape(name) + "\":{\"count\":" +
            std::to_string(h.count()) + ",\"p50\":";
    append_number(line, h.percentile(0.50));
    line += ",\"p99\":";
    append_number(line, h.percentile(0.99));
    line += ",\"max\":";
    append_number(line, h.max());
    line += "}";
  }
  line += "}}";
  out_.write_line(line);
}

namespace {
std::atomic<EventLog*> g_event_log{nullptr};
}  // namespace

EventLog* event_log() {
  return g_event_log.load(std::memory_order_acquire);
}

void set_event_log(EventLog* log) {
  g_event_log.store(log, std::memory_order_release);
}

}  // namespace lfbs::obs

#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace lfbs::obs {

class JsonlWriter;

/// One completed span: a named stage with start time, duration, the thread
/// that ran it, and its nesting depth on that thread. Attributes carry
/// small numeric facts (window index, edge count) for the report tool.
struct SpanRecord {
  std::string name;      ///< stage, e.g. "window", "detect", "viterbi"
  std::string category;  ///< owning layer, e.g. "runtime", "dsp"
  std::uint32_t tid = 0;
  std::int64_t start_us = 0;  ///< obs::now_us() at span open
  std::int64_t dur_us = 0;
  std::int32_t depth = 0;  ///< nesting depth on its thread (0 = top level)
  std::vector<std::pair<std::string, double>> attrs;
};

struct TracerConfig {
  /// Ring capacity in spans. With a sink attached the ring flushes itself
  /// when full (complete record, bounded memory); without one the oldest
  /// spans are dropped and counted.
  std::size_t ring_capacity = 1 << 15;
};

/// Bounded recorder of nested spans. Spans are created with the Span RAII
/// type below; record() is called once per span at close (one mutex
/// acquisition per span — spans are per-window/per-stage, never
/// per-sample, so this is far off the hot path).
class Tracer {
 public:
  explicit Tracer(TracerConfig config = {});

  const TracerConfig& config() const { return config_; }

  /// Attaches a JSONL sink: the ring auto-flushes into it when full, and
  /// flush() drains the remainder. Pass nullptr to detach.
  void set_sink(JsonlWriter* sink);

  void record(SpanRecord record);

  std::size_t recorded() const;  ///< spans accepted (flushed + ringed)
  std::size_t dropped() const;   ///< spans lost to a full, sinkless ring

  /// Removes and returns everything currently in the ring.
  std::vector<SpanRecord> drain();

  /// Writes any ringed spans to the sink as JSONL span lines.
  void flush();

  /// Chrome trace-event export (load in chrome://tracing or Perfetto):
  /// complete events with ts/dur in µs. Exports the ring's current
  /// contents — attach a sink instead when the full run must survive.
  void export_chrome(std::ostream& os) const;

  /// One span as a JSONL line ({"type":"span",...}); shared by flush()
  /// and the report-tool tests.
  static std::string to_jsonl(const SpanRecord& record);

 private:
  void flush_locked();

  TracerConfig config_;
  mutable std::mutex mutex_;
  std::deque<SpanRecord> ring_;
  JsonlWriter* sink_ = nullptr;
  std::size_t recorded_ = 0;
  std::size_t dropped_ = 0;
};

/// The process-global span sink. Null (the default) means tracing is off:
/// a Span construction is then a single pointer load and branch, and the
/// instrumented hot paths do no other work — the tentpole's zero-overhead
/// contract.
Tracer* tracer();
void set_tracer(Tracer* t);

/// A small integer id for the calling thread (stable per thread, assigned
/// on first use) — what SpanRecord::tid carries.
std::uint32_t this_thread_trace_id();

/// RAII span: opens on construction, records on destruction. Inert when
/// constructed against a null tracer. Non-copyable, stack-only.
class Span {
 public:
  Span(Tracer* tracer, const char* name, const char* category);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a numeric attribute (no-op when inert).
  void attr(const char* key, double value);

  bool active() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_ = nullptr;
  SpanRecord record_;
};

/// Convenience: a span against the global tracer.
#define LFBS_OBS_CONCAT_INNER(a, b) a##b
#define LFBS_OBS_CONCAT(a, b) LFBS_OBS_CONCAT_INNER(a, b)
#define LFBS_OBS_SPAN(var, name, category) \
  ::lfbs::obs::Span var(::lfbs::obs::tracer(), name, category)

}  // namespace lfbs::obs

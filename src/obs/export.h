#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace lfbs::obs {

/// Prometheus text exposition (version 0.0.4) of a metrics snapshot.
/// Metric names are sanitized (dots → underscores) and prefixed `lfbs_`;
/// histograms expose the usual cumulative `_bucket{le=...}` series plus
/// `_sum` and `_count`.
void write_prometheus(const MetricsSnapshot& snapshot, std::ostream& os);

/// Writes the exposition to `path` ("-" = stdout), replacing the file —
/// the periodic emitter rewrites it each interval, like a scrape target.
/// Returns false when the file cannot be opened.
bool write_prometheus_file(const MetricsSnapshot& snapshot,
                           const std::string& path);

/// Calls `tick` every `interval_seconds` on a background thread until
/// stopped (and once more at stop, so a run shorter than the interval
/// still emits a final snapshot). The callback does whatever the embedder
/// wires up — rewrite a Prometheus file, append a snapshot event, print a
/// stats line.
class SnapshotEmitter {
 public:
  SnapshotEmitter(double interval_seconds, std::function<void()> tick);
  ~SnapshotEmitter();

  SnapshotEmitter(const SnapshotEmitter&) = delete;
  SnapshotEmitter& operator=(const SnapshotEmitter&) = delete;

  void stop();

  std::size_t ticks() const;

 private:
  double interval_seconds_;
  std::function<void()> tick_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::size_t ticks_ = 0;
  std::thread thread_;
};

}  // namespace lfbs::obs

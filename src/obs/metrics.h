#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace lfbs::obs {

/// Number of per-thread storage shards a metric is split across. Threads
/// are assigned shards round-robin at first use; hot-path increments touch
/// only their own shard's cache line, so the worker pool never contends on
/// a shared counter. Sixteen shards cover any worker count the runtime
/// realistically runs (excess threads share shards, still uncontended in
/// practice).
inline constexpr std::size_t kMetricShards = 16;

/// The calling thread's shard index, assigned round-robin on first use.
std::size_t this_thread_shard();

/// Fixed-bucket histogram *value type*: what a snapshot hands back, what
/// RuntimeStats aggregates latencies into, and the shared home of the
/// percentile math that used to be hand-rolled in several places.
///
/// Buckets are defined by their upper bounds (ascending); values above the
/// last bound land in an overflow bucket. percentile() interpolates
/// linearly inside the winning bucket, which is exact enough for latency
/// reporting; the static percentile() overload computes the exact
/// sorted-sample percentile for callers that kept the raw samples.
class Histogram {
 public:
  /// Default bounds: log-spaced from 1 µs to ~16 s when recording
  /// milliseconds — wide enough for per-window decode latencies at any
  /// capture rate.
  static std::vector<double> default_latency_bounds_ms();

  explicit Histogram(std::vector<double> upper_bounds =
                         default_latency_bounds_ms());

  void record(double value);
  void merge(const Histogram& other);  ///< bounds must match

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Bucket-interpolated percentile of the recorded distribution, p in
  /// [0, 1]. Empty histogram → 0. The result is clamped to [min, max] so a
  /// single-sample histogram reports that sample at every percentile.
  double percentile(double p) const;

  /// Exact percentile of raw samples with linear interpolation between
  /// order statistics (rank p·(n−1)): empty → 0, single sample → that
  /// sample. This is the one shared implementation of the p50/p90/p99 math
  /// used by RuntimeStats, the benches, and lfbs_report.
  static double percentile(std::vector<double> samples, double p);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size bounds().size() + 1 (last is overflow).
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

  /// Reassembles a histogram from raw pieces (the registry's shard merge).
  static Histogram from_parts(std::vector<double> bounds,
                              std::vector<std::uint64_t> counts,
                              std::uint64_t count, double sum, double min,
                              double max);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Monotonic counter handle. add() is a relaxed atomic add on the calling
/// thread's shard — no locks, no shared cache line with other threads.
/// Handles are owned by a MetricsRegistry and stay valid for its lifetime;
/// instrumented code resolves them once and keeps the reference.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    cells_[this_thread_shard()].value.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const;

 private:
  friend class MetricsRegistry;
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Cell, kMetricShards> cells_{};
};

/// Last-write-wins gauge. Gauges record low-rate state (ring occupancy,
/// current rate), so a single relaxed atomic is enough.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double v) { value_.fetch_add(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Sharded histogram metric: per-shard bucket counts and sums, merged into
/// a plain Histogram on snapshot. record() is two relaxed atomic adds plus
/// a min/max CAS that almost always succeeds first try.
class HistogramMetric {
 public:
  explicit HistogramMetric(std::vector<double> bounds);

  void record(double value);
  /// Merged view across shards (snapshot-on-read).
  Histogram snapshot() const;
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  friend class MetricsRegistry;
  struct alignas(64) Cell {
    std::vector<std::atomic<std::uint64_t>> counts;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
  };
  std::vector<double> bounds_;
  std::array<Cell, kMetricShards> cells_;
};

/// One coherent read of every metric in a registry.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, Histogram>> histograms;

  const std::uint64_t* counter(std::string_view name) const;
  const Histogram* histogram(std::string_view name) const;
};

/// Named metrics, created on first use and stable for the registry's
/// lifetime. Registration takes a mutex (cold path, once per metric name);
/// the returned handles increment lock-free afterwards. Reads merge the
/// per-thread shards into a MetricsSnapshot without pausing writers — a
/// snapshot taken mid-run is a consistent-enough monotonic view, never a
/// torn structure.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  HistogramMetric& histogram(std::string_view name,
                             std::vector<double> bounds =
                                 Histogram::default_latency_bounds_ms());

  MetricsSnapshot snapshot() const;

  /// Zeroes every registered metric (handles stay valid). Test/bench aid;
  /// concurrent writers may leave a few post-reset increments behind, which
  /// is fine for its purpose.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<HistogramMetric> histograms_;
  std::unordered_map<std::string, Counter*> counter_index_;
  std::unordered_map<std::string, Gauge*> gauge_index_;
  std::unordered_map<std::string, HistogramMetric*> histogram_index_;
  std::vector<std::pair<std::string, const Counter*>> counter_order_;
  std::vector<std::pair<std::string, const Gauge*>> gauge_order_;
  std::vector<std::pair<std::string, const HistogramMetric*>>
      histogram_order_;
};

/// The process-global registry every instrumented layer records into.
/// Always on: recording is cheap enough (one relaxed add on a private
/// cache line) that there is no disable switch.
MetricsRegistry& metrics();

}  // namespace lfbs::obs

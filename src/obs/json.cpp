#include "obs/json.h"

#include <cstdlib>

namespace lfbs::obs {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::member_num(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr ? v->num_or(fallback) : fallback;
}

std::string JsonValue::member_str(std::string_view key,
                                  std::string_view fallback) const {
  const JsonValue* v = find(key);
  return std::string(v != nullptr ? v->str_or(fallback) : fallback);
}

bool JsonValue::member_bool(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr ? v->bool_or(fallback) : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    std::optional<JsonValue> value = parse_value();
    if (value.has_value()) {
      skip_ws();
      if (pos_ != text_.size()) {
        value.reset();
        fail("trailing characters");
      }
    }
    if (!value.has_value() && error != nullptr) {
      *error = error_ + " at byte " + std::to_string(pos_);
    }
    return value;
  }

 private:
  void fail(const char* what) {
    if (error_.empty()) error_ = what;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string_value();
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    JsonValue v;
    if (literal("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (literal("false")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = false;
      return v;
    }
    if (literal("null")) return v;
    fail("unexpected character");
    return std::nullopt;
  }

  std::optional<JsonValue> parse_object() {
    ++pos_;  // '{'
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (consume('}')) return v;
    for (;;) {
      skip_ws();
      std::optional<std::string> key = parse_string();
      if (!key.has_value()) return std::nullopt;
      skip_ws();
      if (!consume(':')) {
        fail("expected ':'");
        return std::nullopt;
      }
      std::optional<JsonValue> member = parse_value();
      if (!member.has_value()) return std::nullopt;
      v.object.emplace_back(std::move(*key), std::move(*member));
      skip_ws();
      if (consume('}')) return v;
      if (!consume(',')) {
        fail("expected ',' or '}'");
        return std::nullopt;
      }
    }
  }

  std::optional<JsonValue> parse_array() {
    ++pos_;  // '['
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (consume(']')) return v;
    for (;;) {
      std::optional<JsonValue> item = parse_value();
      if (!item.has_value()) return std::nullopt;
      v.array.push_back(std::move(*item));
      skip_ws();
      if (consume(']')) return v;
      if (!consume(',')) {
        fail("expected ',' or ']'");
        return std::nullopt;
      }
    }
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
          }
          const std::string hex(text_.substr(pos_, 4));
          pos_ += 4;
          const long code = std::strtol(hex.c_str(), nullptr, 16);
          // Telemetry strings are ASCII; encode the code point as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<JsonValue> parse_string_value() {
    std::optional<std::string> s = parse_string();
    if (!s.has_value()) return std::nullopt;
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    v.string = std::move(*s);
    return v;
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      fail("bad number");
      return std::nullopt;
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = value;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error) {
  return Parser(text).parse(error);
}

}  // namespace lfbs::obs

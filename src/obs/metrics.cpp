#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace lfbs::obs {

std::size_t this_thread_shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

std::vector<double> Histogram::default_latency_bounds_ms() {
  // 1e-3 ms .. ~16e3 ms in quarter-decade steps: fine enough that the
  // interpolated percentiles track the exact ones within a few percent.
  std::vector<double> bounds;
  for (double b = 1e-3; b < 2e4; b *= std::pow(10.0, 0.25)) {
    bounds.push_back(b);
  }
  return bounds;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {}

void Histogram::record(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < counts_.size() && i < other.counts_.size();
       ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double rank = p * static_cast<double>(count_ - 1);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const auto in_bucket = static_cast<double>(counts_[b]);
    if (rank < static_cast<double>(seen) + in_bucket) {
      const double lo = b == 0 ? 0.0 : bounds_[b - 1];
      const double hi =
          b < bounds_.size() ? bounds_[b] : std::max(max_, lo);
      const double frac = (rank - static_cast<double>(seen)) / in_bucket;
      return std::clamp(lo + frac * (hi - lo), min(), max());
    }
    seen += counts_[b];
  }
  return max();
}

double Histogram::percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  p = std::clamp(p, 0.0, 1.0);
  const double rank = p * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

namespace {

/// Relaxed CAS-min/max update for the histogram cells' running extrema.
void atomic_min(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
void atomic_max(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

HistogramMetric::HistogramMetric(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  for (Cell& cell : cells_) {
    cell.counts = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  }
}

void HistogramMetric::record(double value) {
  Cell& cell = cells_[this_thread_shard()];
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  cell.counts[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  cell.count.fetch_add(1, std::memory_order_relaxed);
  cell.sum.fetch_add(value, std::memory_order_relaxed);
  atomic_min(cell.min, value);
  atomic_max(cell.max, value);
}

Histogram Histogram::from_parts(std::vector<double> bounds,
                                std::vector<std::uint64_t> counts,
                                std::uint64_t count, double sum, double min,
                                double max) {
  Histogram h(std::move(bounds));
  h.counts_ = std::move(counts);
  h.counts_.resize(h.bounds_.size() + 1, 0);
  h.count_ = count;
  h.sum_ = sum;
  h.min_ = min;
  h.max_ = max;
  return h;
}

Histogram HistogramMetric::snapshot() const {
  Histogram out(bounds_);
  for (const Cell& cell : cells_) {
    const std::uint64_t count = cell.count.load(std::memory_order_relaxed);
    if (count == 0) continue;
    std::vector<std::uint64_t> counts(cell.counts.size());
    for (std::size_t b = 0; b < counts.size(); ++b) {
      counts[b] = cell.counts[b].load(std::memory_order_relaxed);
    }
    out.merge(Histogram::from_parts(
        bounds_, std::move(counts), count,
        cell.sum.load(std::memory_order_relaxed),
        cell.min.load(std::memory_order_relaxed),
        cell.max.load(std::memory_order_relaxed)));
  }
  return out;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  const std::string key(name);
  if (const auto it = counter_index_.find(key);
      it != counter_index_.end()) {
    return *it->second;
  }
  Counter& c = counters_.emplace_back();
  counter_index_.emplace(key, &c);
  counter_order_.emplace_back(key, &c);
  return c;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  const std::string key(name);
  if (const auto it = gauge_index_.find(key); it != gauge_index_.end()) {
    return *it->second;
  }
  Gauge& g = gauges_.emplace_back();
  gauge_index_.emplace(key, &g);
  gauge_order_.emplace_back(key, &g);
  return g;
}

HistogramMetric& MetricsRegistry::histogram(std::string_view name,
                                            std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  const std::string key(name);
  if (const auto it = histogram_index_.find(key);
      it != histogram_index_.end()) {
    return *it->second;
  }
  HistogramMetric& h = histograms_.emplace_back(std::move(bounds));
  histogram_index_.emplace(key, &h);
  histogram_order_.emplace_back(key, &h);
  return h;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard lock(mutex_);
  out.counters.reserve(counter_order_.size());
  for (const auto& [name, c] : counter_order_) {
    out.counters.emplace_back(name, c->value());
  }
  out.gauges.reserve(gauge_order_.size());
  for (const auto& [name, g] : gauge_order_) {
    out.gauges.emplace_back(name, g->value());
  }
  out.histograms.reserve(histogram_order_.size());
  for (const auto& [name, h] : histogram_order_) {
    out.histograms.emplace_back(name, h->snapshot());
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (Counter& c : counters_) {
    for (auto& cell : c.cells_) {
      cell.value.store(0, std::memory_order_relaxed);
    }
  }
  for (Gauge& g : gauges_) g.set(0.0);
  for (HistogramMetric& h : histograms_) {
    for (auto& cell : h.cells_) {
      for (auto& n : cell.counts) n.store(0, std::memory_order_relaxed);
      cell.count.store(0, std::memory_order_relaxed);
      cell.sum.store(0.0, std::memory_order_relaxed);
      cell.min.store(std::numeric_limits<double>::infinity(),
                     std::memory_order_relaxed);
      cell.max.store(-std::numeric_limits<double>::infinity(),
                     std::memory_order_relaxed);
    }
  }
}

const std::uint64_t* MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return &v;
  }
  return nullptr;
}

const Histogram* MetricsSnapshot::histogram(std::string_view name) const {
  for (const auto& [n, h] : histograms) {
    if (n == name) return &h;
  }
  return nullptr;
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace lfbs::obs

#pragma once

#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <mutex>
#include <ostream>
#include <span>
#include <string>
#include <string_view>

namespace lfbs::obs {

struct MetricsSnapshot;

/// Microseconds since a process-wide steady-clock epoch (first use). All
/// telemetry — spans, events, snapshots — stamps time off this one clock,
/// so a report can correlate a frame event with the window span that
/// produced it.
std::int64_t now_us();

/// Escapes a string for embedding in a JSON string literal.
std::string json_escape(std::string_view s);

/// Thread-safe line-at-a-time writer for JSONL telemetry files. One mutex
/// per writer: lines from concurrent threads interleave whole, never torn.
class JsonlWriter {
 public:
  /// Opens `path` for writing ("-" writes to stdout).
  explicit JsonlWriter(const std::string& path);
  /// Borrows an open stream (tests).
  explicit JsonlWriter(std::ostream& os);

  bool ok() const { return out_ != nullptr && out_->good(); }
  void write_line(std::string_view line);
  std::size_t lines() const;
  void flush();

 private:
  std::ofstream owned_;
  std::ostream* out_ = nullptr;
  mutable std::mutex mutex_;
  std::size_t lines_ = 0;
};

/// One field of a structured event. Built via the static helpers so call
/// sites read as `Field::num("confidence", 0.93)`.
struct Field {
  enum class Kind { kNumber, kInteger, kString, kBool };

  static Field num(std::string_view key, double value);
  static Field integer(std::string_view key, std::int64_t value);
  static Field str(std::string_view key, std::string_view value);
  static Field flag(std::string_view key, bool value);

  std::string key;
  Kind kind = Kind::kNumber;
  double number = 0.0;
  std::int64_t integer_value = 0;
  std::string string_value;
  bool flag_value = false;
};

/// Typed structured event log: every line is one JSON object with at least
/// {"type": ..., "ts_us": ...}. This is the machine-readable trail the
/// tentpole asks for — frame deliveries (with confidence and fallback
/// stage), health transitions, ledger quarantines, rate-control decisions,
/// and periodic metric snapshots all land here, interleaved with span
/// records when the tracer shares the same writer.
class EventLog {
 public:
  explicit EventLog(JsonlWriter& out) : out_(out) {}

  void emit(std::string_view type, std::initializer_list<Field> fields);
  /// Span overload for events whose field count is only known at runtime
  /// (e.g. one control-plan event per scheduled tag assignment).
  void emit(std::string_view type, std::span<const Field> fields);
  /// Writes a {"type":"snapshot", ...} line carrying every counter and
  /// gauge of the snapshot (histograms are summarized as count/p50/p99).
  void snapshot(const MetricsSnapshot& snap);

  JsonlWriter& writer() { return out_; }

 private:
  JsonlWriter& out_;
};

/// Process-global event sink. Null (the default) disables structured
/// events everywhere at the cost of one pointer load and branch —
/// the same null-sink contract the tracer follows.
EventLog* event_log();
void set_event_log(EventLog* log);

}  // namespace lfbs::obs

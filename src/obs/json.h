#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lfbs::obs {

/// Minimal JSON value for reading the telemetry this library writes
/// (JSONL span/event lines, Chrome trace files, the --stats-json
/// document). It is a complete JSON reader — objects, arrays, strings
/// with escapes, numbers, booleans, null — kept deliberately small; it is
/// not meant as a general-purpose JSON library.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  double num_or(double fallback) const {
    return kind == Kind::kNumber ? number : fallback;
  }
  std::string_view str_or(std::string_view fallback) const {
    return kind == Kind::kString ? std::string_view(string) : fallback;
  }
  bool bool_or(bool fallback) const {
    return kind == Kind::kBool ? boolean : fallback;
  }

  /// Shorthand: numeric member of an object, or fallback.
  double member_num(std::string_view key, double fallback) const;
  std::string member_str(std::string_view key,
                         std::string_view fallback) const;
  bool member_bool(std::string_view key, bool fallback) const;
};

/// Parses one JSON document. Returns std::nullopt on malformed input and,
/// when `error` is given, a one-line description with the byte offset.
std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error = nullptr);

}  // namespace lfbs::obs

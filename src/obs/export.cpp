#include "obs/export.h"

#include <chrono>
#include <fstream>
#include <iostream>

namespace lfbs::obs {

namespace {

std::string prometheus_name(const std::string& name) {
  std::string out = "lfbs_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

void write_prometheus(const MetricsSnapshot& snapshot, std::ostream& os) {
  for (const auto& [name, value] : snapshot.counters) {
    const std::string n = prometheus_name(name);
    os << "# TYPE " << n << " counter\n" << n << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string n = prometheus_name(name);
    os << "# TYPE " << n << " gauge\n" << n << " " << value << "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string n = prometheus_name(name);
    os << "# TYPE " << n << " histogram\n";
    std::uint64_t cumulative = 0;
    const auto& counts = h.bucket_counts();
    for (std::size_t b = 0; b < h.bounds().size(); ++b) {
      cumulative += counts[b];
      os << n << "_bucket{le=\"" << h.bounds()[b] << "\"} " << cumulative
         << "\n";
    }
    os << n << "_bucket{le=\"+Inf\"} " << h.count() << "\n";
    os << n << "_sum " << h.sum() << "\n";
    os << n << "_count " << h.count() << "\n";
  }
}

bool write_prometheus_file(const MetricsSnapshot& snapshot,
                           const std::string& path) {
  if (path == "-") {
    write_prometheus(snapshot, std::cout);
    return true;
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return false;
  write_prometheus(snapshot, out);
  return out.good();
}

SnapshotEmitter::SnapshotEmitter(double interval_seconds,
                                 std::function<void()> tick)
    : interval_seconds_(std::max(interval_seconds, 1e-3)),
      tick_(std::move(tick)) {
  thread_ = std::thread([this] {
    std::unique_lock lock(mutex_);
    for (;;) {
      cv_.wait_for(lock, std::chrono::duration<double>(interval_seconds_),
                   [&] { return stop_requested_; });
      if (stop_requested_) return;
      ++ticks_;
      lock.unlock();
      tick_();
      lock.lock();
    }
  });
}

SnapshotEmitter::~SnapshotEmitter() { stop(); }

void SnapshotEmitter::stop() {
  bool was_running = false;
  {
    std::lock_guard lock(mutex_);
    was_running = !stop_requested_;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final tick so short runs still produce one snapshot.
  if (was_running && tick_) {
    {
      std::lock_guard lock(mutex_);
      ++ticks_;
    }
    tick_();
  }
}

std::size_t SnapshotEmitter::ticks() const {
  std::lock_guard lock(mutex_);
  return ticks_;
}

}  // namespace lfbs::obs

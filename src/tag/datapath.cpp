#include "tag/datapath.h"

#include <algorithm>

namespace lfbs::tag {

double TagDatapath::clock(bool carrier, bool sensor_bit) {
  switch (state_) {
    case State::kSleep:
      ++cycles_sleep_;
      antenna_ = 0.0;
      if (carrier) state_ = State::kWaitCarrier;
      break;

    case State::kWaitCarrier:
      // One cycle of comparator settling, then transmission begins. (The
      // multi-microsecond charging physics lives in StartTrigger; here a
      // single bit-clock cycle stands in for it.)
      ++cycles_sleep_;
      antenna_ = 0.0;
      state_ = carrier ? State::kActive : State::kSleep;
      break;

    case State::kActive: {
      if (!carrier) {
        state_ = State::kSleep;
        antenna_ = 0.0;
        pending_ = false;
        in_flight_ = 0;
        ++cycles_sleep_;
        break;
      }
      ++cycles_active_;
      // The sampled bit enters the (depth-1) shift stage this cycle and
      // drives the antenna on the same clock: sample in, bit out.
      if (pending_) {
        antenna_ = pending_bit_ ? 1.0 : 0.0;
        ++bits_transmitted_;
        --in_flight_;
      }
      pending_ = true;
      pending_bit_ = sensor_bit;
      ++in_flight_;
      max_in_flight_ = std::max(max_in_flight_, in_flight_);
      break;
    }
  }
  history_.push_back(antenna_);
  return antenna_;
}

}  // namespace lfbs::tag

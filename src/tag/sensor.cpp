#include "tag/sensor.h"

#include <cmath>

#include "common/check.h"

namespace lfbs::tag {

TemperatureSensor::TemperatureSensor(double base_celsius,
                                     std::size_t resolution_bits)
    : value_(base_celsius), resolution_bits_(resolution_bits) {
  LFBS_CHECK(resolution_bits_ >= 1 && resolution_bits_ <= 32);
}

std::vector<bool> TemperatureSensor::sample_bits(std::size_t n, Rng& rng) {
  std::vector<bool> out;
  out.reserve(n);
  while (out.size() < n) {
    // Slow drift plus measurement noise, quantized over a 0–50 °C span.
    phase_ += 0.05;
    value_ += 0.02 * std::sin(phase_) + rng.gaussian(0.0, 0.01);
    const double clamped = std::fmin(std::fmax(value_, 0.0), 50.0);
    const auto max_code = (1ull << resolution_bits_) - 1;
    const auto code =
        static_cast<std::uint64_t>(clamped / 50.0 * static_cast<double>(max_code));
    for (std::size_t b = 0; b < resolution_bits_ && out.size() < n; ++b) {
      out.push_back(((code >> (resolution_bits_ - 1 - b)) & 1) != 0);
    }
  }
  return out;
}

MediaSensor::MediaSensor(std::string kind) : kind_(std::move(kind)) {}

std::vector<bool> MediaSensor::sample_bits(std::size_t n, Rng& rng) {
  return rng.bits(n);
}

IdentifierSensor::IdentifierSensor(std::vector<bool> id) : id_(std::move(id)) {
  LFBS_CHECK(!id_.empty());
}

std::vector<bool> IdentifierSensor::sample_bits(std::size_t n, Rng& /*rng*/) {
  std::vector<bool> out;
  out.reserve(n);
  while (out.size() < n) {
    for (std::size_t i = 0; i < id_.size() && out.size() < n; ++i) {
      out.push_back(id_[i]);
    }
  }
  return out;
}

}  // namespace lfbs::tag

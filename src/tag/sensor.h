#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace lfbs::tag {

/// A data source feeding a tag. The paper's motivating endpoints range from
/// a 1 Hz battery-less temperature sensor (§1) to data-rich cameras and
/// microphones streaming at hundreds of kbps; these models produce the
/// payload bits those devices would clock straight out of their ADCs.
class Sensor {
 public:
  virtual ~Sensor() = default;

  /// Human-readable kind ("temperature", "microphone", ...).
  virtual std::string kind() const = 0;

  /// Produces the next `n` payload bits.
  virtual std::vector<bool> sample_bits(std::size_t n, Rng& rng) = 0;
};

/// Slowly varying physical quantity, quantized to `resolution_bits` per
/// sample — the battery-less 1 Hz temperature sensor of the intro.
class TemperatureSensor final : public Sensor {
 public:
  explicit TemperatureSensor(double base_celsius = 22.0,
                             std::size_t resolution_bits = 12);
  std::string kind() const override { return "temperature"; }
  std::vector<bool> sample_bits(std::size_t n, Rng& rng) override;

  /// Current reading (for examples to display).
  double last_reading() const { return value_; }

 private:
  double value_;
  std::size_t resolution_bits_;
  double phase_ = 0.0;
};

/// High-entropy stream standing in for compressed audio/imagery.
class MediaSensor final : public Sensor {
 public:
  explicit MediaSensor(std::string kind = "microphone");
  std::string kind() const override { return kind_; }
  std::vector<bool> sample_bits(std::size_t n, Rng& rng) override;

 private:
  std::string kind_;
};

/// Fixed identifier source (EPC-style), for inventory workloads: always
/// returns the same `id` bits, cycling if more are requested.
class IdentifierSensor final : public Sensor {
 public:
  explicit IdentifierSensor(std::vector<bool> id);
  std::string kind() const override { return "identifier"; }
  std::vector<bool> sample_bits(std::size_t n, Rng& rng) override;
  const std::vector<bool>& id() const { return id_; }

 private:
  std::vector<bool> id_;
};

}  // namespace lfbs::tag

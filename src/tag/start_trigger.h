#pragma once

#include "common/rng.h"
#include "common/units.h"

namespace lfbs::tag {

/// Comparator/capacitor wake-up circuit (Fig 4 of the paper).
///
/// When the reader turns its carrier on, the tag's receive capacitor charges
/// as V(t) = V∞ (1 − e^{−t/RC}); a comparator fires when V crosses a
/// threshold, and the tag starts transmitting. Three physical sources of
/// randomness spread the fire time across tags — this is what gives
/// LF-Backscatter its "free" fine-grained random offsets (§3.2):
///   a) incoming energy (placement/orientation) sets V∞,
///   b) capacitor tolerance (±20 % typical) sets RC,
///   c) charging noise wiggles the crossing instant.
class StartTrigger {
 public:
  struct Config {
    Seconds nominal_rc = 50e-6;       ///< nominal RC time constant
    double capacitor_tolerance = 0.2; ///< ±20 % part-to-part spread
    double threshold_fraction = 0.6;  ///< comparator threshold / V∞ nominal
    double charging_noise = 0.01;     ///< 1σ noise on the threshold crossing
  };

  /// Draws the device's RC once (capacitor tolerance is fixed per part).
  StartTrigger(Config config, Rng& rng);

  /// This part's actual RC constant.
  Seconds actual_rc() const { return rc_; }

  /// Fire delay after carrier-on for a given relative incoming energy
  /// (1.0 = nominal). Higher energy charges faster → earlier fire. Each call
  /// redraws the charging noise: the same tag fires at slightly different
  /// times every epoch.
  Seconds fire_delay(double incoming_energy, Rng& rng) const;

 private:
  Config config_;
  Seconds rc_ = 0.0;
};

}  // namespace lfbs::tag

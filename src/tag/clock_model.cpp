#include "tag/clock_model.h"

#include "common/check.h"

namespace lfbs::tag {

ClockModel::ClockModel(Config config, Rng& rng) : config_(config) {
  LFBS_CHECK(config_.drift_ppm >= 0.0);
  LFBS_CHECK(config_.jitter_ppm >= 0.0);
  actual_ppm_ = rng.uniform(-config_.drift_ppm, config_.drift_ppm);
}

Seconds ClockModel::stretched(Seconds nominal) const {
  return nominal * (1.0 + actual_ppm_ * 1e-6);
}

Seconds ClockModel::next_cycle(Seconds nominal, Rng& rng) const {
  const double jitter = rng.gaussian(0.0, config_.jitter_ppm * 1e-6);
  return nominal * (1.0 + actual_ppm_ * 1e-6 + jitter);
}

}  // namespace lfbs::tag

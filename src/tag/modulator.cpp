#include "tag/modulator.h"

#include "common/check.h"

namespace lfbs::tag {

Modulator::Modulator(BitRate rate) : rate_(rate) { LFBS_CHECK(rate_ > 0.0); }

signal::StateTimeline Modulator::modulate(
    const std::vector<bool>& bits, Seconds start, const ClockModel& clock,
    Rng& rng, std::vector<Seconds>* boundaries) const {
  signal::StateTimeline timeline(0.0);
  Seconds t = start;
  for (bool bit : bits) {
    if (boundaries != nullptr) boundaries->push_back(t);
    timeline.add(t, bit ? 1.0 : 0.0);
    t += clock.next_cycle(nominal_period(), rng);
  }
  if (!bits.empty()) {
    if (boundaries != nullptr) boundaries->push_back(t);
    timeline.add(t, 0.0);  // return to idle after the last bit
  }
  return timeline;
}

}  // namespace lfbs::tag

#pragma once

#include "common/rng.h"
#include "common/units.h"

namespace lfbs::tag {

/// Imperfect tag clock. A tag's bit period is its nominal period stretched
/// by a fixed per-device frequency error (crystal tolerance, drawn once at
/// construction) plus white cycle-to-cycle jitter.
///
/// Paper context: the Moo's internal DCO drifts ~40,000 ppm — unusable — so
/// the prototype uses an external crystal with ~150 ppm drift; the decoder
/// tolerates about 200 ppm (§4.1).
class ClockModel {
 public:
  struct Config {
    double drift_ppm = 150.0;   ///< max |frequency error|, uniformly drawn
    double jitter_ppm = 5.0;    ///< white per-cycle jitter (1σ)
  };

  ClockModel(Config config, Rng& rng);

  /// The device's actual frequency error in ppm (fixed for its lifetime).
  double actual_ppm() const { return actual_ppm_; }

  /// Actual duration of one nominal period (drift applied, no jitter).
  Seconds stretched(Seconds nominal) const;

  /// Duration of the next cycle of the given nominal period, with jitter.
  Seconds next_cycle(Seconds nominal, Rng& rng) const;

 private:
  Config config_;
  double actual_ppm_ = 0.0;
};

}  // namespace lfbs::tag

#pragma once

#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "signal/waveform.h"
#include "tag/clock_model.h"

namespace lfbs::tag {

/// ASK (on-off keying) modulator: clocks a bit sequence onto the antenna
/// state, one bit per (drift- and jitter-affected) clock period, NRZ
/// encoded. This is the entire transmit path of an LF-Backscatter tag — no
/// buffering, no coding, no carrier synthesis (§3.6).
class Modulator {
 public:
  explicit Modulator(BitRate rate);

  BitRate rate() const { return rate_; }
  Seconds nominal_period() const { return 1.0 / rate_; }

  /// Lays `bits` onto a timeline starting at `start`, advancing by the
  /// clock's jittered period per bit. Returns the timeline and, via
  /// `boundaries`, the exact boundary times (ground truth for tests).
  signal::StateTimeline modulate(const std::vector<bool>& bits, Seconds start,
                                 const ClockModel& clock, Rng& rng,
                                 std::vector<Seconds>* boundaries = nullptr) const;

 private:
  BitRate rate_;
};

}  // namespace lfbs::tag

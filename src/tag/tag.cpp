#include "tag/tag.h"

#include <algorithm>

#include "common/check.h"

namespace lfbs::tag {

Tag::Tag(TagConfig config, Rng& rng)
    : config_(config),
      rate_(config.rate),
      clock_(config.clock, rng),
      trigger_(config.trigger, rng) {
  LFBS_CHECK(config_.rate > 0.0);
  LFBS_CHECK(config_.incoming_energy > 0.0);
}

void Tag::apply_rate_command(BitRate max_rate) {
  if (!config_.listens_to_reader) return;
  rate_ = std::min(rate_, max_rate);
}

EpochTransmission Tag::transmit_epoch(
    const std::vector<std::vector<bool>>& frames, Seconds epoch_duration,
    Rng& rng) const {
  LFBS_CHECK(epoch_duration > 0.0);
  EpochTransmission tx;
  tx.start_time = trigger_.fire_delay(config_.incoming_energy, rng);
  tx.timeline = signal::StateTimeline(0.0);

  const Seconds nominal = 1.0 / rate_;
  Seconds t = tx.start_time;
  for (const auto& frame : frames) {
    // Will this whole frame fit? A blind tag doesn't know, but the simulator
    // tracks which frames completed for goodput accounting.
    bool frame_complete = true;
    for (bool bit : frame) {
      if (t >= epoch_duration) {
        frame_complete = false;
        break;
      }
      tx.boundaries.push_back(t);
      tx.timeline.add(t, bit ? 1.0 : 0.0);
      tx.bits.push_back(bit);
      t += clock_.next_cycle(nominal, rng);
    }
    if (!frame_complete) break;
    ++tx.frames_completed;
  }
  // Trailing boundary: the tag returns to idle (carrier-off or data done).
  const Seconds end = std::min(t, epoch_duration);
  tx.boundaries.push_back(end);
  tx.timeline.add(end, 0.0);
  return tx;
}

}  // namespace lfbs::tag

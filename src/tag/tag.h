#pragma once

#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "signal/waveform.h"
#include "tag/clock_model.h"
#include "tag/modulator.h"
#include "tag/start_trigger.h"

namespace lfbs::tag {

/// Static configuration of one tag.
struct TagConfig {
  BitRate rate = 100.0 * kKbps;   ///< must be a multiple of the base rate
  ClockModel::Config clock{};
  StartTrigger::Config trigger{};
  /// Relative incoming carrier energy at this tag's placement (1 = nominal);
  /// feeds the comparator fire-time physics.
  double incoming_energy = 1.0;
  /// Whether this tag implements the optional receive path for broadcast
  /// ACKs / rate-change commands (§3.6). Stringently constrained tags don't.
  bool listens_to_reader = false;
};

/// Everything a tag put on the air during one epoch, plus ground truth for
/// the simulator's metrics.
struct EpochTransmission {
  signal::StateTimeline timeline;       ///< antenna states over the epoch
  std::vector<bool> bits;               ///< bits fully transmitted
  std::vector<Seconds> boundaries;      ///< leading boundary of each bit,
                                        ///< plus the trailing boundary
  Seconds start_time = 0.0;             ///< comparator fire time
  std::size_t frames_completed = 0;     ///< whole frames that fit the epoch
};

/// A laissez-faire backscatter tag: wakes when it sees the carrier, then
/// blindly clocks its data out. It never listens (unless configured to
/// accept broadcast rate commands), never buffers, never defers.
class Tag {
 public:
  /// Draws the per-device physical parameters (crystal error, capacitor RC).
  Tag(TagConfig config, Rng& rng);

  const TagConfig& config() const { return config_; }
  BitRate rate() const { return rate_; }
  double clock_error_ppm() const { return clock_.actual_ppm(); }

  /// Applies a reader broadcast "lower your max bitrate" command. Tags that
  /// don't listen ignore it, exactly as §3.6 allows.
  void apply_rate_command(BitRate max_rate);

  /// Directly assigns this tag's rate — the simulator hook for fleet
  /// control-plane experiments where a scheduler commands individual tags,
  /// unlike apply_rate_command which models the broadcast path (lower-only,
  /// listening tags only). The rate must be a multiple of the base rate.
  void set_rate(BitRate rate) { rate_ = rate; }

  /// Transmits framed bits back-to-back starting at the comparator fire
  /// time; truncates at the epoch end (a blind tag just keeps toggling until
  /// the carrier disappears). Frames are supplied pre-framed by the protocol
  /// layer (anchor + payload + CRC).
  EpochTransmission transmit_epoch(const std::vector<std::vector<bool>>& frames,
                                   Seconds epoch_duration, Rng& rng) const;

 private:
  TagConfig config_;
  BitRate rate_;  ///< current rate (rate commands can lower it)
  ClockModel clock_;
  StartTrigger trigger_;
};

}  // namespace lfbs::tag

#include "tag/start_trigger.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace lfbs::tag {

StartTrigger::StartTrigger(Config config, Rng& rng) : config_(config) {
  LFBS_CHECK(config_.nominal_rc > 0.0);
  LFBS_CHECK(config_.capacitor_tolerance >= 0.0 &&
             config_.capacitor_tolerance < 1.0);
  LFBS_CHECK(config_.threshold_fraction > 0.0 &&
             config_.threshold_fraction < 1.0);
  rc_ = config_.nominal_rc *
        (1.0 + rng.uniform(-config_.capacitor_tolerance,
                           config_.capacitor_tolerance));
}

Seconds StartTrigger::fire_delay(double incoming_energy, Rng& rng) const {
  LFBS_CHECK(incoming_energy > 0.0);
  // V(t) = V∞ (1 - e^{-t/RC}); comparator fires at V = Vth. With energy e,
  // V∞ scales by e, so the crossing fraction is threshold/e. Noise on the
  // crossing models the jagged real-world charging curve.
  double crossing = config_.threshold_fraction / incoming_energy;
  crossing += rng.gaussian(0.0, config_.charging_noise);
  // A tag that cannot reach the threshold would never fire; clamp so the
  // simulation degrades to "very late" rather than dividing by zero.
  crossing = std::clamp(crossing, 1e-3, 0.999);
  return -rc_ * std::log(1.0 - crossing);
}

}  // namespace lfbs::tag

#pragma once

#include <cstddef>
#include <vector>

#include "common/units.h"

namespace lfbs::tag {

/// Cycle-level datapath of a blind LF-Backscatter tag.
///
/// The §3.6 argument made executable: one clock serves both the sensor
/// shift register and the modulator, so a sampled bit goes **straight from
/// the ADC onto the antenna** — the "clocks out bits as and when they are
/// sampled" design. The datapath therefore never holds more than one bit in
/// flight, which is exactly why Table 3's LF column has no FIFO while Gen 2
/// (buffering between slots) and Buzz (buffering across lock-step
/// retransmissions) each need the 12288-transistor 1 kB buffer.
///
/// The model advances one bit-clock cycle at a time; the host feeds sensor
/// bits and the carrier state, and reads back the antenna level. Counters
/// expose the structural claims (max bits in flight, cycles per state) for
/// tests and the power model.
class TagDatapath {
 public:
  enum class State {
    kSleep,        ///< no carrier: harvesting only
    kWaitCarrier,  ///< comparator armed, capacitor charging
    kActive,       ///< shifting sensor bits onto the antenna
  };

  TagDatapath() = default;

  State state() const { return state_; }
  double antenna_level() const { return antenna_; }

  /// Maximum number of sampled-but-untransmitted bits ever held — must
  /// stay ≤ 1 for a buffer-less design.
  std::size_t max_bits_in_flight() const { return max_in_flight_; }

  std::size_t cycles_active() const { return cycles_active_; }
  std::size_t cycles_sleep() const { return cycles_sleep_; }
  std::size_t bits_transmitted() const { return bits_transmitted_; }

  /// Advances one bit-clock cycle.
  ///   carrier:    whether the reader's carrier is present,
  ///   sensor_bit: the bit the ADC shift register produced this cycle
  ///               (ignored unless the datapath is active).
  /// Returns the antenna level driven during this cycle.
  double clock(bool carrier, bool sensor_bit);

  /// Antenna levels observed so far (for tests: must equal the sensor bit
  /// sequence — same clock, zero buffering, unit latency).
  const std::vector<double>& antenna_history() const { return history_; }

 private:
  State state_ = State::kSleep;
  double antenna_ = 0.0;
  bool pending_ = false;
  bool pending_bit_ = false;
  std::size_t in_flight_ = 0;
  std::size_t max_in_flight_ = 0;
  std::size_t cycles_active_ = 0;
  std::size_t cycles_sleep_ = 0;
  std::size_t bits_transmitted_ = 0;
  std::vector<double> history_;
};

}  // namespace lfbs::tag

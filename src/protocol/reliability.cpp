#include "protocol/reliability.h"

#include <algorithm>
#include <set>

#include "common/check.h"

namespace lfbs::protocol {

ReliableTransfer::ReliableTransfer(std::size_t num_tags, Config config)
    : config_(config), queues_(num_tags) {
  LFBS_CHECK(num_tags > 0);
}

void ReliableTransfer::enqueue(std::size_t tag, std::vector<bool> payload) {
  LFBS_CHECK(tag < queues_.size());
  queues_[tag].push_back({std::move(payload), 0});
}

std::vector<std::vector<std::vector<bool>>> ReliableTransfer::epoch_payloads(
    std::size_t max_frames_per_tag) {
  LFBS_CHECK(max_frames_per_tag >= 1);
  std::vector<std::vector<std::vector<bool>>> out(queues_.size());
  for (std::size_t t = 0; t < queues_.size(); ++t) {
    for (std::size_t i = 0;
         i < std::min(max_frames_per_tag, queues_[t].size()); ++i) {
      queues_[t][i].in_flight = true;
      out[t].push_back(queues_[t][i].payload);
    }
  }
  return out;
}

std::size_t ReliableTransfer::on_epoch_decoded(
    const std::vector<std::vector<bool>>& decoded_payloads) {
  ++epochs_;
  // Multiset of confirmations, consumed as frames are matched.
  std::multiset<std::vector<bool>> confirmations(decoded_payloads.begin(),
                                                 decoded_payloads.end());
  std::size_t newly = 0;
  for (auto& queue : queues_) {
    std::deque<PendingFrame> keep;
    for (PendingFrame& frame : queue) {
      if (!frame.in_flight) {
        keep.push_back(std::move(frame));
        continue;
      }
      frame.in_flight = false;
      const auto it = confirmations.find(frame.payload);
      if (it != confirmations.end()) {
        confirmations.erase(it);
        ++delivered_;
        ++newly;
        const std::size_t attempts = frame.attempts + 1;
        if (latency_.size() <= attempts) latency_.resize(attempts + 1, 0);
        ++latency_[attempts];
        continue;
      }
      ++frame.attempts;
      if (config_.max_attempts != 0 &&
          frame.attempts >= config_.max_attempts) {
        ++abandoned_;
        continue;
      }
      keep.push_back(std::move(frame));
    }
    queue = std::move(keep);
  }
  return newly;
}

std::size_t ReliableTransfer::pending() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

}  // namespace lfbs::protocol

#include "protocol/reliability.h"

#include <algorithm>
#include <set>

#include "common/check.h"

namespace lfbs::protocol {

ReliableTransfer::ReliableTransfer(std::size_t num_tags, Config config)
    : config_(config), queues_(num_tags) {
  LFBS_CHECK(num_tags > 0);
}

void ReliableTransfer::enqueue(std::size_t tag, std::vector<bool> payload) {
  LFBS_CHECK(tag < queues_.size());
  queues_[tag].push_back({std::move(payload), 0});
}

std::vector<std::vector<std::vector<bool>>> ReliableTransfer::epoch_payloads(
    std::size_t max_frames_per_tag) {
  LFBS_CHECK(max_frames_per_tag >= 1);
  std::vector<std::vector<std::vector<bool>>> out(queues_.size());
  for (std::size_t t = 0; t < queues_.size(); ++t) {
    // Fewest attempts first, stable on queue position: a frame that keeps
    // failing yields its slot to fresher frames instead of starving them
    // forever (see header).
    std::vector<std::size_t> order(queues_[t].size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return queues_[t][a].attempts < queues_[t][b].attempts;
                     });
    for (std::size_t i = 0;
         i < std::min(max_frames_per_tag, order.size()); ++i) {
      queues_[t][order[i]].in_flight = true;
      out[t].push_back(queues_[t][order[i]].payload);
    }
  }
  return out;
}

std::size_t ReliableTransfer::on_epoch_decoded(
    const std::vector<std::vector<bool>>& decoded_payloads) {
  ++epochs_;
  // Multiset of confirmations, consumed as frames are matched.
  std::multiset<std::vector<bool>> confirmations(decoded_payloads.begin(),
                                                 decoded_payloads.end());
  std::size_t newly = 0;
  for (auto& queue : queues_) {
    std::deque<PendingFrame> keep;
    for (PendingFrame& frame : queue) {
      if (!frame.in_flight) {
        keep.push_back(std::move(frame));
        continue;
      }
      frame.in_flight = false;
      const auto it = confirmations.find(frame.payload);
      if (it != confirmations.end()) {
        confirmations.erase(it);
        ++delivered_;
        ++newly;
        const std::size_t attempts = frame.attempts + 1;
        if (latency_.size() <= attempts) latency_.resize(attempts + 1, 0);
        ++latency_[attempts];
        continue;
      }
      ++frame.attempts;
      if (config_.max_attempts != 0 &&
          frame.attempts >= config_.max_attempts) {
        ++abandoned_;
        continue;
      }
      keep.push_back(std::move(frame));
    }
    queue = std::move(keep);
  }
  return newly;
}

std::size_t ReliableTransfer::pending() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

std::size_t ReliableTransfer::stuck() const {
  std::size_t n = 0;
  for (const auto& q : queues_) {
    for (const auto& f : q) {
      if (f.attempts >= config_.stuck_threshold) ++n;
    }
  }
  return n;
}

std::size_t ReliableTransfer::max_attempts_pending() const {
  std::size_t n = 0;
  for (const auto& q : queues_) {
    for (const auto& f : q) n = std::max(n, f.attempts);
  }
  return n;
}

}  // namespace lfbs::protocol

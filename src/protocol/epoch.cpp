#include "protocol/epoch.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace lfbs::protocol {

RatePlan RatePlan::paper_rates() {
  return RatePlan{{0.5 * kKbps, 1.0 * kKbps, 2.0 * kKbps, 5.0 * kKbps,
                   10.0 * kKbps, 50.0 * kKbps, 100.0 * kKbps}};
}

bool RatePlan::is_valid(BitRate rate, double tolerance) const {
  return std::any_of(rates.begin(), rates.end(), [&](BitRate r) {
    return std::abs(r - rate) <= tolerance * r;
  });
}

BitRate RatePlan::snap_period(Seconds period) const {
  LFBS_CHECK(!rates.empty());
  LFBS_CHECK(period > 0.0);
  const double target = 1.0 / period;
  BitRate best = rates.front();
  double best_err = std::abs(std::log(target / best));
  for (BitRate r : rates) {
    const double err = std::abs(std::log(target / r));
    if (err < best_err) {
      best_err = err;
      best = r;
    }
  }
  return best;
}

BitRate RatePlan::max() const {
  LFBS_CHECK(!rates.empty());
  return *std::max_element(rates.begin(), rates.end());
}

BitRate RatePlan::min() const {
  LFBS_CHECK(!rates.empty());
  return *std::min_element(rates.begin(), rates.end());
}

}  // namespace lfbs::protocol

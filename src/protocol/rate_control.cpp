#include "protocol/rate_control.h"

#include <algorithm>

#include "common/check.h"

namespace lfbs::protocol {

RateController::RateController(RatePlan plan, BitRate initial_max,
                               Config config)
    : plan_(std::move(plan)), current_max_(initial_max), config_(config) {
  LFBS_CHECK(!plan_.rates.empty());
  LFBS_CHECK(plan_.is_valid(initial_max));
  std::sort(plan_.rates.begin(), plan_.rates.end());
}

std::optional<BitRate> RateController::on_epoch(std::size_t frames_attempted,
                                                std::size_t frames_failed) {
  if (frames_attempted == 0) return std::nullopt;
  const double loss = static_cast<double>(frames_failed) /
                      static_cast<double>(frames_attempted);

  const auto it =
      std::find_if(plan_.rates.begin(), plan_.rates.end(),
                   [&](BitRate r) { return r >= current_max_ * (1 - 1e-9); });
  LFBS_CHECK(it != plan_.rates.end());

  if (loss > config_.lower_threshold && it != plan_.rates.begin()) {
    clean_epochs_ = 0;
    current_max_ = *(it - 1);
    return current_max_;
  }
  if (loss < config_.raise_threshold) {
    ++clean_epochs_;
    if (clean_epochs_ >= config_.raise_patience &&
        it + 1 != plan_.rates.end()) {
      clean_epochs_ = 0;
      current_max_ = *(it + 1);
      return current_max_;
    }
  } else {
    clean_epochs_ = 0;
  }
  return std::nullopt;
}

std::optional<BitRate> RateController::step_down() {
  clean_epochs_ = 0;
  healthy_streak_ = 0;
  const auto it =
      std::find_if(plan_.rates.begin(), plan_.rates.end(),
                   [&](BitRate r) { return r >= current_max_ * (1 - 1e-9); });
  LFBS_CHECK(it != plan_.rates.end());
  if (it == plan_.rates.begin()) return std::nullopt;
  current_max_ = *(it - 1);
  return current_max_;
}

std::optional<BitRate> RateController::step_up(bool healthy_epoch) {
  if (!healthy_epoch) {
    healthy_streak_ = 0;
    return std::nullopt;
  }
  ++healthy_streak_;
  if (healthy_streak_ < config_.step_up_patience) return std::nullopt;
  const auto it =
      std::find_if(plan_.rates.begin(), plan_.rates.end(),
                   [&](BitRate r) { return r >= current_max_ * (1 - 1e-9); });
  LFBS_CHECK(it != plan_.rates.end());
  if (it + 1 == plan_.rates.end()) return std::nullopt;
  healthy_streak_ = 0;
  current_max_ = *(it + 1);
  return current_max_;
}

}  // namespace lfbs::protocol

#pragma once

#include <vector>

#include "common/units.h"

namespace lfbs::protocol {

/// Reader-side epoch structure (§3.2): the reader chops time into epochs by
/// shutting off and restarting its carrier. Every epoch restart re-triggers
/// every tag's comparator, re-randomizing their start offsets — which is
/// what breaks persistent collisions across epochs.
struct EpochConfig {
  Seconds duration = 4e-3;     ///< carrier-on time per epoch
  Seconds gap = 100e-6;        ///< carrier-off time between epochs
  BitRate base_rate = 100.0;   ///< all tag rates are multiples of this
  BitRate max_rate = 100.0 * kKbps;

  Seconds cycle() const { return duration + gap; }
};

/// The set of bitrates tags may use: the paper requires every rate to be a
/// multiple of the base rate, and the evaluation uses rates that also divide
/// the max rate so that all streams fold to a single offset at the max-rate
/// period (this is what the stream detector exploits).
struct RatePlan {
  std::vector<BitRate> rates;

  /// The standard plan from the paper's evaluation (§5.1):
  /// {0.5, 1, 2, 5, 10, 50, 100} kbps.
  static RatePlan paper_rates();

  /// True when `rate` is (within tolerance) one of the valid rates.
  bool is_valid(BitRate rate, double tolerance = 1e-6) const;

  /// The valid rate nearest to an estimated bit period of `period` seconds.
  BitRate snap_period(Seconds period) const;

  BitRate max() const;
  BitRate min() const;
};

}  // namespace lfbs::protocol

#pragma once
#include <utility>

#include <optional>

#include "common/units.h"
#include "protocol/epoch.h"

namespace lfbs::protocol {

/// Reader-side broadcast rate control (§3.6): after an epoch the reader may
/// broadcast a command lowering the network's maximum bitrate to thin out
/// edge collisions, or raise it back when the channel is clean. Only tags
/// that implement the (optional) receive path obey; slow harvesting tags
/// ignore the command, which is safe because their edges are sparse.
class RateController {
 public:
  struct Config {
    /// Lower the max rate when more than this fraction of frames failed.
    double lower_threshold = 0.25;
    /// Raise it again when fewer than this fraction failed.
    double raise_threshold = 0.02;
    /// Epochs of clean decoding required before raising.
    std::size_t raise_patience = 3;
    /// Consecutive healthy epochs reported to step_up() before the rate
    /// actually rises one notch. Hysteresis for the out-of-band path: a
    /// single clean epoch after a quarantine-triggered step_down() must
    /// not bounce straight back into the rate that caused the trouble.
    std::size_t step_up_patience = 3;
  };

  RateController(RatePlan plan, BitRate initial_max, Config config);
  RateController(RatePlan plan, BitRate initial_max)
      : RateController(std::move(plan), initial_max, Config{}) {}

  BitRate current_max() const { return current_max_; }

  /// Feed one epoch's outcome; returns the new max-rate command to
  /// broadcast, or nullopt when nothing changes.
  std::optional<BitRate> on_epoch(std::size_t frames_attempted,
                                  std::size_t frames_failed);

  /// Unconditionally lowers the max rate by one plan notch — the escape
  /// hatch for out-of-band bad news (e.g. the session health ledger
  /// quarantining a chronically failing tag), which must not wait for the
  /// loss-ratio trigger. Returns the new max to broadcast, or nullopt when
  /// already at the slowest rate. Resets the raise patience either way.
  std::optional<BitRate> step_down();

  /// Counterpart to step_down() for out-of-band good news (the fleet
  /// control plane observing a recovered tag): records one epoch's health
  /// and requests a step back up. The raise only happens after
  /// `step_up_patience` consecutive healthy epochs; an unhealthy epoch
  /// resets the streak, and step_down() resets it too. Returns the new
  /// max to broadcast, or nullopt when the streak is still building or
  /// the rate is already at the plan ceiling.
  std::optional<BitRate> step_up(bool healthy_epoch = true);

  /// Healthy epochs accumulated toward the next step_up() (test/debug).
  std::size_t healthy_streak() const { return healthy_streak_; }

 private:
  RatePlan plan_;
  BitRate current_max_;
  Config config_;
  std::size_t clean_epochs_ = 0;
  std::size_t healthy_streak_ = 0;
};

}  // namespace lfbs::protocol

#include "protocol/frame.h"

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "protocol/crc.h"

namespace lfbs::protocol {

std::vector<bool> build_frame(const std::vector<bool>& payload,
                              const FrameConfig& config) {
  LFBS_CHECK_MSG(payload.size() == config.payload_bits,
                 "payload size does not match frame config");
  std::vector<bool> bits;
  bits.reserve(config.frame_bits());
  bits.push_back(true);  // anchor
  bits.insert(bits.end(), payload.begin(), payload.end());
  const std::vector<bool> protected_bits = bits;  // anchor + payload
  const std::vector<bool> with_crc = config.crc == CrcKind::kCrc5
                                         ? append_crc5(protected_bits)
                                         : append_crc16(protected_bits);
  return with_crc;
}

ParsedFrame parse_frame(const std::vector<bool>& bits,
                        const FrameConfig& config) {
  static obs::Counter& parsed = obs::metrics().counter("protocol.frames_parsed");
  static obs::Counter& crc_failed =
      obs::metrics().counter("protocol.frames_crc_failed");
  ParsedFrame out;
  if (bits.size() != config.frame_bits()) return out;
  parsed.add();
  out.anchor_ok = bits.front();
  out.crc_ok = config.crc == CrcKind::kCrc5 ? check_crc5(bits)
                                            : check_crc16(bits);
  if (!out.crc_ok) crc_failed.add();
  out.payload.assign(bits.begin() + 1,
                     bits.begin() + 1 + static_cast<std::ptrdiff_t>(
                                            config.payload_bits));
  return out;
}

std::vector<ParsedFrame> parse_stream(const std::vector<bool>& bits,
                                      const FrameConfig& config) {
  LFBS_OBS_SPAN(span, "crc", "protocol");
  span.attr("bits", static_cast<double>(bits.size()));
  std::vector<ParsedFrame> frames;
  const std::size_t len = config.frame_bits();
  for (std::size_t begin = 0; begin + len <= bits.size(); begin += len) {
    const std::vector<bool> chunk(bits.begin() + static_cast<std::ptrdiff_t>(begin),
                                  bits.begin() + static_cast<std::ptrdiff_t>(begin + len));
    frames.push_back(parse_frame(chunk, config));
  }
  return frames;
}

std::vector<ParsedFrame> scan_frames(const std::vector<bool>& bits,
                                     const FrameConfig& config) {
  LFBS_OBS_SPAN(span, "crc", "protocol");
  span.attr("bits", static_cast<double>(bits.size()));
  std::vector<ParsedFrame> frames;
  const std::size_t len = config.frame_bits();
  std::size_t begin = 0;
  while (begin + len <= bits.size()) {
    // Cheap gate first: the anchor bit must be set.
    if (!bits[begin]) {
      ++begin;
      continue;
    }
    const std::vector<bool> chunk(
        bits.begin() + static_cast<std::ptrdiff_t>(begin),
        bits.begin() + static_cast<std::ptrdiff_t>(begin + len));
    ParsedFrame parsed = parse_frame(chunk, config);
    if (parsed.valid()) {
      frames.push_back(std::move(parsed));
      begin += len;
    } else {
      ++begin;
    }
  }
  return frames;
}

std::uint64_t payload_key(const ParsedFrame& frame) {
  return static_cast<std::uint64_t>(crc16_ccitt(frame.payload)) |
         (static_cast<std::uint64_t>(frame.payload.size()) << 16);
}

}  // namespace lfbs::protocol

#include "protocol/identification.h"

#include "common/check.h"

namespace lfbs::protocol {

std::vector<EpcId> random_epcs(std::size_t count, Rng& rng) {
  std::set<std::vector<bool>> unique;
  while (unique.size() < count) unique.insert(rng.bits(96));
  return {unique.begin(), unique.end()};
}

IdentificationSession::IdentificationSession(std::vector<EpcId> population)
    : population_(std::move(population)) {
  LFBS_CHECK(!population_.empty());
  for (const auto& id : population_) population_set_.insert(id);
  LFBS_CHECK_MSG(population_set_.size() == population_.size(),
                 "population contains duplicate EPCs");
}

void IdentificationSession::record_round(const std::vector<EpcId>& decoded,
                                         Seconds air_time) {
  LFBS_CHECK(air_time >= 0.0);
  ++rounds_;
  elapsed_ += air_time;
  for (const auto& id : decoded) {
    if (in_population(id)) seen_.insert(id);
  }
}

bool IdentificationSession::in_population(const EpcId& id) const {
  return population_set_.contains(id);
}

}  // namespace lfbs::protocol

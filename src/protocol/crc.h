#pragma once

#include <cstdint>
#include <vector>

namespace lfbs::protocol {

/// CRC-5/EPC as used by EPC Gen 2 inventory (polynomial x⁵+x³+1, preset
/// 0b01001). The paper's identification protocol sends "96 bits + 5 bit
/// CRC" per epoch (§5.2).
std::uint8_t crc5_epc(const std::vector<bool>& bits);

/// Appends the 5 CRC bits (MSB first) to a copy of `bits`.
std::vector<bool> append_crc5(const std::vector<bool>& bits);

/// True when the last 5 bits are a valid CRC-5/EPC of the preceding bits.
bool check_crc5(const std::vector<bool>& bits);

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) for data frames.
std::uint16_t crc16_ccitt(const std::vector<bool>& bits);

std::vector<bool> append_crc16(const std::vector<bool>& bits);

bool check_crc16(const std::vector<bool>& bits);

}  // namespace lfbs::protocol

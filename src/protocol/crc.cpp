#include "protocol/crc.h"

namespace lfbs::protocol {

std::uint8_t crc5_epc(const std::vector<bool>& bits) {
  // Bitwise CRC-5/EPC: poly x^5 + x^3 + 1 (0b01001 taps), preset 0b01001.
  std::uint8_t reg = 0b01001;
  for (bool bit : bits) {
    const bool msb = (reg & 0b10000) != 0;
    reg = static_cast<std::uint8_t>((reg << 1) & 0b11111);
    if (msb != bit) reg ^= 0b01001;
  }
  return reg;
}

std::vector<bool> append_crc5(const std::vector<bool>& bits) {
  std::vector<bool> out = bits;
  const std::uint8_t crc = crc5_epc(bits);
  for (int b = 4; b >= 0; --b) out.push_back(((crc >> b) & 1) != 0);
  return out;
}

bool check_crc5(const std::vector<bool>& bits) {
  if (bits.size() < 5) return false;
  const std::vector<bool> payload(bits.begin(), bits.end() - 5);
  const std::uint8_t expected = crc5_epc(payload);
  std::uint8_t got = 0;
  for (std::size_t i = bits.size() - 5; i < bits.size(); ++i) {
    got = static_cast<std::uint8_t>((got << 1) | (bits[i] ? 1 : 0));
  }
  return got == expected;
}

std::uint16_t crc16_ccitt(const std::vector<bool>& bits) {
  std::uint16_t reg = 0xFFFF;
  for (bool bit : bits) {
    const bool msb = (reg & 0x8000) != 0;
    reg = static_cast<std::uint16_t>(reg << 1);
    if (msb != bit) reg ^= 0x1021;
  }
  return reg;
}

std::vector<bool> append_crc16(const std::vector<bool>& bits) {
  std::vector<bool> out = bits;
  const std::uint16_t crc = crc16_ccitt(bits);
  for (int b = 15; b >= 0; --b) out.push_back(((crc >> b) & 1) != 0);
  return out;
}

bool check_crc16(const std::vector<bool>& bits) {
  if (bits.size() < 16) return false;
  const std::vector<bool> payload(bits.begin(), bits.end() - 16);
  const std::uint16_t expected = crc16_ccitt(payload);
  std::uint16_t got = 0;
  for (std::size_t i = bits.size() - 16; i < bits.size(); ++i) {
    got = static_cast<std::uint16_t>((got << 1) | (bits[i] ? 1 : 0));
  }
  return got == expected;
}

}  // namespace lfbs::protocol

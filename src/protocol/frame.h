#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/units.h"

namespace lfbs::protocol {

/// Frame integrity check options. Identification frames use the EPC CRC-5;
/// data frames use CRC-16.
enum class CrcKind { kCrc5, kCrc16 };

/// On-air frame layout (§3.4, Table 1):
///
///   [anchor = 1] [payload bits] [CRC]
///
/// The anchor is a single known 1 bit at a known location; since every tag
/// idles at level 0 before its first frame, the anchor guarantees the frame
/// starts with a rising edge, which pins which IQ cluster means "+1".
struct FrameConfig {
  std::size_t payload_bits = 96;
  CrcKind crc = CrcKind::kCrc16;

  std::size_t crc_bits() const { return crc == CrcKind::kCrc5 ? 5 : 16; }
  /// Total on-air bits per frame: anchor + payload + CRC.
  std::size_t frame_bits() const { return 1 + payload_bits + crc_bits(); }
};

/// Builds the on-air bits for a payload. Requires payload.size() ==
/// config.payload_bits.
std::vector<bool> build_frame(const std::vector<bool>& payload,
                              const FrameConfig& config);

/// Result of parsing one frame's worth of received bits.
struct ParsedFrame {
  std::vector<bool> payload;
  bool anchor_ok = false;
  bool crc_ok = false;
  bool valid() const { return anchor_ok && crc_ok; }
};

/// Parses frame bits (length must equal config.frame_bits()); never throws
/// on bad data — integrity failures are reported in the flags.
ParsedFrame parse_frame(const std::vector<bool>& bits,
                        const FrameConfig& config);

/// Splits a continuous decoded bit stream into consecutive frames and
/// parses each; a trailing partial frame is dropped.
std::vector<ParsedFrame> parse_stream(const std::vector<bool>& bits,
                                      const FrameConfig& config);

/// Resynchronizing parser: scans the stream for CRC-valid frames at *any*
/// bit offset and returns the non-overlapping set, greedily left-to-right.
/// Tolerant of bit slips (e.g. at the seams of windowed decoding) at the
/// cost of O(bits x frame length) and the CRC's false-positive floor.
std::vector<ParsedFrame> scan_frames(const std::vector<bool>& bits,
                                     const FrameConfig& config);

/// Content key of a parsed frame's payload: CRC-16/CCITT of the payload
/// bits in the low 16 bits, the bit length above them. Pure function of
/// the payload, so it is identical wherever the frame was decoded — the
/// payload coordinate of runtime::FrameIdentity.
std::uint64_t payload_key(const ParsedFrame& frame);

}  // namespace lfbs::protocol

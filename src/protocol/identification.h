#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace lfbs::protocol {

/// A 96-bit EPC identifier.
using EpcId = std::vector<bool>;

/// Generates `count` distinct random 96-bit EPCs.
std::vector<EpcId> random_epcs(std::size_t count, Rng& rng);

/// Tracks an inventory round (§5.2): which tags have been read, and how much
/// air time it took. Protocol-agnostic — LF-Backscatter, TDMA and Buzz all
/// report their decoded IDs per epoch/round into the same session.
class IdentificationSession {
 public:
  explicit IdentificationSession(std::vector<EpcId> population);

  std::size_t population_size() const { return population_.size(); }
  std::size_t identified_count() const { return seen_.size(); }
  bool complete() const { return seen_.size() == population_.size(); }
  Seconds elapsed() const { return elapsed_; }
  std::size_t rounds() const { return rounds_; }

  /// Records the outcome of one epoch/round: the IDs decoded (possibly with
  /// duplicates or IDs already seen) and the air time the round consumed.
  void record_round(const std::vector<EpcId>& decoded, Seconds air_time);

  /// True when `id` belongs to the population (guards against decoding
  /// garbage into a phantom ID — a CRC-5 passes by chance 1/32 of the time).
  bool in_population(const EpcId& id) const;

 private:
  std::vector<EpcId> population_;
  std::set<std::vector<bool>> population_set_;
  std::set<std::vector<bool>> seen_;
  Seconds elapsed_ = 0.0;
  std::size_t rounds_ = 0;
};

}  // namespace lfbs::protocol

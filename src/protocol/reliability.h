#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <vector>

#include "common/units.h"

namespace lfbs::protocol {

/// Link-layer reliability on top of laissez-faire transfer (§3.6).
///
/// The base protocol gives no delivery guarantee — tags are blind. The
/// paper's suggested extension: after each epoch the reader broadcasts an
/// ACK; tags that implement the (optional) receive path retransmit frames
/// the reader did not confirm, in the next epoch, where fresh random
/// offsets re-roll any collision. This class is the reader+tag bookkeeping
/// for that loop; it is transport-agnostic (the caller runs the epochs).
///
/// Identification of frames: the reader confirms *payloads* it decoded
/// CRC-clean. Payload equality is a safe identity here because frames carry
/// either unique sensor data or unique EPCs; duplicate payloads across tags
/// are handled multiset-style.
class ReliableTransfer {
 public:
  struct Config {
    /// Frames are dropped (counted as failed) after this many epochs of
    /// retransmission. 0 means retry forever.
    std::size_t max_attempts = 8;
    /// A pending frame with at least this many failed attempts counts as
    /// "stuck" in stuck(). Diagnostic only; does not affect scheduling.
    std::size_t stuck_threshold = 8;
  };

  ReliableTransfer(std::size_t num_tags, Config config);
  explicit ReliableTransfer(std::size_t num_tags)
      : ReliableTransfer(num_tags, Config{}) {}

  std::size_t num_tags() const { return queues_.size(); }

  /// Queues a payload for transmission by `tag`.
  void enqueue(std::size_t tag, std::vector<bool> payload);

  /// The payloads each tag should put on the air this epoch: up to
  /// `max_frames_per_tag` undelivered frames per tag, fewest failed
  /// attempts first (queue order breaks ties). Marks those frames
  /// in-flight; only in-flight frames age on feedback.
  ///
  /// Fewest-attempts-first matters under max_attempts = 0 (retry forever):
  /// pure head-of-line selection would let one undecodable frame occupy a
  /// transmit slot every epoch and starve the frames behind it — a
  /// livelock in which pending() never shrinks. Cycling the slot to the
  /// least-retried frame guarantees every queued frame keeps getting air
  /// time.
  std::vector<std::vector<std::vector<bool>>> epoch_payloads(
      std::size_t max_frames_per_tag);

  /// Reader-side feedback after decoding one epoch: confirms delivered
  /// payloads, ages the rest, drops frames that exhausted their attempts.
  /// Returns the number of payloads newly confirmed.
  std::size_t on_epoch_decoded(
      const std::vector<std::vector<bool>>& decoded_payloads);

  std::size_t pending() const;    ///< frames still awaiting delivery
  std::size_t delivered() const { return delivered_; }
  std::size_t abandoned() const { return abandoned_; }
  std::size_t epochs() const { return epochs_; }
  /// Pending frames with >= stuck_threshold failed attempts (only
  /// reachable under retry-forever, or a threshold below max_attempts).
  std::size_t stuck() const;
  /// Largest attempt count among pending frames (0 when queues are empty).
  std::size_t max_attempts_pending() const;

  /// Delivery latency histogram: index = epochs needed (1 = first try),
  /// value = frames delivered with that latency.
  const std::vector<std::size_t>& latency_histogram() const {
    return latency_;
  }

 private:
  struct PendingFrame {
    std::vector<bool> payload;
    std::size_t attempts = 0;
    bool in_flight = false;
  };

  Config config_;
  std::vector<std::deque<PendingFrame>> queues_;
  std::size_t delivered_ = 0;
  std::size_t abandoned_ = 0;
  std::size_t epochs_ = 0;
  std::vector<std::size_t> latency_;
};

}  // namespace lfbs::protocol

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "common/rng.h"
#include "common/units.h"
#include "net/socket.h"
#include "net/wire.h"
#include "runtime/frame_bus.h"
#include "runtime/supervisor.h"

namespace lfbs::net {

struct FrameClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string name = "lfbs-client";
  SubscribeFilter filter;
  /// Bounds each dial AND the handshake that follows it: a server that
  /// accepts the connection but never acks within this window counts as a
  /// dead connection (reconnect path, not a hang).
  Seconds connect_timeout = 5.0;
  /// Reconnect policy. The defaults are literally the Supervisor's source
  /// retry policy — a lost gateway link is the same kind of transient fault
  /// as a flaky local source, so it gets the same budget and backoff shape.
  std::size_t max_connect_attempts =
      runtime::SupervisorConfig{}.max_source_retries;
  Seconds backoff_initial = runtime::SupervisorConfig{}.retry_backoff_initial;
  Seconds backoff_max = runtime::SupervisorConfig{}.retry_backoff_max;
  /// Full-jitter backoff (sleep = U[0, cap), cap doubling up to
  /// backoff_max). Without jitter every client evicted by the same server
  /// death retries on the same deterministic schedule — a thundering herd
  /// that re-arrives in lockstep forever. Seeded, so a given client's
  /// schedule is still reproducible.
  bool backoff_jitter = true;
  /// Seed for the jitter Rng; 0 (default) derives a per-client seed from
  /// the client name and a process-wide construction counter, so N tailers
  /// built in one process spread out deterministically but differently.
  std::uint64_t backoff_seed = 0;
  /// Treat a WireFormatError mid-stream (corrupted bytes, a peer speaking
  /// garbage) like a dead connection: drop it, reconnect, resubscribe —
  /// counted in protocol_resets. Default off: a plain tail should fail
  /// loudly on a malformed server rather than retry it forever. The relay
  /// and the soak harness turn it on to ride out wire corruption.
  bool reconnect_on_protocol_error = false;
  /// Treat Bye(kEvicted) like a dead connection: reconnect (and
  /// resubscribe, with the current filter) instead of returning. What the
  /// federation relay wants — an evicted relay link should heal itself —
  /// while a plain tail keeps the old "evicted means stop" contract.
  bool reconnect_on_evict = false;
  /// When gateway_id is non-zero the client announces itself as a relay:
  /// a kRelayHello follows the hello on every (re)connect, so the upstream
  /// can log/count its downstream relays.
  RelayHello relay_hello;
  /// Service class announced in the hello. Priority subscribers are never
  /// shed by an overloaded server (it backpressures its decode pipeline
  /// instead); best-effort ones are the first to lose frames. The relay
  /// always announces priority — federation links are infrastructure.
  ClientClass client_class = ClientClass::kBestEffort;
  /// How many typed admission denies (Bye(kAdmissionDenied)) to absorb by
  /// waiting out the server's retry-after hint and redialing before run()
  /// gives up and returns the deny. 0 = return on the first deny.
  std::size_t max_admission_retries = 4;
};

/// Reconnecting LFBW1 frame subscriber. run() owns the calling thread:
/// connect → hello/subscribe handshake → deliver every kFrame / kStats to
/// the callbacks until the server says Bye (the clean exits) or the retry
/// budget is spent (SocketError / WireFormatError propagate).
///
/// A connection that dies *without* a Bye — server crash, network cut — is
/// treated as transient: the client reconnects with full-jitter exponential
/// backoff and resubscribes, counting the reconnect. A reconnect can miss
/// frames published while disconnected; subscribers that set
/// SubscribeFilter::replay_recent against a server with a replay ring heal
/// the gap (deduping the overlap by frame identity), and consumers that
/// need exactly-the-full-stream check the final WireStats frame count,
/// which the gateway publishes before Bye(kEndOfStream).
class FrameClient {
 public:
  struct Counters {
    std::size_t connects = 0;    ///< successful handshakes
    std::size_t reconnects = 0;  ///< recoveries after a dead connection
    std::size_t resubscribes = 0;  ///< filters re-applied on reconnect
    std::size_t evictions = 0;   ///< Bye(kEvicted) received
    std::size_t protocol_resets = 0;  ///< reconnects after WireFormatError
    std::size_t frames_received = 0;
    std::size_t stats_received = 0;
    std::size_t control_plans_received = 0;  ///< kControlPlan broadcasts
    std::size_t admission_denies = 0;  ///< Bye(kAdmissionDenied) received
    std::size_t retry_after_waits = 0;  ///< denies absorbed by waiting the
                                        ///< server's retry-after hint
    /// Sum of the replay shortfalls the server acked: frames of configured
    /// replay history it had already shed before this client resubscribed
    /// (0 = every replay healed the full configured window).
    std::uint64_t replay_shortfall = 0;
  };

  struct Callbacks {
    std::function<void(const runtime::FrameEvent&)> on_frame;
    std::function<void(const WireStats&)> on_stats;
    /// Control-plane broadcasts (v5): the gateway's scheduling state and
    /// per-tag plan, pushed after each ControlLoop step.
    std::function<void(const ControlPlanMsg&)> on_control;
  };

  explicit FrameClient(FrameClientConfig config);

  /// Blocks until the server closes the subscription. Returns the Bye that
  /// ended it, or a synthesized Bye(kShuttingDown) after stop().
  Bye run(const Callbacks& callbacks);

  /// Makes run() return at its next poll tick. Safe from any thread.
  void stop() { stop_.store(true, std::memory_order_relaxed); }

  /// Replaces the subscription filter. Safe from any thread; the new
  /// filter is applied at the next (re)connect handshake — every
  /// reconnect path re-sends whatever filter is current, so a filter set
  /// mid-run survives evictions and dead connections.
  void set_filter(const SubscribeFilter& filter);
  SubscribeFilter filter() const;

  const Counters& counters() const { return counters_; }

 private:
  TcpConnection connect_with_backoff();

  FrameClientConfig config_;
  Counters counters_;
  Rng backoff_rng_;
  std::atomic<bool> stop_{false};
  mutable std::mutex filter_mutex_;
};

/// One full-jitter draw: uniform in [0, cap). The exact primitive
/// FrameClient sleeps on between connect attempts, exposed so tests can
/// prove the schedule's spread and per-seed determinism directly.
Seconds backoff_jitter_delay(Rng& rng, Seconds cap);

/// One-shot control-plane exchange: dial, hello as a subscriber, send
/// kControlGet (or kControlSet with `set`), return the kControlPlan
/// reply, close. The remote-operability primitive `lfbs_gateway
/// --control-get` and tests build on; throws SocketError /
/// WireFormatError on failure.
ControlPlanMsg fetch_control(const std::string& host, std::uint16_t port,
                             Seconds timeout = 5.0);
ControlPlanMsg send_control(const std::string& host, std::uint16_t port,
                            const ControlSet& set, Seconds timeout = 5.0);

}  // namespace lfbs::net

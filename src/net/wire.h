#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/units.h"
#include "runtime/chunk.h"
#include "runtime/frame_bus.h"
#include "runtime/stats.h"

namespace lfbs::net {

/// LFBW1 — the gateway's wire protocol. Every message on a connection is
/// one length-prefixed, little-endian record:
///
///   byte  0      message type (MsgType)
///   bytes 1..4   body length, uint32 LE
///   then         body (per-type layout below)
///
/// The first message in either direction must be kHello, whose body leads
/// with the "LFBW1\0" magic and a version — so a peer speaking the wrong
/// protocol (or a future incompatible revision) is rejected before anything
/// else is parsed. Doubles travel as their IEEE-754 bit patterns, so frame
/// metadata (rates, confidences, stream anchors) survives the wire
/// bit-exactly — the loopback parity tests depend on it.
constexpr char kWireMagic[6] = {'L', 'F', 'B', 'W', '1', '\0'};
/// Version 2: kFrame grew identity coordinates and the relay header
/// (epoch/window/frame indices, origin gateway, hop count), and the
/// federation messages (kRelayHello, kShardAssign, kShardFrame) joined
/// the protocol. Version 3: kSubscribe grew the replay_recent flag
/// (partition recovery — resubscribers may ask for the server's recent
/// frame ring). Version 4 (overload protection): kHello grew the client
/// class (best-effort vs priority), kBye grew a retry-after hint
/// (admission denies tell the client when to redial), and kAck grew the
/// replay shortfall (how many ring frames the server had already shed
/// when a resubscriber asked for replay). Version 5 (fleet control
/// plane): the control messages joined the protocol — kControlGet /
/// kControlSet let a subscriber read and adjust the gateway's scheduling
/// knobs, kControlPlan carries the control state plus the current per-tag
/// rate assignments (broadcast after each planning step and as the reply
/// to get/set). Each change is incompatible with older peers, and the
/// hello check rejects them before any frame is parsed.
constexpr std::uint16_t kWireVersion = 5;

/// Upper bound on one message body. Protects the receiver from a garbled
/// (or hostile) length prefix triggering a huge allocation — the same
/// validate-before-allocate stance signal::load_iq takes on file headers.
constexpr std::size_t kMaxMessageBody = 16u << 20;

/// What, structurally, is wrong with an incoming byte stream. Mirrors
/// signal::IqError: a malformed peer is an expected runtime condition, so
/// the codec reports it with a typed error a caller can switch on.
enum class WireError {
  kBadMagic,     ///< hello does not lead with the LFBW1 magic
  kBadVersion,   ///< hello carries an incompatible protocol version
  kTruncated,    ///< body shorter than its layout requires
  kOversized,    ///< length prefix exceeds kMaxMessageBody
  kUnknownType,  ///< message type byte not in MsgType
  kMalformed,    ///< fields present but invalid (bad enum value, bad count)
};

const char* to_string(WireError code);

/// Thrown by the decoders on malformed or truncated input. Derives from
/// CheckError so generic catch sites keep working; protocol-aware code can
/// catch WireFormatError and inspect code().
class WireFormatError : public CheckError {
 public:
  WireFormatError(WireError code, const std::string& what)
      : CheckError(what), code_(code) {}
  WireError code() const { return code_; }

 private:
  WireError code_;
};

enum class MsgType : std::uint8_t {
  kHello = 1,      ///< magic + version + role handshake, both directions
  kSubscribe = 2,  ///< client → server: frame filter
  kAck = 3,        ///< server → client: handshake / subscribe outcome
  kFrame = 4,      ///< server → client: one decoded FrameEvent
  kStats = 5,      ///< server → client: RuntimeStats snapshot
  kIqChunk = 6,    ///< pusher → ingest: one SampleChunk of raw IQ
  kIqEnd = 7,      ///< pusher → ingest: clean end-of-stream marker
  kBye = 8,        ///< server → client: reasoned connection close
  kRelayHello = 9,   ///< relay → upstream: gateway id + hop limit
  kShardAssign = 10, ///< coordinator → worker: one window's decode order
  kShardFrame = 11,  ///< worker → coordinator: one window's DecodeResult
  kControlGet = 12,  ///< client → server: read the control-plane state
  kControlSet = 13,  ///< client → server: adjust control-plane knobs
  kControlPlan = 14, ///< server → client: control state + current plan
};

/// Who a peer claims to be in its hello.
enum class PeerRole : std::uint8_t {
  kFrameServer = 0,      ///< gateway serving decoded frames
  kFrameSubscriber = 1,  ///< client tailing decoded frames
  kIqPusher = 2,         ///< capture process streaming raw IQ in
  kIqReceiver = 3,       ///< ingest endpoint accepting raw IQ
  kShardCoordinator = 4, ///< sharded-decode coordinator dispatching windows
  kShardWorker = 5,      ///< decode worker accepting shard assignments
};

/// Service class a subscriber announces in its hello. The overload layer
/// treats the two very differently: best-effort traffic is the first to
/// be shed when the gateway's ResourceBudget saturates, while priority
/// subscribers (relays, downstream federated gateways, operators' own
/// consumers) are never shed — the server backpressures its own decode
/// pipeline before it drops a priority frame.
enum class ClientClass : std::uint8_t {
  kBestEffort = 0,  ///< sheddable under overload (default)
  kPriority = 1,    ///< never shed; protected by admission + backpressure
};

const char* to_string(ClientClass cls);

struct Hello {
  PeerRole role = PeerRole::kFrameSubscriber;
  /// IQ pushers declare their capture rate here; 0 for frame peers.
  SampleRate sample_rate = 0.0;
  std::string name;  ///< free-form peer name for logs
  /// Service class under overload (v4). Trailing member so the many
  /// positional aggregate initializers predating v4 keep compiling.
  ClientClass client_class = ClientClass::kBestEffort;
};

/// Sent by a relay right after its hello, before kSubscribe: announces the
/// relay's own gateway id and how many hops its republished frames may
/// still take. The upstream acks it like a subscribe; a frame server that
/// never sees one simply treats the peer as a plain subscriber.
struct RelayHello {
  std::uint64_t gateway_id = 0;  ///< the relay's own id (non-zero)
  std::uint8_t hop_limit = 4;    ///< max hops a frame may accumulate
  std::string name;              ///< free-form relay name for logs
};

/// Per-subscription frame filter, applied server-side so a narrow consumer
/// does not pay for traffic it would discard.
struct SubscribeFilter {
  double min_confidence = 0.0;  ///< drop frames below this composite score
  BitRate min_rate = 0.0;       ///< drop streams slower than this (0 = off)
  BitRate max_rate = 0.0;       ///< drop streams faster than this (0 = off)
  bool crc_valid_only = false;  ///< deliver only CRC-clean frames
  /// Ask the server to replay its recent-frame ring (FrameServerConfig::
  /// replay_frames, newest last, filtered like live traffic) right after
  /// the subscribe ack. Partition recovery: a resubscribing consumer heals
  /// the frames it missed while disconnected and dedups the overlap by
  /// frame identity. Servers with no ring ack and replay nothing.
  bool replay_recent = false;

  bool accepts(const runtime::FrameEvent& event) const;
};

struct Ack {
  std::uint8_t status = 0;  ///< 0 = ok, anything else = refused
  std::string text;
  /// On a subscribe ack with replay_recent set (v4): how many frames the
  /// server's replay ring had already shed beyond what it could replay —
  /// 0 means the resubscriber healed everything the ring was configured
  /// to retain. Silent truncation was the old behaviour; now the consumer
  /// knows exactly how large its unhealable gap is.
  std::uint64_t replay_shortfall = 0;
};

enum class ByeReason : std::uint8_t {
  kEndOfStream = 0,    ///< server drained: every queued frame was delivered
  kEvicted = 1,        ///< slow-consumer policy closed the connection
  kProtocolError = 2,  ///< peer sent something unparseable
  kShuttingDown = 3,   ///< server stopping without a full drain
  kAdmissionDenied = 4,  ///< over connection/class budget; retry later
};

const char* to_string(ByeReason reason);

struct Bye {
  ByeReason reason = ByeReason::kEndOfStream;
  std::string text;
  /// Hint accompanying kAdmissionDenied (v4): how long the refused client
  /// should wait before redialing. FrameClient honors it (capped by its
  /// backoff_max) instead of hammering an overloaded gateway.
  Seconds retry_after = 0.0;
};

/// RuntimeStats digest small enough to push periodically. The gateway
/// sends one after its run drains, so a tailing client can verify it
/// received every published frame from the stream alone.
struct WireStats {
  std::uint8_t health = 0;  ///< runtime::HealthState
  bool stopped_early = false;
  Seconds wall_seconds = 0.0;
  std::uint64_t samples_in = 0;
  std::uint64_t windows_decoded = 0;
  std::uint64_t frames_published = 0;
  std::uint64_t streams = 0;
  std::uint64_t chunks_dropped = 0;
  std::uint64_t faults_total = 0;
  double mean_confidence = 0.0;
};

WireStats to_wire_stats(const runtime::RuntimeStats& stats);

struct IqEnd {
  std::uint64_t total_samples = 0;
  bool truncated = false;  ///< source ended short of what it declared
};

/// Control-plane knob adjustment (v5). Every knob travels with its own
/// "set" flag so a client can adjust one knob without clobbering the
/// others — operators' tools race against each other, not just the loop.
struct ControlSet {
  bool set_frozen = false;
  bool frozen = false;  ///< freeze: keep planning/publishing, stop applying
  bool set_target_goodput = false;
  double target_goodput = 0.0;  ///< stop stepping up once predicted ≥ this
  bool set_min_confidence = false;
  double min_confidence = 0.0;  ///< tags below this are pinned to base rate
  bool set_max_rate = false;
  BitRate max_rate = 0.0;  ///< manual override: cap every assignment (0=plan)
};

/// Control-plane state + the current epoch plan (v5). Broadcast to
/// subscribers after each planning step, and sent as the reply to both
/// kControlGet and kControlSet. `enabled` is false when the gateway runs
/// without a control loop — the reply then carries only zeros, so tools
/// can distinguish "no control plane" from "idle control plane".
struct ControlPlanMsg {
  bool enabled = false;
  bool frozen = false;
  double target_goodput = 0.0;
  double min_confidence = 0.0;
  BitRate max_rate = 0.0;
  std::uint64_t epoch = 0;  ///< epoch index the plan was computed for
  std::string policy;       ///< scheduling policy name ("greedy", "static")
  double predicted_goodput = 0.0;   ///< bits/s the scheduler expects
  double collision_pressure = 0.0;  ///< fleet collided-frame fraction
  struct Assignment {
    std::uint64_t tag = 0;   ///< tracker tag key
    BitRate rate = 0.0;      ///< assigned rate for the next epoch
    double goodput = 0.0;    ///< tag's observed goodput, bits/s
  };
  std::vector<Assignment> assignments;  ///< sorted by tag key
};

/// One de-framed message: type byte plus raw body, ready for decode_*.
struct Message {
  MsgType type = MsgType::kHello;
  std::vector<std::uint8_t> body;
};

// --- encoders: append one complete framed message to `out` ---------------

void encode_hello(const Hello& hello, std::vector<std::uint8_t>& out);
void encode_subscribe(const SubscribeFilter& filter,
                      std::vector<std::uint8_t>& out);
void encode_ack(const Ack& ack, std::vector<std::uint8_t>& out);
void encode_frame(const runtime::FrameEvent& event,
                  std::vector<std::uint8_t>& out);
void encode_stats(const WireStats& stats, std::vector<std::uint8_t>& out);
/// `f64` sends full double samples (bit-exact ingest, 2x the bytes);
/// otherwise samples are quantized to float32 like the LFBSIQ1 file format.
void encode_iq_chunk(const runtime::SampleChunk& chunk, bool f64,
                     std::vector<std::uint8_t>& out);
void encode_iq_end(const IqEnd& end, std::vector<std::uint8_t>& out);
void encode_bye(const Bye& bye, std::vector<std::uint8_t>& out);
void encode_relay_hello(const RelayHello& hello,
                        std::vector<std::uint8_t>& out);
/// kControlGet has an empty body; encode appends just the framed header.
void encode_control_get(std::vector<std::uint8_t>& out);
void encode_control_set(const ControlSet& set, std::vector<std::uint8_t>& out);
void encode_control_plan(const ControlPlanMsg& plan,
                         std::vector<std::uint8_t>& out);

// --- decoders: parse one message body; throw WireFormatError -------------

Hello decode_hello(std::span<const std::uint8_t> body);
SubscribeFilter decode_subscribe(std::span<const std::uint8_t> body);
Ack decode_ack(std::span<const std::uint8_t> body);
runtime::FrameEvent decode_frame(std::span<const std::uint8_t> body);
WireStats decode_stats(std::span<const std::uint8_t> body);
runtime::SampleChunk decode_iq_chunk(std::span<const std::uint8_t> body);
IqEnd decode_iq_end(std::span<const std::uint8_t> body);
Bye decode_bye(std::span<const std::uint8_t> body);
RelayHello decode_relay_hello(std::span<const std::uint8_t> body);
ControlSet decode_control_set(std::span<const std::uint8_t> body);
ControlPlanMsg decode_control_plan(std::span<const std::uint8_t> body);

/// Incremental de-framer: feed() raw bytes as they arrive off a socket,
/// next() hands back complete messages in order. Tolerates any fragmenta-
/// tion (TCP gives no record boundaries); throws WireFormatError::
/// kOversized the moment a length prefix exceeds kMaxMessageBody, before
/// any allocation, and kUnknownType on a type byte outside MsgType.
class MessageReader {
 public:
  void feed(const std::uint8_t* data, std::size_t n);
  std::optional<Message> next();
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
};

}  // namespace lfbs::net

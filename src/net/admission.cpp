#include "net/admission.h"

#include <cstdlib>

namespace lfbs::net {

const char* to_string(QuotaError code) {
  switch (code) {
    case QuotaError::kEmpty:
      return "empty clause";
    case QuotaError::kBadKey:
      return "unknown key";
    case QuotaError::kBadValue:
      return "bad value";
  }
  return "?";
}

namespace {

double parse_number(const std::string& key, const std::string& value) {
  if (value.empty()) {
    throw QuotaParseError(QuotaError::kBadValue,
                          "quota clause '" + key + "' has no value");
  }
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == nullptr || *end != '\0' || parsed < 0.0) {
    throw QuotaParseError(QuotaError::kBadValue,
                          "quota clause '" + key + "=" + value +
                              "' wants a non-negative number");
  }
  return parsed;
}

}  // namespace

AdmissionConfig parse_quota_spec(const std::string& spec) {
  if (spec.empty()) {
    throw QuotaParseError(QuotaError::kEmpty, "empty quota spec");
  }
  AdmissionConfig config;
  config.enabled = true;
  std::size_t at = 0;
  while (at <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', at), spec.size());
    const std::string clause = spec.substr(at, comma - at);
    at = comma + 1;
    if (clause.empty()) {
      throw QuotaParseError(QuotaError::kEmpty,
                            "empty clause in quota spec '" + spec + "'");
    }
    const std::size_t eq = clause.find('=');
    if (eq == std::string::npos) {
      throw QuotaParseError(QuotaError::kBadValue,
                            "quota clause '" + clause + "' is not key=value");
    }
    const std::string key = clause.substr(0, eq);
    const std::string value = clause.substr(eq + 1);
    const double parsed = parse_number(key, value);
    if (key == "conns") {
      config.max_connections = static_cast<std::size_t>(parsed);
    } else if (key == "retry-after") {
      config.retry_after = parsed;
    } else if (key == "be-clients") {
      config.best_effort.max_clients = static_cast<std::size_t>(parsed);
    } else if (key == "be-fps") {
      config.best_effort.max_frames_per_sec = parsed;
    } else if (key == "be-queue-kb") {
      config.best_effort.max_queue_bytes =
          static_cast<std::size_t>(parsed) * 1024;
    } else if (key == "prio-clients") {
      config.priority.max_clients = static_cast<std::size_t>(parsed);
    } else if (key == "prio-fps") {
      config.priority.max_frames_per_sec = parsed;
    } else if (key == "prio-queue-kb") {
      config.priority.max_queue_bytes =
          static_cast<std::size_t>(parsed) * 1024;
    } else {
      throw QuotaParseError(QuotaError::kBadKey,
                            "unknown quota key '" + key + "'");
    }
  }
  return config;
}

AdmissionDecision AdmissionController::admit_connection(
    std::size_t active_connections) const {
  if (!config_.enabled) return {};
  if (config_.max_connections > 0 &&
      active_connections >= config_.max_connections) {
    return {false, config_.retry_after, "connection budget exhausted"};
  }
  return {};
}

AdmissionDecision AdmissionController::admit_class(ClientClass cls) {
  if (!config_.enabled) return {};
  const ClassQuota& quota = config_.quota(cls);
  std::size_t& count =
      cls == ClientClass::kPriority ? priority_ : best_effort_;
  if (quota.max_clients > 0 && count >= quota.max_clients) {
    return {false, config_.retry_after,
            cls == ClientClass::kPriority
                ? "priority subscriber budget exhausted"
                : "best-effort subscriber budget exhausted"};
  }
  ++count;
  return {};
}

void AdmissionController::release_class(ClientClass cls) {
  std::size_t& count =
      cls == ClientClass::kPriority ? priority_ : best_effort_;
  if (count > 0) --count;
}

}  // namespace lfbs::net

#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/units.h"

namespace lfbs::net {

/// Thrown on socket-layer failures (bind, connect, setsockopt, poll). I/O
/// on an established connection never throws from here — read_some /
/// write_some report EOF and would-block through their return values so
/// the event loops can treat peer failures as data, not exceptions.
class SocketError : public std::runtime_error {
 public:
  explicit SocketError(const std::string& what) : std::runtime_error(what) {}
};

/// RAII file descriptor. Move-only; closes on destruction.
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) : fd_(fd) {}
  ~FdHandle() { reset(); }

  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;
  FdHandle(FdHandle&& other) noexcept : fd_(other.release()) {}
  FdHandle& operator=(FdHandle&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset();

 private:
  int fd_ = -1;
};

/// Listening TCP socket (SO_REUSEADDR, non-blocking). Port 0 binds an
/// ephemeral port; port() reports what the kernel picked, which is how the
/// tests and the gateway's --port-file run without port coordination.
class TcpListener {
 public:
  /// `backlog` sizes the kernel's pending-connection queue. The default
  /// suits a handful of steady subscribers; a gateway expecting connection
  /// storms (admission control turned on) raises it so a burst of dials
  /// reaches the typed deny path instead of timing out in SYN retries.
  TcpListener(const std::string& bind_address, std::uint16_t port,
              int backlog = 16);

  std::uint16_t port() const { return port_; }
  int fd() const { return fd_.get(); }

  /// Non-blocking accept: invalid handle when no connection is pending.
  FdHandle accept();

  /// Stops listening for good: the kernel backlog is gone, so concurrent
  /// dials fail fast (ECONNREFUSED) instead of completing a TCP handshake
  /// no accept() will ever service. port() keeps reporting the old port.
  void close() { fd_.reset(); }

 private:
  FdHandle fd_;
  std::uint16_t port_ = 0;
};

/// One established, non-blocking TCP connection.
class TcpConnection {
 public:
  explicit TcpConnection(FdHandle fd);

  /// Blocking connect with timeout. Throws SocketError on refusal,
  /// resolution failure, or timeout.
  static TcpConnection connect(const std::string& host, std::uint16_t port,
                               Seconds timeout);

  int fd() const { return fd_.get(); }
  bool valid() const { return fd_.valid(); }

  /// Returns bytes read; 0 on EOF; -1 when the read would block.
  std::ptrdiff_t read_some(std::uint8_t* buf, std::size_t n);
  /// Returns bytes written (possibly 0); -1 when the write would block.
  std::ptrdiff_t write_some(const std::uint8_t* buf, std::size_t n);

  /// Caps the kernel send buffer — the tests use a tiny buffer to force
  /// the slow-consumer path deterministically.
  void set_send_buffer(std::size_t bytes);

  void close() { fd_.reset(); }

 private:
  FdHandle fd_;
};

/// Self-pipe used to wake a poll loop from another thread (the stitcher
/// publishing a frame, a caller requesting shutdown). wake() is safe from
/// any thread and never blocks.
class WakePipe {
 public:
  WakePipe();

  int read_fd() const { return read_.get(); }
  void wake();
  /// Drains pending wake bytes (call after poll reports readable).
  void drain();

 private:
  FdHandle read_;
  FdHandle write_;
};

/// One fd's poll registration / result, mirroring struct pollfd without
/// leaking <poll.h> into every header.
struct PollItem {
  int fd = -1;
  bool want_read = false;
  bool want_write = false;
  bool readable = false;  ///< out: data (or EOF/error) pending
  bool writable = false;  ///< out: send buffer has room
  bool error = false;     ///< out: POLLERR/POLLHUP/POLLNVAL
};

/// poll(2) over `items` with a millisecond timeout; fills the out flags.
/// Returns the number of ready items (0 on timeout). EINTR is retried.
int poll_fds(std::vector<PollItem>& items, int timeout_ms);

}  // namespace lfbs::net

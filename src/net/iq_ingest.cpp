#include "net/iq_ingest.h"

#include "obs/events.h"
#include "obs/metrics.h"

namespace lfbs::net {

namespace {

/// Blocking full write over a non-blocking connection. Throws SocketError
/// when the peer goes away mid-write.
void write_all(TcpConnection& conn, const std::vector<std::uint8_t>& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const std::ptrdiff_t n =
        conn.write_some(bytes.data() + sent, bytes.size() - sent);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
    } else if (n == -1) {
      std::vector<PollItem> items{{conn.fd(), false, true}};
      poll_fds(items, 100);
    } else {
      throw SocketError("peer closed during write");
    }
  }
}

}  // namespace

RemoteIqSource::RemoteIqSource(IqIngestConfig config)
    : config_(std::move(config)),
      listener_(config_.bind_address, config_.port) {}

void RemoteIqSource::fail_protocol(const std::string& what) {
  conn_.close();
  throw runtime::SourceError("remote iq: " + what, /*transient=*/false);
}

SampleRate RemoteIqSource::wait_for_pusher() {
  const int timeout_ms = static_cast<int>(config_.accept_timeout * 1e3);
  std::vector<PollItem> items{{listener_.fd(), true, false}};
  poll_fds(items, timeout_ms);
  FdHandle fd = listener_.accept();
  if (!fd.valid()) {
    throw runtime::SourceError("remote iq: no pusher connected within " +
                                   std::to_string(config_.accept_timeout) +
                                   "s",
                               /*transient=*/false);
  }
  conn_ = TcpConnection(std::move(fd));
  obs::metrics().counter("net.connects").add();

  // Read until the hello arrives; anything else first is a protocol error.
  for (;;) {
    try {
      if (auto message = reader_.next()) {
        if (message->type != MsgType::kHello) {
          fail_protocol("expected hello first");
        }
        const Hello hello = decode_hello(message->body);
        if (hello.role != PeerRole::kIqPusher) {
          fail_protocol("ingest port requires an iq-pusher peer");
        }
        if (!(hello.sample_rate > 0.0)) {
          fail_protocol("pusher declared no sample rate");
        }
        rate_ = hello.sample_rate;
        std::vector<std::uint8_t> ack;
        encode_ack({0, "lfbs-ingest"}, ack);
        write_all(conn_, ack);
        return rate_;
      }
    } catch (const WireFormatError& error) {
      fail_protocol(error.what());
    }
    std::vector<PollItem> poll{{conn_.fd(), true, false}};
    poll_fds(poll, timeout_ms);
    if (!poll[0].readable && !poll[0].error) {
      fail_protocol("handshake timed out");
    }
    std::uint8_t buf[4096];
    const std::ptrdiff_t n = conn_.read_some(buf, sizeof(buf));
    if (n == 0) fail_protocol("pusher disconnected during handshake");
    if (n > 0) reader_.feed(buf, static_cast<std::size_t>(n));
  }
}

std::optional<runtime::SampleChunk> RemoteIqSource::next_chunk() {
  if (ended_) return std::nullopt;
  if (!conn_.valid()) {
    throw runtime::SourceError("remote iq: no pusher (wait_for_pusher not "
                               "run or handshake failed)",
                               /*transient=*/false);
  }
  for (;;) {
    try {
      while (auto message = reader_.next()) {
        switch (message->type) {
          case MsgType::kIqChunk: {
            runtime::SampleChunk chunk = decode_iq_chunk(message->body);
            total_samples_ += chunk.samples.size();
            obs::metrics()
                .counter("net.iq_samples_in")
                .add(chunk.samples.size());
            return chunk;
          }
          case MsgType::kIqEnd: {
            const IqEnd end = decode_iq_end(message->body);
            ended_ = true;
            truncated_ =
                end.truncated || (end.total_samples != 0 &&
                                  end.total_samples != total_samples_);
            conn_.close();
            return std::nullopt;
          }
          default:
            fail_protocol("unexpected message from pusher");
        }
      }
    } catch (const WireFormatError& error) {
      fail_protocol(error.what());
    }
    std::vector<PollItem> items{{conn_.fd(), true, false}};
    poll_fds(items, static_cast<int>(config_.read_timeout * 1e3));
    if (!items[0].readable && !items[0].error) {
      // Stalled, not dead: let the supervisor retry with backoff.
      throw runtime::SourceError("remote iq: read stalled for " +
                                     std::to_string(config_.read_timeout) +
                                     "s",
                                 /*transient=*/true);
    }
    std::uint8_t buf[1 << 16];
    const std::ptrdiff_t n = conn_.read_some(buf, sizeof(buf));
    if (n == 0) {
      // EOF with no IqEnd: the capture process died. Retrying cannot help.
      conn_.close();
      throw runtime::SourceError(
          "remote iq: pusher disconnected mid-stream after " +
              std::to_string(total_samples_) + " samples",
          /*transient=*/false);
    }
    if (n > 0) reader_.feed(buf, static_cast<std::size_t>(n));
  }
}

std::uint64_t push_iq(const std::string& host, std::uint16_t port,
                      runtime::SampleSource& source, bool f64,
                      Seconds connect_timeout, const std::string& name) {
  TcpConnection conn = TcpConnection::connect(host, port, connect_timeout);

  Hello hello;
  hello.role = PeerRole::kIqPusher;
  hello.sample_rate = source.sample_rate();
  hello.name = name;
  std::vector<std::uint8_t> bytes;
  encode_hello(hello, bytes);
  write_all(conn, bytes);

  // Wait for the ingest side's ack before streaming.
  MessageReader reader;
  bool acked = false;
  while (!acked) {
    std::vector<PollItem> items{{conn.fd(), true, false}};
    poll_fds(items, static_cast<int>(connect_timeout * 1e3));
    if (!items[0].readable && !items[0].error) {
      throw SocketError("iq push: handshake timed out");
    }
    std::uint8_t buf[4096];
    const std::ptrdiff_t n = conn.read_some(buf, sizeof(buf));
    if (n == 0) throw SocketError("iq push: receiver closed during handshake");
    if (n < 0) continue;
    reader.feed(buf, static_cast<std::size_t>(n));
    while (auto message = reader.next()) {
      if (message->type == MsgType::kAck) {
        const Ack ack = decode_ack(message->body);
        if (ack.status != 0) {
          throw SocketError("iq push: receiver refused: " + ack.text);
        }
        acked = true;
      } else if (message->type == MsgType::kBye) {
        const Bye bye = decode_bye(message->body);
        throw SocketError(std::string("iq push: receiver said bye: ") +
                          to_string(bye.reason));
      }
    }
  }

  std::uint64_t total = 0;
  try {
    while (auto chunk = source.next_chunk()) {
      bytes.clear();
      encode_iq_chunk(*chunk, f64, bytes);
      write_all(conn, bytes);
      total += chunk->samples.size();
    }
    bytes.clear();
    encode_iq_end({total, false}, bytes);
    write_all(conn, bytes);
  } catch (const SocketError& error) {
    // Past the ack the receiver owns part of the stream; surface the death
    // as the typed mid-stream abort so callers can tell it from a failed
    // dial (and count it — dashboards watch this during soaks).
    obs::metrics().counter("net.push_aborts").add();
    if (obs::EventLog* log = obs::event_log()) {
      log->emit("net", {obs::Field::str("action", "push-abort"),
                        obs::Field::integer(
                            "samples", static_cast<std::int64_t>(total))});
    }
    throw PushAborted(std::string("iq push aborted mid-stream after ") +
                      std::to_string(total) + " samples: " + error.what());
  }
  obs::metrics().counter("net.iq_samples_out").add(total);
  return total;
}

}  // namespace lfbs::net

#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"
#include "net/admission.h"
#include "net/wire.h"
#include "runtime/frame_bus.h"
#include "runtime/ring_buffer.h"
#include "runtime/stats.h"

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lfbs::net {

/// What to do with a subscriber that cannot keep up with the frame stream
/// once its bounded send queue fills. Either way the stitcher thread never
/// blocks on a stalled socket — the policies only choose what the slow
/// client loses.
enum class SlowConsumerPolicy {
  /// Drop the oldest queued message and count it; the client stays
  /// connected and sees the freshest frames it can absorb (tail -f shape).
  kDropOldest,
  /// Close the connection with Bye(kEvicted); a consumer that must see
  /// every frame would rather reconnect than silently miss some.
  kEvict,
};

struct FrameServerConfig {
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port; FrameServer::port() reports the pick.
  std::uint16_t port = 0;
  std::size_t max_clients = 64;
  /// Per-client send queue bound, in messages. Combined with the kernel
  /// send buffer this is the total slack a slow consumer gets.
  std::size_t send_queue_messages = 256;
  SlowConsumerPolicy slow_consumer = SlowConsumerPolicy::kDropOldest;
  /// Kernel send-buffer cap per accepted connection; 0 keeps the OS
  /// default. Tests set this small to exercise the overflow policies.
  std::size_t send_buffer_bytes = 0;
  /// How long shutdown(drain=true) waits for queues to flush.
  Seconds drain_timeout = 10.0;
  /// This gateway's federation id. When non-zero, frames published with
  /// origin 0 (i.e. decoded locally, not relayed) are stamped with it
  /// before they hit the wire, so downstream relays can spot their own
  /// frames coming back around a cycle. 0 = not federated; frames go out
  /// unstamped, exactly the pre-federation wire behaviour.
  std::uint64_t origin_id = 0;
  /// Bounded ring of the most recently published frames (post origin
  /// stamping), replayed — oldest first, through the subscriber's filter
  /// and slow-consumer policy — to any client whose subscribe sets
  /// SubscribeFilter::replay_recent. Partition recovery for relays and
  /// tailers: a resubscriber heals frames it missed while disconnected
  /// and dedups the overlap by frame identity. 0 (default) keeps no
  /// history and replays nothing.
  std::size_t replay_frames = 0;
  /// Kernel listen backlog. Raised automatically when admission is on so
  /// a connection storm reaches the typed deny path instead of timing out
  /// in SYN retries.
  int listen_backlog = 16;
  /// Admission control: connection budget, per-class subscriber counts
  /// and quotas, typed Bye(kAdmissionDenied) with a retry-after hint.
  /// Disabled (default) keeps the pre-admission behaviour: the server
  /// simply stops accepting at max_clients.
  AdmissionConfig admission;
  /// Global byte budget over every per-client send queue plus the replay
  /// ring (callers may share the same budget with a shard coordinator's
  /// in-flight windows). When a frame cannot be charged the server sheds
  /// in tiers — replay-ring history first, then the oldest best-effort
  /// queued frames — and priority subscribers are never shed; their
  /// overshoot is what `backpressure` bounds. nullptr = unbounded
  /// (pre-budget behaviour). Caller-owned; must outlive the server.
  ResourceBudget* budget = nullptr;
  /// Engaged while `budget` is saturated, released once it drains below
  /// the low-water mark. Hand the same gate to RuntimeConfig::backpressure
  /// and the decode pipeline throttles chunk admission instead of letting
  /// queues grow. Caller-owned; optional.
  runtime::BackpressureGate* backpressure = nullptr;
  /// Fleet control plane hooks (wire v5). When set, a subscriber's
  /// kControlGet / kControlSet is answered with a kControlPlan reply;
  /// when null the server replies with enabled=false, so tools can probe
  /// a gateway for a control plane without a protocol error. Both run on
  /// the server's event-loop thread — keep them cheap (the ControlLoop's
  /// accessors are a mutex-protected state copy, which is fine).
  std::function<ControlPlanMsg()> control_get;
  std::function<ControlPlanMsg(const ControlSet&)> control_set;
};

/// TCP fan-out of decoded frames: bridges a runtime::FrameBus (or direct
/// publish() calls) to N concurrent LFBW1 subscribers.
///
/// Threading: one event-loop thread owns every socket. publish() — called
/// on the stitcher thread via the attached FrameBus handler — only encodes
/// the frame, appends it to each eligible client's bounded queue under the
/// mutex, and wakes the loop; it never touches a socket, so one stalled
/// client can never block frame delivery to the bus's other subscribers or
/// to healthy network clients.
///
/// Per-subscription filters (SubscribeFilter) run server-side at publish
/// time, so a narrow consumer costs only the frames it will actually see.
/// All activity lands in net.* metrics and typed "net" events via src/obs.
class FrameServer {
 public:
  struct Counters {
    std::size_t connects = 0;
    std::size_t disconnects = 0;
    std::size_t evictions = 0;        ///< slow consumers closed by policy
    std::size_t queue_drops = 0;      ///< messages dropped by kDropOldest
    std::size_t frames_sent = 0;      ///< frame messages fully written
    std::size_t protocol_errors = 0;  ///< clients that sent garbage
    std::size_t subscribers = 0;      ///< currently subscribed clients
    std::size_t relays = 0;           ///< peers that announced a RelayHello
    std::size_t replays_sent = 0;     ///< ring frames queued to resubscribers
    // Overload protection. The frame ledger closes exactly after a
    // drained shutdown:
    //   frames_enqueued == frames_sent + queue_drops
    //                      + budget_sheds + frames_discarded
    std::size_t admission_denies = 0;  ///< typed Bye(kAdmissionDenied) sent
    std::size_t quota_sheds = 0;    ///< frames shed by a per-client fps quota
    std::size_t budget_sheds = 0;   ///< best-effort queued frames shed when
                                    ///< the global budget saturated
    std::size_t budget_refusals = 0;  ///< best-effort frames refused at
                                      ///< enqueue (budget still saturated
                                      ///< after shedding) — never counted
                                      ///< in frames_enqueued
    std::size_t ring_sheds = 0;     ///< replay-ring frames trimmed early by
                                    ///< the budget (beyond normal rotation)
    std::size_t frames_enqueued = 0;   ///< frames admitted to client queues
    std::size_t frames_discarded = 0;  ///< queued frames dropped when their
                                       ///< client closed before delivery
    std::size_t replay_truncated = 0;  ///< resubscribes whose replay fell
                                       ///< short of the configured ring
    std::size_t priority_clients = 0;  ///< hellos that announced kPriority
    std::size_t queue_bytes_peak = 0;  ///< deepest queues+ring byte total
    std::size_t control_gets = 0;      ///< kControlGet messages answered
    std::size_t control_sets = 0;      ///< kControlSet messages answered
  };

  /// Binds and starts the event loop. Throws SocketError when the port
  /// cannot be bound.
  explicit FrameServer(FrameServerConfig config);
  ~FrameServer();

  FrameServer(const FrameServer&) = delete;
  FrameServer& operator=(const FrameServer&) = delete;

  std::uint16_t port() const;

  /// Subscribes to `bus`; every published FrameEvent is fanned out to the
  /// matching network subscribers. detach() (or destruction) unsubscribes.
  void attach(runtime::FrameBus& bus);
  void detach();

  /// Queues one frame to every subscribed client whose filter accepts it.
  /// Never blocks: a full queue triggers the slow-consumer policy.
  void publish(const runtime::FrameEvent& event);

  /// Queues a RuntimeStats digest to every subscriber (filters do not
  /// apply). The gateway sends one after its run drains so clients can
  /// verify they received every published frame.
  void publish_stats(const runtime::RuntimeStats& stats);

  /// Queues a control-plane state/plan broadcast to every subscriber
  /// (filters do not apply — plans are fleet-wide, not per-frame). The
  /// gateway calls this after each ControlLoop step so tailing tools see
  /// scheduling decisions as they happen.
  void publish_control(const ControlPlanMsg& plan);

  /// Blocks until at least one client has subscribed, the timeout passes,
  /// or the server stops. Returns whether a subscriber is present.
  bool wait_for_subscriber(Seconds timeout);

  /// Stops accepting, then either drains every client queue and closes
  /// each connection with Bye(kEndOfStream) — blocking up to
  /// drain_timeout — or closes immediately with Bye(kShuttingDown).
  /// Idempotent; the destructor calls shutdown(false) if needed.
  void shutdown(bool drain);

  Counters counters() const;

 private:
  struct Client;

  void loop();
  void handle_incoming(Client& client);
  void pump_writes(Client& client);
  void enqueue_locked(Client& client, const std::vector<std::uint8_t>& bytes,
                      bool is_frame);
  void close_client_locked(Client& client, const char* cause);
  void emit_event(const char* action, std::uint64_t client_id,
                  std::size_t a = 0, std::size_t b = 0);
  /// Queues a typed admission deny and marks the client to close once the
  /// bye flushes.
  void deny_locked(Client& client, const AdmissionDecision& decision);
  /// Frees `need` bytes of budget headroom by shedding, in tier order:
  /// replay-ring history first, then the oldest queued best-effort frames
  /// (deepest queue first). Returns true once try_charge(need) succeeds.
  bool shed_for_budget_locked(std::size_t need);
  /// Drops the oldest queued frame of the best-effort client currently
  /// holding the most queued bytes. False when no best-effort frame is
  /// queued anywhere (only priority traffic remains — never shed).
  bool shed_one_best_effort_locked();
  void note_queue_bytes_locked(Client& client, std::ptrdiff_t delta);
  void drop_ring_front_locked();
  /// Engages the backpressure gate while the budget is saturated and
  /// releases it below the low-water mark.
  void signal_backpressure();
  std::size_t alive_clients_locked() const;
  /// Emits the one typed "overload" summary event whose numbers
  /// lfbs_report's == overload == section renders. Called at shutdown.
  void emit_overload_summary_locked();

  FrameServerConfig config_;
  runtime::FrameBus* bus_ = nullptr;
  runtime::FrameBus::SubscriberId bus_subscription_ = 0;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Client>> clients_;
  /// Replay history plus each entry's approximate wire size, so the
  /// budget can account for it without re-encoding.
  struct ReplayEntry {
    runtime::FrameEvent event;
    std::size_t bytes = 0;
  };
  std::deque<ReplayEntry> replay_ring_;
  std::uint64_t ring_frames_total_ = 0;  ///< frames ever pushed to the ring
  std::size_t ring_bytes_ = 0;
  std::size_t queue_bytes_total_ = 0;  ///< all client queues + outbufs
  AdmissionController admission_;
  Counters counters_;
  bool overload_summary_emitted_ = false;
  bool stop_ = false;
  bool accepting_ = true;
  bool draining_ = false;

  // Owned by the loop thread after construction.
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::thread thread_;
};

}  // namespace lfbs::net

#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>

#include "common/check.h"
#include "common/units.h"
#include "net/wire.h"

namespace lfbs::net {

/// Overload-protection primitives for the gateway. Three layers, each
/// independently usable:
///
///   AdmissionController — who may connect/subscribe at all (connection
///     budget + per-class client counts), decided before any frame is
///     queued. Refusals are typed: Bye(kAdmissionDenied) with a
///     retry-after hint, so a storm of dials degrades into a polite,
///     self-spacing retry schedule instead of a kernel-backlog pileup.
///
///   ClassQuota / TokenBucket — what an admitted client may consume
///     (frames/sec, queued bytes), so one subscriber cannot starve the
///     rest of its class.
///
///   ResourceBudget — a global byte ceiling across every per-client send
///     queue, the replay ring, and (when shared) the shard coordinator's
///     in-flight windows. Saturation triggers tiered shedding in the
///     FrameServer and engages the runtime's BackpressureGate, so memory
///     stays flat under overload instead of growing until eviction.

/// Per-class consumption limits. 0 always means "unlimited" — the
/// defaults are inert, so enabling admission without quotas only adds
/// the connection budget.
struct ClassQuota {
  /// Max simultaneously admitted subscribers of this class.
  std::size_t max_clients = 0;
  /// Max frames/sec queued to one client of this class; excess frames
  /// are shed (typed, counted) before they cost queue memory.
  double max_frames_per_sec = 0.0;
  /// Max bytes queued to one client of this class. Best-effort clients
  /// over this bound lose their oldest frame; priority clients are
  /// evicted instead (typed) — a priority consumer must never silently
  /// miss a frame.
  std::size_t max_queue_bytes = 0;
};

struct AdmissionConfig {
  /// Master switch. Off (default) keeps the pre-admission behaviour
  /// byte-for-byte: no denies, no quotas, no class counting.
  bool enabled = false;
  /// Connections admitted simultaneously; dials beyond it get a typed
  /// Bye(kAdmissionDenied) instead of parking in the listen backlog.
  /// 0 = unlimited.
  std::size_t max_connections = 0;
  /// Retry hint attached to every deny.
  Seconds retry_after = 0.5;
  ClassQuota best_effort;
  ClassQuota priority;

  const ClassQuota& quota(ClientClass cls) const {
    return cls == ClientClass::kPriority ? priority : best_effort;
  }
};

/// What, structurally, is wrong with a quota spec string.
enum class QuotaError {
  kEmpty,     ///< spec or one of its clauses is empty
  kBadKey,    ///< unknown key
  kBadValue,  ///< value does not parse or is out of range
};

const char* to_string(QuotaError code);

/// Thrown by parse_quota_spec on a malformed spec. Derives from
/// CheckError so generic catch sites keep working; the CLI switches on
/// code() for its usage message.
class QuotaParseError : public CheckError {
 public:
  QuotaParseError(QuotaError code, const std::string& what)
      : CheckError(what), code_(code) {}
  QuotaError code() const { return code_; }

 private:
  QuotaError code_;
};

/// Parses the gateway's `--quota` grammar: comma-separated key=value
/// clauses, all optional.
///
///   conns=N          max simultaneous connections
///   retry-after=S    deny retry hint, seconds (fractional ok)
///   be-clients=N     best-effort subscriber count
///   be-fps=X         best-effort frames/sec per client
///   be-queue-kb=N    best-effort queued bytes per client, KiB
///   prio-clients=N   priority subscriber count
///   prio-fps=X       priority frames/sec per client
///   prio-queue-kb=N  priority queued bytes per client, KiB
///
/// The returned config has enabled=true. Throws QuotaParseError (typed)
/// on anything else.
AdmissionConfig parse_quota_spec(const std::string& spec);

/// One admission decision, ready to turn into a wire message.
struct AdmissionDecision {
  bool admitted = true;
  Seconds retry_after = 0.0;  ///< meaningful when !admitted
  const char* reason = "";    ///< human-readable deny cause
};

/// Decides who gets in, and tracks per-class admitted counts. All calls
/// take the caller's own view of active connections so there is a single
/// source of truth (the FrameServer's client list) for the connection
/// count; the controller owns only the class tallies.
///
/// Thread-safety: none — the FrameServer calls it under its own mutex.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config)
      : config_(std::move(config)) {}

  const AdmissionConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled; }

  /// At accept time, before any byte is read.
  AdmissionDecision admit_connection(std::size_t active_connections) const;

  /// At hello time, once the peer's class is known. Counts the client on
  /// success; pair with release_class when it disconnects.
  AdmissionDecision admit_class(ClientClass cls);
  void release_class(ClientClass cls);

  std::size_t admitted(ClientClass cls) const {
    return cls == ClientClass::kPriority ? priority_ : best_effort_;
  }

 private:
  AdmissionConfig config_;
  std::size_t best_effort_ = 0;
  std::size_t priority_ = 0;
};

/// Classic token bucket, refilled continuously at `rate` tokens/sec up
/// to a burst of `rate` (one second of credit). Time is an explicit
/// parameter — seconds on any monotonic clock — so tests drive it
/// deterministically. Not thread-safe; callers hold their own lock.
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double rate, double now) : rate_(rate), tokens_(rate),
                                         last_(now) {}

  /// Takes one token if available. A zero-rate bucket always admits.
  bool try_take(double now) {
    if (rate_ <= 0.0) return true;
    if (now > last_) {
      tokens_ = std::min(rate_, tokens_ + (now - last_) * rate_);
      last_ = now;
    }
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  /// Spends one token of already-accrued credit without consulting the
  /// clock; false means the burst is gone and the caller must refill via
  /// try_take(now). Deferring the refill this way never admits more than
  /// eager refilling would — accrual keeps counting from the last refill
  /// and still clips at the burst cap — but it keeps a clock read off the
  /// publish hot path while credit lasts.
  bool try_take_burst() {
    if (rate_ <= 0.0) return true;
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  double tokens() const { return tokens_; }

 private:
  double rate_ = 0.0;
  double tokens_ = 0.0;
  double last_ = 0.0;
};

/// Global byte ceiling shared by every component that queues memory on
/// behalf of remote peers. Atomic, so the stitcher thread (publish), the
/// server loop thread (drain/close) and a shard coordinator can charge
/// and release concurrently without sharing a lock.
///
/// try_charge is the polite path (refused at the limit, caller sheds);
/// charge is the priority path (always succeeds — priority subscribers
/// are never shed, the overshoot is what the BackpressureGate exists to
/// bound).
class ResourceBudget {
 public:
  explicit ResourceBudget(std::size_t limit_bytes) : limit_(limit_bytes) {}

  std::size_t limit() const { return limit_; }

  bool try_charge(std::size_t bytes) {
    std::size_t used = used_.load(std::memory_order_relaxed);
    for (;;) {
      if (used + bytes > limit_) return false;
      if (used_.compare_exchange_weak(used, used + bytes,
                                      std::memory_order_relaxed)) {
        note_peak(used + bytes);
        return true;
      }
    }
  }

  void charge(std::size_t bytes) {
    const std::size_t now =
        used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    note_peak(now);
  }

  void release(std::size_t bytes) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  std::size_t used() const { return used_.load(std::memory_order_relaxed); }
  /// Deepest the pool has ever been — the overload report's headline.
  std::size_t peak() const { return peak_.load(std::memory_order_relaxed); }

  bool saturated() const { return used() >= limit_; }
  /// Below this the backpressure gate releases; the hysteresis stops the
  /// gate from chattering at the limit.
  bool below_low_water() const { return used() < (limit_ / 4) * 3; }

 private:
  void note_peak(std::size_t now) {
    std::size_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now,
                                        std::memory_order_relaxed)) {
    }
  }

  std::size_t limit_;
  std::atomic<std::size_t> used_{0};
  std::atomic<std::size_t> peak_{0};
};

}  // namespace lfbs::net

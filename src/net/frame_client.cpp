#include "net/frame_client.h"

#include <chrono>
#include <thread>

#include "obs/metrics.h"

namespace lfbs::net {

namespace {

/// Outcome of one connection's read loop.
struct SessionEnd {
  bool got_bye = false;
  Bye bye;
};

/// Per-client auto seed: the name hash mixed with a process-wide
/// construction counter. Deterministic for a given construction order,
/// distinct across the N tailers a process builds — which is exactly what
/// de-lockstepping their backoff schedules needs.
std::uint64_t auto_backoff_seed(const std::string& name) {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  return std::hash<std::string>{}(name) ^
         (0x9e3779b97f4a7c15ull * (n + 1));
}

}  // namespace

Seconds backoff_jitter_delay(Rng& rng, Seconds cap) {
  return rng.uniform(0.0, cap);
}

FrameClient::FrameClient(FrameClientConfig config)
    : config_(std::move(config)),
      backoff_rng_(config_.backoff_seed != 0
                       ? config_.backoff_seed
                       : auto_backoff_seed(config_.name)) {}

void FrameClient::set_filter(const SubscribeFilter& filter) {
  std::lock_guard lock(filter_mutex_);
  config_.filter = filter;
}

SubscribeFilter FrameClient::filter() const {
  std::lock_guard lock(filter_mutex_);
  return config_.filter;
}

TcpConnection FrameClient::connect_with_backoff() {
  Seconds cap = config_.backoff_initial;
  std::size_t attempt = 0;
  for (;;) {
    try {
      return TcpConnection::connect(config_.host, config_.port,
                                    config_.connect_timeout);
    } catch (const SocketError&) {
      if (attempt >= config_.max_connect_attempts) throw;
      ++attempt;
      const Seconds wait = config_.backoff_jitter
                               ? backoff_jitter_delay(backoff_rng_, cap)
                               : cap;
      std::this_thread::sleep_for(std::chrono::duration<double>(wait));
      cap = std::min(cap * 2.0, config_.backoff_max);
    }
  }
}

Bye FrameClient::run(const Callbacks& callbacks) {
  bool ever_connected = false;
  std::size_t admission_retries_left = config_.max_admission_retries;
  for (;;) {
    if (stop_.load(std::memory_order_relaxed)) {
      return {ByeReason::kShuttingDown, "client stopped"};
    }
    TcpConnection conn = connect_with_backoff();

    // Every (re)connect rebuilds the full handshake — hello, the optional
    // relay announcement, and the *current* subscribe filter — so every
    // reconnect path (dead connection, eviction) resubscribes identically
    // to a fresh connect.
    std::vector<std::uint8_t> handshake;
    Hello hello;
    hello.role = PeerRole::kFrameSubscriber;
    hello.name = config_.name;
    hello.client_class = config_.client_class;
    encode_hello(hello, handshake);
    const bool is_relay = config_.relay_hello.gateway_id != 0;
    if (is_relay) encode_relay_hello(config_.relay_hello, handshake);
    encode_subscribe(filter(), handshake);
    if (ever_connected) {
      ++counters_.resubscribes;
      obs::metrics().counter("net.client_resubscribes").add();
    }
    std::size_t sent = 0;
    while (sent < handshake.size()) {
      const std::ptrdiff_t n =
          conn.write_some(handshake.data() + sent, handshake.size() - sent);
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
      } else if (n == -1) {
        std::vector<PollItem> items{{conn.fd(), false, true}};
        poll_fds(items, 100);
      } else {
        break;  // dead before the handshake finished; reconnect below
      }
    }

    MessageReader reader;
    SessionEnd end;
    bool connection_alive = sent == handshake.size();
    // hello ack + subscribe ack (+ relay-hello ack when announcing)
    std::size_t acks_pending = is_relay ? 3 : 2;
    const auto session_start = std::chrono::steady_clock::now();
    const auto handshake_deadline =
        session_start +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(config_.connect_timeout));
    while (connection_alive && !end.got_bye &&
           !stop_.load(std::memory_order_relaxed)) {
      // A server that accepted the dial but never answers the handshake
      // (e.g. a dying gateway whose backlog completed our connect) is a
      // dead connection, not a quiet one — without this a client could
      // poll a silent socket forever.
      if (acks_pending > 0 &&
          std::chrono::steady_clock::now() > handshake_deadline) {
        connection_alive = false;
        break;
      }
      std::vector<PollItem> items{{conn.fd(), true, false}};
      poll_fds(items, 100);
      if (!items[0].readable && !items[0].error) continue;
      std::uint8_t buf[4096];
      const std::ptrdiff_t n = conn.read_some(buf, sizeof(buf));
      if (n == -1) continue;
      if (n == 0) {
        connection_alive = false;
        break;
      }
      try {
        reader.feed(buf, static_cast<std::size_t>(n));
        while (auto message = reader.next()) {
          switch (message->type) {
            case MsgType::kAck: {
              const Ack ack = decode_ack(message->body);
              if (ack.status != 0) {
                throw WireFormatError(WireError::kMalformed,
                                      "server refused: " + ack.text);
              }
              if (ack.replay_shortfall > 0) {
                counters_.replay_shortfall += ack.replay_shortfall;
                obs::metrics()
                    .counter("net.client_replay_shortfall")
                    .add(ack.replay_shortfall);
              }
              if (acks_pending > 0 && --acks_pending == 0) {
                ++counters_.connects;
                if (ever_connected) {
                  ++counters_.reconnects;
                  obs::metrics().counter("net.client_reconnects").add();
                }
                ever_connected = true;
              }
              break;
            }
            case MsgType::kFrame: {
              const runtime::FrameEvent event = decode_frame(message->body);
              ++counters_.frames_received;
              if (callbacks.on_frame) callbacks.on_frame(event);
              break;
            }
            case MsgType::kStats: {
              const WireStats stats = decode_stats(message->body);
              ++counters_.stats_received;
              if (callbacks.on_stats) callbacks.on_stats(stats);
              break;
            }
            case MsgType::kControlPlan: {
              const ControlPlanMsg plan = decode_control_plan(message->body);
              ++counters_.control_plans_received;
              if (callbacks.on_control) callbacks.on_control(plan);
              break;
            }
            case MsgType::kBye:
              end.got_bye = true;
              end.bye = decode_bye(message->body);
              break;
            default:
              throw WireFormatError(WireError::kMalformed,
                                    "unexpected message from server");
          }
          if (end.got_bye) break;
        }
      } catch (const WireFormatError&) {
        // Corrupted bytes (or a hostile peer). Under the reconnect flag a
        // garbled stream is just another dead connection: drop it and let
        // the reconnect path below rebuild the subscription from scratch.
        if (!config_.reconnect_on_protocol_error) throw;
        ++counters_.protocol_resets;
        obs::metrics().counter("net.client_protocol_resets").add();
        connection_alive = false;
      }
    }
    if (end.got_bye) {
      if (end.bye.reason == ByeReason::kAdmissionDenied) {
        ++counters_.admission_denies;
        obs::metrics().counter("net.client_admission_denies").add();
        if (admission_retries_left > 0 &&
            !stop_.load(std::memory_order_relaxed)) {
          // The server is overloaded, not broken: honor its retry-after
          // hint (capped by our backoff ceiling, floored at the backoff
          // initial when the server sent none), then redial. Sleep in
          // slices so stop() stays responsive.
          --admission_retries_left;
          ++counters_.retry_after_waits;
          obs::metrics().counter("net.client_retry_after_waits").add();
          Seconds wait = end.bye.retry_after > 0.0
                             ? end.bye.retry_after
                             : config_.backoff_initial;
          wait = std::min(wait, config_.backoff_max);
          const auto deadline =
              std::chrono::steady_clock::now() +
              std::chrono::duration_cast<
                  std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(wait));
          while (std::chrono::steady_clock::now() < deadline &&
                 !stop_.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
          }
          continue;
        }
      }
      if (end.bye.reason == ByeReason::kEvicted) {
        ++counters_.evictions;
        obs::metrics().counter("net.client_evictions").add();
        if (config_.reconnect_on_evict &&
            !stop_.load(std::memory_order_relaxed)) {
          // The slow-consumer policy closed us; reconnecting immediately
          // is the "must see the live stream" behaviour the relay wants.
          // The handshake above re-applies the current filter.
          continue;
        }
      }
      return end.bye;
    }
    if (stop_.load(std::memory_order_relaxed)) {
      return {ByeReason::kShuttingDown, "client stopped"};
    }
    // Died without a Bye: transient by the Supervisor's definition. The
    // next connect_with_backoff() call spends a fresh retry budget; if the
    // server is truly gone it throws SocketError out of run().
  }
}

namespace {

/// One-shot request/reply against a gateway's control surface: dial,
/// hello, send the request, return the kControlPlan reply. No subscribe —
/// a control probe should not pull the frame stream along with it.
ControlPlanMsg control_exchange(const std::string& host, std::uint16_t port,
                                const std::vector<std::uint8_t>& request,
                                Seconds timeout) {
  TcpConnection conn = TcpConnection::connect(host, port, timeout);
  std::vector<std::uint8_t> out;
  Hello hello;
  hello.role = PeerRole::kFrameSubscriber;
  hello.name = "lfbs-control";
  encode_hello(hello, out);
  out.insert(out.end(), request.begin(), request.end());

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout));
  std::size_t sent = 0;
  while (sent < out.size()) {
    if (std::chrono::steady_clock::now() > deadline) {
      throw SocketError("control exchange timed out mid-send");
    }
    const std::ptrdiff_t n =
        conn.write_some(out.data() + sent, out.size() - sent);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
    } else if (n == -1) {
      std::vector<PollItem> items{{conn.fd(), false, true}};
      poll_fds(items, 100);
    } else {
      throw SocketError("connection died during control exchange");
    }
  }

  MessageReader reader;
  for (;;) {
    if (std::chrono::steady_clock::now() > deadline) {
      throw SocketError("control exchange timed out awaiting reply");
    }
    std::vector<PollItem> items{{conn.fd(), true, false}};
    poll_fds(items, 100);
    if (!items[0].readable && !items[0].error) continue;
    std::uint8_t buf[4096];
    const std::ptrdiff_t n = conn.read_some(buf, sizeof(buf));
    if (n == -1) continue;
    if (n == 0) {
      throw SocketError("connection closed before the control reply");
    }
    reader.feed(buf, static_cast<std::size_t>(n));
    while (auto message = reader.next()) {
      switch (message->type) {
        case MsgType::kAck: {
          const Ack ack = decode_ack(message->body);
          if (ack.status != 0) {
            throw WireFormatError(WireError::kMalformed,
                                  "server refused: " + ack.text);
          }
          break;
        }
        case MsgType::kControlPlan:
          return decode_control_plan(message->body);
        case MsgType::kBye: {
          const Bye bye = decode_bye(message->body);
          throw SocketError("server closed the control exchange: " +
                            std::string(to_string(bye.reason)));
        }
        default:
          // Stats or stray frames can interleave on a busy server.
          break;
      }
    }
  }
}

}  // namespace

ControlPlanMsg fetch_control(const std::string& host, std::uint16_t port,
                             Seconds timeout) {
  std::vector<std::uint8_t> request;
  encode_control_get(request);
  return control_exchange(host, port, request, timeout);
}

ControlPlanMsg send_control(const std::string& host, std::uint16_t port,
                            const ControlSet& set, Seconds timeout) {
  std::vector<std::uint8_t> request;
  encode_control_set(set, request);
  return control_exchange(host, port, request, timeout);
}

}  // namespace lfbs::net

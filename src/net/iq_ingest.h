#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"
#include "net/socket.h"
#include "net/wire.h"
#include "runtime/sample_source.h"

namespace lfbs::net {

struct IqIngestConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; RemoteIqSource::port() reports
  /// How long wait_for_pusher blocks for a capture process to appear.
  Seconds accept_timeout = 30.0;
  /// A mid-stream read silent for longer than this is a stalled link:
  /// next_chunk throws a *transient* SourceError so the runtime supervisor
  /// applies its usual retry-with-backoff policy before failing the run.
  Seconds read_timeout = 30.0;
};

/// A runtime::SampleSource fed over TCP: the decoder end of remote IQ
/// ingest. Binds a listener, waits for one LFBW1 peer in the kIqPusher
/// role, then serves its kIqChunk stream through next_chunk() with exactly
/// the local-source contract:
///
///   - kIqEnd (clean close)            → std::nullopt, end of stream
///   - connection dies mid-stream      → SourceError, non-transient
///   - read stalls past read_timeout   → SourceError, transient (retried)
///   - unparseable bytes               → SourceError, non-transient
///
/// Pull-model like every other source: all socket work happens inside
/// next_chunk on the runtime's producer thread — no extra thread, no queue.
class RemoteIqSource : public runtime::SampleSource {
 public:
  explicit RemoteIqSource(IqIngestConfig config);

  std::uint16_t port() const { return listener_.port(); }

  /// Blocks until a pusher connects and completes its hello; returns the
  /// sample rate it declared. Must be called (successfully) before the
  /// runtime starts, since RuntimeConfig needs the rate up front. Throws
  /// SourceError (non-transient) on timeout or a bad handshake.
  SampleRate wait_for_pusher();

  SampleRate sample_rate() const override { return rate_; }
  std::optional<runtime::SampleChunk> next_chunk() override;

  std::uint64_t total_samples() const { return total_samples_; }
  /// Pusher declared more samples in IqEnd than it actually sent.
  bool truncated() const { return truncated_; }

 private:
  void fail_protocol(const std::string& what);

  IqIngestConfig config_;
  TcpListener listener_;
  TcpConnection conn_{FdHandle{}};
  MessageReader reader_;
  SampleRate rate_ = 0.0;
  std::uint64_t total_samples_ = 0;
  bool ended_ = false;
  bool truncated_ = false;
};

/// The receiver died *mid-stream* — after it acknowledged the handshake
/// and the pusher started streaming chunks. Distinct from a connect or
/// handshake failure (plain SocketError) because the caller's stance
/// differs: the stream is partially delivered and simply redialing would
/// replay samples the receiver may have half-decoded. push_iq counts every
/// one under the `net.push_aborts` metric; `lfbs_gateway --push` maps it
/// to its own exit code.
struct PushAborted : SocketError {
  using SocketError::SocketError;
};

/// Capture-side helper: connect to a RemoteIqSource, declare `rate`, stream
/// every chunk of `source`, finish with IqEnd. `f64` sends full doubles so
/// the remote decode is bit-identical to a local one; false quantizes to
/// float32 (half the bytes, LFBSIQ1 precision). Returns samples pushed.
/// Throws SocketError / WireFormatError on connection or handshake failure,
/// PushAborted when the receiver dies after the stream started.
std::uint64_t push_iq(const std::string& host, std::uint16_t port,
                      runtime::SampleSource& source, bool f64,
                      Seconds connect_timeout = 5.0,
                      const std::string& name = "lfbs-pusher");

}  // namespace lfbs::net

#include "net/chaos/chaos.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "common/check.h"
#include "common/kv_spec.h"
#include "obs/events.h"
#include "obs/metrics.h"

namespace lfbs::net {

namespace {

std::atomic<ChaosEngine*> g_engine{nullptr};

Seconds mono_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void emit_fault(const char* what, int fd) {
  obs::metrics().counter(std::string("chaos.") + what).add(1);
  if (obs::EventLog* log = obs::event_log()) {
    log->emit("chaos", {obs::Field::str("fault", what),
                        obs::Field::integer("fd", fd)});
  }
}

}  // namespace

ChaosConfig parse_chaos_config(const std::string& spec) {
  ChaosConfig config;
  for (const KvField& field : parse_kv_spec(spec)) {
    if (field.key == "seed") {
      config.seed = kv_u64(field);
    } else if (field.key == "refuse") {
      config.refuse = kv_number(field);
    } else if (field.key == "refuse-first") {
      config.refuse_first = kv_u64(field);
    } else if (field.key == "reset") {
      config.reset = kv_number(field);
    } else if (field.key == "reset-limit") {
      config.reset_limit = kv_u64(field);
    } else if (field.key == "reset-skip") {
      config.reset_skip = kv_u64(field);
    } else if (field.key == "stall") {
      config.stall = kv_number(field);
    } else if (field.key == "stall-ms") {
      config.stall_duration = kv_number(field) * 1e-3;
    } else if (field.key == "partition-in") {
      config.partition_in = kv_number(field);
    } else if (field.key == "partition-out") {
      config.partition_out = kv_number(field);
    } else if (field.key == "partition-ms") {
      config.partition_duration = kv_number(field) * 1e-3;
    } else if (field.key == "truncate") {
      config.truncate = kv_number(field);
    } else if (field.key == "corrupt") {
      config.corrupt = kv_number(field);
    } else if (field.key == "delay") {
      config.delay = kv_number(field);
    } else if (field.key == "delay-ms") {
      config.delay_base = kv_number(field) * 1e-3;
    } else if (field.key == "jitter-ms") {
      config.delay_jitter = kv_number(field) * 1e-3;
    } else if (field.key == "scope") {
      if (field.value == "connect") {
        config.on_connect = true;
        config.on_accept = false;
      } else if (field.value == "accept") {
        config.on_connect = false;
        config.on_accept = true;
      } else if (field.value == "both") {
        config.on_connect = true;
        config.on_accept = true;
      } else {
        LFBS_CHECK_MSG(false, "chaos scope must be connect|accept|both, got: " +
                                  field.value);
      }
    } else {
      LFBS_CHECK_MSG(false, "unknown chaos spec key: " + field.key);
    }
  }
  return config;
}

ChaosEngine::ChaosEngine(ChaosConfig config)
    : config_(config), rng_(config.seed) {}

ChaosStats ChaosEngine::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

bool ChaosEngine::connect_refused(const std::string& where) {
  std::lock_guard<std::mutex> lock(mutex_);
  bool refuse = false;
  if (connect_attempts_ < config_.refuse_first) {
    refuse = true;
  } else if (config_.refuse > 0.0 && rng_.bernoulli(config_.refuse)) {
    refuse = true;
  }
  ++connect_attempts_;
  if (refuse) {
    ++stats_.connects_refused;
    emit_fault("connects_refused", -1);
    if (obs::EventLog* log = obs::event_log()) {
      log->emit("chaos", {obs::Field::str("fault", "refuse"),
                          obs::Field::str("peer", where)});
    }
  }
  return refuse;
}

void ChaosEngine::track(int fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  fds_[fd] = ChaosSocket{};
  ++stats_.fds_tracked;
}

void ChaosEngine::untrack(int fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  fds_.erase(fd);
}

Seconds ChaosEngine::delay_draw_locked() {
  Seconds d = config_.delay_base;
  if (config_.delay_jitter > 0.0) d += rng_.uniform(0.0, config_.delay_jitter);
  return d;
}

ChaosEngine::Verdict ChaosEngine::before_read(int fd, std::size_t& n) {
  Seconds sleep_for = 0.0;
  Verdict verdict = Verdict::kPass;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = fds_.find(fd);
    if (it == fds_.end()) return Verdict::kPass;
    ChaosSocket& s = it->second;
    if (s.dead) return Verdict::kDead;
    const Seconds now = mono_now();
    if (now < s.stall_until || now < s.in_until) return Verdict::kBlocked;
    // Fixed draw order (delay, reset, stall, partition, truncate) so a
    // seed replays the same schedule over the same op sequence.
    if (config_.delay > 0.0 && rng_.bernoulli(config_.delay)) {
      ++stats_.delays;
      emit_fault("delays", fd);
      sleep_for = delay_draw_locked();
    }
    if (config_.reset > 0.0 && stats_.resets < config_.reset_limit &&
        rng_.bernoulli(config_.reset) &&
        resets_skipped_++ >= config_.reset_skip) {
      s.dead = true;
      ++stats_.resets;
      emit_fault("resets", fd);
      verdict = Verdict::kDead;
    } else if (config_.stall > 0.0 && rng_.bernoulli(config_.stall)) {
      s.stall_until = now + config_.stall_duration;
      ++stats_.stalls;
      emit_fault("stalls", fd);
      verdict = Verdict::kBlocked;
    } else if (config_.partition_in > 0.0 &&
               rng_.bernoulli(config_.partition_in)) {
      s.in_until = now + config_.partition_duration;
      ++stats_.partitions;
      emit_fault("partitions", fd);
      verdict = Verdict::kBlocked;
    } else if (config_.truncate > 0.0 && n > 1 &&
               rng_.bernoulli(config_.truncate)) {
      n = static_cast<std::size_t>(1 + rng_.uniform_u64(n - 1));
      ++stats_.truncations;
      emit_fault("truncations", fd);
    }
  }
  if (sleep_for > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(sleep_for));
  }
  return verdict;
}

ChaosEngine::Verdict ChaosEngine::before_write(int fd, std::size_t& n) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) return Verdict::kPass;
  ChaosSocket& s = it->second;
  if (s.dead) return Verdict::kDead;
  const Seconds now = mono_now();
  if (now < s.stall_until || now < s.out_until) return Verdict::kBlocked;
  if (config_.reset > 0.0 && stats_.resets < config_.reset_limit &&
      rng_.bernoulli(config_.reset) &&
      resets_skipped_++ >= config_.reset_skip) {
    s.dead = true;
    ++stats_.resets;
    emit_fault("resets", fd);
    return Verdict::kDead;
  }
  if (config_.stall > 0.0 && rng_.bernoulli(config_.stall)) {
    s.stall_until = now + config_.stall_duration;
    ++stats_.stalls;
    emit_fault("stalls", fd);
    return Verdict::kBlocked;
  }
  if (config_.partition_out > 0.0 && rng_.bernoulli(config_.partition_out)) {
    s.out_until = now + config_.partition_duration;
    ++stats_.partitions;
    emit_fault("partitions", fd);
    return Verdict::kBlocked;
  }
  if (config_.truncate > 0.0 && n > 1 && rng_.bernoulli(config_.truncate)) {
    n = static_cast<std::size_t>(1 + rng_.uniform_u64(n - 1));
    ++stats_.truncations;
    emit_fault("truncations", fd);
  }
  return Verdict::kPass;
}

void ChaosEngine::after_read(int fd, std::uint8_t* buf, std::size_t n) {
  if (config_.corrupt <= 0.0 || n == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (fds_.find(fd) == fds_.end()) return;
  if (!rng_.bernoulli(config_.corrupt)) return;
  const std::uint64_t bit = rng_.uniform_u64(std::uint64_t{n} * 8);
  buf[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  ++stats_.corruptions;
  emit_fault("corruptions", fd);
}

bool ChaosEngine::mask_poll(int fd, bool& readable, bool& writable) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) return false;
  const ChaosSocket& s = it->second;
  if (s.dead) return false;  // let the owner read the EOF and clean up
  const Seconds now = mono_now();
  bool masked = false;
  if (readable && (now < s.stall_until || now < s.in_until)) {
    readable = false;
    masked = true;
  }
  if (writable && (now < s.stall_until || now < s.out_until)) {
    writable = false;
    masked = true;
  }
  return masked;
}

void set_chaos_engine(ChaosEngine* engine) {
  g_engine.store(engine, std::memory_order_release);
}

ChaosEngine* chaos_engine() {
  return g_engine.load(std::memory_order_acquire);
}

}  // namespace lfbs::net

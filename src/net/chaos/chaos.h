#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/rng.h"
#include "common/units.h"

namespace lfbs::net {

/// Declarative fault schedule for the socket layer — the wire-level sibling
/// of runtime::FaultPlan. Every probability is a per-event draw from one
/// seeded Rng, so a given (config, workload) pair replays the exact same
/// fault sequence: chaos drills are as reproducible as fault-free runs. A
/// default config (all probabilities zero) injects nothing, and when no
/// ChaosEngine is installed the socket layer pays one relaxed atomic load.
///
/// Faults are drawn per I/O operation on *tracked* connections only (see
/// `scope`): listeners, wake pipes, and untracked peers are never touched.
struct ChaosConfig {
  std::uint64_t seed = 1;

  // --- connection-level --------------------------------------------------
  /// P(a connect() attempt is refused outright) — the dial never reaches
  /// the network. The caller sees SocketError, like ECONNREFUSED.
  double refuse = 0.0;
  /// Refuse the first N connect attempts deterministically (then fall back
  /// to `refuse`). Exact-count replay for backoff tests.
  std::uint64_t refuse_first = 0;

  // --- per-I/O-operation -------------------------------------------------
  /// P(an op kills the connection) — both directions read as EOF from then
  /// on, like a peer reset. The owner notices death exactly as it would a
  /// real one.
  double reset = 0.0;
  /// Engine-wide cap on injected resets; ~0 = unlimited. reset=1,
  /// reset-limit=1 kills exactly the first connection that performs I/O —
  /// the deterministic "kill one worker mid-run" switch.
  std::uint64_t reset_limit = ~std::uint64_t{0};
  /// Swallow the first N resets that would have fired before injecting
  /// any. With reset=1 this pins the kill to I/O op N+1 exactly — e.g.
  /// reset=1,reset-skip=2,reset-limit=1 lets a 2-link pool finish its
  /// (deliberately strict) handshake writes and then kills the next op's
  /// connection, mid-run, deterministically.
  std::uint64_t reset_skip = 0;
  /// P(an op opens a silence window: reads and writes both report
  /// would-block, poll readiness is masked, until the window expires).
  double stall = 0.0;
  Seconds stall_duration = 20e-3;
  /// One-way partitions: same silence mechanism but only the inbound half
  /// (reads, drawn on read ops) or outbound half (writes, on write ops).
  double partition_in = 0.0;
  double partition_out = 0.0;
  Seconds partition_duration = 50e-3;
  /// P(a read/write is capped to a random prefix) — short transfers. The
  /// byte stream itself stays intact, so this alone is end-to-end
  /// transparent to any caller that handles partial I/O correctly.
  double truncate = 0.0;
  /// P(one random bit of a completed read is flipped) — wire corruption.
  /// Surfaces downstream as WireFormatError / garbage payload.
  double corrupt = 0.0;
  /// P(a real sleep of delay_base + U[0, delay_jitter) before a read) —
  /// added latency.
  double delay = 0.0;
  Seconds delay_base = 1e-3;
  Seconds delay_jitter = 0.0;

  // --- scope -------------------------------------------------------------
  /// Which side of the socket layer gets tracked. Default connect-side
  /// only: in-process tests and the soak harness chaos the *client* fds
  /// (tailer, relay upstream links, shard coordinator links) while the
  /// servers they talk to stay clean, so every fault is attributable.
  bool on_connect = true;
  bool on_accept = false;

  bool enabled() const {
    return refuse > 0.0 || refuse_first > 0 || reset > 0.0 || stall > 0.0 ||
           partition_in > 0.0 || partition_out > 0.0 || truncate > 0.0 ||
           corrupt > 0.0 || delay > 0.0;
  }
};

/// Parses a comma-separated "key=value" chaos spec — the same grammar as
/// `--inject-faults` (common/kv_spec.h), e.g.
///   "seed=7,refuse=0.05,reset=0.002,stall=0.01,stall-ms=30,truncate=0.02,
///    corrupt=0.001,delay=0.05,delay-ms=2,jitter-ms=3,partition-in=0.005,
///    partition-ms=50,scope=connect"
/// Keys: seed, refuse, refuse-first, reset, reset-limit, reset-skip,
/// stall, stall-ms, partition-in, partition-out, partition-ms, truncate,
/// corrupt, delay, delay-ms, jitter-ms, scope=connect|accept|both.
/// Unknown keys throw CheckError (CLIs report them as usage errors).
ChaosConfig parse_chaos_config(const std::string& spec);

/// Ground truth of what the engine injected — tests replay a seed and
/// assert this matches, and the soak harness folds it into its summary.
struct ChaosStats {
  std::uint64_t connects_refused = 0;
  std::uint64_t resets = 0;
  std::uint64_t stalls = 0;
  std::uint64_t partitions = 0;
  std::uint64_t truncations = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t delays = 0;
  std::uint64_t fds_tracked = 0;
  std::uint64_t faults() const {
    return connects_refused + resets + stalls + partitions + truncations +
           corruptions + delays;
  }
};

/// Per-socket chaos state: one tracked fd's open fault windows.
struct ChaosSocket {
  bool dead = false;           ///< reset injected: all I/O reads as EOF
  Seconds stall_until = 0.0;   ///< both directions silent until then
  Seconds in_until = 0.0;      ///< inbound partition window
  Seconds out_until = 0.0;     ///< outbound partition window
};

/// The seeded fault injector the socket layer consults. One engine serves
/// the whole process (install with ChaosScope); a single mutex-protected
/// Rng makes the decision schedule a pure function of the op sequence —
/// single-threaded workloads replay bit-exactly, multi-threaded ones are
/// deterministic per interleaving. Faults are counted in ChaosStats,
/// mirrored to chaos.* metrics, and emitted as "chaos" events.
class ChaosEngine {
 public:
  explicit ChaosEngine(ChaosConfig config);

  const ChaosConfig& config() const { return config_; }
  ChaosStats stats() const;

  // --- hooks (called by net/socket.cpp; not part of the public API) -----
  /// Draw for one connect() attempt; true = refuse (caller throws).
  bool connect_refused(const std::string& where);
  /// Begin tracking an established fd (connect- or accept-side).
  void track(int fd);
  /// Stop tracking (fd closed). Safe on untracked fds.
  void untrack(int fd);
  enum class Verdict { kPass, kBlocked, kDead };
  /// Pre-read gate: may sleep (delay), open fault windows, kill the
  /// connection, or cap n (truncate). kPass falls through to the real read.
  Verdict before_read(int fd, std::size_t& n);
  /// Pre-write gate: same contract, outbound windows.
  Verdict before_write(int fd, std::size_t& n);
  /// Post-read corruption: may flip one bit of buf[0..n).
  void after_read(int fd, std::uint8_t* buf, std::size_t n);
  /// Poll masking: clears readable/writable for fds inside a stall or
  /// partition window so event loops don't see readiness the I/O gates
  /// would refuse. Returns true when anything was masked (poll_fds then
  /// naps ~1 ms to avoid a hot spin while the window runs down).
  bool mask_poll(int fd, bool& readable, bool& writable);

 private:
  Seconds delay_draw_locked();

  ChaosConfig config_;
  mutable std::mutex mutex_;
  Rng rng_;
  ChaosStats stats_;
  std::uint64_t connect_attempts_ = 0;
  std::uint64_t resets_skipped_ = 0;
  std::unordered_map<int, ChaosSocket> fds_;
};

/// Process-global engine the socket layer consults (nullptr = chaos off,
/// the default). Like obs::set_tracer: the caller owns the engine and must
/// keep it alive while installed.
void set_chaos_engine(ChaosEngine* engine);
ChaosEngine* chaos_engine();

/// RAII install/uninstall of the global engine.
class ChaosScope {
 public:
  explicit ChaosScope(ChaosEngine& engine) { set_chaos_engine(&engine); }
  ~ChaosScope() { set_chaos_engine(nullptr); }
  ChaosScope(const ChaosScope&) = delete;
  ChaosScope& operator=(const ChaosScope&) = delete;
};

}  // namespace lfbs::net

#include "net/federation/shard_wire.h"

#include "net/wire_io.h"

namespace lfbs::net::federation {

using namespace wire_io;

void encode_shard_assign(const ShardAssign& assign,
                         std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_message(out, MsgType::kShardAssign);
  put_u64(out, assign.window_index);
  put_u8(out, assign.short_capture ? 1 : 0);
  put_u64(out, assign.sample_count);
  put_f64(out, assign.sample_rate);
  put_f64(out, assign.window_seconds);
  put_f64(out, assign.phase_tolerance);
  put_f64(out, assign.vector_tolerance);
  put_u64(out, assign.seed);
  put_u32(out, assign.payload_bits);
  put_u8(out, assign.crc_kind);
  end_message(out, at);
}

ShardAssign decode_shard_assign(std::span<const std::uint8_t> body) {
  Cursor c(body);
  ShardAssign assign;
  assign.window_index = c.get_u64();
  assign.short_capture = (c.get_u8() & 1) != 0;
  assign.sample_count = c.get_u64();
  assign.sample_rate = c.get_f64();
  assign.window_seconds = c.get_f64();
  assign.phase_tolerance = c.get_f64();
  assign.vector_tolerance = c.get_f64();
  assign.seed = c.get_u64();
  assign.payload_bits = c.get_u32();
  assign.crc_kind = c.get_u8();
  if (assign.crc_kind > static_cast<std::uint8_t>(protocol::CrcKind::kCrc16)) {
    throw WireFormatError(WireError::kMalformed, "unknown CRC kind");
  }
  if (assign.sample_rate <= 0.0 || assign.window_seconds <= 0.0) {
    throw WireFormatError(WireError::kMalformed,
                          "shard assign without a positive rate/window");
  }
  return assign;
}

namespace {

void put_confidence(std::vector<std::uint8_t>& out,
                    const core::DecodeConfidence& c) {
  put_f64(out, c.edge_snr_db);
  put_f64(out, c.edge_confidence);
  put_f64(out, c.path_margin);
  put_f64(out, c.cluster_separation);
  put_u64(out, c.erasures);
  put_u8(out, static_cast<std::uint8_t>(c.stage));
}

core::DecodeConfidence get_confidence(Cursor& c) {
  core::DecodeConfidence conf;
  conf.edge_snr_db = c.get_f64();
  conf.edge_confidence = c.get_f64();
  conf.path_margin = c.get_f64();
  conf.cluster_separation = c.get_f64();
  conf.erasures = static_cast<std::size_t>(c.get_u64());
  const std::uint8_t stage = c.get_u8();
  if (stage >
      static_cast<std::uint8_t>(core::FallbackStage::kRelaxedDetection)) {
    throw WireFormatError(WireError::kMalformed, "unknown fallback stage");
  }
  conf.stage = static_cast<core::FallbackStage>(stage);
  return conf;
}

}  // namespace

void encode_shard_result(const ShardResult& result,
                         std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_message(out, MsgType::kShardFrame);
  put_u64(out, result.window_index);
  put_u8(out, result.short_capture ? 1 : 0);
  const auto& d = result.result.diagnostics;
  put_u64(out, d.edges);
  put_u64(out, d.groups);
  put_u64(out, d.collision_groups);
  put_u64(out, d.unresolved_groups);
  put_u64(out, d.erasures);
  put_u64(out, d.fallback_passes);
  put_u64(out, d.fallback_recoveries);
  put_u32(out, static_cast<std::uint32_t>(result.result.streams.size()));
  for (const auto& stream : result.result.streams) {
    put_f64(out, stream.start_sample);
    put_f64(out, stream.rate);
    put_u8(out, stream.collided ? 1 : 0);
    put_f64(out, stream.edge_vector.real());
    put_f64(out, stream.edge_vector.imag());
    put_f64(out, stream.snr_db);
    put_confidence(out, stream.confidence);
    put_packed_bits(out, stream.bits);
    put_u32(out, static_cast<std::uint32_t>(stream.frames.size()));
    for (const auto& frame : stream.frames) {
      std::uint8_t flags = 0;
      if (frame.anchor_ok) flags |= 1;
      if (frame.crc_ok) flags |= 2;
      put_u8(out, flags);
      put_packed_bits(out, frame.payload);
    }
  }
  end_message(out, at);
}

ShardResult decode_shard_result(std::span<const std::uint8_t> body) {
  Cursor c(body);
  ShardResult result;
  result.window_index = c.get_u64();
  result.short_capture = (c.get_u8() & 1) != 0;
  auto& d = result.result.diagnostics;
  d.edges = static_cast<std::size_t>(c.get_u64());
  d.groups = static_cast<std::size_t>(c.get_u64());
  d.collision_groups = static_cast<std::size_t>(c.get_u64());
  d.unresolved_groups = static_cast<std::size_t>(c.get_u64());
  d.erasures = static_cast<std::size_t>(c.get_u64());
  d.fallback_passes = static_cast<std::size_t>(c.get_u64());
  d.fallback_recoveries = static_cast<std::size_t>(c.get_u64());
  const std::uint32_t stream_count = c.get_u32();
  result.result.streams.reserve(stream_count);
  for (std::uint32_t i = 0; i < stream_count; ++i) {
    core::DecodedStream stream;
    stream.start_sample = c.get_f64();
    stream.rate = c.get_f64();
    stream.collided = (c.get_u8() & 1) != 0;
    const double re = c.get_f64();
    const double im = c.get_f64();
    stream.edge_vector = Complex(re, im);
    stream.snr_db = c.get_f64();
    stream.confidence = get_confidence(c);
    stream.bits = c.get_packed_bits();
    const std::uint32_t frame_count = c.get_u32();
    stream.frames.reserve(frame_count);
    for (std::uint32_t f = 0; f < frame_count; ++f) {
      protocol::ParsedFrame frame;
      const std::uint8_t flags = c.get_u8();
      frame.anchor_ok = (flags & 1) != 0;
      frame.crc_ok = (flags & 2) != 0;
      frame.payload = c.get_packed_bits();
      stream.frames.push_back(std::move(frame));
    }
    result.result.streams.push_back(std::move(stream));
  }
  return result;
}

}  // namespace lfbs::net::federation

#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "net/frame_client.h"
#include "net/frame_server.h"

namespace lfbs::net::federation {

/// Bounded recently-seen set of frame identity keys — the per-hop dedup of
/// the federation plane. insert() answers "is this frame new here?"; once
/// capacity is reached the oldest keys age out FIFO, so memory is constant
/// no matter how long the gateway runs. Capacity only needs to cover the
/// frames that can plausibly still be circling (path length × in-flight
/// frames); re-admitting a frame older than that costs a duplicate
/// delivery, never a loss. Thread-safe: every upstream link thread and the
/// local publish path insert concurrently.
class FrameDeduper {
 public:
  explicit FrameDeduper(std::size_t capacity = 4096);

  /// True when `key` was not in the set (and is now); false = duplicate.
  bool insert(std::uint64_t key);

  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::unordered_set<std::uint64_t> seen_;
  std::deque<std::uint64_t> order_;  ///< insertion order, for FIFO aging
};

struct RelayUpstream {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct RelayConfig {
  /// This relay's gateway id; must be non-zero and unique in the topology.
  std::uint64_t gateway_id = 0;
  /// Frames that already took this many hops are dropped, not republished —
  /// the hard backstop against routing loops dedup can't see (e.g. after a
  /// key aged out of a small dedup window).
  std::uint8_t hop_limit = 4;
  std::string name = "lfbs-relay";
  std::vector<RelayUpstream> upstreams;
  /// Filter sent to every upstream subscription.
  SubscribeFilter filter;
  std::size_t dedup_capacity = 4096;
  Seconds connect_timeout = 5.0;
  /// Partition recovery: set replay_recent on every upstream subscription,
  /// so a (re)connecting link asks for the upstream's recent-frame ring
  /// (FrameServerConfig::replay_frames) and heals frames missed while the
  /// link was down. The relay's deduper suppresses the overlap — a healed
  /// partition costs duplicate transfers, never duplicate deliveries.
  bool replay_on_reconnect = true;
  /// Ride out wire corruption on an upstream link by dropping and
  /// redialing it (FrameClientConfig::reconnect_on_protocol_error) instead
  /// of abandoning the upstream. Relay links are infrastructure.
  bool reconnect_on_protocol_error = true;
};

/// Relay mode: subscribes to one or more upstream gateways and republishes
/// every *new* frame on this gateway's own FrameServer, making N gateways
/// one federated frame plane.
///
/// Loop safety is layered, cheapest test first:
///   1. origin check — a frame this gateway first published (origin ==
///      gateway_id) came back around a cycle; drop.
///   2. hop limit — hops ≥ hop_limit; drop. Bounds any path length.
///   3. dedup — the frame's FrameIdentity key (epoch, window, stream key,
///      payload CRC; origin and hops excluded, they mutate per hop) was
///      already seen here, via another upstream or an earlier lap; drop.
/// A frame that survives all three is republished with hops + 1 and its
/// origin untouched, so every subscriber anywhere in the mesh sees each
/// frame exactly once (per dedup window).
///
/// Each upstream gets its own FrameClient thread with the reconnect-on-
/// evict policy: a relay link is infrastructure and should heal itself.
class FrameRelay {
 public:
  struct Counters {
    std::size_t relayed = 0;      ///< frames republished downstream
    std::size_t dup_drops = 0;    ///< dropped: identity already seen
    std::size_t loop_drops = 0;   ///< dropped: own origin came back
    std::size_t hop_drops = 0;    ///< dropped: hop limit reached
    std::size_t local_published = 0;  ///< frames entered via publish_local
    std::size_t upstream_ends = 0;    ///< upstreams that drained cleanly
    std::size_t upstream_failures = 0;  ///< upstreams lost for good
  };

  /// `server` must outlive the relay; republished frames go out through it.
  FrameRelay(RelayConfig config, FrameServer& server);
  ~FrameRelay();

  FrameRelay(const FrameRelay&) = delete;
  FrameRelay& operator=(const FrameRelay&) = delete;

  /// Starts one subscriber thread per configured upstream.
  void start();

  /// Blocks until every upstream link ended. True when all of them drained
  /// cleanly (Bye kEndOfStream); false when any was lost for good.
  bool join();

  /// Asks every upstream link to stop; join() then returns promptly.
  void stop();

  /// Routes a *locally decoded* frame through the relay: stamps this
  /// gateway as origin, seeds the dedup (so the frame is dropped if it
  /// ever comes back), and publishes. A gateway that both decodes and
  /// relays feeds its FrameBus through this instead of straight into the
  /// server.
  void publish_local(const runtime::FrameEvent& event);

  Counters counters() const;

 private:
  struct Link;

  void on_upstream_frame(const runtime::FrameEvent& event);

  RelayConfig config_;
  FrameServer& server_;
  FrameDeduper deduper_;
  mutable std::mutex mutex_;
  Counters counters_;
  std::vector<std::unique_ptr<Link>> links_;
  bool started_ = false;
};

}  // namespace lfbs::net::federation

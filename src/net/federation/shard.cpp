#include "net/federation/shard.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <optional>

#include "common/check.h"
#include "net/federation/shard_wire.h"
#include "net/wire.h"
#include "obs/events.h"
#include "obs/metrics.h"

namespace lfbs::net::federation {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kIqChunkSamples = 1 << 16;

/// A dispatched window retained (failover mode) until its result lands, so
/// a dead worker's in-flight work can be replayed to a survivor.
struct PendingWindow {
  bool short_capture = false;
  std::vector<Complex> samples;
};

}  // namespace

/// One worker connection plus its in-flight bookkeeping.
struct ShardedDecoder::WorkerLink {
  TcpConnection conn;
  MessageReader reader;
  std::size_t index = 0;  ///< position in the pool, for accounting
  bool acked = false;
  bool got_bye = false;
  bool dead = false;  ///< failed over; conn closed, never touched again
  std::size_t assigned = 0;
  std::map<std::uint64_t, Clock::time_point> dispatched_at;
  Clock::time_point end_sent_at{};  ///< when kIqEnd went out (bye deadline)
  bool end_sent = false;

  explicit WorkerLink(TcpConnection connection)
      : conn(std::move(connection)) {}
};

ShardedDecoder::ShardedDecoder(ShardConfig config)
    : config_(std::move(config)) {
  LFBS_CHECK_MSG(!config_.workers.empty(),
                 "sharded decode requires at least one worker");
  LFBS_CHECK(config_.windowed.window > 0.0);
}

ShardedDecoder::Result ShardedDecoder::run(runtime::SampleSource& source) {
  static obs::Counter& windows_counter =
      obs::metrics().counter("federation.shard_windows");
  static obs::HistogramMetric& latency_hist =
      obs::metrics().histogram("federation.shard_latency_ms");
  static obs::Counter& workers_lost_counter =
      obs::metrics().counter("net.failover_workers_lost");
  static obs::Counter& reassigned_counter =
      obs::metrics().counter("net.failover_windows_reassigned");
  static obs::Counter& budget_throttles_counter =
      obs::metrics().counter("net.shard_budget_throttles");

  const SampleRate fs = source.sample_rate();
  LFBS_CHECK_MSG(fs > 0.0, "sample source must declare a sample rate");
  const core::WindowedDecoder decoder(config_.windowed);
  const std::size_t window_samples = decoder.window_samples(fs);

  const auto t0 = Clock::now();

  // Results arrive in whatever order workers finish; the merge below
  // consumes them strictly by window index.
  std::map<std::uint64_t, ShardResult> results;
  runtime::LatencyRecorder latency;

  // --- pool connect + handshake ------------------------------------------
  // Deliberately strict even in failover mode: a pool that starts broken
  // is a configuration error, not a runtime fault to ride out.
  std::vector<std::unique_ptr<WorkerLink>> links;
  links.reserve(config_.workers.size());
  for (const auto& endpoint : config_.workers) {
    auto link = std::make_unique<WorkerLink>(TcpConnection::connect(
        endpoint.host, endpoint.port, config_.connect_timeout));
    link->index = links.size();
    std::vector<std::uint8_t> hello_bytes;
    Hello hello;
    hello.role = PeerRole::kShardCoordinator;
    hello.sample_rate = fs;
    hello.name = config_.name;
    encode_hello(hello, hello_bytes);
    std::size_t sent = 0;
    while (sent < hello_bytes.size()) {
      const std::ptrdiff_t n = link->conn.write_some(
          hello_bytes.data() + sent, hello_bytes.size() - sent);
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
      } else if (n == -1) {
        std::vector<PollItem> items{{link->conn.fd(), false, true}};
        poll_fds(items, 100);
      } else {
        throw SocketError("shard worker closed during handshake");
      }
    }
    links.push_back(std::move(link));
  }

  ShardStats stats;
  // Failover state: retained in-flight windows, and window indices
  // harvested from dead links awaiting re-dispatch.
  std::map<std::uint64_t, PendingWindow> pending;
  std::deque<std::uint64_t> reassign_queue;

  // Budget accounting (failover mode): every retained window's sample
  // bytes are charged against the shared pool while the window is in
  // flight and released when its result lands. The guard squares the
  // books on every exit path — including the throws below — so a failed
  // run never leaks its in-flight bytes into the gateway's pool.
  const auto pending_bytes = [](const PendingWindow& w) {
    return w.samples.size() * sizeof(Complex);
  };
  struct PendingBudgetGuard {
    ResourceBudget* budget;
    const std::map<std::uint64_t, PendingWindow>& pending;
    ~PendingBudgetGuard() {
      if (budget == nullptr) return;
      for (const auto& [index, w] : pending) {
        (void)index;
        budget->release(w.samples.size() * sizeof(Complex));
      }
    }
  } budget_guard{config_.failover ? config_.budget : nullptr, pending};

  // Declares a link dead: close it, harvest its outstanding windows into
  // the reassign queue, count the loss. Never called in strict mode — the
  // call sites throw instead.
  const auto fail_link = [&](WorkerLink& link, const char* reason) {
    if (link.dead) return;
    link.dead = true;
    link.conn.close();
    ++stats.workers_lost;
    workers_lost_counter.add();
    for (const auto& [window_index, at] : link.dispatched_at) {
      (void)at;
      reassign_queue.push_back(window_index);
    }
    if (obs::EventLog* log = obs::event_log()) {
      log->emit("federation",
                {obs::Field::str("action", "worker-lost"),
                 obs::Field::str("reason", reason),
                 obs::Field::integer("worker",
                                     static_cast<std::int64_t>(link.index)),
                 obs::Field::integer("outstanding",
                                     static_cast<std::int64_t>(
                                         link.dispatched_at.size()))});
    }
    link.dispatched_at.clear();
  };

  // Drains whatever a worker has sent, recording results. Called
  // opportunistically while writing (deadlock avoidance: a worker blocked
  // sending us a result must never stall our IQ send forever) and in the
  // final collection loop.
  const auto drain_incoming = [&](WorkerLink& link) {
    if (link.dead) return;
    for (;;) {
      std::uint8_t buf[65536];
      const std::ptrdiff_t n = link.conn.read_some(buf, sizeof(buf));
      if (n == -1) return;  // nothing pending
      if (n == 0) {
        if (!link.got_bye) {
          if (!config_.failover) {
            throw SocketError("shard worker died mid-run");
          }
          fail_link(link, "died");
        }
        return;
      }
      try {
        link.reader.feed(buf, static_cast<std::size_t>(n));
        while (auto message = link.reader.next()) {
          switch (message->type) {
            case MsgType::kAck:
              link.acked = true;
              break;
            case MsgType::kShardFrame: {
              ShardResult result = decode_shard_result(message->body);
              const auto it = link.dispatched_at.find(result.window_index);
              if (it != link.dispatched_at.end()) {
                const double ms =
                    std::chrono::duration<double, std::milli>(Clock::now() -
                                                              it->second)
                        .count();
                latency_hist.record(ms);
                latency.record(ms / 1e3);
                link.dispatched_at.erase(it);
              }
              const auto pit = pending.find(result.window_index);
              if (pit != pending.end()) {
                if (config_.budget != nullptr) {
                  config_.budget->release(pending_bytes(pit->second));
                }
                pending.erase(pit);
              }
              results.emplace(result.window_index, std::move(result));
              break;
            }
            case MsgType::kStats:
              break;  // informational; workers don't send these today
            case MsgType::kBye: {
              const Bye bye = decode_bye(message->body);
              link.got_bye = true;
              if (bye.reason != ByeReason::kEndOfStream) {
                if (!config_.failover) {
                  throw SocketError("shard worker closed: " +
                                    std::string(to_string(bye.reason)));
                }
                fail_link(link, "refused");
                return;
              }
              break;
            }
            default:
              throw WireFormatError(WireError::kMalformed,
                                    "unexpected message from shard worker");
          }
        }
      } catch (const WireFormatError&) {
        // A worker speaking garbage is as lost as a dead one: its results
        // cannot be trusted past this point.
        if (!config_.failover) throw;
        fail_link(link, "garbage");
        return;
      }
    }
  };

  // Deadline sweep (failover mode): a link whose oldest in-flight window
  // (or pending Bye) is older than worker_deadline is wedged — fail it so
  // its work moves to the survivors instead of stalling the run.
  const auto check_deadlines = [&] {
    if (!config_.failover) return;
    const auto now = Clock::now();
    const auto deadline =
        std::chrono::duration<double>(config_.worker_deadline);
    for (auto& link : links) {
      if (link->dead) continue;
      bool overdue = false;
      for (const auto& [window_index, at] : link->dispatched_at) {
        (void)window_index;
        if (now - at > deadline) {
          overdue = true;
          break;
        }
      }
      if (!overdue && link->end_sent && !link->got_bye &&
          now - link->end_sent_at > deadline) {
        overdue = true;
      }
      if (overdue) fail_link(*link, "deadline");
    }
  };

  // Fully writes `bytes` to a worker, draining every link's reads while
  // the send buffer is full. False when the link died under the write
  // (failover mode; its outstanding windows are already queued for
  // reassignment).
  const auto send_all = [&](WorkerLink& link,
                            const std::vector<std::uint8_t>& bytes) -> bool {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      if (link.dead) return false;
      const std::ptrdiff_t n =
          link.conn.write_some(bytes.data() + sent, bytes.size() - sent);
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
        continue;
      }
      if (n == 0) {
        if (!config_.failover) {
          throw SocketError("shard worker died mid-send");
        }
        fail_link(link, "died mid-send");
        return false;
      }
      std::vector<PollItem> items{{link.conn.fd(), true, true}};
      poll_fds(items, 100);
      for (auto& other : links) drain_incoming(*other);
      check_deadlines();
    }
    return true;
  };

  // Encodes one assignment (+ its f64 IQ) and writes it to `link`.
  const auto transmit = [&](WorkerLink& link, std::uint64_t window_index,
                            bool short_capture,
                            const std::vector<Complex>& samples) {
    ShardAssign assign;
    assign.window_index = window_index;
    assign.short_capture = short_capture;
    assign.sample_count = samples.size();
    assign.sample_rate = fs;
    assign.window_seconds = config_.windowed.window;
    assign.phase_tolerance = config_.windowed.phase_tolerance;
    assign.vector_tolerance = config_.windowed.vector_tolerance;
    assign.seed = config_.windowed.decoder.seed;
    assign.payload_bits = static_cast<std::uint32_t>(
        config_.windowed.decoder.frame.payload_bits);
    assign.crc_kind =
        static_cast<std::uint8_t>(config_.windowed.decoder.frame.crc);
    std::vector<std::uint8_t> bytes;
    encode_shard_assign(assign, bytes);
    // The window's samples, window-local offsets, always f64: the worker
    // must decode the coordinator's exact bit patterns.
    for (std::size_t off = 0; off < samples.size(); off += kIqChunkSamples) {
      const std::size_t take =
          std::min(kIqChunkSamples, samples.size() - off);
      runtime::SampleChunk chunk;
      chunk.first_sample = off;
      chunk.samples.assign(samples.begin() + static_cast<std::ptrdiff_t>(off),
                           samples.begin() +
                               static_cast<std::ptrdiff_t>(off + take));
      encode_iq_chunk(chunk, /*f64=*/true, bytes);
    }
    // Bookkeep before the write: if the link dies mid-send, fail_link
    // harvests this window into the reassign queue with the rest.
    link.dispatched_at.emplace(window_index, Clock::now());
    ++link.assigned;
    if (!send_all(link, bytes)) return;
    drain_incoming(link);
  };

  // Round-robin over the surviving links, nullptr when none remain.
  std::size_t rr_cursor = 0;
  const auto pick_alive = [&]() -> WorkerLink* {
    for (std::size_t tries = 0; tries < links.size(); ++tries) {
      WorkerLink* link = links[rr_cursor++ % links.size()].get();
      if (!link->dead) return link;
    }
    return nullptr;
  };

  // Re-dispatches windows harvested from dead links. Each iteration either
  // lands a window on a survivor or kills another link, so it terminates;
  // zero survivors with work outstanding is the loud failure.
  const auto pump_reassign = [&] {
    while (!reassign_queue.empty()) {
      const std::uint64_t window_index = reassign_queue.front();
      reassign_queue.pop_front();
      if (results.find(window_index) != results.end()) continue;
      const auto it = pending.find(window_index);
      if (it == pending.end()) continue;  // result landed before the death
      WorkerLink* target = pick_alive();
      if (target == nullptr) {
        throw SocketError("shard failover: no workers left (window " +
                          std::to_string(window_index) + " outstanding)");
      }
      ++stats.windows_reassigned;
      reassigned_counter.add();
      if (obs::EventLog* log = obs::event_log()) {
        log->emit("federation",
                  {obs::Field::str("action", "reassign"),
                   obs::Field::integer(
                       "window", static_cast<std::int64_t>(window_index)),
                   obs::Field::integer(
                       "worker", static_cast<std::int64_t>(target->index))});
      }
      transmit(*target, window_index, it->second.short_capture,
               it->second.samples);
    }
  };

  // Dispatches one window (or the short-capture whole buffer) to a worker.
  const auto dispatch = [&](std::uint64_t window_index, bool short_capture,
                            std::vector<Complex> samples) {
    ++stats.windows_assigned;
    windows_counter.add();
    WorkerLink* link =
        links[static_cast<std::size_t>(window_index) % links.size()].get();
    if (link->dead) link = pick_alive();
    if (link == nullptr) {
      throw SocketError("shard failover: no workers left to assign window " +
                        std::to_string(window_index));
    }
    if (config_.failover) {
      const std::size_t bytes = samples.size() * sizeof(Complex);
      if (config_.budget != nullptr && bytes > 0) {
        // Bounded saturation throttle: while the shared pool is full,
        // drain results (a landing result frees its window's bytes)
        // instead of growing the overshoot. Past the deadline charge
        // unconditionally — dispatch must make progress even when the
        // gateway's subscribers hold the pool at its limit, and the
        // overshoot is bounded by one window.
        bool charged = config_.budget->try_charge(bytes);
        if (!charged) {
          budget_throttles_counter.add();
          const auto throttle_deadline =
              Clock::now() + std::chrono::seconds(2);
          while (!charged && Clock::now() < throttle_deadline) {
            std::vector<PollItem> items;
            for (const auto& l : links) {
              if (!l->dead) items.push_back({l->conn.fd(), true, false});
            }
            if (items.empty()) break;
            poll_fds(items, 50);
            for (auto& l : links) drain_incoming(*l);
            check_deadlines();
            charged = config_.budget->try_charge(bytes);
          }
          if (!charged) config_.budget->charge(bytes);
        }
      }
      const auto it =
          pending
              .emplace(window_index,
                       PendingWindow{short_capture, std::move(samples)})
              .first;
      transmit(*link, window_index, short_capture, it->second.samples);
    } else {
      transmit(*link, window_index, short_capture, samples);
    }
    pump_reassign();
  };

  // --- IqSharder: the runtime assembler's slicing, verbatim --------------
  // Same lattice rules: zero-fill gaps so absolute positions hold, hold
  // early windows back until the capture is known long (short captures
  // take the whole-buffer plain-decode path), drop a tail shorter than a
  // quarter window.
  std::vector<Complex> window;
  window.reserve(window_samples);
  std::vector<std::vector<Complex>> held;
  std::uint64_t next_expected = 0;
  std::uint64_t next_window_index = 0;
  bool known_long = false;

  const auto close_full_window = [&] {
    if (known_long) {
      dispatch(next_window_index++, /*short_capture=*/false,
               std::move(window));
    } else {
      held.push_back(std::move(window));
      ++next_window_index;
    }
    window = {};
    window.reserve(window_samples);
  };
  const auto append = [&](const Complex* data, std::size_t n) {
    std::size_t done = 0;
    while (done < n) {
      const std::size_t take =
          std::min(n - done, window_samples - window.size());
      window.insert(window.end(), data + done, data + done + take);
      done += take;
      if (window.size() == window_samples) close_full_window();
    }
  };

  while (auto chunk = source.next_chunk()) {
    if (chunk->first_sample > next_expected) {
      std::uint64_t gap = chunk->first_sample - next_expected;
      const std::vector<Complex> zeros(
          std::min<std::uint64_t>(gap, window_samples), Complex{});
      while (gap > 0) {
        const auto take = std::min<std::uint64_t>(gap, zeros.size());
        append(zeros.data(), static_cast<std::size_t>(take));
        gap -= take;
      }
      next_expected = chunk->first_sample;
    }
    std::size_t skip = 0;
    if (chunk->first_sample < next_expected) {
      skip = static_cast<std::size_t>(std::min<std::uint64_t>(
          next_expected - chunk->first_sample, chunk->size()));
    }
    const std::size_t fresh = chunk->size() - skip;
    append(chunk->samples.data() + skip, fresh);
    stats.samples_in += fresh;
    next_expected += fresh;
    if (!known_long &&
        !decoder.is_short_capture(static_cast<std::size_t>(next_expected),
                                  fs)) {
      known_long = true;
      std::uint64_t index = 0;
      for (auto& held_window : held) {
        dispatch(index++, /*short_capture=*/false, std::move(held_window));
      }
      held.clear();
    }
  }

  std::uint64_t expected_windows = 0;
  bool is_short = false;
  if (!known_long) {
    // Short capture: one whole-buffer assignment, plain-decoder path.
    std::vector<Complex> all;
    for (auto& held_window : held) {
      all.insert(all.end(), held_window.begin(), held_window.end());
    }
    all.insert(all.end(), window.begin(), window.end());
    dispatch(0, /*short_capture=*/true, std::move(all));
    expected_windows = 1;
    is_short = true;
  } else {
    if (window.size() >= window_samples / 4) {
      dispatch(next_window_index++, /*short_capture=*/false,
               std::move(window));
    }
    expected_windows = next_window_index;
  }

  // --- end of input: collect every window, then close the links ----------
  // iq_end is deferred until every result is in hand: a survivor may still
  // be needed to take over a dead worker's outstanding windows.
  pump_reassign();
  while (results.size() < expected_windows) {
    std::vector<PollItem> items;
    for (const auto& link : links) {
      if (!link->dead) items.push_back({link->conn.fd(), true, false});
    }
    if (items.empty()) {
      throw SocketError(
          "shard failover: no workers left with " +
          std::to_string(expected_windows - results.size()) +
          " window(s) outstanding");
    }
    poll_fds(items, 250);
    for (auto& link : links) drain_incoming(*link);
    check_deadlines();
    pump_reassign();
  }
  for (auto& link : links) {
    if (link->dead) continue;
    std::vector<std::uint8_t> end_bytes;
    encode_iq_end({0, false}, end_bytes);
    link->end_sent = true;
    link->end_sent_at = Clock::now();
    send_all(*link, end_bytes);
  }
  while (std::any_of(links.begin(), links.end(), [](const auto& l) {
    return !l->dead && !l->got_bye;
  })) {
    std::vector<PollItem> items;
    for (const auto& link : links) {
      if (!link->dead && !link->got_bye) {
        items.push_back({link->conn.fd(), true, false});
      }
    }
    poll_fds(items, 250);
    for (auto& link : links) {
      if (!link->dead && !link->got_bye) drain_incoming(*link);
    }
    check_deadlines();
  }

  // Strict completeness: every window must have come back.
  LFBS_CHECK_MSG(results.size() == expected_windows,
                 "sharded decode is missing window results");

  // --- ShardMerger: the runtime stitcher, re-used verbatim ---------------
  Result out;
  if (is_short) {
    out.decode = std::move(results.begin()->second.result);
  } else {
    core::WindowStitcher stitcher(config_.windowed, fs);
    for (std::uint64_t index = 0; index < expected_windows; ++index) {
      const auto it = results.find(index);
      LFBS_CHECK_MSG(it != results.end(),
                     "sharded decode is missing a window");
      stitcher.add_window(std::move(it->second.result),
                          static_cast<std::size_t>(index) * window_samples);
    }
    out.decode = stitcher.finish();
  }

  stats.windows_decoded = results.size();
  stats.frames_published = runtime::publish_frames(
      bus_, out.decode, config_.epoch_index, window_samples);
  stats.streams = out.decode.streams.size();
  stats.wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  runtime::RuntimeStats latency_digest;
  latency.summarize(latency_digest);
  stats.shard_latency_p50_ms = latency_digest.window_latency_p50_ms;
  stats.shard_latency_p99_ms = latency_digest.window_latency_p99_ms;
  if (obs::EventLog* log = obs::event_log()) {
    log->emit("federation",
              {obs::Field::str("action", "shard-run"),
               obs::Field::integer(
                   "windows", static_cast<std::int64_t>(stats.windows_decoded)),
               obs::Field::integer(
                   "workers", static_cast<std::int64_t>(links.size())),
               obs::Field::integer(
                   "frames",
                   static_cast<std::int64_t>(stats.frames_published)),
               obs::Field::num("latency_p99_ms", stats.shard_latency_p99_ms)});
  }
  out.stats = stats;
  return out;
}

}  // namespace lfbs::net::federation

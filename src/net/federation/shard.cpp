#include "net/federation/shard.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <optional>

#include "common/check.h"
#include "net/federation/shard_wire.h"
#include "net/wire.h"
#include "obs/events.h"
#include "obs/metrics.h"

namespace lfbs::net::federation {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kIqChunkSamples = 1 << 16;

}  // namespace

/// One worker connection plus its in-flight bookkeeping.
struct ShardedDecoder::WorkerLink {
  TcpConnection conn;
  MessageReader reader;
  bool acked = false;
  bool got_bye = false;
  std::size_t assigned = 0;
  std::map<std::uint64_t, Clock::time_point> dispatched_at;

  explicit WorkerLink(TcpConnection connection)
      : conn(std::move(connection)) {}
};

ShardedDecoder::ShardedDecoder(ShardConfig config)
    : config_(std::move(config)) {
  LFBS_CHECK_MSG(!config_.workers.empty(),
                 "sharded decode requires at least one worker");
  LFBS_CHECK(config_.windowed.window > 0.0);
}

ShardedDecoder::Result ShardedDecoder::run(runtime::SampleSource& source) {
  static obs::Counter& windows_counter =
      obs::metrics().counter("federation.shard_windows");
  static obs::HistogramMetric& latency_hist =
      obs::metrics().histogram("federation.shard_latency_ms");

  const SampleRate fs = source.sample_rate();
  LFBS_CHECK_MSG(fs > 0.0, "sample source must declare a sample rate");
  const core::WindowedDecoder decoder(config_.windowed);
  const std::size_t window_samples = decoder.window_samples(fs);

  const auto t0 = Clock::now();

  // Results arrive in whatever order workers finish; the merge below
  // consumes them strictly by window index.
  std::map<std::uint64_t, ShardResult> results;
  runtime::LatencyRecorder latency;

  // --- pool connect + handshake ------------------------------------------
  std::vector<std::unique_ptr<WorkerLink>> links;
  links.reserve(config_.workers.size());
  for (const auto& endpoint : config_.workers) {
    auto link = std::make_unique<WorkerLink>(TcpConnection::connect(
        endpoint.host, endpoint.port, config_.connect_timeout));
    std::vector<std::uint8_t> hello_bytes;
    Hello hello;
    hello.role = PeerRole::kShardCoordinator;
    hello.sample_rate = fs;
    hello.name = config_.name;
    encode_hello(hello, hello_bytes);
    std::size_t sent = 0;
    while (sent < hello_bytes.size()) {
      const std::ptrdiff_t n = link->conn.write_some(
          hello_bytes.data() + sent, hello_bytes.size() - sent);
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
      } else if (n == -1) {
        std::vector<PollItem> items{{link->conn.fd(), false, true}};
        poll_fds(items, 100);
      } else {
        throw SocketError("shard worker closed during handshake");
      }
    }
    links.push_back(std::move(link));
  }

  // Drains whatever a worker has sent, recording results. Called
  // opportunistically while writing (deadlock avoidance: a worker blocked
  // sending us a result must never stall our IQ send forever) and in the
  // final collection loop.
  const auto drain_incoming = [&](WorkerLink& link) {
    for (;;) {
      std::uint8_t buf[65536];
      const std::ptrdiff_t n = link.conn.read_some(buf, sizeof(buf));
      if (n == -1) return;  // nothing pending
      if (n == 0) {
        if (!link.got_bye) {
          throw SocketError("shard worker died mid-run");
        }
        return;
      }
      link.reader.feed(buf, static_cast<std::size_t>(n));
      while (auto message = link.reader.next()) {
        switch (message->type) {
          case MsgType::kAck:
            link.acked = true;
            break;
          case MsgType::kShardFrame: {
            ShardResult result = decode_shard_result(message->body);
            const auto it = link.dispatched_at.find(result.window_index);
            if (it != link.dispatched_at.end()) {
              const double ms =
                  std::chrono::duration<double, std::milli>(Clock::now() -
                                                            it->second)
                      .count();
              latency_hist.record(ms);
              latency.record(ms / 1e3);
              link.dispatched_at.erase(it);
            }
            results.emplace(result.window_index, std::move(result));
            break;
          }
          case MsgType::kStats:
            break;  // informational; workers don't send these today
          case MsgType::kBye: {
            const Bye bye = decode_bye(message->body);
            link.got_bye = true;
            if (bye.reason != ByeReason::kEndOfStream) {
              throw SocketError("shard worker closed: " +
                                std::string(to_string(bye.reason)));
            }
            break;
          }
          default:
            throw WireFormatError(WireError::kMalformed,
                                  "unexpected message from shard worker");
        }
      }
    }
  };

  // Fully writes `bytes` to a worker, draining every link's reads while
  // the send buffer is full.
  const auto send_all = [&](WorkerLink& link,
                            const std::vector<std::uint8_t>& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const std::ptrdiff_t n =
          link.conn.write_some(bytes.data() + sent, bytes.size() - sent);
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
        continue;
      }
      if (n == 0) throw SocketError("shard worker died mid-send");
      std::vector<PollItem> items{{link.conn.fd(), true, true}};
      poll_fds(items, 100);
      for (auto& other : links) drain_incoming(*other);
    }
  };

  ShardStats stats;

  // Dispatches one window (or the short-capture whole buffer) to a worker.
  const auto dispatch = [&](std::uint64_t window_index, bool short_capture,
                            std::vector<Complex> samples) {
    WorkerLink& link =
        *links[static_cast<std::size_t>(window_index) % links.size()];
    ShardAssign assign;
    assign.window_index = window_index;
    assign.short_capture = short_capture;
    assign.sample_count = samples.size();
    assign.sample_rate = fs;
    assign.window_seconds = config_.windowed.window;
    assign.phase_tolerance = config_.windowed.phase_tolerance;
    assign.vector_tolerance = config_.windowed.vector_tolerance;
    assign.seed = config_.windowed.decoder.seed;
    assign.payload_bits = static_cast<std::uint32_t>(
        config_.windowed.decoder.frame.payload_bits);
    assign.crc_kind =
        static_cast<std::uint8_t>(config_.windowed.decoder.frame.crc);
    std::vector<std::uint8_t> bytes;
    encode_shard_assign(assign, bytes);
    // The window's samples, window-local offsets, always f64: the worker
    // must decode the coordinator's exact bit patterns.
    for (std::size_t off = 0; off < samples.size(); off += kIqChunkSamples) {
      const std::size_t take =
          std::min(kIqChunkSamples, samples.size() - off);
      runtime::SampleChunk chunk;
      chunk.first_sample = off;
      chunk.samples.assign(samples.begin() + static_cast<std::ptrdiff_t>(off),
                           samples.begin() +
                               static_cast<std::ptrdiff_t>(off + take));
      encode_iq_chunk(chunk, /*f64=*/true, bytes);
    }
    link.dispatched_at.emplace(window_index, Clock::now());
    ++link.assigned;
    ++stats.windows_assigned;
    windows_counter.add();
    send_all(link, bytes);
    drain_incoming(link);
  };

  // --- IqSharder: the runtime assembler's slicing, verbatim --------------
  // Same lattice rules: zero-fill gaps so absolute positions hold, hold
  // early windows back until the capture is known long (short captures
  // take the whole-buffer plain-decode path), drop a tail shorter than a
  // quarter window.
  std::vector<Complex> window;
  window.reserve(window_samples);
  std::vector<std::vector<Complex>> held;
  std::uint64_t next_expected = 0;
  std::uint64_t next_window_index = 0;
  bool known_long = false;

  const auto close_full_window = [&] {
    if (known_long) {
      dispatch(next_window_index++, /*short_capture=*/false,
               std::move(window));
    } else {
      held.push_back(std::move(window));
      ++next_window_index;
    }
    window = {};
    window.reserve(window_samples);
  };
  const auto append = [&](const Complex* data, std::size_t n) {
    std::size_t done = 0;
    while (done < n) {
      const std::size_t take =
          std::min(n - done, window_samples - window.size());
      window.insert(window.end(), data + done, data + done + take);
      done += take;
      if (window.size() == window_samples) close_full_window();
    }
  };

  while (auto chunk = source.next_chunk()) {
    if (chunk->first_sample > next_expected) {
      std::uint64_t gap = chunk->first_sample - next_expected;
      const std::vector<Complex> zeros(
          std::min<std::uint64_t>(gap, window_samples), Complex{});
      while (gap > 0) {
        const auto take = std::min<std::uint64_t>(gap, zeros.size());
        append(zeros.data(), static_cast<std::size_t>(take));
        gap -= take;
      }
      next_expected = chunk->first_sample;
    }
    std::size_t skip = 0;
    if (chunk->first_sample < next_expected) {
      skip = static_cast<std::size_t>(std::min<std::uint64_t>(
          next_expected - chunk->first_sample, chunk->size()));
    }
    const std::size_t fresh = chunk->size() - skip;
    append(chunk->samples.data() + skip, fresh);
    stats.samples_in += fresh;
    next_expected += fresh;
    if (!known_long &&
        !decoder.is_short_capture(static_cast<std::size_t>(next_expected),
                                  fs)) {
      known_long = true;
      std::uint64_t index = 0;
      for (auto& held_window : held) {
        dispatch(index++, /*short_capture=*/false, std::move(held_window));
      }
      held.clear();
    }
  }

  std::uint64_t expected_windows = 0;
  bool is_short = false;
  if (!known_long) {
    // Short capture: one whole-buffer assignment, plain-decoder path.
    std::vector<Complex> all;
    for (auto& held_window : held) {
      all.insert(all.end(), held_window.begin(), held_window.end());
    }
    all.insert(all.end(), window.begin(), window.end());
    dispatch(0, /*short_capture=*/true, std::move(all));
    expected_windows = 1;
    is_short = true;
  } else {
    if (window.size() >= window_samples / 4) {
      dispatch(next_window_index++, /*short_capture=*/false,
               std::move(window));
    }
    expected_windows = next_window_index;
  }

  // --- end of input: close every link and collect stragglers -------------
  for (auto& link : links) {
    std::vector<std::uint8_t> end_bytes;
    encode_iq_end({0, false}, end_bytes);
    send_all(*link, end_bytes);
  }
  while (std::any_of(links.begin(), links.end(),
                     [](const auto& l) { return !l->got_bye; })) {
    std::vector<PollItem> items;
    for (const auto& link : links) {
      if (!link->got_bye) items.push_back({link->conn.fd(), true, false});
    }
    poll_fds(items, 250);
    for (auto& link : links) {
      if (!link->got_bye) drain_incoming(*link);
    }
  }

  // Strict completeness: every window must have come back.
  LFBS_CHECK_MSG(results.size() == expected_windows,
                 "sharded decode is missing window results");

  // --- ShardMerger: the runtime stitcher, re-used verbatim ---------------
  Result out;
  if (is_short) {
    out.decode = std::move(results.begin()->second.result);
  } else {
    core::WindowStitcher stitcher(config_.windowed, fs);
    for (std::uint64_t index = 0; index < expected_windows; ++index) {
      const auto it = results.find(index);
      LFBS_CHECK_MSG(it != results.end(),
                     "sharded decode is missing a window");
      stitcher.add_window(std::move(it->second.result),
                          static_cast<std::size_t>(index) * window_samples);
    }
    out.decode = stitcher.finish();
  }

  stats.windows_decoded = results.size();
  stats.frames_published = runtime::publish_frames(
      bus_, out.decode, config_.epoch_index, window_samples);
  stats.streams = out.decode.streams.size();
  stats.wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  runtime::RuntimeStats latency_digest;
  latency.summarize(latency_digest);
  stats.shard_latency_p50_ms = latency_digest.window_latency_p50_ms;
  stats.shard_latency_p99_ms = latency_digest.window_latency_p99_ms;
  if (obs::EventLog* log = obs::event_log()) {
    log->emit("federation",
              {obs::Field::str("action", "shard-run"),
               obs::Field::integer(
                   "windows", static_cast<std::int64_t>(stats.windows_decoded)),
               obs::Field::integer(
                   "workers", static_cast<std::int64_t>(links.size())),
               obs::Field::integer(
                   "frames",
                   static_cast<std::int64_t>(stats.frames_published)),
               obs::Field::num("latency_p99_ms", stats.shard_latency_p99_ms)});
  }
  out.stats = stats;
  return out;
}

}  // namespace lfbs::net::federation

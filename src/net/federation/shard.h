#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/windowed_decoder.h"
#include "net/admission.h"
#include "net/socket.h"
#include "runtime/frame_bus.h"
#include "runtime/sample_source.h"
#include "runtime/stats.h"

namespace lfbs::net::federation {

struct ShardWorkerEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct ShardConfig {
  core::WindowedDecoderConfig windowed{};
  std::vector<ShardWorkerEndpoint> workers;
  std::string name = "lfbs-shard-coordinator";
  Seconds connect_timeout = 5.0;
  /// Epoch stamped on published frames, like RuntimeConfig::epoch_index.
  std::uint64_t epoch_index = 0;
  /// Worker failover (default on): a link that dies mid-run, speaks
  /// garbage, or blows worker_deadline is closed and its outstanding
  /// windows are reassigned to surviving workers — the run completes
  /// bit-identical to serial WindowedDecoder (window seeds are index-
  /// mixed, so *which* worker decodes a window cannot change its bits).
  /// The run still fails loudly when zero workers remain, and the initial
  /// pool connect stays strict either way (a pool that starts broken is a
  /// configuration error, not a fault to ride out). false restores the
  /// pre-failover stance: any mid-run death throws SocketError.
  bool failover = true;
  /// Per-link stall deadline: a worker whose *oldest* outstanding window
  /// has been in flight this long is declared dead (failover mode only).
  /// Also bounds the post-run wait for a worker's Bye. Generous default —
  /// a window decode is milliseconds; 30 s means genuinely wedged.
  Seconds worker_deadline = 30.0;
  /// Optional overload budget, usually the same pool the gateway's
  /// FrameServer charges its send queues against. In failover mode every
  /// retained in-flight window's sample bytes are charged while the
  /// window is outstanding and released when its result lands (or the run
  /// ends), so a gateway coordinating shards sees its true memory
  /// footprint in one number. While the pool is saturated, dispatch
  /// throttles (bounded — it drains results to free budget, then
  /// proceeds regardless; results must flow or nothing ever frees).
  /// Caller-owned; must outlive run(). nullptr = unbudgeted.
  ResourceBudget* budget = nullptr;
};

struct ShardStats {
  std::uint64_t samples_in = 0;
  std::size_t windows_assigned = 0;
  std::size_t windows_decoded = 0;
  std::size_t streams = 0;
  std::size_t frames_published = 0;
  double wall_seconds = 0.0;
  /// Dispatch-to-result latency per window, aggregated across workers.
  double shard_latency_p50_ms = 0.0;
  double shard_latency_p99_ms = 0.0;
  /// Failover accounting: links declared dead mid-run and the outstanding
  /// windows re-dispatched to survivors (0/0 on a healthy pool).
  std::size_t workers_lost = 0;
  std::size_t windows_reassigned = 0;
};

/// Cross-process sharded decode: the IqSharder half slices a sample source
/// into WindowedDecoder windows — replicating the runtime assembler's
/// lattice exactly (gap zero-fill, short-capture hold-back, quarter-window
/// tail rule) — and round-robins each window to a pool of ShardWorker
/// processes over LFBW1 (kShardAssign + f64 kIqChunks). The ShardMerger
/// half collects kShardFrame results as workers finish, re-orders them,
/// folds them through the same serial WindowStitcher the runtime uses, and
/// publishes the stitched frames on this coordinator's FrameBus via the
/// shared runtime::publish_frames helper.
///
/// Bit-identity contract: because windows decode under index-mixed seeds,
/// samples transit as f64 bit patterns, and the stitch is the same code in
/// the same order, run() over N worker processes returns (and publishes) a
/// DecodeResult bit-identical to core::WindowedDecoder::decode on the same
/// capture — the tests enforce it across real processes.
///
/// Failure stance: strict about *results*, resilient about *workers*. With
/// ShardConfig::failover (the default) a worker that dies, stalls past
/// worker_deadline, or speaks garbage mid-run is dropped and its
/// outstanding windows are re-dispatched to the survivors; the completed
/// run is still bit-identical to the serial decode, and ShardStats records
/// workers_lost / windows_reassigned. Only zero surviving workers (or a
/// pool that fails its initial connect — that is a configuration error)
/// fails the run with SocketError. failover=false restores the strict
/// stance: any mid-run death throws, no silent holes, caller re-runs.
class ShardedDecoder {
 public:
  struct Result {
    core::DecodeResult decode;
    ShardStats stats;
  };

  explicit ShardedDecoder(ShardConfig config);

  /// Frames publish here (on the calling thread of run()).
  runtime::FrameBus& bus() { return bus_; }

  /// Blocking: drains `source`, shards, merges, publishes. Throws
  /// SocketError / WireFormatError / CheckError when the pool misbehaves.
  Result run(runtime::SampleSource& source);

 private:
  struct WorkerLink;

  ShardConfig config_;
  runtime::FrameBus bus_;
};

}  // namespace lfbs::net::federation

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/lf_decoder.h"
#include "net/wire.h"

namespace lfbs::net::federation {

/// One window's decode order, coordinator → worker (kShardAssign). The
/// window's samples follow as kIqChunk messages (always f64, so the worker
/// decodes the coordinator's exact bit patterns), `sample_count` of them in
/// total, with window-local first_sample offsets.
///
/// The assign repeats the decode parameters the gateway exposes — window
/// geometry, stitch tolerances, frame layout, base seed — per window: a few
/// dozen bytes against megabytes of IQ, and it makes workers stateless
/// across assignments. Decoder knobs beyond these (stage toggles, edge
/// config, ...) must be left at their defaults on both sides; the gateway
/// does not expose them, and the bit-identity contract covers exactly the
/// configuration the assign can describe.
struct ShardAssign {
  std::uint64_t window_index = 0;
  /// Whole-capture fallback (capture ≤ 1.5 windows): decode with the plain
  /// LfDecoder — fallback ladder enabled, base seed unmixed — exactly like
  /// WindowedDecoder::decode's short-capture path.
  bool short_capture = false;
  std::uint64_t sample_count = 0;  ///< samples following as kIqChunk
  double sample_rate = 0.0;
  double window_seconds = 0.0;     ///< WindowedDecoderConfig::window
  double phase_tolerance = 0.0;
  double vector_tolerance = 0.0;
  std::uint64_t seed = 0;          ///< base decoder seed (pre window mix)
  std::uint32_t payload_bits = 0;  ///< protocol::FrameConfig::payload_bits
  std::uint8_t crc_kind = 0;       ///< protocol::CrcKind
};

/// One window's decode, worker → coordinator (kShardFrame). Serializes the
/// full per-window DecodeResult — streams with bits, frames, edge vectors,
/// confidence, plus the diagnostics counters — because the coordinator's
/// WindowStitcher (and, for short captures, the pass-through path) needs
/// every field the in-process worker pool would have handed it. Stream
/// order within the window is preserved: the stitcher's thread matching is
/// order-sensitive.
struct ShardResult {
  std::uint64_t window_index = 0;
  bool short_capture = false;
  core::DecodeResult result;
};

void encode_shard_assign(const ShardAssign& assign,
                         std::vector<std::uint8_t>& out);
ShardAssign decode_shard_assign(std::span<const std::uint8_t> body);

void encode_shard_result(const ShardResult& result,
                         std::vector<std::uint8_t>& out);
ShardResult decode_shard_result(std::span<const std::uint8_t> body);

}  // namespace lfbs::net::federation

#include "net/federation/relay.h"

#include <algorithm>

#include "obs/events.h"
#include "obs/metrics.h"

namespace lfbs::net::federation {

namespace {

struct RelayMetrics {
  obs::Counter& relayed = obs::metrics().counter("federation.relay_frames");
  obs::Counter& dup_drops = obs::metrics().counter("federation.dup_drops");
  obs::Counter& loop_drops = obs::metrics().counter("federation.loop_drops");
  obs::Counter& hop_drops = obs::metrics().counter("federation.hop_drops");
};

RelayMetrics& relay_metrics() {
  static RelayMetrics metrics;
  return metrics;
}

}  // namespace

FrameDeduper::FrameDeduper(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

bool FrameDeduper::insert(std::uint64_t key) {
  std::lock_guard lock(mutex_);
  if (!seen_.insert(key).second) return false;
  order_.push_back(key);
  while (order_.size() > capacity_) {
    seen_.erase(order_.front());
    order_.pop_front();
  }
  return true;
}

std::size_t FrameDeduper::size() const {
  std::lock_guard lock(mutex_);
  return seen_.size();
}

/// One upstream gateway link: a FrameClient on its own thread.
struct FrameRelay::Link {
  RelayUpstream upstream;
  std::unique_ptr<FrameClient> client;
  std::thread thread;
  bool clean_end = false;   ///< upstream drained with Bye(kEndOfStream)
  bool failed = false;      ///< connection lost for good (SocketError)
};

FrameRelay::FrameRelay(RelayConfig config, FrameServer& server)
    : config_(std::move(config)),
      server_(server),
      deduper_(config_.dedup_capacity) {
  LFBS_CHECK_MSG(config_.gateway_id != 0,
                 "relay requires a non-zero gateway id");
}

FrameRelay::~FrameRelay() {
  stop();
  for (auto& link : links_) {
    if (link->thread.joinable()) link->thread.join();
  }
}

void FrameRelay::start() {
  std::lock_guard lock(mutex_);
  if (started_) return;
  started_ = true;
  for (const auto& upstream : config_.upstreams) {
    auto link = std::make_unique<Link>();
    link->upstream = upstream;
    FrameClientConfig cc;
    cc.host = upstream.host;
    cc.port = upstream.port;
    cc.name = config_.name;
    cc.filter = config_.filter;
    cc.filter.replay_recent = config_.replay_on_reconnect;
    cc.connect_timeout = config_.connect_timeout;
    cc.reconnect_on_evict = true;  // relay links heal themselves
    cc.reconnect_on_protocol_error = config_.reconnect_on_protocol_error;
    cc.relay_hello = {config_.gateway_id, config_.hop_limit, config_.name};
    // Federation links are infrastructure: an overloaded upstream sheds
    // best-effort tailers and backpressures its decoder before it drops a
    // single frame destined for another gateway.
    cc.client_class = ClientClass::kPriority;
    link->client = std::make_unique<FrameClient>(std::move(cc));
    Link* raw = link.get();
    link->thread = std::thread([this, raw] {
      FrameClient::Callbacks callbacks;
      callbacks.on_frame = [this](const runtime::FrameEvent& event) {
        on_upstream_frame(event);
      };
      try {
        const Bye bye = raw->client->run(callbacks);
        raw->clean_end = bye.reason == ByeReason::kEndOfStream;
      } catch (const std::exception&) {
        // Retry budget spent or the peer spoke garbage: the link is gone,
        // the relay keeps serving whatever its other upstreams deliver.
        raw->failed = true;
      }
      std::lock_guard lock(mutex_);
      if (raw->clean_end) {
        ++counters_.upstream_ends;
      } else {
        ++counters_.upstream_failures;
      }
    });
    links_.push_back(std::move(link));
  }
}

bool FrameRelay::join() {
  for (auto& link : links_) {
    if (link->thread.joinable()) link->thread.join();
  }
  std::lock_guard lock(mutex_);
  for (const auto& link : links_) {
    if (!link->clean_end) return false;
  }
  return !links_.empty();
}

void FrameRelay::stop() {
  std::lock_guard lock(mutex_);
  for (auto& link : links_) {
    if (link->client) link->client->stop();
  }
}

void FrameRelay::on_upstream_frame(const runtime::FrameEvent& event) {
  // Layered loop safety, cheapest check first. See the class comment.
  if (event.origin == config_.gateway_id) {
    relay_metrics().loop_drops.add();
    std::lock_guard lock(mutex_);
    ++counters_.loop_drops;
    return;
  }
  if (event.hops >= config_.hop_limit) {
    relay_metrics().hop_drops.add();
    std::lock_guard lock(mutex_);
    ++counters_.hop_drops;
    return;
  }
  const std::uint64_t key = runtime::frame_identity(event).key();
  if (!deduper_.insert(key)) {
    relay_metrics().dup_drops.add();
    std::lock_guard lock(mutex_);
    ++counters_.dup_drops;
    return;
  }
  runtime::FrameEvent forwarded = event;
  ++forwarded.hops;
  server_.publish(forwarded);
  relay_metrics().relayed.add();
  {
    std::lock_guard lock(mutex_);
    ++counters_.relayed;
  }
  if (obs::EventLog* log = obs::event_log()) {
    log->emit("federation",
              {obs::Field::str("action", "relay"),
               obs::Field::integer("origin",
                                   static_cast<std::int64_t>(event.origin)),
               obs::Field::integer("hops",
                                   static_cast<std::int64_t>(forwarded.hops)),
               obs::Field::integer("window", static_cast<std::int64_t>(
                                                 event.window_index))});
  }
}

void FrameRelay::publish_local(const runtime::FrameEvent& event) {
  runtime::FrameEvent stamped = event;
  if (stamped.origin == 0) stamped.origin = config_.gateway_id;
  // Seed the dedup before the frame leaves: if a cycle brings it back, the
  // origin check catches it first, but a *renamed* copy (another gateway
  // decoding the same window identically) still collides on identity.
  deduper_.insert(runtime::frame_identity(stamped).key());
  server_.publish(stamped);
  std::lock_guard lock(mutex_);
  ++counters_.local_published;
}

FrameRelay::Counters FrameRelay::counters() const {
  std::lock_guard lock(mutex_);
  return counters_;
}

}  // namespace lfbs::net::federation

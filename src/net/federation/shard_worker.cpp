#include "net/federation/shard_worker.h"

#include <optional>
#include <vector>

#include "common/check.h"
#include "core/windowed_decoder.h"
#include "net/federation/shard_wire.h"
#include "net/wire.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "signal/sample_buffer.h"

namespace lfbs::net::federation {

namespace {

/// Blocking full write against the non-blocking connection: polls for
/// writability between partial writes. Worker → coordinator messages are
/// small (one window's streams), so this cannot deadlock against the
/// coordinator's much larger IQ sends — the coordinator drains reads while
/// it writes.
void write_all(TcpConnection& conn, const std::vector<std::uint8_t>& bytes,
               const std::atomic<bool>& stop) {
  std::size_t sent = 0;
  while (sent < bytes.size() && !stop.load(std::memory_order_relaxed)) {
    const std::ptrdiff_t n =
        conn.write_some(bytes.data() + sent, bytes.size() - sent);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
    } else if (n == -1) {
      std::vector<PollItem> items{{conn.fd(), false, true}};
      poll_fds(items, 100);
    } else {
      throw SocketError("coordinator closed mid-write");
    }
  }
}

core::WindowedDecoderConfig config_from_assign(const ShardAssign& assign) {
  core::WindowedDecoderConfig wc;
  wc.window = assign.window_seconds;
  wc.phase_tolerance = assign.phase_tolerance;
  wc.vector_tolerance = assign.vector_tolerance;
  wc.decoder.seed = assign.seed;
  wc.decoder.frame.payload_bits = assign.payload_bits;
  wc.decoder.frame.crc = static_cast<protocol::CrcKind>(assign.crc_kind);
  return wc;
}

}  // namespace

ShardWorker::ShardWorker(ShardWorkerConfig config)
    : config_(std::move(config)),
      listener_(config_.bind_address, config_.port) {}

std::size_t ShardWorker::serve() {
  static obs::Counter& windows_counter =
      obs::metrics().counter("federation.worker_windows");

  // Accept exactly one coordinator.
  FdHandle fd;
  while (!stop_.load(std::memory_order_relaxed)) {
    fd = listener_.accept();
    if (fd.valid()) break;
    std::vector<PollItem> items{{listener_.fd(), true, false}};
    poll_fds(items, 100);
  }
  if (!fd.valid()) return 0;
  TcpConnection conn(std::move(fd));

  MessageReader reader;
  bool greeted = false;
  std::size_t windows_decoded = 0;

  // In-flight assignment: decode fires once `received` reaches the
  // assign's declared sample count.
  std::optional<ShardAssign> pending;
  std::vector<Complex> samples;
  std::uint64_t received = 0;

  const auto decode_and_reply = [&] {
    const ShardAssign assign = *pending;
    pending.reset();
    const core::WindowedDecoderConfig wc = config_from_assign(assign);
    signal::SampleBuffer buffer(assign.sample_rate, std::move(samples));
    samples = {};
    received = 0;
    ShardResult result;
    result.window_index = assign.window_index;
    result.short_capture = assign.short_capture;
    // Mirror the in-process worker pool exactly: short captures take the
    // plain decoder (fallback ladder on, base seed); windows take
    // decode_window, which mixes the seed with the window index and pins
    // the fallback ladder off per window.
    result.result =
        assign.short_capture
            ? core::LfDecoder(wc.decoder).decode(buffer)
            : core::WindowedDecoder(wc).decode_window(
                  buffer, static_cast<std::size_t>(assign.window_index));
    std::vector<std::uint8_t> reply;
    encode_shard_result(result, reply);
    write_all(conn, reply, stop_);
    ++windows_decoded;
    windows_counter.add();
    if (obs::EventLog* log = obs::event_log()) {
      log->emit("federation",
                {obs::Field::str("action", "shard-decode"),
                 obs::Field::integer(
                     "window",
                     static_cast<std::int64_t>(assign.window_index)),
                 obs::Field::integer(
                     "streams",
                     static_cast<std::int64_t>(result.result.streams.size()))});
    }
  };

  std::uint8_t buf[65536];
  bool done = false;
  while (!done && !stop_.load(std::memory_order_relaxed)) {
    std::vector<PollItem> items{{conn.fd(), true, false}};
    poll_fds(items, 100);
    if (!items[0].readable && !items[0].error) continue;
    const std::ptrdiff_t n = conn.read_some(buf, sizeof(buf));
    if (n == -1) continue;
    if (n == 0) break;  // coordinator gone; nothing left to reply to
    reader.feed(buf, static_cast<std::size_t>(n));
    while (auto message = reader.next()) {
      if (!greeted) {
        if (message->type != MsgType::kHello) {
          throw WireFormatError(WireError::kMalformed, "expected hello first");
        }
        const Hello hello = decode_hello(message->body);
        if (hello.role != PeerRole::kShardCoordinator) {
          throw WireFormatError(WireError::kMalformed,
                                "shard worker requires a coordinator peer");
        }
        greeted = true;
        std::vector<std::uint8_t> ack;
        encode_ack({0, config_.name}, ack);
        write_all(conn, ack, stop_);
        continue;
      }
      switch (message->type) {
        case MsgType::kShardAssign: {
          if (pending.has_value()) {
            throw WireFormatError(WireError::kMalformed,
                                  "assign while a window is in flight");
          }
          pending = decode_shard_assign(message->body);
          samples.clear();
          samples.reserve(static_cast<std::size_t>(pending->sample_count));
          received = 0;
          if (pending->sample_count == 0) decode_and_reply();
          break;
        }
        case MsgType::kIqChunk: {
          if (!pending.has_value()) {
            throw WireFormatError(WireError::kMalformed,
                                  "IQ chunk without an assignment");
          }
          const runtime::SampleChunk chunk = decode_iq_chunk(message->body);
          // first_sample is the window-local offset; chunks arrive in
          // order, so it must equal what we have.
          if (chunk.first_sample != received) {
            throw WireFormatError(WireError::kMalformed,
                                  "out-of-order shard IQ chunk");
          }
          samples.insert(samples.end(), chunk.samples.begin(),
                         chunk.samples.end());
          received += chunk.samples.size();
          if (received > pending->sample_count) {
            throw WireFormatError(WireError::kMalformed,
                                  "more samples than the assign declared");
          }
          if (received == pending->sample_count) decode_and_reply();
          break;
        }
        case MsgType::kIqEnd: {
          // Session complete; acknowledge with a clean close.
          std::vector<std::uint8_t> bye;
          encode_bye({ByeReason::kEndOfStream, "shards complete"}, bye);
          write_all(conn, bye, stop_);
          done = true;
          break;
        }
        case MsgType::kBye:
          done = true;
          break;
        default:
          throw WireFormatError(WireError::kMalformed,
                                "unexpected message from coordinator");
      }
      if (done) break;
    }
  }
  return windows_decoded;
}

}  // namespace lfbs::net::federation

#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "net/socket.h"

namespace lfbs::net::federation {

struct ShardWorkerConfig {
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port; ShardWorker::port() reports the pick.
  std::uint16_t port = 0;
  std::string name = "lfbs-shard-worker";
};

/// One decode worker process of the sharded-decode path (`lfbs_gateway
/// --shard-worker`): accepts a single coordinator connection, then loops
///
///   kShardAssign → kIqChunk × n (the window's samples, f64) → decode →
///   kShardFrame back
///
/// until the coordinator's kIqEnd, and closes with Bye(kEndOfStream).
///
/// The decode is exactly the in-process worker pool's:
/// WindowedDecoder::decode_window under the assign's parameters (the seed
/// is mixed with the window index inside decode_window, so which worker
/// decodes a window cannot change the bits), or the plain LfDecoder for a
/// short-capture assign. Workers are stateless between assignments — kill
/// one mid-run and a fresh one can take its place with no handoff.
class ShardWorker {
 public:
  /// Binds and listens immediately (so the port is known before serve()).
  explicit ShardWorker(ShardWorkerConfig config);

  std::uint16_t port() const { return listener_.port(); }

  /// Blocks: waits for one coordinator, serves its session to completion,
  /// returns the number of windows decoded. Throws SocketError /
  /// WireFormatError on a misbehaving peer.
  std::size_t serve();

  /// Makes serve() return at its next poll tick.
  void stop() { stop_.store(true, std::memory_order_relaxed); }

 private:
  ShardWorkerConfig config_;
  TcpListener listener_;
  std::atomic<bool> stop_{false};
};

}  // namespace lfbs::net::federation

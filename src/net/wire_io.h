#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/wire.h"

/// Low-level LFBW1 codec building blocks, shared by the core codec
/// (wire.cpp) and the federation shard codec (federation/shard_wire.cpp).
/// Everything is little-endian and bounds-checked: writers append explicit
/// bytes, the Cursor reader throws WireFormatError(kTruncated) rather than
/// reading past the end of a body.
namespace lfbs::net::wire_io {

inline void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

inline void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

/// Doubles travel as IEEE-754 bit patterns — bit-exact transit is what the
/// federation's bit-identity invariant rests on.
inline void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

inline void put_f32(std::vector<std::uint8_t>& out, float v) {
  put_u32(out, std::bit_cast<std::uint32_t>(v));
}

inline void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  const auto n =
      static_cast<std::uint16_t>(std::min<std::size_t>(s.size(), 0xFFFF));
  put_u16(out, n);
  out.insert(out.end(), s.begin(), s.begin() + n);
}

/// Bit vector as u32 count + MSB-first packed bytes (the kFrame payload
/// layout, reused for shard bits and payloads).
inline void put_packed_bits(std::vector<std::uint8_t>& out,
                            const std::vector<bool>& bits) {
  put_u32(out, static_cast<std::uint32_t>(bits.size()));
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    acc = static_cast<std::uint8_t>((acc << 1) | (bits[i] ? 1 : 0));
    if ((i & 7) == 7) {
      out.push_back(acc);
      acc = 0;
    }
  }
  if (bits.size() % 8 != 0) {
    out.push_back(static_cast<std::uint8_t>(acc << (8 - (bits.size() % 8))));
  }
}

/// Reserves the 5-byte frame header and returns the offset of the length
/// field, to be patched once the body is written.
inline std::size_t begin_message(std::vector<std::uint8_t>& out,
                                 MsgType type) {
  put_u8(out, static_cast<std::uint8_t>(type));
  const std::size_t length_at = out.size();
  put_u32(out, 0);
  return length_at;
}

inline void end_message(std::vector<std::uint8_t>& out,
                        std::size_t length_at) {
  const std::size_t body = out.size() - length_at - 4;
  LFBS_CHECK_MSG(body <= kMaxMessageBody, "encoded message exceeds bound");
  for (int i = 0; i < 4; ++i) {
    out[length_at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(body >> (8 * i));
  }
}

/// Bounds-checked body reader; every get_* throws kTruncated rather than
/// reading past the end, so a short body can never become a wild read.
class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t get_u8() { return take(1)[0]; }

  std::uint16_t get_u16() {
    const auto b = take(2);
    return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
  }

  std::uint32_t get_u32() {
    const auto b = take(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    }
    return v;
  }

  std::uint64_t get_u64() {
    const auto b = take(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    }
    return v;
  }

  double get_f64() { return std::bit_cast<double>(get_u64()); }
  float get_f32() { return std::bit_cast<float>(get_u32()); }

  std::string get_string() {
    const std::uint16_t n = get_u16();
    const auto b = take(n);
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  }

  std::vector<bool> get_packed_bits() {
    const std::uint32_t bits = get_u32();
    const auto packed = take((bits + 7) / 8);
    std::vector<bool> out(bits);
    for (std::uint32_t i = 0; i < bits; ++i) {
      out[i] = (packed[i / 8] >> (7 - (i % 8)) & 1) != 0;
    }
    return out;
  }

  std::span<const std::uint8_t> take(std::size_t n) {
    if (bytes_.size() - offset_ < n) {
      throw WireFormatError(WireError::kTruncated,
                            "message body shorter than its layout");
    }
    const auto view = bytes_.subspan(offset_, n);
    offset_ += n;
    return view;
  }

  std::size_t remaining() const { return bytes_.size() - offset_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t offset_ = 0;
};

}  // namespace lfbs::net::wire_io

#include "net/frame_server.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "net/socket.h"
#include "obs/events.h"
#include "obs/metrics.h"

namespace lfbs::net {

namespace {

struct NetCounters {
  obs::Counter& connects = obs::metrics().counter("net.connects");
  obs::Counter& disconnects = obs::metrics().counter("net.disconnects");
  obs::Counter& evictions = obs::metrics().counter("net.evictions");
  obs::Counter& queue_drops = obs::metrics().counter("net.queue_drops");
  obs::Counter& frames_sent = obs::metrics().counter("net.frames_sent");
  obs::Counter& bytes_sent = obs::metrics().counter("net.bytes_sent");
  obs::Counter& protocol_errors =
      obs::metrics().counter("net.protocol_errors");
  obs::Counter& replays_sent = obs::metrics().counter("net.replays_sent");
  obs::Counter& admission_denies =
      obs::metrics().counter("net.admission_denies");
  obs::Counter& quota_sheds = obs::metrics().counter("net.quota_sheds");
  obs::Counter& budget_sheds = obs::metrics().counter("net.budget_sheds");
  obs::Counter& budget_refusals =
      obs::metrics().counter("net.budget_refusals");
  obs::Counter& ring_sheds = obs::metrics().counter("net.ring_sheds");
  obs::Counter& replay_truncated =
      obs::metrics().counter("net.replay_truncated");
  obs::Counter& frames_discarded =
      obs::metrics().counter("net.frames_discarded");
  obs::Counter& priority_clients =
      obs::metrics().counter("net.priority_clients");
  obs::Gauge& queue_bytes_total =
      obs::metrics().gauge("net.queue_bytes_total");
};

NetCounters& net_metrics() {
  static NetCounters counters;
  return counters;
}

/// Monotonic seconds for the per-client token buckets.
double mono_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

/// One queued outbound message; `frame` marks kFrame records so delivery
/// accounting can distinguish frames from acks/stats/byes.
struct QueuedMessage {
  std::vector<std::uint8_t> bytes;
  bool frame = false;
};

struct FrameServer::Client {
  std::uint64_t id = 0;
  TcpConnection conn;
  MessageReader reader;
  std::string name;
  bool greeted = false;
  bool subscribed = false;
  std::uint64_t relay_id = 0;  ///< non-zero once the peer sent a RelayHello
  ClientClass cls = ClientClass::kBestEffort;
  bool class_counted = false;  ///< admission counted it; release at close
  SubscribeFilter filter;
  std::deque<QueuedMessage> queue;
  std::size_t queued_frames = 0;  ///< frame messages currently in `queue`
  std::size_t queue_bytes = 0;    ///< bytes in `queue` plus unfinished outbuf
  std::size_t budget_bytes = 0;   ///< frame bytes charged to the budget
  TokenBucket bucket;             ///< per-client frames/sec quota
  obs::Gauge* depth_gauge = nullptr;
  std::vector<std::uint8_t> outbuf;
  std::size_t out_off = 0;
  bool out_is_frame = false;
  std::size_t frames_sent = 0;
  std::size_t drops = 0;
  bool evict = false;    ///< set by publish(); the loop closes it
  bool closing = false;  ///< bye queued; close once flushed
  bool dead = false;     ///< swept at the end of the loop iteration

  explicit Client(TcpConnection connection) : conn(std::move(connection)) {}
};

struct FrameServer::Impl {
  TcpListener listener;
  WakePipe wake;

  Impl(const std::string& address, std::uint16_t port, int backlog)
      : listener(address, port, backlog) {}
};

FrameServer::FrameServer(FrameServerConfig config)
    : config_(std::move(config)),
      admission_(config_.admission),
      impl_(std::make_unique<Impl>(
          config_.bind_address, config_.port,
          // A storm of dials must reach the typed deny path, not rot in
          // SYN retries, so admission widens the kernel backlog.
          config_.admission.enabled
              ? std::max(config_.listen_backlog, 128)
              : config_.listen_backlog)) {
  if (obs::EventLog* log = obs::event_log()) {
    log->emit("net",
              {obs::Field::str("action", "listen"),
               obs::Field::integer("port",
                                   static_cast<std::int64_t>(port()))});
  }
  thread_ = std::thread([this] { loop(); });
}

FrameServer::~FrameServer() {
  shutdown(false);
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
    if (config_.budget != nullptr) {
      config_.budget->release(ring_bytes_);
      ring_bytes_ = 0;
      replay_ring_.clear();
    }
  }
  impl_->wake.wake();
  if (thread_.joinable()) thread_.join();
  detach();
  // Never leave a decode pipeline throttled by a server that no longer
  // exists.
  if (config_.backpressure != nullptr) config_.backpressure->release();
}

std::uint16_t FrameServer::port() const { return impl_->listener.port(); }

void FrameServer::attach(runtime::FrameBus& bus) {
  detach();
  bus_ = &bus;
  bus_subscription_ =
      bus.subscribe([this](const runtime::FrameEvent& event) {
        publish(event);
      });
}

void FrameServer::detach() {
  if (bus_ != nullptr) {
    bus_->unsubscribe(bus_subscription_);
    bus_ = nullptr;
  }
}

void FrameServer::publish(const runtime::FrameEvent& event) {
  // A federated gateway stamps its id on frames it decoded itself (origin
  // still 0); relayed frames keep their original origin untouched.
  runtime::FrameEvent stamped;
  const runtime::FrameEvent* out = &event;
  if (config_.origin_id != 0 && event.origin == 0) {
    stamped = event;
    stamped.origin = config_.origin_id;
    out = &stamped;
  }
  std::vector<std::uint8_t> bytes;
  bool encoded = false;
  {
    std::lock_guard lock(mutex_);
    if (config_.replay_frames > 0) {
      encode_frame(*out, bytes);
      encoded = true;
      ++ring_frames_total_;
      const std::size_t need = bytes.size();
      // The ring is the lowest shedding tier: it gives up its own history
      // before it competes with live queues for budget.
      bool charged =
          config_.budget == nullptr || config_.budget->try_charge(need);
      while (!charged && !replay_ring_.empty()) {
        drop_ring_front_locked();
        ++counters_.ring_sheds;
        net_metrics().ring_sheds.add();
        charged = config_.budget->try_charge(need);
      }
      if (charged) {
        ring_bytes_ += need;
        replay_ring_.push_back({*out, need});
        while (replay_ring_.size() > config_.replay_frames) {
          // Normal rotation at the configured cap — not a shed.
          drop_ring_front_locked();
        }
      } else {
        // Budget would not even hold this one frame of history.
        ++counters_.ring_sheds;
        net_metrics().ring_sheds.add();
      }
    }
    for (const auto& client : clients_) {
      if (client->dead || client->closing || client->evict) continue;
      if (!client->subscribed || !client->filter.accepts(*out)) continue;
      if (!encoded) {
        encode_frame(*out, bytes);
        encoded = true;
      }
      enqueue_locked(*client, bytes, /*is_frame=*/true);
    }
  }
  if (encoded) impl_->wake.wake();
  signal_backpressure();
}

void FrameServer::publish_stats(const runtime::RuntimeStats& stats) {
  std::vector<std::uint8_t> bytes;
  encode_stats(to_wire_stats(stats), bytes);
  {
    std::lock_guard lock(mutex_);
    for (const auto& client : clients_) {
      if (client->dead || client->closing || client->evict) continue;
      if (!client->subscribed) continue;
      enqueue_locked(*client, bytes, /*is_frame=*/false);
    }
  }
  impl_->wake.wake();
}

void FrameServer::publish_control(const ControlPlanMsg& plan) {
  std::vector<std::uint8_t> bytes;
  encode_control_plan(plan, bytes);
  {
    std::lock_guard lock(mutex_);
    for (const auto& client : clients_) {
      if (client->dead || client->closing || client->evict) continue;
      if (!client->subscribed) continue;
      enqueue_locked(*client, bytes, /*is_frame=*/false);
    }
  }
  impl_->wake.wake();
}

void FrameServer::note_queue_bytes_locked(Client& client,
                                          std::ptrdiff_t delta) {
  client.queue_bytes = static_cast<std::size_t>(
      static_cast<std::ptrdiff_t>(client.queue_bytes) + delta);
  queue_bytes_total_ = static_cast<std::size_t>(
      static_cast<std::ptrdiff_t>(queue_bytes_total_) + delta);
  counters_.queue_bytes_peak = std::max(counters_.queue_bytes_peak,
                                        queue_bytes_total_ + ring_bytes_);
  net_metrics().queue_bytes_total.set(
      static_cast<double>(queue_bytes_total_ + ring_bytes_));
  if (client.depth_gauge != nullptr) {
    client.depth_gauge->set(static_cast<double>(
        client.queue.size() + (client.outbuf.empty() ? 0 : 1)));
  }
}

void FrameServer::drop_ring_front_locked() {
  if (replay_ring_.empty()) return;
  const std::size_t bytes = replay_ring_.front().bytes;
  replay_ring_.pop_front();
  ring_bytes_ -= bytes;
  if (config_.budget != nullptr) config_.budget->release(bytes);
}

bool FrameServer::shed_one_best_effort_locked() {
  Client* worst = nullptr;
  for (const auto& client : clients_) {
    if (client->dead || client->cls == ClientClass::kPriority) continue;
    if (client->queued_frames == 0) continue;
    if (worst == nullptr || client->queue_bytes > worst->queue_bytes) {
      worst = client.get();
    }
  }
  if (worst == nullptr) return false;
  for (auto it = worst->queue.begin(); it != worst->queue.end(); ++it) {
    if (!it->frame) continue;
    const std::size_t bytes = it->bytes.size();
    worst->queue.erase(it);
    --worst->queued_frames;
    note_queue_bytes_locked(*worst, -static_cast<std::ptrdiff_t>(bytes));
    if (config_.budget != nullptr) {
      config_.budget->release(bytes);
      worst->budget_bytes -= bytes;
    }
    ++worst->drops;
    ++counters_.budget_sheds;
    net_metrics().budget_sheds.add();
    return true;
  }
  return false;
}

bool FrameServer::shed_for_budget_locked(std::size_t need) {
  ResourceBudget& budget = *config_.budget;
  // Tier 1: replay history — it only exists to heal partitions, live
  // traffic outranks it.
  while (!replay_ring_.empty()) {
    if (budget.try_charge(need)) return true;
    drop_ring_front_locked();
    ++counters_.ring_sheds;
    net_metrics().ring_sheds.add();
  }
  if (budget.try_charge(need)) return true;
  // Tier 2: the oldest queued best-effort frames, deepest queue first.
  // Priority queues are never touched.
  while (shed_one_best_effort_locked()) {
    if (budget.try_charge(need)) return true;
  }
  return budget.try_charge(need);
}

void FrameServer::enqueue_locked(Client& client,
                                 const std::vector<std::uint8_t>& bytes,
                                 bool is_frame) {
  const std::size_t need = bytes.size();
  // Priority protection needs an overload layer to bound the overshoot;
  // without admission or a budget a priority hello is informational only
  // and the pre-overload per-queue policy applies to everyone.
  const bool protect_priority =
      admission_.enabled() || config_.budget != nullptr;
  const bool priority =
      client.cls == ClientClass::kPriority && protect_priority;
  const ClassQuota& quota = admission_.config().quota(client.cls);
  if (is_frame && admission_.enabled() && quota.max_frames_per_sec > 0.0 &&
      !client.bucket.try_take_burst() &&
      !client.bucket.try_take(mono_seconds())) {
    // Shed by rate quota before the frame costs any queue memory.
    ++counters_.quota_sheds;
    net_metrics().quota_sheds.add();
    return;
  }
  if (is_frame) {
    if (priority) {
      // A priority consumer must never silently miss a frame: over its
      // byte quota it is evicted (typed) instead of dropped from.
      if (quota.max_queue_bytes > 0 &&
          client.queue_bytes + need > quota.max_queue_bytes) {
        client.evict = true;
        return;
      }
    } else {
      const bool over_messages =
          client.queue.size() >= config_.send_queue_messages;
      const bool over_bytes =
          admission_.enabled() && quota.max_queue_bytes > 0 &&
          client.queue_bytes + need > quota.max_queue_bytes;
      if (over_messages || over_bytes) {
        if (config_.slow_consumer == SlowConsumerPolicy::kEvict) {
          client.evict = true;
          return;
        }
        // Drop the oldest queued *frame*: control messages (acks, byes)
        // are part of the protocol and must survive the squeeze.
        bool dropped = false;
        for (auto it = client.queue.begin(); it != client.queue.end();
             ++it) {
          if (!it->frame) continue;
          const std::size_t old_bytes = it->bytes.size();
          client.queue.erase(it);
          --client.queued_frames;
          note_queue_bytes_locked(
              client, -static_cast<std::ptrdiff_t>(old_bytes));
          if (config_.budget != nullptr) {
            config_.budget->release(old_bytes);
            client.budget_bytes -= old_bytes;
          }
          ++client.drops;
          ++counters_.queue_drops;
          net_metrics().queue_drops.add();
          dropped = true;
          break;
        }
        if (!dropped) {
          // Nothing sheddable (a control-only queue the peer is not
          // draining): that is a stalled consumer, evict it.
          client.evict = true;
          return;
        }
      }
    }
  }
  // Global budget. Only frames are charged — control messages (acks,
  // byes) are tiny, bounded, and unsheddable, so charging them would just
  // push the budget past its limit and trigger a spurious tier-2 shed.
  // Frames shed in tiers, and a priority frame that still cannot fit
  // charges anyway — the BackpressureGate is what bounds that overshoot,
  // never a dropped priority frame.
  if (config_.budget != nullptr && is_frame) {
    if (!config_.budget->try_charge(need) &&
        !shed_for_budget_locked(need)) {
      if (priority) {
        config_.budget->charge(need);
      } else {
        ++counters_.budget_refusals;
        net_metrics().budget_refusals.add();
        return;
      }
    }
    client.budget_bytes += need;
  }
  client.queue.push_back({bytes, is_frame});
  if (is_frame) {
    ++client.queued_frames;
    ++counters_.frames_enqueued;
  }
  note_queue_bytes_locked(client, static_cast<std::ptrdiff_t>(need));
}

void FrameServer::signal_backpressure() {
  if (config_.backpressure == nullptr || config_.budget == nullptr) return;
  if (config_.budget->saturated()) {
    config_.backpressure->engage();
  } else if (config_.budget->below_low_water()) {
    config_.backpressure->release();
  }
}

bool FrameServer::wait_for_subscriber(Seconds timeout) {
  std::unique_lock lock(mutex_);
  cv_.wait_for(lock, std::chrono::duration<double>(timeout),
               [&] { return counters_.subscribers > 0 || stop_; });
  return counters_.subscribers > 0;
}

void FrameServer::shutdown(bool drain) {
  {
    std::lock_guard lock(mutex_);
    accepting_ = false;
    // Close the listener, not just stop polling it: a half-open backlog
    // would keep completing TCP handshakes for clients redialing a dying
    // server, and those clients would then wait forever for an ack no one
    // will send. Closed, their dials fail fast and their retry budgets
    // bound them. (The loop thread only touches the listener under this
    // mutex, so closing here is safe; port() stays valid, it is cached.)
    impl_->listener.close();
    draining_ = true;
    if (!drain) {
      // Skip the queue flush: clients get a best-effort Bye and the
      // connection closes regardless of what was still queued (the close
      // accounts every discarded frame).
      for (auto& client : clients_) {
        if (!client->dead) {
          std::vector<std::uint8_t> bye;
          encode_bye({ByeReason::kShuttingDown, "server stopping"}, bye);
          client->conn.write_some(bye.data(), bye.size());
          close_client_locked(*client, "shutdown");
        }
      }
    }
  }
  impl_->wake.wake();
  std::unique_lock lock(mutex_);
  cv_.wait_for(lock, std::chrono::duration<double>(config_.drain_timeout),
               [&] {
                 return stop_ ||
                        std::all_of(clients_.begin(), clients_.end(),
                                    [](const auto& c) { return c->dead; });
               });
  emit_overload_summary_locked();
}

FrameServer::Counters FrameServer::counters() const {
  std::lock_guard lock(mutex_);
  return counters_;
}

void FrameServer::emit_event(const char* action, std::uint64_t client_id,
                             std::size_t a, std::size_t b) {
  if (obs::EventLog* log = obs::event_log()) {
    log->emit("net",
              {obs::Field::str("action", action),
               obs::Field::integer("client",
                                   static_cast<std::int64_t>(client_id)),
               obs::Field::integer("frames", static_cast<std::int64_t>(a)),
               obs::Field::integer("drops", static_cast<std::int64_t>(b))});
  }
}

void FrameServer::emit_overload_summary_locked() {
  if (overload_summary_emitted_) return;
  const bool active =
      admission_.enabled() || config_.budget != nullptr ||
      counters_.admission_denies + counters_.quota_sheds +
              counters_.budget_sheds + counters_.budget_refusals +
              counters_.ring_sheds + counters_.replay_truncated >
          0;
  if (!active) return;
  overload_summary_emitted_ = true;
  if (obs::EventLog* log = obs::event_log()) {
    const auto n = [](std::size_t v) {
      return static_cast<std::int64_t>(v);
    };
    log->emit(
        "net",
        {obs::Field::str("action", "overload"),
         obs::Field::integer("denies", n(counters_.admission_denies)),
         obs::Field::integer("quota_sheds", n(counters_.quota_sheds)),
         obs::Field::integer("budget_sheds", n(counters_.budget_sheds)),
         obs::Field::integer("budget_refusals",
                             n(counters_.budget_refusals)),
         obs::Field::integer("ring_sheds", n(counters_.ring_sheds)),
         obs::Field::integer("queue_drops", n(counters_.queue_drops)),
         obs::Field::integer("enqueued", n(counters_.frames_enqueued)),
         obs::Field::integer("sent", n(counters_.frames_sent)),
         obs::Field::integer("discarded", n(counters_.frames_discarded)),
         obs::Field::integer("replay_truncated",
                             n(counters_.replay_truncated)),
         obs::Field::integer("peak_queue_bytes",
                             n(counters_.queue_bytes_peak)),
         obs::Field::num("retry_after", admission_.config().retry_after)});
  }
}

std::size_t FrameServer::alive_clients_locked() const {
  std::size_t alive = 0;
  for (const auto& client : clients_) {
    if (!client->dead) ++alive;
  }
  return alive;
}

void FrameServer::deny_locked(Client& client,
                              const AdmissionDecision& decision) {
  ++counters_.admission_denies;
  net_metrics().admission_denies.add();
  if (obs::EventLog* log = obs::event_log()) {
    log->emit("net",
              {obs::Field::str("action", "admission-deny"),
               obs::Field::integer("client",
                                   static_cast<std::int64_t>(client.id)),
               obs::Field::str("reason", decision.reason),
               obs::Field::num("retry_after", decision.retry_after)});
  }
  std::vector<std::uint8_t> bye;
  encode_bye({ByeReason::kAdmissionDenied, decision.reason,
              decision.retry_after},
             bye);
  enqueue_locked(client, bye, /*is_frame=*/false);
  client.closing = true;
}

void FrameServer::close_client_locked(Client& client, const char* cause) {
  if (client.dead) return;
  client.dead = true;
  client.conn.close();
  // Whatever was still queued for this client dies with it; the ledger
  // records every frame (frames_enqueued ends up fully partitioned into
  // sent / dropped / shed / discarded).
  const std::size_t discarded_frames =
      client.queued_frames +
      ((!client.outbuf.empty() && client.out_is_frame) ? 1 : 0);
  if (discarded_frames > 0) {
    counters_.frames_discarded += discarded_frames;
    net_metrics().frames_discarded.add(discarded_frames);
  }
  if (config_.budget != nullptr && client.budget_bytes > 0) {
    config_.budget->release(client.budget_bytes);
    client.budget_bytes = 0;
  }
  note_queue_bytes_locked(client,
                          -static_cast<std::ptrdiff_t>(client.queue_bytes));
  client.queue.clear();
  client.queued_frames = 0;
  client.outbuf.clear();
  client.out_off = 0;
  if (client.class_counted) {
    admission_.release_class(client.cls);
    client.class_counted = false;
  }
  if (client.depth_gauge != nullptr) client.depth_gauge->set(0.0);
  ++counters_.disconnects;
  net_metrics().disconnects.add();
  if (client.subscribed) {
    client.subscribed = false;
    --counters_.subscribers;
  }
  emit_event(cause, client.id, client.frames_sent, client.drops);
}

void FrameServer::handle_incoming(Client& client) {
  std::uint8_t buf[4096];
  for (;;) {
    if (client.closing || client.dead) return;
    const std::ptrdiff_t n = client.conn.read_some(buf, sizeof(buf));
    if (n == -1) break;  // drained
    if (n == 0) {
      close_client_locked(client, "disconnect");
      return;
    }
    try {
      client.reader.feed(buf, static_cast<std::size_t>(n));
      while (auto message = client.reader.next()) {
        if (client.closing) break;  // deny already queued; ignore the rest
        if (!client.greeted) {
          if (message->type != MsgType::kHello) {
            throw WireFormatError(WireError::kMalformed,
                                  "expected hello first");
          }
          const Hello hello = decode_hello(message->body);
          if (hello.role != PeerRole::kFrameSubscriber) {
            throw WireFormatError(WireError::kMalformed,
                                  "frame port requires a subscriber peer");
          }
          client.greeted = true;
          client.name = hello.name;
          client.cls = hello.client_class;
          if (client.cls == ClientClass::kPriority) {
            ++counters_.priority_clients;
            net_metrics().priority_clients.add();
          }
          if (admission_.enabled()) {
            const AdmissionDecision decision =
                admission_.admit_class(client.cls);
            if (!decision.admitted) {
              deny_locked(client, decision);
              continue;
            }
            client.class_counted = true;
            const double fps =
                admission_.config().quota(client.cls).max_frames_per_sec;
            if (fps > 0.0) client.bucket = TokenBucket(fps, mono_seconds());
          }
          std::vector<std::uint8_t> ack;
          encode_ack({0, "lfbs-gateway"}, ack);
          enqueue_locked(client, ack, /*is_frame=*/false);
          emit_event("hello", client.id);
        } else if (message->type == MsgType::kRelayHello) {
          const RelayHello relay = decode_relay_hello(message->body);
          if (client.relay_id == 0) ++counters_.relays;
          client.relay_id = relay.gateway_id;
          std::vector<std::uint8_t> ack;
          encode_ack({0, "relay"}, ack);
          enqueue_locked(client, ack, /*is_frame=*/false);
          if (obs::EventLog* log = obs::event_log()) {
            log->emit("net",
                      {obs::Field::str("action", "relay-hello"),
                       obs::Field::integer(
                           "client", static_cast<std::int64_t>(client.id)),
                       obs::Field::integer(
                           "gateway",
                           static_cast<std::int64_t>(relay.gateway_id)),
                       obs::Field::integer(
                           "hop_limit",
                           static_cast<std::int64_t>(relay.hop_limit))});
          }
        } else if (message->type == MsgType::kSubscribe) {
          client.filter = decode_subscribe(message->body);
          if (!client.subscribed) {
            client.subscribed = true;
            ++counters_.subscribers;
          }
          Ack subscribed{0, "subscribed"};
          // Snapshot the surviving history before anything is enqueued:
          // charging the budget for each replayed copy can itself shed
          // ring entries (tier 1), so both the acked shortfall and the
          // frames delivered must reflect the ring as it stood when the
          // subscribe arrived. (Enqueuing while iterating the live ring
          // would also invalidate the iterator when a shed pops it.)
          std::vector<std::vector<std::uint8_t>> replay;
          if (client.filter.replay_recent && config_.replay_frames > 0) {
            for (const ReplayEntry& past : replay_ring_) {
              if (!client.filter.accepts(past.event)) continue;
              replay.emplace_back();
              encode_frame(past.event, replay.back());
            }
            // How much of the configured history the budget has already
            // shed out from under this resubscriber. The old behaviour
            // was to replay fewer frames silently; now the gap is typed,
            // counted, and in the ack.
            const std::uint64_t retained_target = std::min<std::uint64_t>(
                ring_frames_total_, config_.replay_frames);
            const std::uint64_t shortfall =
                retained_target - replay_ring_.size();
            if (shortfall > 0) {
              subscribed.replay_shortfall = shortfall;
              ++counters_.replay_truncated;
              net_metrics().replay_truncated.add();
              if (obs::EventLog* log = obs::event_log()) {
                log->emit(
                    "net",
                    {obs::Field::str("action", "replay-truncated"),
                     obs::Field::integer(
                         "client", static_cast<std::int64_t>(client.id)),
                     obs::Field::integer(
                         "shortfall",
                         static_cast<std::int64_t>(shortfall))});
              }
            }
          }
          std::vector<std::uint8_t> ack;
          encode_ack(subscribed, ack);
          enqueue_locked(client, ack, /*is_frame=*/false);
          emit_event("subscribe", client.id);
          if (!replay.empty()) {
            // Heal a resubscriber's partition gap from the snapshot,
            // oldest first, through the subscriber's filter (applied
            // above) and the same slow-consumer policy as live traffic.
            // The overlap with frames it already saw is the consumer's
            // to dedup (by frame identity).
            std::size_t replayed = 0;
            for (const std::vector<std::uint8_t>& bytes : replay) {
              if (client.evict) break;
              enqueue_locked(client, bytes, /*is_frame=*/true);
              ++replayed;
            }
            counters_.replays_sent += replayed;
            net_metrics().replays_sent.add(replayed);
            emit_event("replay", client.id, replayed);
          }
          cv_.notify_all();
        } else if (message->type == MsgType::kControlGet ||
                   message->type == MsgType::kControlSet) {
          // Control-plane surface (v5). A gateway without a control loop
          // answers enabled=false instead of treating the probe as a
          // protocol error.
          ControlPlanMsg reply;
          if (message->type == MsgType::kControlGet) {
            if (config_.control_get) reply = config_.control_get();
            ++counters_.control_gets;
          } else {
            const ControlSet set = decode_control_set(message->body);
            if (config_.control_set) reply = config_.control_set(set);
            ++counters_.control_sets;
          }
          std::vector<std::uint8_t> bytes;
          encode_control_plan(reply, bytes);
          enqueue_locked(client, bytes, /*is_frame=*/false);
          emit_event(message->type == MsgType::kControlGet ? "control-get"
                                                           : "control-set",
                     client.id, reply.assignments.size());
          cv_.notify_all();
        } else if (message->type == MsgType::kBye) {
          close_client_locked(client, "disconnect");
          return;
        } else {
          throw WireFormatError(WireError::kMalformed,
                                "unexpected message from subscriber");
        }
      }
    } catch (const WireFormatError&) {
      ++counters_.protocol_errors;
      net_metrics().protocol_errors.add();
      std::vector<std::uint8_t> bye;
      encode_bye({ByeReason::kProtocolError, "unparseable input"}, bye);
      client.conn.write_some(bye.data(), bye.size());
      close_client_locked(client, "protocol-error");
      return;
    }
  }
}

void FrameServer::pump_writes(Client& client) {
  for (;;) {
    if (client.outbuf.empty()) {
      if (client.queue.empty()) break;
      QueuedMessage message = std::move(client.queue.front());
      client.queue.pop_front();
      client.outbuf = std::move(message.bytes);
      client.out_off = 0;
      client.out_is_frame = message.frame;
      if (client.out_is_frame) --client.queued_frames;
    }
    const std::ptrdiff_t n =
        client.conn.write_some(client.outbuf.data() + client.out_off,
                               client.outbuf.size() - client.out_off);
    if (n == -1) return;  // kernel buffer full; poll will call us back
    if (n == 0) {
      close_client_locked(client, "disconnect");
      return;
    }
    client.out_off += static_cast<std::size_t>(n);
    net_metrics().bytes_sent.add(static_cast<std::uint64_t>(n));
    if (client.out_off == client.outbuf.size()) {
      const std::size_t done = client.outbuf.size();
      if (client.out_is_frame) {
        ++client.frames_sent;
        ++counters_.frames_sent;
        net_metrics().frames_sent.add();
        // Only frames were charged; control messages never touched the
        // budget.
        if (config_.budget != nullptr) {
          config_.budget->release(done);
          client.budget_bytes -= done;
        }
      }
      note_queue_bytes_locked(client,
                              -static_cast<std::ptrdiff_t>(done));
      client.outbuf.clear();
      client.out_off = 0;
      client.out_is_frame = false;
    }
  }
  if (client.closing && client.queue.empty() && client.outbuf.empty()) {
    close_client_locked(client, "disconnect");
  }
}

void FrameServer::loop() {
  std::vector<PollItem> items;
  std::vector<Client*> polled;
  for (;;) {
    items.clear();
    polled.clear();
    bool accepting;
    {
      std::lock_guard lock(mutex_);
      if (stop_) break;
      // max_clients is the fd bound; with admission on, the connection
      // budget (max_connections < max_clients) refuses typed long before
      // the fd bound stops the accept loop.
      accepting = accepting_ && clients_.size() < config_.max_clients;
      items.push_back({impl_->wake.read_fd(), true, false});
      if (accepting) {
        items.push_back({impl_->listener.fd(), true, false});
      }
      for (const auto& client : clients_) {
        if (client->dead) continue;
        PollItem item;
        item.fd = client->conn.fd();
        item.want_read = true;
        item.want_write =
            !client->outbuf.empty() || !client->queue.empty();
        items.push_back(item);
        polled.push_back(client.get());
      }
    }
    poll_fds(items, 250);

    {
      std::lock_guard lock(mutex_);
      std::size_t at = 0;
      if (items[at].readable) impl_->wake.drain();
      ++at;
      if (accepting) {
        if (items[at].readable) {
          for (;;) {
            FdHandle fd = impl_->listener.accept();
            if (!fd.valid()) break;
            TcpConnection conn(std::move(fd));
            if (config_.send_buffer_bytes > 0) {
              conn.set_send_buffer(config_.send_buffer_bytes);
            }
            const AdmissionDecision decision =
                admission_.admit_connection(alive_clients_locked());
            auto client = std::make_unique<Client>(std::move(conn));
            // Shared across every FrameServer in the process (each loop
            // runs under its own instance mutex), so the counter must be
            // atomic.
            static std::atomic<std::uint64_t> next_id{1};
            client->id = next_id.fetch_add(1, std::memory_order_relaxed);
            client->depth_gauge = &obs::metrics().gauge(
                "net.client_queue_depth." + std::to_string(client->id));
            ++counters_.connects;
            net_metrics().connects.add();
            emit_event("connect", client->id);
            if (!decision.admitted) {
              // Typed refusal: the dial completed, the deny (with its
              // retry-after hint) flushes, and the connection closes —
              // instead of the old behaviour of parking the dial in the
              // kernel backlog until the client's timeout.
              deny_locked(*client, decision);
            }
            clients_.push_back(std::move(client));
            if (clients_.size() >= config_.max_clients) break;
          }
        }
        ++at;
      }
      for (std::size_t i = 0; i < polled.size(); ++i, ++at) {
        Client& client = *polled[i];
        if (client.dead) continue;
        if (items[at].error) {
          close_client_locked(client, "disconnect");
          continue;
        }
        if (items[at].readable) handle_incoming(client);
        if (client.dead) continue;
        if (items[at].writable || !client.outbuf.empty() ||
            !client.queue.empty()) {
          pump_writes(client);
        }
      }
      // Evictions decided by the publisher: the client's socket is
      // already jammed, so the Bye is a single best-effort write, never a
      // drain.
      for (auto& client : clients_) {
        if (client->evict && !client->dead) {
          ++counters_.evictions;
          net_metrics().evictions.add();
          std::vector<std::uint8_t> bye;
          encode_bye({ByeReason::kEvicted, "send queue overflow"}, bye);
          client->conn.write_some(bye.data(), bye.size());
          close_client_locked(*client, "evict");
        }
      }
      if (draining_) {
        for (auto& client : clients_) {
          if (client->dead || client->closing) continue;
          std::vector<std::uint8_t> bye;
          encode_bye({ByeReason::kEndOfStream, "stream complete"}, bye);
          enqueue_locked(*client, bye, /*is_frame=*/false);
          client->closing = true;
        }
        // Unsubscribed stragglers flush instantly; subscribed ones close
        // when pump_writes finishes their queue.
        for (auto& client : clients_) {
          if (!client->dead) pump_writes(*client);
        }
      }
      // Sweep the dead every iteration (not only while draining): under a
      // connection storm the denied-and-closed would otherwise accumulate
      // for the life of the server.
      clients_.erase(
          std::remove_if(clients_.begin(), clients_.end(),
                         [](const auto& c) { return c->dead; }),
          clients_.end());
      if (draining_ && clients_.empty()) cv_.notify_all();
    }
    signal_backpressure();
  }
}

}  // namespace lfbs::net

#include "net/frame_server.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "net/socket.h"
#include "obs/events.h"
#include "obs/metrics.h"

namespace lfbs::net {

namespace {

struct NetCounters {
  obs::Counter& connects = obs::metrics().counter("net.connects");
  obs::Counter& disconnects = obs::metrics().counter("net.disconnects");
  obs::Counter& evictions = obs::metrics().counter("net.evictions");
  obs::Counter& queue_drops = obs::metrics().counter("net.queue_drops");
  obs::Counter& frames_sent = obs::metrics().counter("net.frames_sent");
  obs::Counter& bytes_sent = obs::metrics().counter("net.bytes_sent");
  obs::Counter& protocol_errors =
      obs::metrics().counter("net.protocol_errors");
  obs::Counter& replays_sent = obs::metrics().counter("net.replays_sent");
};

NetCounters& net_metrics() {
  static NetCounters counters;
  return counters;
}

}  // namespace

/// One queued outbound message; `frame` marks kFrame records so delivery
/// accounting can distinguish frames from acks/stats/byes.
struct QueuedMessage {
  std::vector<std::uint8_t> bytes;
  bool frame = false;
};

struct FrameServer::Client {
  std::uint64_t id = 0;
  TcpConnection conn;
  MessageReader reader;
  std::string name;
  bool greeted = false;
  bool subscribed = false;
  std::uint64_t relay_id = 0;  ///< non-zero once the peer sent a RelayHello
  SubscribeFilter filter;
  std::deque<QueuedMessage> queue;
  std::vector<std::uint8_t> outbuf;
  std::size_t out_off = 0;
  bool out_is_frame = false;
  std::size_t frames_sent = 0;
  std::size_t drops = 0;
  bool evict = false;    ///< set by publish(); the loop closes it
  bool closing = false;  ///< bye queued; close once flushed
  bool dead = false;     ///< swept at the end of the loop iteration

  explicit Client(TcpConnection connection) : conn(std::move(connection)) {}
};

struct FrameServer::Impl {
  TcpListener listener;
  WakePipe wake;

  Impl(const std::string& address, std::uint16_t port)
      : listener(address, port) {}
};

FrameServer::FrameServer(FrameServerConfig config)
    : config_(std::move(config)),
      impl_(std::make_unique<Impl>(config_.bind_address, config_.port)) {
  if (obs::EventLog* log = obs::event_log()) {
    log->emit("net",
              {obs::Field::str("action", "listen"),
               obs::Field::integer("port",
                                   static_cast<std::int64_t>(port()))});
  }
  thread_ = std::thread([this] { loop(); });
}

FrameServer::~FrameServer() {
  shutdown(false);
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  impl_->wake.wake();
  if (thread_.joinable()) thread_.join();
  detach();
}

std::uint16_t FrameServer::port() const { return impl_->listener.port(); }

void FrameServer::attach(runtime::FrameBus& bus) {
  detach();
  bus_ = &bus;
  bus_subscription_ =
      bus.subscribe([this](const runtime::FrameEvent& event) {
        publish(event);
      });
}

void FrameServer::detach() {
  if (bus_ != nullptr) {
    bus_->unsubscribe(bus_subscription_);
    bus_ = nullptr;
  }
}

void FrameServer::publish(const runtime::FrameEvent& event) {
  // A federated gateway stamps its id on frames it decoded itself (origin
  // still 0); relayed frames keep their original origin untouched.
  runtime::FrameEvent stamped;
  const runtime::FrameEvent* out = &event;
  if (config_.origin_id != 0 && event.origin == 0) {
    stamped = event;
    stamped.origin = config_.origin_id;
    out = &stamped;
  }
  std::vector<std::uint8_t> bytes;
  bool encoded = false;
  {
    std::lock_guard lock(mutex_);
    if (config_.replay_frames > 0) {
      replay_ring_.push_back(*out);
      while (replay_ring_.size() > config_.replay_frames) {
        replay_ring_.pop_front();
      }
    }
    for (const auto& client : clients_) {
      if (client->dead || client->closing || client->evict) continue;
      if (!client->subscribed || !client->filter.accepts(*out)) continue;
      if (!encoded) {
        encode_frame(*out, bytes);
        encoded = true;
      }
      enqueue_locked(*client, bytes, /*is_frame=*/true);
    }
  }
  if (encoded) impl_->wake.wake();
}

void FrameServer::publish_stats(const runtime::RuntimeStats& stats) {
  std::vector<std::uint8_t> bytes;
  encode_stats(to_wire_stats(stats), bytes);
  {
    std::lock_guard lock(mutex_);
    for (const auto& client : clients_) {
      if (client->dead || client->closing || client->evict) continue;
      if (!client->subscribed) continue;
      enqueue_locked(*client, bytes, /*is_frame=*/false);
    }
  }
  impl_->wake.wake();
}

void FrameServer::enqueue_locked(Client& client,
                                 const std::vector<std::uint8_t>& bytes,
                                 bool is_frame) {
  if (client.queue.size() >= config_.send_queue_messages) {
    if (config_.slow_consumer == SlowConsumerPolicy::kEvict) {
      client.evict = true;
      return;
    }
    client.queue.pop_front();
    ++client.drops;
    ++counters_.queue_drops;
    net_metrics().queue_drops.add();
  }
  client.queue.push_back({bytes, is_frame});
}

bool FrameServer::wait_for_subscriber(Seconds timeout) {
  std::unique_lock lock(mutex_);
  cv_.wait_for(lock, std::chrono::duration<double>(timeout),
               [&] { return counters_.subscribers > 0 || stop_; });
  return counters_.subscribers > 0;
}

void FrameServer::shutdown(bool drain) {
  {
    std::lock_guard lock(mutex_);
    accepting_ = false;
    // Close the listener, not just stop polling it: a half-open backlog
    // would keep completing TCP handshakes for clients redialing a dying
    // server, and those clients would then wait forever for an ack no one
    // will send. Closed, their dials fail fast and their retry budgets
    // bound them. (The loop thread only touches the listener under this
    // mutex, so closing here is safe; port() stays valid, it is cached.)
    impl_->listener.close();
    draining_ = true;
    if (!drain) {
      // Skip the queue flush: clients get a best-effort Bye and the
      // connection closes regardless of what was still queued.
      for (auto& client : clients_) {
        client->queue.clear();
        client->outbuf.clear();
        client->out_off = 0;
        if (!client->dead) {
          std::vector<std::uint8_t> bye;
          encode_bye({ByeReason::kShuttingDown, "server stopping"}, bye);
          client->conn.write_some(bye.data(), bye.size());
          close_client_locked(*client, "shutdown");
        }
      }
    }
  }
  impl_->wake.wake();
  std::unique_lock lock(mutex_);
  cv_.wait_for(lock, std::chrono::duration<double>(config_.drain_timeout),
               [&] {
                 return stop_ ||
                        std::all_of(clients_.begin(), clients_.end(),
                                    [](const auto& c) { return c->dead; });
               });
}

FrameServer::Counters FrameServer::counters() const {
  std::lock_guard lock(mutex_);
  return counters_;
}

void FrameServer::emit_event(const char* action, std::uint64_t client_id,
                             std::size_t a, std::size_t b) {
  if (obs::EventLog* log = obs::event_log()) {
    log->emit("net",
              {obs::Field::str("action", action),
               obs::Field::integer("client",
                                   static_cast<std::int64_t>(client_id)),
               obs::Field::integer("frames", static_cast<std::int64_t>(a)),
               obs::Field::integer("drops", static_cast<std::int64_t>(b))});
  }
}

void FrameServer::close_client_locked(Client& client, const char* cause) {
  if (client.dead) return;
  client.dead = true;
  client.conn.close();
  ++counters_.disconnects;
  net_metrics().disconnects.add();
  if (client.subscribed) {
    client.subscribed = false;
    --counters_.subscribers;
  }
  emit_event(cause, client.id, client.frames_sent, client.drops);
}

void FrameServer::handle_incoming(Client& client) {
  std::uint8_t buf[4096];
  for (;;) {
    const std::ptrdiff_t n = client.conn.read_some(buf, sizeof(buf));
    if (n == -1) break;  // drained
    if (n == 0) {
      close_client_locked(client, "disconnect");
      return;
    }
    try {
      client.reader.feed(buf, static_cast<std::size_t>(n));
      while (auto message = client.reader.next()) {
        if (!client.greeted) {
          if (message->type != MsgType::kHello) {
            throw WireFormatError(WireError::kMalformed,
                                  "expected hello first");
          }
          const Hello hello = decode_hello(message->body);
          if (hello.role != PeerRole::kFrameSubscriber) {
            throw WireFormatError(WireError::kMalformed,
                                  "frame port requires a subscriber peer");
          }
          client.greeted = true;
          client.name = hello.name;
          std::vector<std::uint8_t> ack;
          encode_ack({0, "lfbs-gateway"}, ack);
          client.queue.push_back({std::move(ack), false});
          emit_event("hello", client.id);
        } else if (message->type == MsgType::kRelayHello) {
          const RelayHello relay = decode_relay_hello(message->body);
          if (client.relay_id == 0) ++counters_.relays;
          client.relay_id = relay.gateway_id;
          std::vector<std::uint8_t> ack;
          encode_ack({0, "relay"}, ack);
          client.queue.push_back({std::move(ack), false});
          if (obs::EventLog* log = obs::event_log()) {
            log->emit("net",
                      {obs::Field::str("action", "relay-hello"),
                       obs::Field::integer(
                           "client", static_cast<std::int64_t>(client.id)),
                       obs::Field::integer(
                           "gateway",
                           static_cast<std::int64_t>(relay.gateway_id)),
                       obs::Field::integer(
                           "hop_limit",
                           static_cast<std::int64_t>(relay.hop_limit))});
          }
        } else if (message->type == MsgType::kSubscribe) {
          client.filter = decode_subscribe(message->body);
          if (!client.subscribed) {
            client.subscribed = true;
            ++counters_.subscribers;
          }
          std::vector<std::uint8_t> ack;
          encode_ack({0, "subscribed"}, ack);
          client.queue.push_back({std::move(ack), false});
          emit_event("subscribe", client.id);
          if (client.filter.replay_recent && !replay_ring_.empty()) {
            // Heal a resubscriber's partition gap from the ring, oldest
            // first, through the same filter and slow-consumer policy as
            // live traffic. The overlap with frames it already saw is the
            // consumer's to dedup (by frame identity).
            std::size_t replayed = 0;
            for (const runtime::FrameEvent& past : replay_ring_) {
              if (client.evict) break;
              if (!client.filter.accepts(past)) continue;
              std::vector<std::uint8_t> bytes;
              encode_frame(past, bytes);
              enqueue_locked(client, bytes, /*is_frame=*/true);
              ++replayed;
            }
            counters_.replays_sent += replayed;
            net_metrics().replays_sent.add(replayed);
            emit_event("replay", client.id, replayed);
          }
          cv_.notify_all();
        } else if (message->type == MsgType::kBye) {
          close_client_locked(client, "disconnect");
          return;
        } else {
          throw WireFormatError(WireError::kMalformed,
                                "unexpected message from subscriber");
        }
      }
    } catch (const WireFormatError&) {
      ++counters_.protocol_errors;
      net_metrics().protocol_errors.add();
      std::vector<std::uint8_t> bye;
      encode_bye({ByeReason::kProtocolError, "unparseable input"}, bye);
      client.conn.write_some(bye.data(), bye.size());
      close_client_locked(client, "protocol-error");
      return;
    }
  }
}

void FrameServer::pump_writes(Client& client) {
  for (;;) {
    if (client.outbuf.empty()) {
      if (client.queue.empty()) break;
      QueuedMessage message = std::move(client.queue.front());
      client.queue.pop_front();
      client.outbuf = std::move(message.bytes);
      client.out_off = 0;
      client.out_is_frame = message.frame;
    }
    const std::ptrdiff_t n =
        client.conn.write_some(client.outbuf.data() + client.out_off,
                               client.outbuf.size() - client.out_off);
    if (n == -1) return;  // kernel buffer full; poll will call us back
    if (n == 0) {
      close_client_locked(client, "disconnect");
      return;
    }
    client.out_off += static_cast<std::size_t>(n);
    net_metrics().bytes_sent.add(static_cast<std::uint64_t>(n));
    if (client.out_off == client.outbuf.size()) {
      if (client.out_is_frame) {
        ++client.frames_sent;
        ++counters_.frames_sent;
        net_metrics().frames_sent.add();
      }
      client.outbuf.clear();
      client.out_off = 0;
    }
  }
  if (client.closing && client.queue.empty() && client.outbuf.empty()) {
    close_client_locked(client, "disconnect");
  }
}

void FrameServer::loop() {
  std::vector<PollItem> items;
  std::vector<Client*> polled;
  for (;;) {
    items.clear();
    polled.clear();
    bool accepting;
    {
      std::lock_guard lock(mutex_);
      if (stop_) break;
      accepting = accepting_ && clients_.size() < config_.max_clients;
      items.push_back({impl_->wake.read_fd(), true, false});
      if (accepting) {
        items.push_back({impl_->listener.fd(), true, false});
      }
      for (const auto& client : clients_) {
        if (client->dead) continue;
        PollItem item;
        item.fd = client->conn.fd();
        item.want_read = true;
        item.want_write =
            !client->outbuf.empty() || !client->queue.empty();
        items.push_back(item);
        polled.push_back(client.get());
      }
    }
    poll_fds(items, 250);

    std::lock_guard lock(mutex_);
    std::size_t at = 0;
    if (items[at].readable) impl_->wake.drain();
    ++at;
    if (accepting) {
      if (items[at].readable) {
        for (;;) {
          FdHandle fd = impl_->listener.accept();
          if (!fd.valid()) break;
          TcpConnection conn(std::move(fd));
          if (config_.send_buffer_bytes > 0) {
            conn.set_send_buffer(config_.send_buffer_bytes);
          }
          auto client = std::make_unique<Client>(std::move(conn));
          // Shared across every FrameServer in the process (each loop runs
          // under its own instance mutex), so the counter must be atomic.
          static std::atomic<std::uint64_t> next_id{1};
          client->id = next_id.fetch_add(1, std::memory_order_relaxed);
          ++counters_.connects;
          net_metrics().connects.add();
          emit_event("connect", client->id);
          clients_.push_back(std::move(client));
          if (clients_.size() >= config_.max_clients) break;
        }
      }
      ++at;
    }
    for (std::size_t i = 0; i < polled.size(); ++i, ++at) {
      Client& client = *polled[i];
      if (client.dead) continue;
      if (items[at].error) {
        close_client_locked(client, "disconnect");
        continue;
      }
      if (items[at].readable) handle_incoming(client);
      if (client.dead) continue;
      if (items[at].writable || !client.outbuf.empty() ||
          !client.queue.empty()) {
        pump_writes(client);
      }
    }
    // Evictions decided by the publisher: the client's socket is already
    // jammed, so the Bye is a single best-effort write, never a drain.
    for (auto& client : clients_) {
      if (client->evict && !client->dead) {
        ++counters_.evictions;
        net_metrics().evictions.add();
        std::vector<std::uint8_t> bye;
        encode_bye({ByeReason::kEvicted, "send queue overflow"}, bye);
        client->conn.write_some(bye.data(), bye.size());
        close_client_locked(*client, "evict");
      }
    }
    if (draining_) {
      for (auto& client : clients_) {
        if (client->dead || client->closing) continue;
        std::vector<std::uint8_t> bye;
        encode_bye({ByeReason::kEndOfStream, "stream complete"}, bye);
        client->queue.push_back({std::move(bye), false});
        client->closing = true;
      }
      // Unsubscribed stragglers flush instantly; subscribed ones close
      // when pump_writes finishes their queue.
      for (auto& client : clients_) {
        if (!client->dead) pump_writes(*client);
      }
    }
    const bool all_dead =
        std::all_of(clients_.begin(), clients_.end(),
                    [](const auto& c) { return c->dead; });
    if (all_dead && !clients_.empty() && draining_) clients_.clear();
    if (draining_ && clients_.empty()) cv_.notify_all();
  }
}

}  // namespace lfbs::net

#include "net/socket.h"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "net/chaos/chaos.h"

namespace lfbs::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw SocketError(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

sockaddr_in make_addr(const std::string& address, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (address.empty() || address == "0.0.0.0") {
    addr.sin_addr.s_addr = INADDR_ANY;
  } else if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    throw SocketError("cannot parse IPv4 address '" + address + "'");
  }
  return addr;
}

}  // namespace

void FdHandle::reset() {
  if (fd_ >= 0) {
    if (ChaosEngine* chaos = chaos_engine()) chaos->untrack(fd_);
    ::close(fd_);
  }
  fd_ = -1;
}

TcpListener::TcpListener(const std::string& bind_address,
                         std::uint16_t port, int backlog) {
  FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    throw_errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr = make_addr(bind_address, port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    throw_errno("bind " + bind_address + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) < 0) throw_errno("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    throw_errno("getsockname");
  }
  set_nonblocking(fd.get());
  port_ = ntohs(bound.sin_port);
  fd_ = std::move(fd);
}

FdHandle TcpListener::accept() {
  const int fd = ::accept(fd_.get(), nullptr, nullptr);
  if (fd < 0) return FdHandle{};
  FdHandle handle(fd);
  set_nonblocking(fd);
  const int one = 1;
  // Frames are small and latency-sensitive; never wait for Nagle.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (ChaosEngine* chaos = chaos_engine()) {
    if (chaos->config().on_accept) chaos->track(fd);
  }
  return handle;
}

TcpConnection::TcpConnection(FdHandle fd) : fd_(std::move(fd)) {}

TcpConnection TcpConnection::connect(const std::string& host,
                                     std::uint16_t port, Seconds timeout) {
  ChaosEngine* chaos = chaos_engine();
  if (chaos && chaos->config().on_connect) {
    const std::string where = host + ":" + std::to_string(port);
    if (chaos->connect_refused(where)) {
      throw SocketError("connect " + where + ": refused (chaos)");
    }
  }
  FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  set_nonblocking(fd.get());
  sockaddr_in addr = make_addr(host.empty() ? "127.0.0.1" : host, port);
  const int rc =
      ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    throw_errno("connect " + host + ":" + std::to_string(port));
  }
  if (rc < 0) {
    // Await writability with the caller's budget, then read the outcome.
    pollfd p{fd.get(), POLLOUT, 0};
    const int timeout_ms =
        timeout > 0 ? static_cast<int>(timeout * 1e3) : -1;
    int ready;
    do {
      ready = ::poll(&p, 1, timeout_ms);
    } while (ready < 0 && errno == EINTR);
    if (ready == 0) {
      throw SocketError("connect " + host + ":" + std::to_string(port) +
                        ": timed out");
    }
    if (ready < 0) throw_errno("poll(connect)");
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      throw_errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      throw SocketError("connect " + host + ":" + std::to_string(port) +
                        ": " + std::strerror(err));
    }
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (chaos && chaos->config().on_connect) chaos->track(fd.get());
  return TcpConnection(std::move(fd));
}

std::ptrdiff_t TcpConnection::read_some(std::uint8_t* buf, std::size_t n) {
  if (ChaosEngine* chaos = chaos_engine()) {
    // May cap n (truncation): the real read below then returns a prefix,
    // keeping the byte stream itself intact.
    switch (chaos->before_read(fd_.get(), n)) {
      case ChaosEngine::Verdict::kDead:
        return 0;  // injected reset reads as EOF, like the real thing
      case ChaosEngine::Verdict::kBlocked:
        return -1;  // stall / inbound partition: nothing arrived
      case ChaosEngine::Verdict::kPass:
        break;
    }
  }
  for (;;) {
    const ssize_t rc = ::recv(fd_.get(), buf, n, 0);
    if (rc >= 0) {
      if (rc > 0) {
        if (ChaosEngine* chaos = chaos_engine()) {
          chaos->after_read(fd_.get(), buf, static_cast<std::size_t>(rc));
        }
      }
      return rc;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    return 0;  // connection reset and friends read as EOF
  }
}

std::ptrdiff_t TcpConnection::write_some(const std::uint8_t* buf,
                                         std::size_t n) {
  if (ChaosEngine* chaos = chaos_engine()) {
    switch (chaos->before_write(fd_.get(), n)) {
      case ChaosEngine::Verdict::kDead:
        return 0;  // injected reset: dead connection, like a broken pipe
      case ChaosEngine::Verdict::kBlocked:
        return -1;  // stall / outbound partition: send buffer "full"
      case ChaosEngine::Verdict::kPass:
        break;
    }
  }
  for (;;) {
    const ssize_t rc = ::send(fd_.get(), buf, n, MSG_NOSIGNAL);
    if (rc >= 0) return rc;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    return 0;  // broken pipe: surfaces as an unwritable dead connection
  }
}

void TcpConnection::set_send_buffer(std::size_t bytes) {
  const int value = static_cast<int>(bytes);
  ::setsockopt(fd_.get(), SOL_SOCKET, SO_SNDBUF, &value, sizeof(value));
}

WakePipe::WakePipe() {
  int fds[2];
  if (::pipe(fds) < 0) throw_errno("pipe");
  read_ = FdHandle(fds[0]);
  write_ = FdHandle(fds[1]);
  set_nonblocking(read_.get());
  set_nonblocking(write_.get());
}

void WakePipe::wake() {
  const std::uint8_t byte = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is success.
  [[maybe_unused]] const ssize_t rc =
      ::write(write_.get(), &byte, sizeof(byte));
}

void WakePipe::drain() {
  std::uint8_t buf[64];
  while (::read(read_.get(), buf, sizeof(buf)) > 0) {
  }
}

int poll_fds(std::vector<PollItem>& items, int timeout_ms) {
  std::vector<pollfd> fds;
  fds.reserve(items.size());
  for (const PollItem& item : items) {
    short events = 0;
    if (item.want_read) events |= POLLIN;
    if (item.want_write) events |= POLLOUT;
    fds.push_back({item.fd, events, 0});
  }
  int ready;
  do {
    ready = ::poll(fds.data(), fds.size(), timeout_ms);
  } while (ready < 0 && errno == EINTR);
  if (ready < 0) throw_errno("poll");
  for (std::size_t i = 0; i < items.size(); ++i) {
    const short re = fds[i].revents;
    items[i].readable = (re & (POLLIN | POLLHUP)) != 0;
    items[i].writable = (re & POLLOUT) != 0;
    items[i].error = (re & (POLLERR | POLLNVAL)) != 0;
  }
  if (ChaosEngine* chaos = chaos_engine()) {
    // Hide readiness on fds inside a stall/partition window, else event
    // loops would spin on a readable fd whose read_some keeps refusing.
    bool masked = false;
    for (PollItem& item : items) {
      if (item.readable || item.writable) {
        if (chaos->mask_poll(item.fd, item.readable, item.writable)) {
          masked = true;
          if (!item.readable && !item.writable && !item.error) --ready;
        }
      }
    }
    if (masked && ready <= 0) {
      // Everything ready was masked: nap briefly so the caller's retry
      // loop idles instead of hot-spinning while the window runs down.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ready = std::max(ready, 0);
    }
  }
  return ready;
}

}  // namespace lfbs::net

#include "net/wire.h"

#include <cstring>

#include "net/wire_io.h"

namespace lfbs::net {

// The append/read primitives (put_*, Cursor, message framing) live in
// wire_io.h so the federation shard codec shares them byte-for-byte.
using namespace wire_io;

const char* to_string(WireError code) {
  switch (code) {
    case WireError::kBadMagic:
      return "bad magic";
    case WireError::kBadVersion:
      return "incompatible version";
    case WireError::kTruncated:
      return "truncated";
    case WireError::kOversized:
      return "oversized";
    case WireError::kUnknownType:
      return "unknown message type";
    case WireError::kMalformed:
      return "malformed";
  }
  return "?";
}

const char* to_string(ByeReason reason) {
  switch (reason) {
    case ByeReason::kEndOfStream:
      return "end-of-stream";
    case ByeReason::kEvicted:
      return "evicted";
    case ByeReason::kProtocolError:
      return "protocol-error";
    case ByeReason::kShuttingDown:
      return "shutting-down";
    case ByeReason::kAdmissionDenied:
      return "admission-denied";
  }
  return "?";
}

const char* to_string(ClientClass cls) {
  switch (cls) {
    case ClientClass::kBestEffort:
      return "best-effort";
    case ClientClass::kPriority:
      return "priority";
  }
  return "?";
}

bool SubscribeFilter::accepts(const runtime::FrameEvent& event) const {
  if (event.confidence < min_confidence) return false;
  if (min_rate > 0.0 && event.rate < min_rate) return false;
  if (max_rate > 0.0 && event.rate > max_rate) return false;
  if (crc_valid_only && !event.frame.crc_ok) return false;
  return true;
}

WireStats to_wire_stats(const runtime::RuntimeStats& stats) {
  WireStats out;
  out.health = static_cast<std::uint8_t>(stats.health);
  out.stopped_early = stats.stopped_early;
  out.wall_seconds = stats.wall_seconds;
  out.samples_in = stats.samples_in;
  out.windows_decoded = stats.windows_decoded;
  out.frames_published = stats.frames_published;
  out.streams = stats.streams;
  out.chunks_dropped = stats.chunks_dropped;
  out.faults_total = stats.faults.total();
  out.mean_confidence = stats.mean_confidence;
  return out;
}

void encode_hello(const Hello& hello, std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_message(out, MsgType::kHello);
  out.insert(out.end(), kWireMagic, kWireMagic + sizeof(kWireMagic));
  put_u16(out, kWireVersion);
  put_u8(out, static_cast<std::uint8_t>(hello.role));
  put_f64(out, hello.sample_rate);
  put_string(out, hello.name);
  put_u8(out, static_cast<std::uint8_t>(hello.client_class));
  end_message(out, at);
}

Hello decode_hello(std::span<const std::uint8_t> body) {
  Cursor c(body);
  const auto magic = c.take(sizeof(kWireMagic));
  if (std::memcmp(magic.data(), kWireMagic, sizeof(kWireMagic)) != 0) {
    throw WireFormatError(WireError::kBadMagic,
                          "hello does not carry the LFBW1 magic");
  }
  const std::uint16_t version = c.get_u16();
  if (version != kWireVersion) {
    throw WireFormatError(WireError::kBadVersion,
                          "peer speaks LFBW version " +
                              std::to_string(version) + ", want " +
                              std::to_string(kWireVersion));
  }
  Hello hello;
  const std::uint8_t role = c.get_u8();
  if (role > static_cast<std::uint8_t>(PeerRole::kShardWorker)) {
    throw WireFormatError(WireError::kMalformed, "unknown peer role");
  }
  hello.role = static_cast<PeerRole>(role);
  hello.sample_rate = c.get_f64();
  hello.name = c.get_string();
  const std::uint8_t cls = c.get_u8();
  if (cls > static_cast<std::uint8_t>(ClientClass::kPriority)) {
    throw WireFormatError(WireError::kMalformed, "unknown client class");
  }
  hello.client_class = static_cast<ClientClass>(cls);
  return hello;
}

void encode_subscribe(const SubscribeFilter& filter,
                      std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_message(out, MsgType::kSubscribe);
  put_f64(out, filter.min_confidence);
  put_f64(out, filter.min_rate);
  put_f64(out, filter.max_rate);
  put_u8(out, filter.crc_valid_only ? 1 : 0);
  put_u8(out, filter.replay_recent ? 1 : 0);
  end_message(out, at);
}

SubscribeFilter decode_subscribe(std::span<const std::uint8_t> body) {
  Cursor c(body);
  SubscribeFilter filter;
  filter.min_confidence = c.get_f64();
  filter.min_rate = c.get_f64();
  filter.max_rate = c.get_f64();
  filter.crc_valid_only = (c.get_u8() & 1) != 0;
  filter.replay_recent = (c.get_u8() & 1) != 0;
  return filter;
}

void encode_ack(const Ack& ack, std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_message(out, MsgType::kAck);
  put_u8(out, ack.status);
  put_string(out, ack.text);
  put_u64(out, ack.replay_shortfall);
  end_message(out, at);
}

Ack decode_ack(std::span<const std::uint8_t> body) {
  Cursor c(body);
  Ack ack;
  ack.status = c.get_u8();
  ack.text = c.get_string();
  ack.replay_shortfall = c.get_u64();
  return ack;
}

void encode_frame(const runtime::FrameEvent& event,
                  std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_message(out, MsgType::kFrame);
  put_u64(out, event.stream_index);
  put_f64(out, event.stream_start);
  put_f64(out, event.rate);
  put_f64(out, event.confidence);
  put_u8(out, static_cast<std::uint8_t>(event.fallback_stage));
  std::uint8_t flags = 0;
  if (event.collided) flags |= 1;
  if (event.frame.crc_ok) flags |= 2;
  if (event.frame.anchor_ok) flags |= 4;
  put_u8(out, flags);
  put_u64(out, event.epoch_index);
  put_u64(out, event.window_index);
  put_u64(out, event.frame_index);
  put_u64(out, event.origin);
  put_u8(out, event.hops);
  put_packed_bits(out, event.frame.payload);
  end_message(out, at);
}

runtime::FrameEvent decode_frame(std::span<const std::uint8_t> body) {
  Cursor c(body);
  runtime::FrameEvent event;
  event.stream_index = static_cast<std::size_t>(c.get_u64());
  event.stream_start = c.get_f64();
  event.rate = c.get_f64();
  event.confidence = c.get_f64();
  const std::uint8_t stage = c.get_u8();
  if (stage >
      static_cast<std::uint8_t>(core::FallbackStage::kRelaxedDetection)) {
    throw WireFormatError(WireError::kMalformed, "unknown fallback stage");
  }
  event.fallback_stage = static_cast<core::FallbackStage>(stage);
  const std::uint8_t flags = c.get_u8();
  event.collided = (flags & 1) != 0;
  event.frame.crc_ok = (flags & 2) != 0;
  event.frame.anchor_ok = (flags & 4) != 0;
  event.epoch_index = c.get_u64();
  event.window_index = c.get_u64();
  event.frame_index = c.get_u64();
  event.origin = c.get_u64();
  event.hops = c.get_u8();
  event.frame.payload = c.get_packed_bits();
  return event;
}

void encode_stats(const WireStats& stats, std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_message(out, MsgType::kStats);
  put_u8(out, stats.health);
  put_u8(out, stats.stopped_early ? 1 : 0);
  put_f64(out, stats.wall_seconds);
  put_u64(out, stats.samples_in);
  put_u64(out, stats.windows_decoded);
  put_u64(out, stats.frames_published);
  put_u64(out, stats.streams);
  put_u64(out, stats.chunks_dropped);
  put_u64(out, stats.faults_total);
  put_f64(out, stats.mean_confidence);
  end_message(out, at);
}

WireStats decode_stats(std::span<const std::uint8_t> body) {
  Cursor c(body);
  WireStats stats;
  stats.health = c.get_u8();
  if (stats.health > static_cast<std::uint8_t>(runtime::HealthState::kFailed)) {
    throw WireFormatError(WireError::kMalformed, "unknown health state");
  }
  stats.stopped_early = (c.get_u8() & 1) != 0;
  stats.wall_seconds = c.get_f64();
  stats.samples_in = c.get_u64();
  stats.windows_decoded = c.get_u64();
  stats.frames_published = c.get_u64();
  stats.streams = c.get_u64();
  stats.chunks_dropped = c.get_u64();
  stats.faults_total = c.get_u64();
  stats.mean_confidence = c.get_f64();
  return stats;
}

void encode_iq_chunk(const runtime::SampleChunk& chunk, bool f64,
                     std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_message(out, MsgType::kIqChunk);
  put_u64(out, chunk.first_sample);
  put_u8(out, f64 ? 1 : 0);
  put_u32(out, static_cast<std::uint32_t>(chunk.samples.size()));
  for (const Complex& s : chunk.samples) {
    if (f64) {
      put_f64(out, s.real());
      put_f64(out, s.imag());
    } else {
      put_f32(out, static_cast<float>(s.real()));
      put_f32(out, static_cast<float>(s.imag()));
    }
  }
  end_message(out, at);
}

runtime::SampleChunk decode_iq_chunk(std::span<const std::uint8_t> body) {
  Cursor c(body);
  runtime::SampleChunk chunk;
  chunk.first_sample = c.get_u64();
  const std::uint8_t format = c.get_u8();
  if (format > 1) {
    throw WireFormatError(WireError::kMalformed, "unknown IQ sample format");
  }
  const std::uint32_t count = c.get_u32();
  // Validate the declared count against what the body actually holds
  // before allocating — a garbled count cannot trigger a huge allocation.
  const std::size_t per_sample = format == 1 ? 16 : 8;
  if (c.remaining() != count * per_sample) {
    throw WireFormatError(WireError::kTruncated,
                          "IQ chunk body does not match declared count");
  }
  chunk.samples.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (format == 1) {
      const double re = c.get_f64();
      const double im = c.get_f64();
      chunk.samples.emplace_back(re, im);
    } else {
      const float re = c.get_f32();
      const float im = c.get_f32();
      chunk.samples.emplace_back(re, im);
    }
  }
  return chunk;
}

void encode_iq_end(const IqEnd& end, std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_message(out, MsgType::kIqEnd);
  put_u64(out, end.total_samples);
  put_u8(out, end.truncated ? 1 : 0);
  end_message(out, at);
}

IqEnd decode_iq_end(std::span<const std::uint8_t> body) {
  Cursor c(body);
  IqEnd end;
  end.total_samples = c.get_u64();
  end.truncated = (c.get_u8() & 1) != 0;
  return end;
}

void encode_bye(const Bye& bye, std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_message(out, MsgType::kBye);
  put_u8(out, static_cast<std::uint8_t>(bye.reason));
  put_string(out, bye.text);
  put_f64(out, bye.retry_after);
  end_message(out, at);
}

Bye decode_bye(std::span<const std::uint8_t> body) {
  Cursor c(body);
  Bye bye;
  const std::uint8_t reason = c.get_u8();
  if (reason > static_cast<std::uint8_t>(ByeReason::kAdmissionDenied)) {
    throw WireFormatError(WireError::kMalformed, "unknown bye reason");
  }
  bye.reason = static_cast<ByeReason>(reason);
  bye.text = c.get_string();
  bye.retry_after = c.get_f64();
  return bye;
}

void encode_relay_hello(const RelayHello& hello,
                        std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_message(out, MsgType::kRelayHello);
  put_u64(out, hello.gateway_id);
  put_u8(out, hello.hop_limit);
  put_string(out, hello.name);
  end_message(out, at);
}

RelayHello decode_relay_hello(std::span<const std::uint8_t> body) {
  Cursor c(body);
  RelayHello hello;
  hello.gateway_id = c.get_u64();
  if (hello.gateway_id == 0) {
    throw WireFormatError(WireError::kMalformed,
                          "relay hello with gateway id 0");
  }
  hello.hop_limit = c.get_u8();
  hello.name = c.get_string();
  return hello;
}

void encode_control_get(std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_message(out, MsgType::kControlGet);
  end_message(out, at);
}

void encode_control_set(const ControlSet& set,
                        std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_message(out, MsgType::kControlSet);
  std::uint8_t mask = 0;
  if (set.set_frozen) mask |= 1u << 0;
  if (set.frozen) mask |= 1u << 1;
  if (set.set_target_goodput) mask |= 1u << 2;
  if (set.set_min_confidence) mask |= 1u << 3;
  if (set.set_max_rate) mask |= 1u << 4;
  put_u8(out, mask);
  put_f64(out, set.target_goodput);
  put_f64(out, set.min_confidence);
  put_f64(out, set.max_rate);
  end_message(out, at);
}

ControlSet decode_control_set(std::span<const std::uint8_t> body) {
  Cursor c(body);
  ControlSet set;
  const std::uint8_t mask = c.get_u8();
  if (mask >= (1u << 5)) {
    throw WireFormatError(WireError::kMalformed,
                          "control set with unknown knob bits");
  }
  set.set_frozen = (mask & (1u << 0)) != 0;
  set.frozen = (mask & (1u << 1)) != 0;
  set.set_target_goodput = (mask & (1u << 2)) != 0;
  set.set_min_confidence = (mask & (1u << 3)) != 0;
  set.set_max_rate = (mask & (1u << 4)) != 0;
  set.target_goodput = c.get_f64();
  set.min_confidence = c.get_f64();
  set.max_rate = c.get_f64();
  return set;
}

void encode_control_plan(const ControlPlanMsg& plan,
                         std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_message(out, MsgType::kControlPlan);
  put_u8(out, static_cast<std::uint8_t>((plan.enabled ? 1 : 0) |
                                        (plan.frozen ? 2 : 0)));
  put_f64(out, plan.target_goodput);
  put_f64(out, plan.min_confidence);
  put_f64(out, plan.max_rate);
  put_u64(out, plan.epoch);
  put_string(out, plan.policy);
  put_f64(out, plan.predicted_goodput);
  put_f64(out, plan.collision_pressure);
  put_u32(out, static_cast<std::uint32_t>(plan.assignments.size()));
  for (const ControlPlanMsg::Assignment& a : plan.assignments) {
    put_u64(out, a.tag);
    put_f64(out, a.rate);
    put_f64(out, a.goodput);
  }
  end_message(out, at);
}

ControlPlanMsg decode_control_plan(std::span<const std::uint8_t> body) {
  Cursor c(body);
  ControlPlanMsg plan;
  const std::uint8_t flags = c.get_u8();
  if (flags >= 4) {
    throw WireFormatError(WireError::kMalformed,
                          "control plan with unknown flag bits");
  }
  plan.enabled = (flags & 1) != 0;
  plan.frozen = (flags & 2) != 0;
  plan.target_goodput = c.get_f64();
  plan.min_confidence = c.get_f64();
  plan.max_rate = c.get_f64();
  plan.epoch = c.get_u64();
  plan.policy = c.get_string();
  plan.predicted_goodput = c.get_f64();
  plan.collision_pressure = c.get_f64();
  const std::uint32_t count = c.get_u32();
  // Each assignment is 24 bytes; validate the count against the body so a
  // garbled prefix cannot trigger a huge allocation.
  if (count > c.remaining() / 24) {
    throw WireFormatError(WireError::kMalformed,
                          "control plan assignment count exceeds body");
  }
  plan.assignments.resize(count);
  for (ControlPlanMsg::Assignment& a : plan.assignments) {
    a.tag = c.get_u64();
    a.rate = c.get_f64();
    a.goodput = c.get_f64();
  }
  return plan;
}

void MessageReader::feed(const std::uint8_t* data, std::size_t n) {
  // Reclaim consumed prefix before growing; keeps the buffer bounded by
  // one partial message plus whatever feed() just delivered.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > kMaxMessageBody) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + n);
}

std::optional<Message> MessageReader::next() {
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 5) return std::nullopt;
  const std::uint8_t* head = buffer_.data() + consumed_;
  const std::uint8_t type = head[0];
  if (type < static_cast<std::uint8_t>(MsgType::kHello) ||
      type > static_cast<std::uint8_t>(MsgType::kControlPlan)) {
    throw WireFormatError(WireError::kUnknownType,
                          "unknown message type " + std::to_string(type));
  }
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(head[1 + i]) << (8 * i);
  }
  if (length > kMaxMessageBody) {
    throw WireFormatError(WireError::kOversized,
                          "message body of " + std::to_string(length) +
                              " bytes exceeds the " +
                              std::to_string(kMaxMessageBody) + " bound");
  }
  if (available < 5 + static_cast<std::size_t>(length)) return std::nullopt;
  Message message;
  message.type = static_cast<MsgType>(type);
  message.body.assign(head + 5, head + 5 + length);
  consumed_ += 5 + length;
  return message;
}

}  // namespace lfbs::net

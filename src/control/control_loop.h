#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "control/fleet_tracker.h"
#include "control/scheduler.h"
#include "net/wire.h"
#include "protocol/epoch.h"

namespace lfbs::reader {
class ReaderSession;
}

namespace lfbs::control {

struct ControlLoopConfig {
  FleetTrackerConfig tracker{};
  ControlObjective objective{};
  std::string policy = "greedy";
  std::uint64_t seed = 0x1f53c0de;
  /// Freeze: keep sensing, planning and publishing, but never apply —
  /// the operator's "look, don't touch" switch.
  bool frozen = false;
  /// Goodput denominator handed to end_epoch by the epoch-less step()
  /// overload and the background thread.
  Seconds epoch_duration = 4e-3;
};

/// The closed loop of the fleet control plane: sense (FleetTracker),
/// plan (EpochScheduler), act (the installed applier), tell (typed
/// "control" events, control.* metrics, and — via the gateway glue —
/// LFBW1 kControlPlan broadcasts).
///
/// step() is the synchronous heart: it closes the tracker's open epoch,
/// schedules the next one, publishes the decision, and applies it unless
/// frozen. Deployments that pace themselves (a reader session driving
/// epochs, a test) call step() directly; the gateway can instead start()
/// the background thread, which steps at a fixed period while frames
/// stream in.
///
/// All entry points are thread-safe. The knob setters mirror the LFBW1
/// control-set message, so a remote operator and the local loop see one
/// consistent state.
class ControlLoop {
 public:
  /// Applies one plan to the world — steps ReaderSession rate
  /// controllers, commands simulated tags, or nothing (gateway serve
  /// mode, where the plan is advisory and consumed downstream).
  using Applier = std::function<void(const EpochPlan&)>;

  ControlLoop(ControlLoopConfig config, protocol::RatePlan rates);
  ~ControlLoop();

  const ControlLoopConfig& config() const { return config_; }
  FleetTracker& tracker() { return tracker_; }
  const char* policy_name() const { return scheduler_.policy_name(); }

  void set_applier(Applier applier);

  /// Close epoch `epoch` (duration seconds of air time), plan the next
  /// epoch, publish, apply unless frozen. Returns the new plan.
  EpochPlan step(std::uint64_t epoch, Seconds duration);
  /// Self-paced overload: epochs count up from 0 with the configured
  /// duration. Used by the background thread.
  EpochPlan step();

  /// Background mode: step() every `period` seconds until stop().
  void start(Seconds period);
  void stop();

  // --- knobs (the LFBW1 control-set surface) -----------------------------
  void set_frozen(bool frozen);
  bool frozen() const;
  void set_objective(const ControlObjective& objective);
  ControlObjective objective() const;

  EpochPlan last_plan() const;
  std::uint64_t plans() const { return plans_; }

  /// Current state + plan as the wire message — the reply to control-get
  /// and the broadcast after each step.
  net::ControlPlanMsg wire_state() const;
  /// Applies a control-set message and returns the updated state. The
  /// gateway installs these two as its FrameServer control hooks.
  net::ControlPlanMsg apply_control_set(const net::ControlSet& set);

 private:
  EpochPlan step_locked_phase(std::uint64_t epoch, Seconds duration);
  void publish(const EpochPlan& plan, const FleetSnapshot& snapshot,
               bool applied);

  ControlLoopConfig config_;
  FleetTracker tracker_;
  EpochScheduler scheduler_;

  mutable std::mutex mutex_;
  Applier applier_;
  bool frozen_ = false;
  EpochPlan last_plan_;
  std::uint64_t plans_ = 0;
  std::uint64_t auto_epoch_ = 0;

  std::thread thread_;
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  bool running_ = false;
};

/// Builds an applier that steers a ReaderSession's broadcast rate
/// controller toward the plan's fastest assigned rate through the
/// existing hooks, one notch per epoch: step_up() (hysteresis-gated)
/// when the plan wants more than the session currently commands,
/// step_down() when it wants less. The session must outlive the applier.
ControlLoop::Applier session_applier(reader::ReaderSession& session);

}  // namespace lfbs::control

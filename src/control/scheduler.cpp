#include "control/scheduler.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"

namespace lfbs::control {

namespace {

/// splitmix64 finalizer — the deterministic per-tag tie-break hash.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Plan rates sorted ascending, filtered to the objective's manual cap.
/// Never empty for a non-empty plan: a cap below the slowest rate still
/// leaves the slowest rate (a fleet cannot transmit at nothing).
std::vector<BitRate> candidate_rates(const protocol::RatePlan& rates,
                                     BitRate cap) {
  std::vector<BitRate> out = rates.rates;
  std::sort(out.begin(), out.end());
  if (cap > 0.0) {
    while (out.size() > 1 && out.back() > cap * (1 + 1e-9)) out.pop_back();
  }
  return out;
}

/// Largest candidate at or below `rate`; the slowest one when `rate` sits
/// below the whole lattice (or was never observed).
std::size_t snap_level(const std::vector<BitRate>& cands, BitRate rate) {
  std::size_t level = 0;
  for (std::size_t i = 0; i < cands.size(); ++i) {
    if (cands[i] <= rate * (1 + 1e-9)) level = i;
  }
  return level;
}

double tag_success(const TagState& tag) {
  return std::clamp(tag.success, 0.0, 1.0);
}

}  // namespace

EpochPlan StaticAssignmentPolicy::plan(const FleetSnapshot& fleet,
                                       const protocol::RatePlan& rates,
                                       const ControlObjective& objective,
                                       std::uint64_t epoch) const {
  EpochPlan out;
  out.epoch = epoch;
  out.policy = name();
  out.collision_pressure = fleet.collision_pressure;
  const auto cands = candidate_rates(rates, objective.max_rate);
  if (cands.empty()) return out;
  out.max_rate = cands.back();
  for (const TagState& tag : fleet.tags) {
    // A tag whose rate was never observed defaults to the ceiling — the
    // paper's tags transmit at their configured (fast) rate until told
    // otherwise, which is exactly the no-control-plane behaviour.
    const std::size_t level = tag.rate > 0.0
                                  ? snap_level(cands, tag.rate)
                                  : cands.size() - 1;
    const double predicted = tag_success(tag) * cands[level];
    out.assignments.push_back({tag.key, cands[level], predicted});
    out.predicted_goodput_bps += predicted;
  }
  return out;
}

EpochPlan GreedyMarginalPolicy::plan(const FleetSnapshot& fleet,
                                     const protocol::RatePlan& rates,
                                     const ControlObjective& objective,
                                     std::uint64_t epoch) const {
  EpochPlan out;
  out.epoch = epoch;
  out.policy = name();
  out.collision_pressure = fleet.collision_pressure;
  const auto cands = candidate_rates(rates, objective.max_rate);
  if (cands.empty() || fleet.tags.empty()) {
    out.max_rate = cands.empty() ? 0.0 : cands.back();
    return out;
  }
  out.max_rate = cands.back();
  const double unit = cands.front();
  const double lambda =
      objective.collision_penalty * fleet.collision_pressure;

  struct Work {
    const TagState* tag;
    std::size_t level;
    double p;
    bool locked;
    std::uint64_t tiebreak;
  };
  std::vector<Work> work;
  work.reserve(fleet.tags.size());
  for (const TagState& tag : fleet.tags) {
    Work w;
    w.tag = &tag;
    w.level = 0;
    w.p = tag_success(tag);
    // Quarantined or hopeless tags stay at base: at anything faster they
    // only densify the edge lattice for everyone else.
    w.locked = tag.health == reader::HealthState::kQuarantined ||
               (objective.min_confidence > 0.0 &&
                tag.confidence < objective.min_confidence);
    w.tiebreak = mix64(seed_ ^ tag.key);
    work.push_back(w);
  }

  std::vector<std::size_t> count(cands.size(), 0);
  count[0] = work.size();
  double total_units = static_cast<double>(work.size());  // all at 1 unit
  double predicted = 0.0;
  for (const Work& w : work) predicted += w.p * cands[0];

  // Each pass raises exactly one tag one notch, so the loop is bounded by
  // tags × (levels − 1) iterations.
  while (true) {
    if (objective.target_goodput > 0.0 &&
        predicted >= objective.target_goodput) {
      break;
    }
    std::size_t best = work.size();
    double best_gain = 0.0;
    std::uint64_t best_tie = 0;
    for (std::size_t i = 0; i < work.size(); ++i) {
      Work& w = work[i];
      if (w.locked || w.level + 1 >= cands.size()) continue;
      const BitRate r_cur = cands[w.level];
      const BitRate r_next = cands[w.level + 1];
      const double delta_units = (r_next - r_cur) / unit;
      if (objective.epoch_budget > 0.0 &&
          total_units + delta_units > objective.epoch_budget + 1e-9) {
        continue;
      }
      // Marginal utility: expected goodput gained minus the crowding cost
      // of joining the next rate class (and leaving the current one).
      const double gain =
          w.p * (r_next - r_cur) -
          lambda * (static_cast<double>(count[w.level + 1]) * r_next -
                    static_cast<double>(count[w.level] - 1) * r_cur);
      if (gain <= 1e-9) continue;
      const bool better =
          best == work.size() ||
          gain > best_gain + 1e-12 ||
          (gain > best_gain - 1e-12 && w.tiebreak > best_tie);
      if (better) {
        best = i;
        best_gain = gain;
        best_tie = w.tiebreak;
      }
    }
    if (best == work.size()) break;
    Work& w = work[best];
    const BitRate r_cur = cands[w.level];
    const BitRate r_next = cands[w.level + 1];
    count[w.level] -= 1;
    w.level += 1;
    count[w.level] += 1;
    total_units += (r_next - r_cur) / unit;
    predicted += w.p * (r_next - r_cur);
  }

  out.predicted_goodput_bps = predicted;
  for (const Work& w : work) {
    out.assignments.push_back(
        {w.tag->key, cands[w.level], w.p * cands[w.level]});
  }
  return out;  // fleet.tags is key-sorted, and order was preserved
}

std::unique_ptr<SchedulingPolicy> make_policy(std::string_view name,
                                              std::uint64_t seed) {
  if (name == "greedy") return std::make_unique<GreedyMarginalPolicy>(seed);
  if (name == "static") return std::make_unique<StaticAssignmentPolicy>();
  return nullptr;
}

EpochScheduler::EpochScheduler(std::unique_ptr<SchedulingPolicy> policy,
                               protocol::RatePlan rates)
    : policy_(std::move(policy)), rates_(std::move(rates)) {
  LFBS_CHECK(policy_ != nullptr);
  LFBS_CHECK(!rates_.rates.empty());
}

EpochPlan EpochScheduler::schedule(const FleetSnapshot& fleet,
                                   std::uint64_t epoch) const {
  return policy_->plan(fleet, rates_, objective_, epoch);
}

}  // namespace lfbs::control

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"
#include "control/fleet_tracker.h"
#include "protocol/epoch.h"

namespace lfbs::control {

/// What the scheduler is asked to achieve, and under which constraints.
/// These are the gateway's remote-operable knobs (LFBW1 control-set).
struct ControlObjective {
  /// Stop raising rates once the plan's predicted aggregate goodput
  /// reaches this many bits/s; 0 = maximize.
  double target_goodput = 0.0;
  /// Tags whose smoothed decode confidence is below this are pinned to
  /// the slowest plan rate (they would waste air time at anything more).
  double min_confidence = 0.0;
  /// Manual override: cap every assignment at this rate (0 = plan max).
  BitRate max_rate = 0.0;
  /// Cap on the fleet's aggregate rate, in multiples of the slowest plan
  /// rate (the §3.2 base-rate unit); 0 = unlimited.
  double epoch_budget = 0.0;
  /// Scale of the same-rate crowding penalty. The effective penalty is
  /// collision_penalty × observed fleet collision pressure, so a clean
  /// fleet pays nothing and a colliding one spreads across rate classes.
  double collision_penalty = 1.0;
};

struct TagAssignment {
  std::uint64_t tag = 0;       ///< tracker tag key
  BitRate rate = 0.0;          ///< rate commanded for the next epoch
  double predicted_goodput = 0.0;  ///< bits/s the policy expects
};

/// One epoch's rate assignment for the whole fleet.
struct EpochPlan {
  std::uint64_t epoch = 0;     ///< epoch index the plan applies to
  std::string policy;          ///< name of the policy that produced it
  BitRate max_rate = 0.0;      ///< effective ceiling the policy planned under
  double predicted_goodput_bps = 0.0;
  double collision_pressure = 0.0;  ///< fleet pressure it planned against
  std::vector<TagAssignment> assignments;  ///< sorted by tag key
};

/// Pluggable epoch-rate assignment. Policies must be deterministic:
/// identical (snapshot, rates, objective, epoch) inputs — and, for
/// seeded policies, identical seeds — must produce identical plans.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;
  virtual const char* name() const = 0;
  virtual EpochPlan plan(const FleetSnapshot& fleet,
                         const protocol::RatePlan& rates,
                         const ControlObjective& objective,
                         std::uint64_t epoch) const = 0;
};

/// Baseline: every tag keeps its currently observed rate, snapped to the
/// nearest plan rate at or below the objective's cap. This is what a
/// fleet does with no control plane — the A/B reference the acceptance
/// test compares the greedy packer against.
class StaticAssignmentPolicy final : public SchedulingPolicy {
 public:
  const char* name() const override { return "static"; }
  EpochPlan plan(const FleetSnapshot& fleet, const protocol::RatePlan& rates,
                 const ControlObjective& objective,
                 std::uint64_t epoch) const override;
};

/// Greedy marginal-goodput packing over the §3.2 multiple-of-base-rate
/// lattice. Every tag starts at the slowest plan rate; the policy then
/// repeatedly applies the single one-notch step-up with the best marginal
/// utility
///
///   Δu = p_tag · (r_next − r_cur) − λ · (n_next · r_next − (n_cur−1) · r_cur)
///
/// where p_tag is the tag's smoothed decode success, n_r the number of
/// tags already at rate r, and λ = collision_penalty × fleet collision
/// pressure. The penalty term charges same-rate crowding (same-rate tags
/// share one edge lattice, which is where collisions live), so under
/// pressure the packer spreads the fleet across rate classes instead of
/// stacking everyone at the ceiling. Terminates when no step improves
/// utility, the epoch budget is exhausted, or the target goodput is met.
/// Deterministic: ties are broken by a seed-keyed per-tag hash.
class GreedyMarginalPolicy final : public SchedulingPolicy {
 public:
  explicit GreedyMarginalPolicy(std::uint64_t seed = 0x1f53c0de)
      : seed_(seed) {}
  const char* name() const override { return "greedy"; }
  std::uint64_t seed() const { return seed_; }
  EpochPlan plan(const FleetSnapshot& fleet, const protocol::RatePlan& rates,
                 const ControlObjective& objective,
                 std::uint64_t epoch) const override;

 private:
  std::uint64_t seed_;
};

/// Policy factory for the CLI names ("greedy", "static"); nullptr on an
/// unknown name — the spec parser turns that into its typed error.
std::unique_ptr<SchedulingPolicy> make_policy(std::string_view name,
                                              std::uint64_t seed);

/// Owns a policy + objective and solves one epoch at a time. This is the
/// planning half of the control plane; ControlLoop adds the sensing
/// (FleetTracker) and actuation (rate appliers) around it.
class EpochScheduler {
 public:
  EpochScheduler(std::unique_ptr<SchedulingPolicy> policy,
                 protocol::RatePlan rates);

  const char* policy_name() const { return policy_->name(); }
  const protocol::RatePlan& rates() const { return rates_; }
  const ControlObjective& objective() const { return objective_; }
  void set_objective(const ControlObjective& objective) {
    objective_ = objective;
  }

  /// Plans the assignment for epoch `epoch` from the given fleet view.
  EpochPlan schedule(const FleetSnapshot& fleet, std::uint64_t epoch) const;

 private:
  std::unique_ptr<SchedulingPolicy> policy_;
  protocol::RatePlan rates_;
  ControlObjective objective_;
};

}  // namespace lfbs::control

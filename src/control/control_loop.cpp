#include "control/control_loop.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "common/check.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "reader/session.h"

namespace lfbs::control {

ControlLoop::ControlLoop(ControlLoopConfig config, protocol::RatePlan rates)
    : config_(std::move(config)),
      tracker_(config_.tracker),
      scheduler_(make_policy(config_.policy, config_.seed),
                 std::move(rates)),
      frozen_(config_.frozen) {
  scheduler_.set_objective(config_.objective);
}

ControlLoop::~ControlLoop() { stop(); }

void ControlLoop::set_applier(Applier applier) {
  std::lock_guard<std::mutex> lock(mutex_);
  applier_ = std::move(applier);
}

EpochPlan ControlLoop::step(std::uint64_t epoch, Seconds duration) {
  tracker_.end_epoch(epoch, duration);
  const FleetSnapshot snapshot = tracker_.snapshot();
  // The plan computed after closing epoch E applies to epoch E+1.
  const EpochPlan plan = scheduler_.schedule(snapshot, epoch + 1);

  Applier applier;
  bool applied = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    last_plan_ = plan;
    ++plans_;
    auto_epoch_ = epoch + 1;
    if (!frozen_) {
      applier = applier_;
      applied = static_cast<bool>(applier);
    }
  }
  publish(plan, snapshot, applied);
  if (applier) applier(plan);
  return plan;
}

EpochPlan ControlLoop::step() {
  std::uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    epoch = auto_epoch_;
  }
  return step(epoch, config_.epoch_duration);
}

void ControlLoop::start(Seconds period) {
  LFBS_CHECK(period > 0.0);
  stop();
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    running_ = true;
  }
  thread_ = std::thread([this, period] {
    const auto interval = std::chrono::duration<double>(period);
    std::unique_lock<std::mutex> lock(wake_mutex_);
    while (running_) {
      if (wake_.wait_for(lock, interval, [this] { return !running_; })) {
        break;
      }
      lock.unlock();
      step();
      lock.lock();
    }
  });
}

void ControlLoop::stop() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    if (!running_ && !thread_.joinable()) return;
    running_ = false;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void ControlLoop::set_frozen(bool frozen) {
  std::lock_guard<std::mutex> lock(mutex_);
  frozen_ = frozen;
}

bool ControlLoop::frozen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return frozen_;
}

void ControlLoop::set_objective(const ControlObjective& objective) {
  std::lock_guard<std::mutex> lock(mutex_);
  scheduler_.set_objective(objective);
}

ControlObjective ControlLoop::objective() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return scheduler_.objective();
}

EpochPlan ControlLoop::last_plan() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_plan_;
}

net::ControlPlanMsg ControlLoop::wire_state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  net::ControlPlanMsg msg;
  msg.enabled = true;
  msg.frozen = frozen_;
  const ControlObjective& objective = scheduler_.objective();
  msg.target_goodput = objective.target_goodput;
  msg.min_confidence = objective.min_confidence;
  msg.max_rate = objective.max_rate;
  msg.epoch = last_plan_.epoch;
  msg.policy = last_plan_.policy.empty() ? scheduler_.policy_name()
                                         : last_plan_.policy;
  msg.predicted_goodput = last_plan_.predicted_goodput_bps;
  msg.collision_pressure = last_plan_.collision_pressure;
  msg.assignments.reserve(last_plan_.assignments.size());
  for (const TagAssignment& a : last_plan_.assignments) {
    msg.assignments.push_back({a.tag, a.rate, a.predicted_goodput});
  }
  return msg;
}

net::ControlPlanMsg ControlLoop::apply_control_set(
    const net::ControlSet& set) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (set.set_frozen) frozen_ = set.frozen;
    ControlObjective objective = scheduler_.objective();
    if (set.set_target_goodput) objective.target_goodput = set.target_goodput;
    if (set.set_min_confidence) objective.min_confidence = set.min_confidence;
    if (set.set_max_rate) objective.max_rate = set.max_rate;
    scheduler_.set_objective(objective);
  }
  if (obs::EventLog* log = obs::event_log()) {
    log->emit("control",
              {obs::Field::str("action", "set"),
               obs::Field::flag("frozen", frozen()),
               obs::Field::num("target_goodput", objective().target_goodput),
               obs::Field::num("min_confidence", objective().min_confidence),
               obs::Field::num("max_rate", objective().max_rate)});
  }
  return wire_state();
}

void ControlLoop::publish(const EpochPlan& plan,
                          const FleetSnapshot& snapshot, bool applied) {
  static obs::Counter& plans = obs::metrics().counter("control.plans");
  static obs::Counter& applies = obs::metrics().counter("control.applies");
  plans.add();
  if (applied) applies.add();
  obs::metrics().gauge("control.collision_pressure")
      .set(plan.collision_pressure);
  obs::metrics().gauge("control.predicted_goodput")
      .set(plan.predicted_goodput_bps);

  // Per-tag gauges: last-write-wins state an operator can scrape without
  // parsing the event log.
  for (const TagAssignment& a : plan.assignments) {
    const std::string suffix = std::to_string(a.tag);
    obs::metrics().gauge("control.tag_rate." + suffix).set(a.rate);
  }
  for (const TagState& tag : snapshot.tags) {
    const std::string suffix = std::to_string(tag.key);
    obs::metrics().gauge("control.tag_goodput." + suffix).set(tag.goodput_bps);
  }

  obs::EventLog* log = obs::event_log();
  if (log == nullptr) return;
  log->emit("control",
            {obs::Field::str("action", "plan"),
             obs::Field::integer("epoch", static_cast<std::int64_t>(plan.epoch)),
             obs::Field::str("policy", plan.policy),
             obs::Field::integer("tags", static_cast<std::int64_t>(
                                             plan.assignments.size())),
             obs::Field::num("max_rate", plan.max_rate),
             obs::Field::num("predicted_goodput", plan.predicted_goodput_bps),
             obs::Field::num("collision_pressure", plan.collision_pressure),
             obs::Field::flag("applied", applied)});
  for (const TagAssignment& a : plan.assignments) {
    std::vector<obs::Field> fields = {
        obs::Field::str("action", "assign"),
        obs::Field::integer("epoch", static_cast<std::int64_t>(plan.epoch)),
        obs::Field::integer("tag", static_cast<std::int64_t>(a.tag)),
        obs::Field::num("rate", a.rate),
        obs::Field::num("goodput", a.predicted_goodput),
    };
    // Enrich with the tag's observed state when the tracker still has it.
    for (const TagState& tag : snapshot.tags) {
      if (tag.key != a.tag) continue;
      fields.push_back(obs::Field::num("observed_goodput", tag.goodput_bps));
      fields.push_back(obs::Field::num("success", tag.success));
      if (tag.health != reader::HealthState::kHealthy) {
        fields.push_back(
            obs::Field::str("health", reader::to_string(tag.health)));
      }
      break;
    }
    log->emit("control", fields);
  }
}

ControlLoop::Applier session_applier(reader::ReaderSession& session) {
  return [&session](const EpochPlan& plan) {
    BitRate want = 0.0;
    for (const TagAssignment& a : plan.assignments) {
      want = std::max(want, a.rate);
    }
    if (want <= 0.0) return;
    const BitRate current = session.current_max_rate();
    if (want > current * (1 + 1e-9)) {
      // The plan asking for more rate is the control plane's "healthy
      // epoch" signal; the controller's hysteresis decides when the step
      // actually happens.
      session.controller().step_up(true);
    } else if (want < current * (1 - 1e-9)) {
      session.controller().step_down();
    }
  };
}

}  // namespace lfbs::control

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "common/units.h"
#include "core/lf_decoder.h"
#include "reader/health_ledger.h"
#include "runtime/frame_bus.h"

namespace lfbs::control {

/// Fleet-wide per-tag state, folded from the decoded-frame stream. The
/// tracker is the control plane's sensor: it turns the firehose of
/// FrameEvents (gateway path) or whole DecodeResults (reader-session
/// path) into the per-tag goodput / confidence / collision picture the
/// EpochScheduler plans against.
struct FleetTrackerConfig {
  /// EWMA weight of the newest epoch in the smoothed per-tag signals
  /// (success ratio, confidence, goodput, collision pressure).
  double alpha = 0.35;
  /// Epochs a tag may go unseen before it is forgotten (left range).
  std::uint64_t forget_after = 16;
  /// Edge-vector matching tolerance for the session path — the same
  /// polarity-tolerant identity metric reader::HealthLedger uses.
  double vector_tolerance = 0.35;
};

struct TagState {
  std::uint64_t key = 0;        ///< stable tag key (see FleetTracker)
  BitRate rate = 0.0;           ///< latest observed rate
  std::uint64_t last_epoch = 0; ///< last closed epoch the tag was seen in
  std::size_t epochs_seen = 0;
  std::uint64_t frames_total = 0;
  std::uint64_t frames_valid = 0;
  std::uint64_t frames_collided = 0;
  double confidence = 0.0;      ///< EWMA of per-epoch mean decode confidence
  double success = 0.0;         ///< EWMA of per-epoch valid/attempted ratio
  double goodput_bps = 0.0;     ///< EWMA of decoded payload bits per second
  double collision_pressure = 0.0;  ///< EWMA of per-epoch collided fraction
  reader::HealthState health = reader::HealthState::kHealthy;
  Complex edge_vector{};        ///< channel anchor (session path only)
};

/// One closed epoch's view of the fleet, ready for scheduling.
struct FleetSnapshot {
  std::uint64_t epoch = 0;      ///< last closed epoch index
  std::vector<TagState> tags;   ///< sorted by key (deterministic order)
  double collision_pressure = 0.0;   ///< fleet collided fraction, last epoch
  double aggregate_goodput_bps = 0.0;  ///< decoded payload bits/s, last epoch
};

/// Folds frame/decode observations into per-tag state across epochs.
///
/// Two feeding disciplines (one per deployment shape, not mixed):
///  - Gateway: observe_frame() on every published FrameEvent. Tags are
///    keyed by stitched stream index, which is stable within one decode
///    run — the gateway's planning horizon.
///  - Reader session: observe_decode() once per epoch with the session's
///    DecodeResult (plus observe_health() to stamp ledger status). Tags
///    are keyed by polarity-tolerant edge-vector matching, stable across
///    epochs even as decode order shifts.
///
/// end_epoch() closes the open epoch: per-epoch accumulators roll into
/// the EWMA state and tags unseen for forget_after epochs are dropped.
/// Tracked-but-absent tags have their success/goodput decayed toward
/// zero — in a fleet where every tag transmits every epoch, absence is
/// decode failure, and the scheduler must see it.
///
/// All entry points are thread-safe; observe_frame() is deliberately
/// cheap (one uncontended lock, one map find) because it sits on the
/// gateway's publish path, which the bench regression gate caps.
class FleetTracker {
 public:
  explicit FleetTracker(FleetTrackerConfig config = {});

  const FleetTrackerConfig& config() const { return config_; }

  void observe_frame(const runtime::FrameEvent& event);
  void observe_decode(const core::DecodeResult& result);
  void observe_health(const reader::HealthLedger& ledger);

  /// Closes the open epoch as index `epoch` lasting `duration` seconds.
  void end_epoch(std::uint64_t epoch, Seconds duration);

  FleetSnapshot snapshot() const;
  std::size_t tags_tracked() const;

 private:
  struct Accum {
    BitRate rate = 0.0;
    std::uint64_t frames = 0;
    std::uint64_t valid = 0;
    std::uint64_t collided = 0;
    double confidence_sum = 0.0;
    std::uint64_t confidence_n = 0;
    std::uint64_t payload_bits = 0;
    bool has_vector = false;
    Complex edge_vector{};
  };

  /// Polarity-tolerant relative distance between two edge vectors.
  double vector_distance(Complex a, Complex b) const;
  /// Finds the tag whose stored edge vector matches, or allocates a key.
  std::uint64_t key_for_vector_locked(Complex edge_vector);

  FleetTrackerConfig config_;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, Accum> pending_;
  std::map<std::uint64_t, TagState> tags_;
  std::uint64_t epoch_ = 0;
  bool any_epoch_closed_ = false;
  double fleet_pressure_ = 0.0;
  double fleet_goodput_ = 0.0;
  std::uint64_t next_vector_key_ = 1;
};

}  // namespace lfbs::control

#include "control/fleet_tracker.h"

#include <algorithm>
#include <cmath>

namespace lfbs::control {

FleetTracker::FleetTracker(FleetTrackerConfig config) : config_(config) {}

double FleetTracker::vector_distance(Complex a, Complex b) const {
  const double scale = std::max(std::abs(b), 1e-12);
  // Polarity-tolerant: a decode can recover the same tag with flipped
  // levels, negating the vector (same convention as HealthLedger).
  return std::min(std::abs(a - b), std::abs(a + b)) / scale;
}

std::uint64_t FleetTracker::key_for_vector_locked(Complex edge_vector) {
  std::uint64_t best_key = 0;
  double best_dist = config_.vector_tolerance;
  for (const auto& [key, tag] : tags_) {
    if (tag.edge_vector == Complex{}) continue;
    const double dist = vector_distance(edge_vector, tag.edge_vector);
    if (dist < best_dist) {
      best_dist = dist;
      best_key = key;
    }
  }
  // A tag first seen this epoch has no closed state yet — match the open
  // accumulators too, so two streams of one tag merge instead of forking.
  for (const auto& [key, acc] : pending_) {
    if (!acc.has_vector) continue;
    const double dist = vector_distance(edge_vector, acc.edge_vector);
    if (dist < best_dist) {
      best_dist = dist;
      best_key = key;
    }
  }
  if (best_key != 0) return best_key;
  return next_vector_key_++;
}

void FleetTracker::observe_frame(const runtime::FrameEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Stream indices are stable within one decode run; +1 keeps key 0 free
  // as the "no tag" sentinel.
  Accum& acc = pending_[static_cast<std::uint64_t>(event.stream_index) + 1];
  acc.rate = event.rate;
  acc.frames += 1;
  acc.valid += event.frame.valid() ? 1 : 0;
  acc.collided += event.collided ? 1 : 0;
  acc.confidence_sum += event.confidence;
  acc.confidence_n += 1;
  if (event.frame.valid()) acc.payload_bits += event.frame.payload.size();
}

void FleetTracker::observe_decode(const core::DecodeResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const core::DecodedStream& s : result.streams) {
    Accum& acc = pending_[key_for_vector_locked(s.edge_vector)];
    acc.rate = s.rate;
    acc.has_vector = true;
    acc.edge_vector = s.edge_vector;
    acc.confidence_sum += s.confidence.score();
    acc.confidence_n += 1;
    for (const protocol::ParsedFrame& f : s.frames) {
      acc.frames += 1;
      if (f.valid()) {
        acc.valid += 1;
        acc.payload_bits += f.payload.size();
      }
      acc.collided += s.collided ? 1 : 0;
    }
    // A stream that framed nothing still attempted the epoch.
    if (s.frames.empty()) acc.frames += 1;
  }
}

void FleetTracker::observe_health(const reader::HealthLedger& ledger) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const reader::HealthEntry& entry : ledger.entries()) {
    std::uint64_t best_key = 0;
    double best_dist = config_.vector_tolerance;
    for (const auto& [key, tag] : tags_) {
      if (tag.edge_vector == Complex{}) continue;
      const double dist = vector_distance(entry.edge_vector, tag.edge_vector);
      if (dist < best_dist) {
        best_dist = dist;
        best_key = key;
      }
    }
    if (best_key != 0) tags_[best_key].health = entry.state;
  }
}

void FleetTracker::end_epoch(std::uint64_t epoch, Seconds duration) {
  std::lock_guard<std::mutex> lock(mutex_);
  const double seconds = std::max(duration, 1e-12);
  std::uint64_t fleet_frames = 0;
  std::uint64_t fleet_collided = 0;
  std::uint64_t fleet_payload_bits = 0;

  for (const auto& [key, acc] : pending_) {
    TagState& tag = tags_[key];
    const bool fresh = tag.epochs_seen == 0;
    tag.key = key;
    tag.rate = acc.rate;
    tag.last_epoch = epoch;
    tag.epochs_seen += 1;
    tag.frames_total += acc.frames;
    tag.frames_valid += acc.valid;
    tag.frames_collided += acc.collided;
    if (acc.has_vector) tag.edge_vector = acc.edge_vector;

    const double frames = static_cast<double>(std::max<std::uint64_t>(
        acc.frames, 1));
    const double success = static_cast<double>(acc.valid) / frames;
    const double collided = static_cast<double>(acc.collided) / frames;
    const double confidence =
        acc.confidence_n > 0
            ? acc.confidence_sum / static_cast<double>(acc.confidence_n)
            : 0.0;
    const double goodput = static_cast<double>(acc.payload_bits) / seconds;
    const double a = fresh ? 1.0 : config_.alpha;
    tag.success += a * (success - tag.success);
    tag.collision_pressure += a * (collided - tag.collision_pressure);
    tag.confidence += a * (confidence - tag.confidence);
    tag.goodput_bps += a * (goodput - tag.goodput_bps);

    fleet_frames += acc.frames;
    fleet_collided += acc.collided;
    fleet_payload_bits += acc.payload_bits;
  }

  // Tags tracked but absent this epoch: decay their signals — in a fleet
  // where every tag transmits every epoch, absence is decode failure —
  // and forget tags that have been gone long enough.
  for (auto it = tags_.begin(); it != tags_.end();) {
    if (!pending_.count(it->first)) {
      if (epoch >= it->second.last_epoch &&
          epoch - it->second.last_epoch >= config_.forget_after) {
        it = tags_.erase(it);
        continue;
      }
      TagState& tag = it->second;
      tag.success *= 1.0 - config_.alpha;
      tag.goodput_bps *= 1.0 - config_.alpha;
      tag.confidence *= 1.0 - config_.alpha;
    }
    ++it;
  }

  fleet_pressure_ =
      fleet_frames > 0 ? static_cast<double>(fleet_collided) /
                             static_cast<double>(fleet_frames)
                       : 0.0;
  fleet_goodput_ = static_cast<double>(fleet_payload_bits) / seconds;
  epoch_ = epoch;
  any_epoch_closed_ = true;
  pending_.clear();
}

FleetSnapshot FleetTracker::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  FleetSnapshot snap;
  snap.epoch = epoch_;
  snap.collision_pressure = fleet_pressure_;
  snap.aggregate_goodput_bps = fleet_goodput_;
  snap.tags.reserve(tags_.size());
  for (const auto& [key, tag] : tags_) snap.tags.push_back(tag);
  return snap;  // std::map iteration is already key-sorted
}

std::size_t FleetTracker::tags_tracked() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tags_.size();
}

}  // namespace lfbs::control

#pragma once

#include <string>

#include "common/check.h"
#include "common/units.h"
#include "control/control_loop.h"

namespace lfbs::control {

/// What, structurally, is wrong with a control spec string — the same
/// typed-error shape as net::QuotaError, so the gateway CLI reports all
/// of its spec grammars the same way (exit 2, clause named).
enum class ControlError {
  kEmpty,     ///< spec or one of its clauses is empty
  kBadKey,    ///< unknown key
  kBadValue,  ///< value does not parse or is out of range
};

const char* to_string(ControlError code);

class ControlParseError : public CheckError {
 public:
  ControlParseError(ControlError code, const std::string& what)
      : CheckError(what), code_(code) {}
  ControlError code() const { return code_; }

 private:
  ControlError code_;
};

/// Parsed `--control` configuration: the loop itself plus how the
/// gateway should pace it.
struct ControlSpec {
  ControlLoopConfig loop{};
  /// Background stepping period; 0 = no thread, the gateway steps once
  /// when its run drains (the deterministic default).
  Seconds period = 0.0;
};

/// Parses the gateway's `--control` grammar: comma-separated key=value
/// clauses, all optional, or the literal "on" for all defaults.
///
///   policy=NAME        scheduling policy: greedy (default) | static
///   seed=N             tie-break seed for seeded policies
///   target-goodput=X   stop raising rates at X predicted bits/s (0 = max)
///   min-confidence=X   pin tags below confidence X to the base rate [0,1]
///   max-rate=X         manual cap on every assignment, bits/s (0 = plan)
///   budget=X           aggregate-rate cap, multiples of the base rate
///   penalty=X          collision crowding penalty scale (default 1)
///   freeze=0|1         plan and publish but never apply
///   alpha=X            tracker EWMA weight (0, 1]
///   forget=N           epochs unseen before a tag is forgotten (≥ 1)
///   period-ms=X        step the loop every X ms while the run streams
///
/// Throws ControlParseError (typed) on anything else.
ControlSpec parse_control_spec(const std::string& spec);

/// Validates a `--control-policy` name ("greedy" | "static"); throws
/// ControlParseError(kBadValue) on anything else.
std::string parse_policy_name(const std::string& name);

/// Parses a `--epoch-budget` value: a positive number of base-rate
/// multiples. Throws ControlParseError(kBadValue) otherwise.
double parse_epoch_budget(const std::string& value);

}  // namespace lfbs::control

#include "control/spec.h"

#include <stdexcept>

#include "common/kv_spec.h"
#include "control/scheduler.h"

namespace lfbs::control {

const char* to_string(ControlError code) {
  switch (code) {
    case ControlError::kEmpty:
      return "empty";
    case ControlError::kBadKey:
      return "bad key";
    case ControlError::kBadValue:
      return "bad value";
  }
  return "?";
}

namespace {

double control_number(const KvField& field) {
  try {
    return kv_number(field);
  } catch (const CheckError& e) {
    throw ControlParseError(ControlError::kBadValue, e.what());
  }
}

std::uint64_t control_u64(const KvField& field) {
  try {
    return kv_u64(field);
  } catch (const CheckError& e) {
    throw ControlParseError(ControlError::kBadValue, e.what());
  }
}

void require(bool ok, const KvField& field, const char* why) {
  if (!ok) {
    throw ControlParseError(ControlError::kBadValue,
                            "control clause '" + field.key + "=" +
                                field.value + "': " + why);
  }
}

}  // namespace

ControlSpec parse_control_spec(const std::string& spec) {
  if (spec.empty()) {
    throw ControlParseError(ControlError::kEmpty, "empty control spec");
  }
  ControlSpec out;
  if (spec == "on") return out;  // all defaults

  std::vector<KvField> fields;
  try {
    fields = parse_kv_spec(spec);
  } catch (const CheckError& e) {
    throw ControlParseError(ControlError::kBadValue, e.what());
  }
  if (fields.empty()) {
    throw ControlParseError(ControlError::kEmpty,
                            "control spec '" + spec + "' has no clauses");
  }
  for (const KvField& field : fields) {
    if (field.key == "policy") {
      out.loop.policy = parse_policy_name(field.value);
    } else if (field.key == "seed") {
      out.loop.seed = control_u64(field);
    } else if (field.key == "target-goodput") {
      const double v = control_number(field);
      require(v >= 0.0, field, "must be >= 0");
      out.loop.objective.target_goodput = v;
    } else if (field.key == "min-confidence") {
      const double v = control_number(field);
      require(v >= 0.0 && v <= 1.0, field, "must be in [0, 1]");
      out.loop.objective.min_confidence = v;
    } else if (field.key == "max-rate") {
      const double v = control_number(field);
      require(v >= 0.0, field, "must be >= 0");
      out.loop.objective.max_rate = v;
    } else if (field.key == "budget") {
      const double v = control_number(field);
      require(v >= 0.0, field, "must be >= 0");
      out.loop.objective.epoch_budget = v;
    } else if (field.key == "penalty") {
      const double v = control_number(field);
      require(v >= 0.0, field, "must be >= 0");
      out.loop.objective.collision_penalty = v;
    } else if (field.key == "freeze") {
      const double v = control_number(field);
      require(v == 0.0 || v == 1.0, field, "must be 0 or 1");
      out.loop.frozen = v != 0.0;
    } else if (field.key == "alpha") {
      const double v = control_number(field);
      require(v > 0.0 && v <= 1.0, field, "must be in (0, 1]");
      out.loop.tracker.alpha = v;
    } else if (field.key == "forget") {
      const std::uint64_t v = control_u64(field);
      require(v >= 1, field, "must be >= 1");
      out.loop.tracker.forget_after = v;
    } else if (field.key == "period-ms") {
      const double v = control_number(field);
      require(v > 0.0, field, "must be > 0");
      out.period = v * 1e-3;
    } else {
      throw ControlParseError(ControlError::kBadKey,
                              "unknown control key '" + field.key + "'");
    }
  }
  return out;
}

std::string parse_policy_name(const std::string& name) {
  if (make_policy(name, 0) == nullptr) {
    throw ControlParseError(ControlError::kBadValue,
                            "unknown scheduling policy '" + name +
                                "' (expected greedy or static)");
  }
  return name;
}

double parse_epoch_budget(const std::string& value) {
  double parsed = 0.0;
  try {
    std::size_t used = 0;
    parsed = std::stod(value, &used);
    if (used != value.size()) {
      throw ControlParseError(ControlError::kBadValue,
                              "epoch budget '" + value +
                                  "' has trailing characters");
    }
  } catch (const ControlParseError&) {
    throw;
  } catch (const std::exception&) {
    throw ControlParseError(ControlError::kBadValue,
                            "epoch budget '" + value + "' is not a number");
  }
  if (!(parsed > 0.0)) {
    throw ControlParseError(ControlError::kBadValue,
                            "epoch budget must be > 0, got '" + value + "'");
  }
  return parsed;
}

}  // namespace lfbs::control

#pragma once

#include <span>
#include <vector>

#include "common/units.h"

namespace lfbs::dsp {

/// Centered moving average with the given (odd) window; edges use the
/// shrunken window that fits. Used to smooth fold histograms and |dS|.
std::vector<double> moving_average(std::span<const double> xs,
                                   std::size_t window);

/// Subtract the complex mean from a buffer (removes the static environment
/// reflection / carrier leakage before amplitude work).
std::vector<Complex> remove_dc(std::span<const Complex> xs);

/// |x| of each complex sample.
std::vector<double> magnitude(std::span<const Complex> xs);

/// First difference y[i] = x[i+1] - x[i]; output one sample shorter.
std::vector<double> diff(std::span<const double> xs);

/// Single-pole IIR low-pass (exponential moving average), alpha in (0, 1].
class OnePole {
 public:
  explicit OnePole(double alpha);
  double step(double x);
  double value() const { return y_; }
  void reset(double y = 0.0);

 private:
  double alpha_;
  double y_ = 0.0;
  bool primed_ = false;
};

}  // namespace lfbs::dsp

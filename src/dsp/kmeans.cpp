#include "dsp/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lfbs::dsp {

namespace {

/// k-means++ seeding: first centroid uniform, subsequent ones with
/// probability proportional to squared distance from the nearest chosen one.
std::vector<Complex> seed_centroids(std::span<const Complex> points,
                                    std::size_t k, Rng& rng) {
  std::vector<Complex> centroids;
  centroids.reserve(k);
  centroids.push_back(points[rng.uniform_u64(points.size())]);
  std::vector<double> d2(points.size(),
                         std::numeric_limits<double>::infinity());
  while (centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      d2[i] = std::min(d2[i], std::norm(points[i] - centroids.back()));
      total += d2[i];
    }
    if (total <= 0.0) {
      // All points coincide with existing centroids; duplicate one.
      centroids.push_back(points[0]);
      continue;
    }
    double pick = rng.uniform() * total;
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      pick -= d2[i];
      if (pick <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

KMeansResult lloyd(std::span<const Complex> points,
                   std::vector<Complex> centroids,
                   const KMeansOptions& opts) {
  const std::size_t k = centroids.size();
  KMeansResult result;
  result.assignment.assign(points.size(), 0);
  std::vector<Complex> sums(k);
  std::vector<std::size_t> counts(k);
  for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
    // Assign.
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t bestj = 0;
      for (std::size_t j = 0; j < k; ++j) {
        const double d = std::norm(points[i] - centroids[j]);
        if (d < best) {
          best = d;
          bestj = j;
        }
      }
      result.assignment[i] = bestj;
    }
    // Update.
    std::fill(sums.begin(), sums.end(), Complex{});
    std::fill(counts.begin(), counts.end(), 0u);
    for (std::size_t i = 0; i < points.size(); ++i) {
      sums[result.assignment[i]] += points[i];
      ++counts[result.assignment[i]];
    }
    double motion = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      if (counts[j] == 0) continue;  // keep empty cluster where it was
      const Complex next = sums[j] / static_cast<double>(counts[j]);
      motion += std::norm(next - centroids[j]);
      centroids[j] = next;
    }
    result.iterations = iter + 1;
    if (motion < opts.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.centroids = std::move(centroids);
  result.inertia = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    result.inertia += std::norm(points[i] - result.centroids[result.assignment[i]]);
  }
  return result;
}

}  // namespace

KMeansResult kmeans(std::span<const Complex> points, std::size_t k, Rng& rng,
                    const KMeansOptions& opts) {
  LFBS_CHECK(k >= 1);
  LFBS_CHECK(!points.empty());
  LFBS_OBS_SPAN(span, "cluster", "dsp");
  span.attr("points", static_cast<double>(points.size()));
  span.attr("k", static_cast<double>(k));
  static obs::Counter& runs = obs::metrics().counter("dsp.kmeans_runs");
  static obs::Counter& iters = obs::metrics().counter("dsp.kmeans_iterations");
  runs.add();

  // Fit on a strided subsample when the input is very large.
  std::vector<Complex> subsample;
  std::span<const Complex> fit_points = points;
  if (opts.max_fit_points > 0 && points.size() > opts.max_fit_points) {
    const std::size_t stride = points.size() / opts.max_fit_points + 1;
    for (std::size_t i = 0; i < points.size(); i += stride) {
      subsample.push_back(points[i]);
    }
    fit_points = subsample;
  }

  KMeansResult best;
  best.inertia = std::numeric_limits<double>::infinity();
  const std::size_t restarts = std::max<std::size_t>(1, opts.restarts);
  for (std::size_t r = 0; r < restarts; ++r) {
    KMeansResult candidate =
        lloyd(fit_points, seed_centroids(fit_points, k, rng), opts);
    if (candidate.inertia < best.inertia) best = std::move(candidate);
  }
  iters.add(best.iterations);
  span.attr("iterations", static_cast<double>(best.iterations));
  if (fit_points.size() == points.size()) return best;

  // Final pass: assign every point to the fitted centroids.
  KMeansResult full;
  full.centroids = best.centroids;
  full.converged = best.converged;
  full.iterations = best.iterations;
  full.assignment.resize(points.size());
  full.inertia = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    double bestd = std::numeric_limits<double>::infinity();
    std::size_t bestj = 0;
    for (std::size_t j = 0; j < full.centroids.size(); ++j) {
      const double d = std::norm(points[i] - full.centroids[j]);
      if (d < bestd) {
        bestd = d;
        bestj = j;
      }
    }
    full.assignment[i] = bestj;
    full.inertia += bestd;
  }
  return full;
}

double kmeans_bic(std::span<const Complex> points, const KMeansResult& fit) {
  const auto n = static_cast<double>(points.size());
  const auto k = static_cast<double>(fit.centroids.size());
  // Spherical-Gaussian variance estimate over both IQ dimensions.
  const double dims = 2.0;
  const double var =
      std::max(fit.inertia / std::max(1.0, dims * (n - k)), 1e-18);
  const double log_likelihood =
      -0.5 * n * dims * (std::log(2.0 * M_PI * var) + 1.0);
  // Free parameters: k 2-D means + shared variance + k-1 mixing weights.
  const double params = k * dims + 1.0 + (k - 1.0);
  return log_likelihood - 0.5 * params * std::log(n);
}

ModelSelection select_cluster_count(std::span<const Complex> points,
                                    std::span<const std::size_t> candidates,
                                    Rng& rng, const KMeansOptions& opts) {
  LFBS_CHECK(!candidates.empty());
  // Occam ladder: the smallest candidate whose fit is adequate wins — a fit
  // is adequate when its RMS within-cluster residual is small against the
  // centroid spread. (Raw BIC systematically overfits tight clusters: the
  // likelihood gain of splitting a true cluster dwarfs the parameter
  // penalty, so it is recorded in `scores` but not used for the choice.)
  ModelSelection sel;
  std::vector<std::size_t> ordered(candidates.begin(), candidates.end());
  std::sort(ordered.begin(), ordered.end());
  bool chosen = false;
  for (std::size_t k : ordered) {
    KMeansResult fit = kmeans(points, k, rng, opts);
    sel.scores.push_back(kmeans_bic(points, fit));
    double spread = 0.0;
    for (std::size_t i = 0; i < fit.centroids.size(); ++i) {
      for (std::size_t j = i + 1; j < fit.centroids.size(); ++j) {
        spread = std::max(spread,
                          std::abs(fit.centroids[i] - fit.centroids[j]));
      }
    }
    const double rms = std::sqrt(
        fit.inertia / static_cast<double>(std::max<std::size_t>(
                          points.size(), 1)));
    const bool adequate = fit.centroids.size() <= 1
                              ? rms < 1e-12
                              : rms <= 0.1 * spread;
    if (!chosen && (adequate || k == ordered.back())) {
      sel.best_k = k;
      sel.fit = std::move(fit);
      chosen = true;
    }
  }
  return sel;
}

}  // namespace lfbs::dsp

#pragma once

#include <span>
#include <vector>

#include "common/units.h"

namespace lfbs::dsp {

/// Linear-interpolation resampler for complex baseband.
///
/// Good enough for backscatter captures: the signal bandwidth (≤250 kHz of
/// keying) sits far below any sensible capture rate, so linear
/// interpolation distortion is negligible next to channel noise. Lets
/// `lfbs_decode` ingest captures recorded at rates other than the decoder's
/// nominal one (e.g. 2.4 Msps RTL-SDR recordings).
std::vector<Complex> resample_linear(std::span<const Complex> input,
                                     double input_rate, double output_rate);

}  // namespace lfbs::dsp

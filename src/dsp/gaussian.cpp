#include "dsp/gaussian.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace lfbs::dsp {

double Gaussian2D::log_pdf(Complex z) const {
  const double one_minus_r2 = std::max(1.0 - rho * rho, 1e-12);
  const double norm =
      -std::log(2.0 * M_PI * sigma_i * sigma_q * std::sqrt(one_minus_r2));
  return norm - 0.5 * mahalanobis2(z);
}

double Gaussian2D::mahalanobis2(Complex z) const {
  const double one_minus_r2 = std::max(1.0 - rho * rho, 1e-12);
  const double zi = (z.real() - mean_i) / sigma_i;
  const double zq = (z.imag() - mean_q) / sigma_q;
  return (zi * zi - 2.0 * rho * zi * zq + zq * zq) / one_minus_r2;
}

Gaussian2D fit_gaussian2d(std::span<const Complex> points, double min_sigma) {
  LFBS_CHECK(points.size() >= 2);
  const auto n = static_cast<double>(points.size());
  double mi = 0.0, mq = 0.0;
  for (const Complex& p : points) {
    mi += p.real();
    mq += p.imag();
  }
  mi /= n;
  mq /= n;
  double vii = 0.0, vqq = 0.0, viq = 0.0;
  for (const Complex& p : points) {
    const double di = p.real() - mi;
    const double dq = p.imag() - mq;
    vii += di * di;
    vqq += dq * dq;
    viq += di * dq;
  }
  vii /= n;
  vqq /= n;
  viq /= n;
  Gaussian2D g;
  g.mean_i = mi;
  g.mean_q = mq;
  g.sigma_i = std::max(std::sqrt(vii), min_sigma);
  g.sigma_q = std::max(std::sqrt(vqq), min_sigma);
  g.rho = std::clamp(viq / (g.sigma_i * g.sigma_q), -0.999, 0.999);
  return g;
}

}  // namespace lfbs::dsp

#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace lfbs::dsp {

/// Result of a k-means run over points in the IQ plane.
struct KMeansResult {
  std::vector<Complex> centroids;        ///< k cluster centers
  std::vector<std::size_t> assignment;   ///< per-point cluster index
  double inertia = 0.0;                  ///< sum of squared distances
  std::size_t iterations = 0;            ///< Lloyd iterations performed
  bool converged = false;
};

struct KMeansOptions {
  std::size_t max_iterations = 100;
  std::size_t restarts = 8;     ///< best-of-N k-means++ restarts
  double tolerance = 1e-10;     ///< centroid-motion convergence threshold
  /// When the input exceeds this many points, Lloyd iterations run on a
  /// strided subsample of this size; the final assignment still covers all
  /// points. Keeps long-epoch decodes (hundreds of thousands of boundaries)
  /// tractable without changing the geometry.
  std::size_t max_fit_points = 4000;
};

/// Lloyd's algorithm with k-means++ seeding, best of `restarts` runs.
/// Requires k >= 1 and points non-empty. If k > |points| the surplus
/// clusters come back empty (centroid = first point, no members).
KMeansResult kmeans(std::span<const Complex> points, std::size_t k, Rng& rng,
                    const KMeansOptions& opts = {});

/// BIC-style score for model selection over cluster counts: spherical
/// Gaussian likelihood minus a complexity penalty. Higher is better.
double kmeans_bic(std::span<const Complex> points, const KMeansResult& fit);

/// Fits each candidate k and returns the one with the best BIC. This is how
/// the collision detector decides between 3 (single stream), 9 (two-tag
/// collision) and 27 (three-tag collision) clusters — §3.3 of the paper.
struct ModelSelection {
  std::size_t best_k = 0;
  KMeansResult fit;                  ///< fit for best_k
  std::vector<double> scores;        ///< BIC per candidate (same order)
};
ModelSelection select_cluster_count(std::span<const Complex> points,
                                    std::span<const std::size_t> candidates,
                                    Rng& rng, const KMeansOptions& opts = {});

}  // namespace lfbs::dsp

#include "dsp/resample.h"

#include <cmath>

#include "common/check.h"

namespace lfbs::dsp {

std::vector<Complex> resample_linear(std::span<const Complex> input,
                                     double input_rate, double output_rate) {
  LFBS_CHECK(input_rate > 0.0 && output_rate > 0.0);
  if (input.empty()) return {};
  const double ratio = input_rate / output_rate;
  const auto out_len = static_cast<std::size_t>(
      std::floor(static_cast<double>(input.size() - 1) / ratio)) + 1;
  std::vector<Complex> out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) {
    const double pos = static_cast<double>(i) * ratio;
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, input.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    out[i] = input[lo] * (1.0 - frac) + input[hi] * frac;
  }
  return out;
}

}  // namespace lfbs::dsp

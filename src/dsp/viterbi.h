#pragma once

#include <functional>
#include <vector>

namespace lfbs::dsp {

/// Generic Viterbi decoder over a small discrete state space.
///
/// The caller supplies log transition scores (use Viterbi::kForbidden for
/// impossible transitions — e.g. a rising edge after a rising edge in the
/// paper's 4-state edge model) and a per-step emission log-likelihood.
class Viterbi {
 public:
  static constexpr double kForbidden = -1e18;

  /// `transition[i][j]` is the log score of moving from state i to state j.
  /// `initial[i]` is the log score of starting in state i.
  Viterbi(std::vector<std::vector<double>> transition,
          std::vector<double> initial);

  std::size_t num_states() const { return initial_.size(); }

  /// Emission callback: log-likelihood of the observation at `step` given
  /// the hidden state is `state`.
  using Emission = std::function<double(std::size_t step, std::size_t state)>;

  struct Path {
    std::vector<std::size_t> states;  ///< best state per step
    double log_score = 0.0;           ///< total log score of the path
    /// Per-step soft output: gap between the best and runner-up cumulative
    /// scores after the step's emission — a log-likelihood-ratio proxy for
    /// how decided the step is (0 = tie, large = unambiguous). Single-state
    /// machines report +inf-free 0 gaps as 0.
    std::vector<double> margins;
    /// Gap between the best and second-best terminal scores: how decisively
    /// the winning path beats every alternative ending. 0 when only one
    /// state survives.
    double final_margin = 0.0;
  };

  /// Runs the decoder over `steps` observations. Returns the most likely
  /// state sequence. Requires steps >= 1.
  Path decode(std::size_t steps, const Emission& emission) const;

 private:
  std::vector<std::vector<double>> transition_;
  std::vector<double> initial_;
};

}  // namespace lfbs::dsp

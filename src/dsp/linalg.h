#pragma once

#include <span>
#include <vector>

#include "common/units.h"

namespace lfbs::dsp {

/// Small dense complex matrix, row major. Sized for protocol-scale problems
/// (tens of rows/columns: Buzz channel estimation and bit recovery), not for
/// large numerical workloads.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, Complex fill = {});

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  Complex& at(std::size_t r, std::size_t c);
  const Complex& at(std::size_t r, std::size_t c) const;

  Matrix transpose() const;
  /// Conjugate transpose.
  Matrix hermitian() const;

  Matrix operator*(const Matrix& rhs) const;
  std::vector<Complex> operator*(std::span<const Complex> v) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Complex> data_;
};

/// Solves the square system A x = b by Gaussian elimination with partial
/// pivoting. Returns empty when A is (numerically) singular.
std::vector<Complex> solve(const Matrix& a, std::span<const Complex> b);

/// Least-squares solution of the (possibly overdetermined) system A x ≈ b
/// via the normal equations AᴴA x = Aᴴ b, with Tikhonov damping `ridge`
/// (0 for plain LS). Returns empty when the normal matrix is singular.
std::vector<Complex> least_squares(const Matrix& a, std::span<const Complex> b,
                                   double ridge = 0.0);

/// Residual norm ||A x - b||₂.
double residual_norm(const Matrix& a, std::span<const Complex> x,
                     std::span<const Complex> b);

}  // namespace lfbs::dsp

#include "dsp/viterbi.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lfbs::dsp {

Viterbi::Viterbi(std::vector<std::vector<double>> transition,
                 std::vector<double> initial)
    : transition_(std::move(transition)), initial_(std::move(initial)) {
  LFBS_CHECK(!initial_.empty());
  LFBS_CHECK(transition_.size() == initial_.size());
  for (const auto& row : transition_) {
    LFBS_CHECK(row.size() == initial_.size());
  }
}

Viterbi::Path Viterbi::decode(std::size_t steps,
                              const Emission& emission) const {
  LFBS_CHECK(steps >= 1);
  LFBS_OBS_SPAN(span, "viterbi", "dsp");
  span.attr("steps", static_cast<double>(steps));
  static obs::Counter& decodes = obs::metrics().counter("dsp.viterbi_decodes");
  static obs::Counter& step_count =
      obs::metrics().counter("dsp.viterbi_steps");
  decodes.add();
  step_count.add(steps);
  const std::size_t n = num_states();
  std::vector<double> score(n);
  std::vector<std::vector<std::size_t>> backptr(
      steps, std::vector<std::size_t>(n, 0));

  Path path;
  path.margins.resize(steps, 0.0);
  const auto step_margin = [](const std::vector<double>& scores) {
    double best = -std::numeric_limits<double>::infinity();
    double second = best;
    for (double s : scores) {
      if (s > best) {
        second = best;
        best = s;
      } else if (s > second) {
        second = s;
      }
    }
    if (!std::isfinite(best) || !std::isfinite(second)) return 0.0;
    return best - second;
  };

  for (std::size_t s = 0; s < n; ++s) {
    score[s] = initial_[s] + emission(0, s);
  }
  path.margins[0] = step_margin(score);
  std::vector<double> next(n);
  for (std::size_t t = 1; t < steps; ++t) {
    for (std::size_t j = 0; j < n; ++j) {
      double best = -std::numeric_limits<double>::infinity();
      std::size_t arg = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (transition_[i][j] <= kForbidden) continue;
        const double cand = score[i] + transition_[i][j];
        if (cand > best) {
          best = cand;
          arg = i;
        }
      }
      next[j] = best + emission(t, j);
      backptr[t][j] = arg;
    }
    score.swap(next);
    path.margins[t] = step_margin(score);
  }

  path.states.resize(steps);
  const auto best_it = std::max_element(score.begin(), score.end());
  path.log_score = *best_it;
  path.final_margin = step_margin(score);
  std::size_t state = static_cast<std::size_t>(best_it - score.begin());
  for (std::size_t t = steps; t-- > 0;) {
    path.states[t] = state;
    state = backptr[t][state];
  }
  return path;
}

}  // namespace lfbs::dsp

#include "dsp/peaks.h"

#include <algorithm>
#include <cstdint>

namespace lfbs::dsp {

namespace {

/// Value at circular or clamped index.
double at(std::span<const double> xs, std::int64_t i, bool circular) {
  const auto n = static_cast<std::int64_t>(xs.size());
  if (circular) {
    i = ((i % n) + n) % n;
  } else {
    if (i < 0 || i >= n) return -1e300;  // off the edge counts as -inf
  }
  return xs[static_cast<std::size_t>(i)];
}

std::size_t circular_distance(std::size_t a, std::size_t b, std::size_t n) {
  const std::size_t d = a > b ? a - b : b - a;
  return std::min(d, n - d);
}

}  // namespace

std::vector<Peak> find_peaks(std::span<const double> xs,
                             const PeakOptions& opts) {
  std::vector<Peak> candidates;
  const auto n = static_cast<std::int64_t>(xs.size());
  for (std::int64_t i = 0; i < n; ++i) {
    const double v = xs[static_cast<std::size_t>(i)];
    if (v < opts.min_value) continue;
    const double prev = at(xs, i - 1, opts.circular);
    const double next = at(xs, i + 1, opts.circular);
    // Strictly greater than the previous sample makes the first index of a
    // plateau the candidate; >= the next allows flat-topped peaks.
    if (v > prev && v >= next) {
      candidates.push_back({static_cast<std::size_t>(i), v});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Peak& a, const Peak& b) { return a.value > b.value; });

  std::vector<Peak> accepted;
  for (const Peak& c : candidates) {
    const bool tooClose = std::any_of(
        accepted.begin(), accepted.end(), [&](const Peak& a) {
          const std::size_t d =
              opts.circular
                  ? circular_distance(a.index, c.index, xs.size())
                  : (a.index > c.index ? a.index - c.index
                                       : c.index - a.index);
          return d < opts.min_distance;
        });
    if (!tooClose) accepted.push_back(c);
  }
  return accepted;
}

}  // namespace lfbs::dsp

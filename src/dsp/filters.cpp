#include "dsp/filters.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace lfbs::dsp {

std::vector<double> moving_average(std::span<const double> xs,
                                   std::size_t window) {
  LFBS_CHECK(window >= 1);
  const std::size_t n = xs.size();
  std::vector<double> out(n, 0.0);
  if (n == 0) return out;
  const auto half = static_cast<std::int64_t>(window / 2);
  // Prefix sums give O(n) regardless of window size.
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + xs[i];
  for (std::size_t i = 0; i < n; ++i) {
    const auto lo = std::max<std::int64_t>(0, static_cast<std::int64_t>(i) - half);
    const auto hi = std::min<std::int64_t>(static_cast<std::int64_t>(n) - 1,
                                           static_cast<std::int64_t>(i) + half);
    const double sum = prefix[static_cast<std::size_t>(hi) + 1] -
                       prefix[static_cast<std::size_t>(lo)];
    out[i] = sum / static_cast<double>(hi - lo + 1);
  }
  return out;
}

std::vector<Complex> remove_dc(std::span<const Complex> xs) {
  Complex m{};
  for (const Complex& x : xs) m += x;
  if (!xs.empty()) m /= static_cast<double>(xs.size());
  std::vector<Complex> out(xs.begin(), xs.end());
  for (Complex& x : out) x -= m;
  return out;
}

std::vector<double> magnitude(std::span<const Complex> xs) {
  std::vector<double> out(xs.size());
  std::transform(xs.begin(), xs.end(), out.begin(),
                 [](const Complex& x) { return std::abs(x); });
  return out;
}

std::vector<double> diff(std::span<const double> xs) {
  if (xs.size() < 2) return {};
  std::vector<double> out(xs.size() - 1);
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) out[i] = xs[i + 1] - xs[i];
  return out;
}

OnePole::OnePole(double alpha) : alpha_(alpha) {
  LFBS_CHECK(alpha > 0.0 && alpha <= 1.0);
}

double OnePole::step(double x) {
  if (!primed_) {
    y_ = x;
    primed_ = true;
  } else {
    y_ += alpha_ * (x - y_);
  }
  return y_;
}

void OnePole::reset(double y) {
  y_ = y;
  primed_ = false;
}

}  // namespace lfbs::dsp

#include "dsp/linalg.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace lfbs::dsp {

Matrix::Matrix(std::size_t rows, std::size_t cols, Complex fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Complex& Matrix::at(std::size_t r, std::size_t c) {
  LFBS_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

const Complex& Matrix::at(std::size_t r, std::size_t c) const {
  LFBS_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  return t;
}

Matrix Matrix::hermitian() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t.at(c, r) = std::conj(at(r, c));
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  LFBS_CHECK(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const Complex a = at(r, k);
      if (a == Complex{}) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) {
        out.at(r, c) += a * rhs.at(k, c);
      }
    }
  }
  return out;
}

std::vector<Complex> Matrix::operator*(std::span<const Complex> v) const {
  LFBS_CHECK(cols_ == v.size());
  std::vector<Complex> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    Complex sum{};
    for (std::size_t c = 0; c < cols_; ++c) sum += at(r, c) * v[c];
    out[r] = sum;
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  LFBS_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  LFBS_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

std::vector<Complex> solve(const Matrix& a, std::span<const Complex> b) {
  LFBS_CHECK(a.rows() == a.cols());
  LFBS_CHECK(a.rows() == b.size());
  const std::size_t n = a.rows();
  // Augmented working copy.
  Matrix work = a;
  std::vector<Complex> rhs(b.begin(), b.end());

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot on magnitude.
    std::size_t pivot = col;
    double best = std::abs(work.at(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(work.at(r, col));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best < 1e-12) return {};  // singular
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(work.at(pivot, c), work.at(col, c));
      std::swap(rhs[pivot], rhs[col]);
    }
    const Complex inv = 1.0 / work.at(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const Complex factor = work.at(r, col) * inv;
      if (factor == Complex{}) continue;
      for (std::size_t c = col; c < n; ++c)
        work.at(r, c) -= factor * work.at(col, c);
      rhs[r] -= factor * rhs[col];
    }
  }
  // Back substitution.
  std::vector<Complex> x(n);
  for (std::size_t i = n; i-- > 0;) {
    Complex sum = rhs[i];
    for (std::size_t c = i + 1; c < n; ++c) sum -= work.at(i, c) * x[c];
    x[i] = sum / work.at(i, i);
  }
  return x;
}

std::vector<Complex> least_squares(const Matrix& a, std::span<const Complex> b,
                                   double ridge) {
  LFBS_CHECK(a.rows() == b.size());
  const Matrix ah = a.hermitian();
  Matrix normal = ah * a;
  for (std::size_t i = 0; i < normal.rows(); ++i) normal.at(i, i) += ridge;
  const std::vector<Complex> rhs = ah * b;
  return solve(normal, rhs);
}

double residual_norm(const Matrix& a, std::span<const Complex> x,
                     std::span<const Complex> b) {
  const std::vector<Complex> ax = a * x;
  LFBS_CHECK(ax.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) sum += std::norm(ax[i] - b[i]);
  return std::sqrt(sum);
}

}  // namespace lfbs::dsp

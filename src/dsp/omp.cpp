#include "dsp/omp.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace lfbs::dsp {

SparseSolution orthogonal_matching_pursuit(const Matrix& a,
                                           std::span<const Complex> y,
                                           std::size_t max_support,
                                           double residual_tol) {
  LFBS_CHECK(a.rows() == y.size());
  LFBS_CHECK(max_support >= 1);
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  SparseSolution sol;
  sol.coefficients.assign(n, Complex{});
  std::vector<Complex> residual(y.begin(), y.end());
  double y_norm = 0.0;
  for (const Complex& v : y) y_norm += std::norm(v);
  y_norm = std::sqrt(y_norm);
  if (y_norm == 0.0) return sol;

  std::vector<bool> used(n, false);
  std::vector<Complex> coeffs;

  for (std::size_t pick = 0; pick < std::min(max_support, n); ++pick) {
    // Column with the largest correlation against the residual.
    double best = -1.0;
    std::size_t best_col = n;
    for (std::size_t c = 0; c < n; ++c) {
      if (used[c]) continue;
      Complex corr{};
      double col_norm2 = 0.0;
      for (std::size_t r = 0; r < m; ++r) {
        corr += std::conj(a.at(r, c)) * residual[r];
        col_norm2 += std::norm(a.at(r, c));
      }
      if (col_norm2 <= 0.0) continue;
      const double score = std::norm(corr) / col_norm2;
      if (score > best) {
        best = score;
        best_col = c;
      }
    }
    if (best_col == n) break;
    used[best_col] = true;
    sol.support.push_back(best_col);

    // Re-solve LS on the chosen support.
    Matrix sub(m, sol.support.size());
    for (std::size_t r = 0; r < m; ++r)
      for (std::size_t c = 0; c < sol.support.size(); ++c)
        sub.at(r, c) = a.at(r, sol.support[c]);
    coeffs = least_squares(sub, y);
    if (coeffs.empty()) {
      // Degenerate support (collinear columns) — drop the last pick.
      sol.support.pop_back();
      used[best_col] = true;  // but do not retry it
      continue;
    }

    // Update residual.
    const std::vector<Complex> approx = sub * coeffs;
    double res_norm = 0.0;
    for (std::size_t r = 0; r < m; ++r) {
      residual[r] = y[r] - approx[r];
      res_norm += std::norm(residual[r]);
    }
    sol.residual = std::sqrt(res_norm);
    if (sol.residual < residual_tol * y_norm) break;
  }

  for (std::size_t c = 0; c < sol.support.size() && c < coeffs.size(); ++c) {
    sol.coefficients[sol.support[c]] = coeffs[c];
  }
  return sol;
}

}  // namespace lfbs::dsp

#include "dsp/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace lfbs::dsp {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

Complex mean(std::span<const Complex> xs) {
  if (xs.empty()) return {};
  Complex sum{};
  for (const Complex& x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  LFBS_CHECK(!xs.empty());
  LFBS_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double min(std::span<const double> xs) {
  LFBS_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  LFBS_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double rms(std::span<const Complex> xs) { return std::sqrt(mean_power(xs)); }

double mean_power(std::span<const Complex> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const Complex& x : xs) sum += std::norm(x);
  return sum / static_cast<double>(xs.size());
}

std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                   double hi, std::size_t bins) {
  LFBS_CHECK(bins > 0);
  LFBS_CHECK(hi > lo);
  std::vector<std::size_t> counts(bins, 0);
  const double scale = static_cast<double>(bins) / (hi - lo);
  for (double x : xs) {
    auto idx = static_cast<std::int64_t>((x - lo) * scale);
    idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(bins) - 1);
    ++counts[static_cast<std::size_t>(idx)];
  }
  return counts;
}

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace lfbs::dsp

#pragma once

#include <span>
#include <vector>

#include "common/units.h"

namespace lfbs::dsp {

/// Arithmetic mean. Returns 0 for an empty span.
double mean(std::span<const double> xs);

/// Population variance (divides by N). Returns 0 for fewer than 2 samples.
double variance(std::span<const double> xs);

double stddev(std::span<const double> xs);

/// Complex mean. Returns 0 for an empty span.
Complex mean(std::span<const Complex> xs);

/// Median (copies and sorts). Requires a non-empty span.
double median(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Requires non-empty input.
double percentile(std::span<const double> xs, double p);

/// min and max of a non-empty span.
double min(std::span<const double> xs);
double max(std::span<const double> xs);

/// Root mean square of complex samples (sqrt of mean power).
double rms(std::span<const Complex> xs);

/// Mean power |x|^2 of complex samples.
double mean_power(std::span<const Complex> xs);

/// Fixed-width histogram over [lo, hi) with `bins` buckets. Out-of-range
/// samples are clamped into the first/last bucket.
std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                   double hi, std::size_t bins);

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Population variance; 0 with fewer than 2 samples.
  double variance() const;
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace lfbs::dsp

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace lfbs::dsp {

/// A detected local maximum in a 1-D series.
struct Peak {
  std::size_t index = 0;
  double value = 0.0;
};

/// Options for find_peaks.
struct PeakOptions {
  /// Absolute floor a sample must exceed to be a peak candidate.
  double min_value = 0.0;
  /// Minimum spacing between two reported peaks, in samples. When two
  /// candidates are closer than this, the larger one wins.
  std::size_t min_distance = 1;
  /// When true the series is treated as circular (used for fold histograms,
  /// where offset 0 and offset N-1 are adjacent).
  bool circular = false;
};

/// Finds local maxima of `xs` subject to the options, sorted by descending
/// value. A plateau reports its first index.
std::vector<Peak> find_peaks(std::span<const double> xs,
                             const PeakOptions& opts);

}  // namespace lfbs::dsp

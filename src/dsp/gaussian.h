#pragma once

#include <span>

#include "common/units.h"

namespace lfbs::dsp {

/// Bivariate normal over the IQ plane: (Vi, Vq) ~ N(mu_i, mu_q, s_i, s_q, r),
/// exactly the emission model of the paper's Viterbi stage (§3.5).
struct Gaussian2D {
  double mean_i = 0.0;
  double mean_q = 0.0;
  double sigma_i = 1.0;
  double sigma_q = 1.0;
  double rho = 0.0;  ///< correlation coefficient in (-1, 1)

  /// Log probability density at the complex point z = I + jQ.
  double log_pdf(Complex z) const;

  /// Mahalanobis distance squared from the mean.
  double mahalanobis2(Complex z) const;
};

/// Maximum-likelihood fit to a set of IQ points. Requires >= 2 points;
/// sigmas are floored at `min_sigma` so degenerate clusters stay usable
/// as Viterbi emissions.
Gaussian2D fit_gaussian2d(std::span<const Complex> points,
                          double min_sigma = 1e-6);

}  // namespace lfbs::dsp

#pragma once

#include <span>
#include <vector>

#include "dsp/linalg.h"

namespace lfbs::dsp {

/// Result of a sparse recovery.
struct SparseSolution {
  std::vector<Complex> coefficients;  ///< full-length, zeros off support
  std::vector<std::size_t> support;   ///< indices chosen, in pick order
  double residual = 0.0;              ///< final ||y - A x||₂
};

/// Orthogonal Matching Pursuit: greedy sparse solution of y ≈ A x.
///
/// Buzz estimates per-tag channel coefficients with compressive sensing;
/// this is the solver our Buzz reimplementation uses when the population of
/// potentially-present tags exceeds the number of active ones. Columns of A
/// are the tags' known signature waveforms.
///
/// Stops after `max_support` picks or when the residual drops below
/// `residual_tol` times ||y||.
SparseSolution orthogonal_matching_pursuit(const Matrix& a,
                                           std::span<const Complex> y,
                                           std::size_t max_support,
                                           double residual_tol = 1e-6);

}  // namespace lfbs::dsp

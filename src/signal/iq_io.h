#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "signal/sample_buffer.h"

namespace lfbs::signal {

/// Simple IQ capture file format, so decoded experiments can be saved and
/// replayed — and so real captures (e.g. converted from a UHD recording)
/// can be fed through the decoder unchanged.
///
/// Layout (little-endian):
///   bytes 0..7   magic "LFBSIQ1\0"
///   bytes 8..15  sample rate, IEEE-754 double
///   bytes 16..23 sample count N, uint64
///   then N interleaved float32 pairs (I, Q)
///
/// float32 payload halves the file size against the in-memory double
/// representation; backscatter dynamic range fits comfortably.
constexpr char kIqMagic[8] = {'L', 'F', 'B', 'S', 'I', 'Q', '1', '\0'};

/// What, structurally, is wrong with an LFBSIQ1 file. A malformed capture
/// is an expected runtime condition (flaky SDR recordings, interrupted
/// writes), so readers report it with a typed error a caller can switch
/// on instead of a bare invariant failure.
enum class IqError {
  kOpenFailed,  ///< file missing or unreadable
  kBadMagic,    ///< first 8 bytes are not the LFBSIQ1 magic
  kBadHeader,   ///< header truncated, or sample rate non-finite / <= 0
  kTruncated,   ///< payload shorter than the declared sample count
};

const char* to_string(IqError code);

/// Thrown by the IQ readers on a malformed or truncated capture. Derives
/// from CheckError so existing catch sites keep working; new code can
/// catch IqFormatError and inspect code().
class IqFormatError : public CheckError {
 public:
  IqFormatError(IqError code, const std::string& what)
      : CheckError(what), code_(code) {}
  IqError code() const { return code_; }

 private:
  IqError code_;
};

/// Writes a buffer to `path`. Throws CheckError on I/O failure.
void save_iq(const SampleBuffer& buffer, const std::string& path);

/// Reads a capture back. Throws IqFormatError on a missing file, bad magic,
/// malformed header, or a payload shorter than the header declares. The
/// declared count is validated against the actual file size before any
/// allocation, so a garbled header cannot trigger a huge allocation.
SampleBuffer load_iq(const std::string& path);

/// Incremental LFBSIQ1 reader: parses the header on open and then hands out
/// samples chunk by chunk, so the streaming runtime can replay captures far
/// larger than memory. Throws IqFormatError on a missing file, bad magic,
/// or malformed header. A payload shorter than the declared count is
/// tolerated (streaming fail-soft): total() is clamped to what the file
/// actually holds and truncated() reports the shortfall.
class IqReader {
 public:
  explicit IqReader(const std::string& path);

  SampleRate sample_rate() const { return fs_; }
  /// Total samples available (header count, clamped to the payload size).
  std::uint64_t total() const { return total_; }
  /// Samples not yet read.
  std::uint64_t remaining() const { return total_ - position_; }
  /// True when the payload is shorter than the header declared.
  bool truncated() const { return truncated_; }
  /// Samples the header declared, before clamping.
  std::uint64_t declared() const { return declared_; }

  /// Appends up to `max_samples` samples to `out`; returns how many were
  /// read (0 at end-of-stream).
  std::size_t read(std::size_t max_samples, std::vector<Complex>& out);

 private:
  std::ifstream in_;
  SampleRate fs_ = 0.0;
  std::uint64_t total_ = 0;
  std::uint64_t declared_ = 0;
  std::uint64_t position_ = 0;
  bool truncated_ = false;
};

}  // namespace lfbs::signal

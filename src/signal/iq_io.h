#pragma once

#include <string>

#include "signal/sample_buffer.h"

namespace lfbs::signal {

/// Simple IQ capture file format, so decoded experiments can be saved and
/// replayed — and so real captures (e.g. converted from a UHD recording)
/// can be fed through the decoder unchanged.
///
/// Layout (little-endian):
///   bytes 0..7   magic "LFBSIQ1\0"
///   bytes 8..15  sample rate, IEEE-754 double
///   bytes 16..23 sample count N, uint64
///   then N interleaved float32 pairs (I, Q)
///
/// float32 payload halves the file size against the in-memory double
/// representation; backscatter dynamic range fits comfortably.
constexpr char kIqMagic[8] = {'L', 'F', 'B', 'S', 'I', 'Q', '1', '\0'};

/// Writes a buffer to `path`. Throws CheckError on I/O failure.
void save_iq(const SampleBuffer& buffer, const std::string& path);

/// Reads a capture back. Throws CheckError on I/O failure or a malformed
/// header.
SampleBuffer load_iq(const std::string& path);

}  // namespace lfbs::signal

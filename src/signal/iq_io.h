#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "signal/sample_buffer.h"

namespace lfbs::signal {

/// Simple IQ capture file format, so decoded experiments can be saved and
/// replayed — and so real captures (e.g. converted from a UHD recording)
/// can be fed through the decoder unchanged.
///
/// Layout (little-endian):
///   bytes 0..7   magic "LFBSIQ1\0"
///   bytes 8..15  sample rate, IEEE-754 double
///   bytes 16..23 sample count N, uint64
///   then N interleaved float32 pairs (I, Q)
///
/// float32 payload halves the file size against the in-memory double
/// representation; backscatter dynamic range fits comfortably.
constexpr char kIqMagic[8] = {'L', 'F', 'B', 'S', 'I', 'Q', '1', '\0'};

/// Writes a buffer to `path`. Throws CheckError on I/O failure.
void save_iq(const SampleBuffer& buffer, const std::string& path);

/// Reads a capture back. Throws CheckError on I/O failure or a malformed
/// header.
SampleBuffer load_iq(const std::string& path);

/// Incremental LFBSIQ1 reader: parses the header on open and then hands out
/// samples chunk by chunk, so the streaming runtime can replay captures far
/// larger than memory. Throws CheckError on I/O failure or a malformed
/// header; a truncated payload surfaces as an early end-of-stream.
class IqReader {
 public:
  explicit IqReader(const std::string& path);

  SampleRate sample_rate() const { return fs_; }
  /// Total samples declared by the header.
  std::uint64_t total() const { return total_; }
  /// Samples not yet read.
  std::uint64_t remaining() const { return total_ - position_; }

  /// Appends up to `max_samples` samples to `out`; returns how many were
  /// read (0 at end-of-stream).
  std::size_t read(std::size_t max_samples, std::vector<Complex>& out);

 private:
  std::ifstream in_;
  SampleRate fs_ = 0.0;
  std::uint64_t total_ = 0;
  std::uint64_t position_ = 0;
};

}  // namespace lfbs::signal

#pragma once

#include <vector>

#include "common/units.h"
#include "signal/edge_detector.h"

namespace lfbs::signal {

/// Eye-pattern folding (§3.2): samples of the edge-strength series are
/// accumulated modulo a candidate bit period. A real stream at that period
/// piles all of its edges onto one fold offset, standing out of the noise;
/// spurious edges spread uniformly and average away.
class EyePattern {
 public:
  /// `period_samples` may be fractional (bit periods rarely land on an
  /// integer number of ADC samples); `bins` controls offset resolution.
  EyePattern(double period_samples, std::size_t bins);

  double period_samples() const { return period_; }
  std::size_t bins() const { return bins_; }
  /// Width of one fold bin, in samples.
  double bin_width() const { return period_ / static_cast<double>(bins_); }

  /// Folds a per-sample magnitude series (e.g. |dS|) into the accumulator.
  void fold_series(std::span<const double> series);

  /// Folds discrete edges, weighting each bin by edge strength.
  void fold_edges(std::span<const Edge> edges);

  /// Accumulated fold histogram (length == bins()).
  const std::vector<double>& histogram() const { return accum_; }

  /// Offsets (in samples, within [0, period)) of fold peaks at least
  /// `min_ratio` times the histogram mean, separated by at least
  /// `min_separation_samples`. Sorted by descending peak value.
  std::vector<double> peak_offsets(double min_ratio,
                                   double min_separation_samples) const;

  void reset();

 private:
  double period_;
  std::size_t bins_;
  std::vector<double> accum_;
};

}  // namespace lfbs::signal

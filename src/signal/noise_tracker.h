#pragma once

#include <cstddef>
#include <deque>
#include <span>
#include <vector>

namespace lfbs::signal {

/// Rolling robust noise-floor estimator.
///
/// Edge detection thresholds against the noise level of the differential
/// magnitude series |dS|. The seed pipeline estimated that level once, over
/// the whole capture — fine for a stationary channel, blind to fading: a
/// person walking through the link (channel/dynamics.h) moves the floor by
/// several dB within an epoch, so a single global estimate either drowns
/// weak edges (threshold too high in the fade) or floods the detector with
/// noise peaks (too low outside it).
///
/// The tracker instead estimates per block: median + MAD of each block of
/// |dS| values, combined over a trailing history of blocks by taking the
/// median of the block medians (and MADs). Median-of-medians keeps a burst
/// of real edges inside one block from dragging the floor up, while the
/// bounded history lets the estimate follow second-scale fading.
struct NoiseTrackerConfig {
  /// Samples per estimation block.
  std::size_t block = 1024;
  /// Trailing blocks combined into one estimate.
  std::size_t history = 8;
};

/// One noise estimate: the floor (median of |dS|) and a robust sigma.
struct NoiseEstimate {
  double floor = 0.0;   ///< median differential magnitude
  double spread = 0.0;  ///< robust sigma: 1.4826 x MAD

  /// Detection threshold at the given sigma multiple, floored.
  double threshold(double sigma_multiple, double min_strength) const;
  /// Strength of an edge in sigma units, in dB: 20 log10(strength/spread).
  /// Clamped to [-40, 80] so degenerate spreads stay finite.
  double snr_db(double strength) const;
};

class NoiseTracker {
 public:
  explicit NoiseTracker(NoiseTrackerConfig config = {});

  const NoiseTrackerConfig& config() const { return config_; }

  /// Feeds magnitude samples; closes blocks as they fill.
  void push(std::span<const double> magnitudes);

  /// Flushes a partially-filled trailing block into the history.
  void flush();

  /// Rolling estimate over the trailing history. Zero until primed.
  NoiseEstimate estimate() const;

  bool primed() const { return !blocks_.empty(); }

  /// Causal blockwise estimates over a whole series: out[b] is the rolling
  /// estimate after block b (samples [b*block, (b+1)*block)) closed, so it
  /// can threshold that block without looking ahead. A trailing partial
  /// block gets its own estimate. Empty input returns one zero estimate.
  static std::vector<NoiseEstimate> track_series(
      std::span<const double> series, const NoiseTrackerConfig& config);

 private:
  void close_block();

  NoiseTrackerConfig config_;
  std::vector<double> pending_;
  std::deque<std::pair<double, double>> blocks_;  ///< (median, mad) per block
};

}  // namespace lfbs::signal

#include "signal/eye_pattern.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "dsp/peaks.h"
#include "dsp/stats.h"

namespace lfbs::signal {

EyePattern::EyePattern(double period_samples, std::size_t bins)
    : period_(period_samples), bins_(bins), accum_(bins, 0.0) {
  LFBS_CHECK(period_ > 0.0);
  LFBS_CHECK(bins_ >= 2);
}

void EyePattern::fold_series(std::span<const double> series) {
  const double scale = static_cast<double>(bins_) / period_;
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double offset = std::fmod(static_cast<double>(i), period_);
    auto bin = static_cast<std::size_t>(offset * scale);
    if (bin >= bins_) bin = bins_ - 1;
    accum_[bin] += series[i];
  }
}

void EyePattern::fold_edges(std::span<const Edge> edges) {
  const double scale = static_cast<double>(bins_) / period_;
  for (const Edge& e : edges) {
    const double offset =
        std::fmod(static_cast<double>(e.position), period_);
    auto bin = static_cast<std::size_t>(offset * scale);
    if (bin >= bins_) bin = bins_ - 1;
    accum_[bin] += e.strength;
  }
}

std::vector<double> EyePattern::peak_offsets(
    double min_ratio, double min_separation_samples) const {
  const double avg = dsp::mean(accum_);
  dsp::PeakOptions opts;
  opts.min_value = std::max(avg * min_ratio, 1e-12);
  opts.min_distance = std::max<std::size_t>(
      1, static_cast<std::size_t>(min_separation_samples / bin_width()));
  opts.circular = true;
  const std::vector<dsp::Peak> peaks = dsp::find_peaks(accum_, opts);

  std::vector<double> offsets;
  offsets.reserve(peaks.size());
  for (const dsp::Peak& p : peaks) {
    // Centroid refinement over the peak bin and its circular neighbours.
    const auto n = static_cast<std::int64_t>(bins_);
    double weight = 0.0;
    double moment = 0.0;
    for (std::int64_t di = -1; di <= 1; ++di) {
      const auto idx = static_cast<std::size_t>(
          ((static_cast<std::int64_t>(p.index) + di) % n + n) % n);
      weight += accum_[idx];
      moment += accum_[idx] * static_cast<double>(di);
    }
    const double refined =
        static_cast<double>(p.index) + (weight > 0.0 ? moment / weight : 0.0);
    double offset = (refined + 0.5) * bin_width();
    offset = std::fmod(offset + period_, period_);
    offsets.push_back(offset);
  }
  return offsets;
}

void EyePattern::reset() { std::fill(accum_.begin(), accum_.end(), 0.0); }

}  // namespace lfbs::signal

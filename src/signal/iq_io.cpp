#include "signal/iq_io.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/check.h"

namespace lfbs::signal {

namespace {

constexpr std::uint64_t kSampleBytes = 2 * sizeof(float);
constexpr std::uint64_t kHeaderBytes =
    sizeof kIqMagic + sizeof(double) + sizeof(std::uint64_t);

/// Parsed and validated LFBSIQ1 header plus the payload actually present.
struct Header {
  SampleRate fs = 0.0;
  std::uint64_t declared = 0;   ///< sample count the header claims
  std::uint64_t available = 0;  ///< samples the file actually holds
};

/// Reads and validates the header, leaving `in` positioned at the payload.
/// Throws IqFormatError naming the exact structural defect.
Header read_header(std::ifstream& in, const std::string& path) {
  if (!in.good()) {
    throw IqFormatError(IqError::kOpenFailed, "cannot open IQ file: " + path);
  }
  char magic[sizeof kIqMagic];
  in.read(magic, sizeof magic);
  if (!in.good() || std::memcmp(magic, kIqMagic, sizeof magic) != 0) {
    throw IqFormatError(IqError::kBadMagic,
                        "not an LFBSIQ1 capture: " + path);
  }
  Header header;
  in.read(reinterpret_cast<char*>(&header.fs), sizeof header.fs);
  in.read(reinterpret_cast<char*>(&header.declared), sizeof header.declared);
  if (!in.good()) {
    throw IqFormatError(IqError::kBadHeader,
                        "truncated LFBSIQ1 header: " + path);
  }
  if (!std::isfinite(header.fs) || header.fs <= 0.0) {
    throw IqFormatError(IqError::kBadHeader,
                        "malformed IQ header (bad sample rate): " + path);
  }
  // Measure the payload actually on disk before trusting the declared
  // count: a garbled count must not drive allocation or read sizes.
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  in.seekg(static_cast<std::streamoff>(kHeaderBytes));
  if (!in.good() || end < static_cast<std::streamoff>(kHeaderBytes)) {
    throw IqFormatError(IqError::kBadHeader,
                        "unseekable LFBSIQ1 payload: " + path);
  }
  header.available =
      (static_cast<std::uint64_t>(end) - kHeaderBytes) / kSampleBytes;
  return header;
}

}  // namespace

const char* to_string(IqError code) {
  switch (code) {
    case IqError::kOpenFailed: return "open failed";
    case IqError::kBadMagic: return "bad magic";
    case IqError::kBadHeader: return "bad header";
    case IqError::kTruncated: return "truncated payload";
  }
  return "unknown";
}

void save_iq(const SampleBuffer& buffer, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  LFBS_CHECK_MSG(out.good(), "cannot open IQ file for writing: " + path);

  out.write(kIqMagic, sizeof kIqMagic);
  const double fs = buffer.sample_rate();
  out.write(reinterpret_cast<const char*>(&fs), sizeof fs);
  const std::uint64_t count = buffer.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof count);

  std::vector<float> interleaved(2 * buffer.size());
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    interleaved[2 * i] = static_cast<float>(buffer[i].real());
    interleaved[2 * i + 1] = static_cast<float>(buffer[i].imag());
  }
  out.write(reinterpret_cast<const char*>(interleaved.data()),
            static_cast<std::streamsize>(interleaved.size() * sizeof(float)));
  LFBS_CHECK_MSG(out.good(), "short write to IQ file: " + path);
}

SampleBuffer load_iq(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  const Header header = read_header(in, path);
  // The whole-file loader is strict: every declared sample must be present.
  if (header.available < header.declared) {
    throw IqFormatError(
        IqError::kTruncated,
        "truncated IQ payload: " + path + " declares " +
            std::to_string(header.declared) + " samples, holds " +
            std::to_string(header.available));
  }
  const auto count = static_cast<std::size_t>(header.declared);

  std::vector<float> interleaved(2 * count);
  in.read(reinterpret_cast<char*>(interleaved.data()),
          static_cast<std::streamsize>(interleaved.size() * sizeof(float)));
  if (!in.good() && count != 0) {
    throw IqFormatError(IqError::kTruncated,
                        "truncated IQ payload: " + path);
  }

  std::vector<Complex> samples(count);
  for (std::size_t i = 0; i < count; ++i) {
    samples[i] = {static_cast<double>(interleaved[2 * i]),
                  static_cast<double>(interleaved[2 * i + 1])};
  }
  return SampleBuffer(header.fs, std::move(samples));
}

IqReader::IqReader(const std::string& path) : in_(path, std::ios::binary) {
  const Header header = read_header(in_, path);
  fs_ = header.fs;
  declared_ = header.declared;
  // The streaming reader fails soft on truncation: it serves the samples
  // that exist and flags the shortfall, so a partially recorded capture
  // still replays up to the point the recording died.
  total_ = std::min(header.declared, header.available);
  truncated_ = header.available < header.declared;
}

std::size_t IqReader::read(std::size_t max_samples, std::vector<Complex>& out) {
  const std::uint64_t want =
      std::min<std::uint64_t>(max_samples, remaining());
  if (want == 0) return 0;
  std::vector<float> interleaved(2 * want);
  in_.read(reinterpret_cast<char*>(interleaved.data()),
           static_cast<std::streamsize>(interleaved.size() * sizeof(float)));
  // A truncated file yields whatever was present; gcount is always even
  // pairs short of the request by at most one partial sample, which we drop.
  const auto floats_read =
      static_cast<std::size_t>(in_.gcount()) / sizeof(float);
  const std::size_t got = floats_read / 2;
  out.reserve(out.size() + got);
  for (std::size_t i = 0; i < got; ++i) {
    out.emplace_back(static_cast<double>(interleaved[2 * i]),
                     static_cast<double>(interleaved[2 * i + 1]));
  }
  position_ += got;
  if (got < want) total_ = position_;  // truncated: clamp to what exists
  return got;
}

}  // namespace lfbs::signal

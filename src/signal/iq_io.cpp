#include "signal/iq_io.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/check.h"

namespace lfbs::signal {

void save_iq(const SampleBuffer& buffer, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  LFBS_CHECK_MSG(out.good(), "cannot open IQ file for writing: " + path);

  out.write(kIqMagic, sizeof kIqMagic);
  const double fs = buffer.sample_rate();
  out.write(reinterpret_cast<const char*>(&fs), sizeof fs);
  const std::uint64_t count = buffer.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof count);

  std::vector<float> interleaved(2 * buffer.size());
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    interleaved[2 * i] = static_cast<float>(buffer[i].real());
    interleaved[2 * i + 1] = static_cast<float>(buffer[i].imag());
  }
  out.write(reinterpret_cast<const char*>(interleaved.data()),
            static_cast<std::streamsize>(interleaved.size() * sizeof(float)));
  LFBS_CHECK_MSG(out.good(), "short write to IQ file: " + path);
}

SampleBuffer load_iq(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  LFBS_CHECK_MSG(in.good(), "cannot open IQ file: " + path);

  char magic[sizeof kIqMagic];
  in.read(magic, sizeof magic);
  LFBS_CHECK_MSG(in.good() && std::memcmp(magic, kIqMagic, sizeof magic) == 0,
                 "not an LFBSIQ1 capture: " + path);
  double fs = 0.0;
  in.read(reinterpret_cast<char*>(&fs), sizeof fs);
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  LFBS_CHECK_MSG(in.good() && fs > 0.0, "malformed IQ header: " + path);

  std::vector<float> interleaved(2 * count);
  in.read(reinterpret_cast<char*>(interleaved.data()),
          static_cast<std::streamsize>(interleaved.size() * sizeof(float)));
  LFBS_CHECK_MSG(in.good() || count == 0, "truncated IQ payload: " + path);

  std::vector<Complex> samples(count);
  for (std::size_t i = 0; i < count; ++i) {
    samples[i] = {static_cast<double>(interleaved[2 * i]),
                  static_cast<double>(interleaved[2 * i + 1])};
  }
  return SampleBuffer(fs, std::move(samples));
}

IqReader::IqReader(const std::string& path) : in_(path, std::ios::binary) {
  LFBS_CHECK_MSG(in_.good(), "cannot open IQ file: " + path);
  char magic[sizeof kIqMagic];
  in_.read(magic, sizeof magic);
  LFBS_CHECK_MSG(in_.good() && std::memcmp(magic, kIqMagic, sizeof magic) == 0,
                 "not an LFBSIQ1 capture: " + path);
  in_.read(reinterpret_cast<char*>(&fs_), sizeof fs_);
  in_.read(reinterpret_cast<char*>(&total_), sizeof total_);
  LFBS_CHECK_MSG(in_.good() && fs_ > 0.0, "malformed IQ header: " + path);
}

std::size_t IqReader::read(std::size_t max_samples, std::vector<Complex>& out) {
  const std::uint64_t want =
      std::min<std::uint64_t>(max_samples, remaining());
  if (want == 0) return 0;
  std::vector<float> interleaved(2 * want);
  in_.read(reinterpret_cast<char*>(interleaved.data()),
           static_cast<std::streamsize>(interleaved.size() * sizeof(float)));
  // A truncated file yields whatever was present; gcount is always even
  // pairs short of the request by at most one partial sample, which we drop.
  const auto floats_read =
      static_cast<std::size_t>(in_.gcount()) / sizeof(float);
  const std::size_t got = floats_read / 2;
  out.reserve(out.size() + got);
  for (std::size_t i = 0; i < got; ++i) {
    out.emplace_back(static_cast<double>(interleaved[2 * i]),
                     static_cast<double>(interleaved[2 * i + 1]));
  }
  position_ += got;
  if (got < want) total_ = position_;  // truncated: clamp to what exists
  return got;
}

}  // namespace lfbs::signal

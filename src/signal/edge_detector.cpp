#include "signal/edge_detector.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "dsp/peaks.h"
#include "dsp/stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lfbs::signal {

double edge_confidence(double snr_db) {
  // Logistic centred at 11 dB with a 3 dB scale: 6-sigma detections
  // (~15.6 dB) map to ~0.82, the 2.5-sigma degraded-mode floor (~8 dB)
  // to ~0.27.
  return 1.0 / (1.0 + std::exp(-(snr_db - 11.0) / 3.0));
}

EdgeDetector::EdgeDetector(EdgeDetectorConfig config)
    : config_(std::move(config)) {
  LFBS_CHECK(config_.window >= 1);
  LFBS_CHECK(config_.min_separation >= 1);
}

std::vector<double> EdgeDetector::differential_magnitude(
    const SampleBuffer& buffer) const {
  const auto xs = buffer.span();
  const auto n = static_cast<SampleIndex>(xs.size());
  std::vector<double> out(xs.size(), 0.0);
  if (n == 0) return out;

  // Prefix sums for O(1) windowed means.
  std::vector<Complex> prefix(xs.size() + 1);
  for (std::size_t i = 0; i < xs.size(); ++i) prefix[i + 1] = prefix[i] + xs[i];
  const auto sum = [&](SampleIndex lo, SampleIndex hi) {  // [lo, hi)
    lo = std::clamp<SampleIndex>(lo, 0, n);
    hi = std::clamp<SampleIndex>(hi, 0, n);
    if (hi <= lo) return Complex{};
    return prefix[static_cast<std::size_t>(hi)] -
           prefix[static_cast<std::size_t>(lo)];
  };

  const auto w = static_cast<SampleIndex>(config_.window);
  const auto g = static_cast<SampleIndex>(config_.guard);
  for (SampleIndex i = 0; i < n; ++i) {
    const SampleIndex before_lo = i - g - w;
    const SampleIndex before_hi = i - g;
    const SampleIndex after_lo = i + g;
    const SampleIndex after_hi = i + g + w;
    const auto nb = static_cast<double>(
        std::clamp<SampleIndex>(before_hi, 0, n) -
        std::clamp<SampleIndex>(before_lo, 0, n));
    const auto na = static_cast<double>(
        std::clamp<SampleIndex>(after_hi, 0, n) -
        std::clamp<SampleIndex>(after_lo, 0, n));
    if (nb < 1.0 || na < 1.0) continue;  // too close to the buffer edge
    const Complex before = sum(before_lo, before_hi) / nb;
    const Complex after = sum(after_lo, after_hi) / na;
    out[static_cast<std::size_t>(i)] = std::abs(after - before);
  }
  return out;
}

std::vector<Edge> EdgeDetector::detect(const SampleBuffer& buffer) const {
  LFBS_OBS_SPAN(span, "detect", "signal");
  span.attr("samples", static_cast<double>(buffer.size()));
  static obs::Counter& runs = obs::metrics().counter("signal.detect_runs");
  static obs::Counter& detected =
      obs::metrics().counter("signal.edges_detected");
  runs.add();
  const std::vector<double> d = differential_magnitude(buffer);
  if (d.empty()) return {};

  // Robust threshold: edges are temporally sparse, so the median of |dS|
  // tracks the noise floor even with many tags transmitting. The global
  // estimate is always computed — it is the detection threshold in the
  // default (seed) mode and the fallback SNR reference in adaptive mode.
  const double med = dsp::median(d);
  std::vector<double> dev(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) dev[i] = std::abs(d[i] - med);
  const double mad = dsp::median(dev);
  NoiseEstimate global;
  global.floor = med;
  global.spread = 1.4826 * mad;
  const double threshold =
      global.threshold(config_.threshold_sigma, config_.min_strength);

  // Adaptive mode: blockwise rolling estimates. Peak-pick at the laxest
  // blockwise threshold, then re-gate each peak against its own block so a
  // quiet stretch keeps a low threshold while a noisy one stays strict.
  std::vector<NoiseEstimate> blocks;
  double pick_threshold = threshold;
  if (config_.adaptive_threshold) {
    blocks = NoiseTracker::track_series(d, config_.noise);
    for (const NoiseEstimate& est : blocks) {
      pick_threshold = std::min(
          pick_threshold,
          est.threshold(config_.threshold_sigma, config_.min_strength));
    }
  }
  const auto local_estimate = [&](std::size_t index) -> const NoiseEstimate& {
    if (blocks.empty()) return global;
    const std::size_t block = std::max<std::size_t>(config_.noise.block, 8);
    return blocks[std::min(index / block, blocks.size() - 1)];
  };

  dsp::PeakOptions opts;
  opts.min_value = pick_threshold;
  opts.min_distance = config_.min_separation;
  std::vector<dsp::Peak> peaks = dsp::find_peaks(d, opts);

  std::vector<Edge> edges;
  edges.reserve(peaks.size());
  for (const dsp::Peak& p : peaks) {
    const NoiseEstimate& est = local_estimate(p.index);
    if (config_.adaptive_threshold &&
        d[p.index] <
            est.threshold(config_.threshold_sigma, config_.min_strength)) {
      continue;
    }
    Edge e;
    // Parabolic sub-sample refinement of the |dS| peak.
    double refined = static_cast<double>(p.index);
    if (p.index > 0 && p.index + 1 < d.size()) {
      const double dm = d[p.index - 1];
      const double d0 = d[p.index];
      const double dp = d[p.index + 1];
      const double denom = dm - 2.0 * d0 + dp;
      if (denom < -1e-18) {
        const double shift = 0.5 * (dm - dp) / denom;
        if (std::abs(shift) <= 1.0) refined += shift;
      }
    }
    e.position = refined;
    e.differential =
        differential_at(buffer.span(), static_cast<SampleIndex>(std::llround(refined)),
                        config_.window, config_.guard);
    e.strength = std::abs(e.differential);
    e.snr_db = est.snr_db(e.strength);
    e.confidence = edge_confidence(e.snr_db);
    edges.push_back(e);
  }
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.position < b.position; });
  detected.add(edges.size());
  span.attr("edges", static_cast<double>(edges.size()));
  return edges;
}

Complex EdgeDetector::differential_at(std::span<const Complex> samples,
                                      SampleIndex position, std::size_t window,
                                      std::size_t guard) {
  const auto g = static_cast<SampleIndex>(guard);
  const Complex before =
      windowed_mean_before(samples, position - g, window);
  const Complex after = windowed_mean_after(samples, position + g, window);
  return after - before;
}

}  // namespace lfbs::signal

#include "signal/noise_tracker.h"

#include <algorithm>
#include <cmath>

#include "dsp/stats.h"

namespace lfbs::signal {
namespace {

constexpr double kMadToSigma = 1.4826;

std::pair<double, double> block_stats(std::span<const double> block) {
  const double med = dsp::median(block);
  std::vector<double> dev(block.size());
  for (std::size_t i = 0; i < block.size(); ++i) {
    dev[i] = std::abs(block[i] - med);
  }
  return {med, dsp::median(dev)};
}

}  // namespace

double NoiseEstimate::threshold(double sigma_multiple,
                                double min_strength) const {
  return std::max(floor + sigma_multiple * spread, min_strength);
}

double NoiseEstimate::snr_db(double strength) const {
  const double sigma = std::max(spread, 1e-12);
  const double ratio = std::max(strength, 1e-12) / sigma;
  return std::clamp(20.0 * std::log10(ratio), -40.0, 80.0);
}

NoiseTracker::NoiseTracker(NoiseTrackerConfig config) : config_(config) {
  config_.block = std::max<std::size_t>(config_.block, 8);
  config_.history = std::max<std::size_t>(config_.history, 1);
  pending_.reserve(config_.block);
}

void NoiseTracker::push(std::span<const double> magnitudes) {
  for (double m : magnitudes) {
    pending_.push_back(m);
    if (pending_.size() >= config_.block) close_block();
  }
}

void NoiseTracker::flush() {
  if (!pending_.empty()) close_block();
}

void NoiseTracker::close_block() {
  blocks_.push_back(block_stats(pending_));
  pending_.clear();
  while (blocks_.size() > config_.history) blocks_.pop_front();
}

NoiseEstimate NoiseTracker::estimate() const {
  if (blocks_.empty()) return {};
  std::vector<double> meds, mads;
  meds.reserve(blocks_.size());
  mads.reserve(blocks_.size());
  for (const auto& [med, mad] : blocks_) {
    meds.push_back(med);
    mads.push_back(mad);
  }
  NoiseEstimate est;
  est.floor = dsp::median(meds);
  est.spread = kMadToSigma * dsp::median(mads);
  return est;
}

std::vector<NoiseEstimate> NoiseTracker::track_series(
    std::span<const double> series, const NoiseTrackerConfig& config) {
  NoiseTracker tracker(config);
  const std::size_t block = tracker.config().block;
  std::vector<NoiseEstimate> out;
  if (series.empty()) {
    out.push_back({});
    return out;
  }
  out.reserve(series.size() / block + 1);
  for (std::size_t begin = 0; begin < series.size(); begin += block) {
    const std::size_t len = std::min(block, series.size() - begin);
    tracker.push(series.subspan(begin, len));
    tracker.flush();  // partial trailing block still contributes
    out.push_back(tracker.estimate());
  }
  return out;
}

}  // namespace lfbs::signal

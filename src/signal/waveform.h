#pragma once

#include <vector>

#include "common/units.h"

namespace lfbs::signal {

/// One antenna-state change of a tag: at `time` seconds the antenna moves to
/// `level` (0 = detuned, 1 = tuned). Levels between transitions are constant.
struct Transition {
  Seconds time = 0.0;
  double level = 0.0;
};

/// Antenna-state timeline for one tag over one epoch.
///
/// Tags express their transmission as a sequence of transitions; the
/// receiver renders the timeline onto its sample grid. Finite switching
/// speed of the RF transistor is modelled as a linear ramp of `rise_time`
/// seconds centred on the transition — this is what makes an edge "about 3
/// samples wide" at 25 Msps (§2.4).
class StateTimeline {
 public:
  StateTimeline() = default;
  explicit StateTimeline(double initial_level) : initial_(initial_level) {}

  /// Appends a transition; times must be non-decreasing.
  void add(Seconds time, double level);

  double initial_level() const { return initial_; }
  const std::vector<Transition>& transitions() const { return transitions_; }
  bool empty() const { return transitions_.empty(); }

  /// Antenna level at time t with instantaneous switching.
  double level_at(Seconds t) const;

  /// Renders the timeline into `n` per-sample antenna levels at rate fs,
  /// with linear ramps of rise_time seconds at each transition.
  std::vector<double> render(SampleRate fs, std::size_t n,
                             Seconds rise_time) const;

 private:
  double initial_ = 0.0;
  std::vector<Transition> transitions_;
};

/// Builds the NRZ-ASK timeline for a bit sequence: level = bit value, one
/// bit per period. `start` is the time of the first bit's leading boundary
/// and `period` the (possibly drift-adjusted) bit duration. The tag idles at
/// level 0 before `start` and returns to 0 after the last bit.
StateTimeline nrz_timeline(const std::vector<bool>& bits, Seconds start,
                           Seconds period);

}  // namespace lfbs::signal

#pragma once

#include <vector>

#include "common/units.h"
#include "signal/noise_tracker.h"
#include "signal/sample_buffer.h"

namespace lfbs::signal {

/// A detected signal edge: a localized step in the received IQ vector caused
/// by one (or more, when colliding) tags toggling their antennas.
struct Edge {
  /// Sub-sample position of the step centre (parabolic interpolation of the
  /// |dS| peak; sub-sample accuracy keeps the stream-grouping tolerance —
  /// and with it the effective collision radius — near the physical edge
  /// width).
  double position = 0.0;
  Complex differential;  ///< S(t+) - S(t-), Eq (3) of the paper
  double strength = 0.0; ///< |differential|
  /// Edge strength over the local noise spread, in dB (soft detection
  /// statistic; an edge exactly at a 6-sigma threshold sits near 15.6 dB).
  double snr_db = 0.0;
  /// Soft decision in (0, 1): logistic squash of snr_db. Downstream stages
  /// treat low-confidence edges as erasures instead of hard observations.
  double confidence = 1.0;
};

/// Maps an edge SNR (dB over the noise spread) to a confidence in (0, 1).
/// Centered so a 6-sigma detection (~15.6 dB) lands comfortably above 0.5
/// and a marginal 2.5-sigma one (~8 dB) falls well below it.
double edge_confidence(double snr_db);

/// Configuration for differential edge detection (§3.1).
struct EdgeDetectorConfig {
  /// Averaging window length, in samples, on each side of the candidate.
  std::size_t window = 8;
  /// Samples skipped around the candidate so the ramp itself is excluded.
  std::size_t guard = 2;
  /// Detection threshold as a multiple of the robust noise level (median +
  /// k·MAD of the differential magnitude series).
  double threshold_sigma = 6.0;
  /// Absolute threshold floor; steps weaker than this are never edges.
  double min_strength = 1e-4;
  /// Minimum distance between two reported edges, in samples. Edges closer
  /// than this merge into one (that is what a "collision" looks like). Must
  /// exceed the |dS| plateau width (about 2*guard + ramp samples).
  std::size_t min_separation = 6;
  /// When true, the threshold tracks the noise floor blockwise (rolling
  /// median+MAD, NoiseTracker) instead of one global estimate, so a fade
  /// early in the capture does not set the threshold for the whole epoch.
  /// Off by default: the global estimate is the seed behaviour and the two
  /// are identical on stationary channels.
  bool adaptive_threshold = false;
  /// Block/history geometry for the adaptive tracker.
  NoiseTrackerConfig noise{};
};

/// Detects antenna-toggle edges in a received buffer by scanning the
/// magnitude of the windowed IQ differential and peak-picking it.
///
/// The differential (rather than the amplitude) is what makes detection
/// robust when many other tags are mid-transmission: subtracting the
/// before/after windowed means cancels every tag that is *not* toggling at
/// this instant (§3.1).
class EdgeDetector {
 public:
  explicit EdgeDetector(EdgeDetectorConfig config = {});

  const EdgeDetectorConfig& config() const { return config_; }

  /// Returns edges sorted by position, each carrying snr_db/confidence
  /// measured against the (global or blockwise) noise estimate.
  std::vector<Edge> detect(const SampleBuffer& buffer) const;

  /// Differential magnitude series |S(t+) - S(t-)| for every sample —
  /// exposed for tests and for the eye-pattern stream detector.
  std::vector<double> differential_magnitude(const SampleBuffer& buffer) const;

  /// Re-measures the IQ differential at a known boundary position with a
  /// caller-chosen window (used by the decoder once stream timing is known,
  /// so windows can stretch to just short of the neighbouring stream's
  /// edges — the "average over points between edges" of §3.1).
  static Complex differential_at(std::span<const Complex> samples,
                                 SampleIndex position, std::size_t window,
                                 std::size_t guard);

 private:
  EdgeDetectorConfig config_;
};

}  // namespace lfbs::signal

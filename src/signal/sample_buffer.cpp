#include "signal/sample_buffer.h"

#include <algorithm>

#include "common/check.h"

namespace lfbs::signal {

SampleBuffer::SampleBuffer(SampleRate fs, std::vector<Complex> samples)
    : fs_(fs), samples_(std::move(samples)) {
  LFBS_CHECK(fs_ > 0.0);
}

SampleBuffer::SampleBuffer(SampleRate fs, std::size_t n)
    : fs_(fs), samples_(n) {
  LFBS_CHECK(fs_ > 0.0);
}

SampleIndex SampleBuffer::index_of(Seconds t) const {
  auto idx = static_cast<SampleIndex>(t * fs_ + 0.5);
  idx = std::clamp<SampleIndex>(idx, 0,
                                static_cast<SampleIndex>(samples_.size()) - 1);
  return idx;
}

void SampleBuffer::accumulate(const SampleBuffer& other) {
  LFBS_CHECK(other.fs_ == fs_);
  LFBS_CHECK(other.size() == size());
  for (std::size_t i = 0; i < samples_.size(); ++i)
    samples_[i] += other.samples_[i];
}

std::span<const Complex> SampleBuffer::slice(std::size_t begin,
                                             std::size_t end) const {
  LFBS_CHECK(begin <= end && end <= samples_.size());
  return std::span<const Complex>(samples_).subspan(begin, end - begin);
}

Complex windowed_mean_before(std::span<const Complex> xs, SampleIndex center,
                             std::size_t length, std::size_t* count) {
  const auto n = static_cast<SampleIndex>(xs.size());
  const SampleIndex end = std::clamp<SampleIndex>(center, 0, n);
  const SampleIndex begin =
      std::clamp<SampleIndex>(center - static_cast<SampleIndex>(length), 0, n);
  Complex sum{};
  for (SampleIndex i = begin; i < end; ++i)
    sum += xs[static_cast<std::size_t>(i)];
  const auto used = static_cast<std::size_t>(end - begin);
  if (count != nullptr) *count = used;
  return used > 0 ? sum / static_cast<double>(used) : Complex{};
}

Complex windowed_mean_after(std::span<const Complex> xs, SampleIndex center,
                            std::size_t length, std::size_t* count) {
  const auto n = static_cast<SampleIndex>(xs.size());
  const SampleIndex begin = std::clamp<SampleIndex>(center, 0, n);
  const SampleIndex end =
      std::clamp<SampleIndex>(center + static_cast<SampleIndex>(length), 0, n);
  Complex sum{};
  for (SampleIndex i = begin; i < end; ++i)
    sum += xs[static_cast<std::size_t>(i)];
  const auto used = static_cast<std::size_t>(end - begin);
  if (count != nullptr) *count = used;
  return used > 0 ? sum / static_cast<double>(used) : Complex{};
}

}  // namespace lfbs::signal

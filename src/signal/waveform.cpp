#include "signal/waveform.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace lfbs::signal {

void StateTimeline::add(Seconds time, double level) {
  LFBS_CHECK(transitions_.empty() || time >= transitions_.back().time);
  // Coalesce a transition to the current level into nothing.
  const double current =
      transitions_.empty() ? initial_ : transitions_.back().level;
  if (level == current) return;
  transitions_.push_back({time, level});
}

double StateTimeline::level_at(Seconds t) const {
  double level = initial_;
  for (const Transition& tr : transitions_) {
    if (tr.time > t) break;
    level = tr.level;
  }
  return level;
}

std::vector<double> StateTimeline::render(SampleRate fs, std::size_t n,
                                          Seconds rise_time) const {
  LFBS_CHECK(fs > 0.0);
  LFBS_CHECK(rise_time >= 0.0);
  std::vector<double> out(n);
  double level = initial_;
  const double half = rise_time / 2.0;
  SampleIndex cursor = 0;  // next sample to fill
  for (const Transition& tr : transitions_) {
    const auto ramp_begin = std::clamp<SampleIndex>(
        static_cast<SampleIndex>((tr.time - half) * fs), 0,
        static_cast<SampleIndex>(n));
    const auto ramp_end = std::clamp<SampleIndex>(
        static_cast<SampleIndex>((tr.time + half) * fs) + 1, 0,
        static_cast<SampleIndex>(n));
    // Constant segment up to the ramp, then a linear blend inside it.
    for (SampleIndex i = cursor; i < ramp_begin; ++i)
      out[static_cast<std::size_t>(i)] = level;
    for (SampleIndex i = std::max(cursor, ramp_begin); i < ramp_end; ++i) {
      const double t = static_cast<double>(i) / fs;
      double frac =
          rise_time > 0.0 ? (t - (tr.time - half)) / rise_time : 1.0;
      frac = std::clamp(frac, 0.0, 1.0);
      out[static_cast<std::size_t>(i)] = level + (tr.level - level) * frac;
    }
    cursor = std::max(cursor, ramp_end);
    level = tr.level;
  }
  for (SampleIndex i = cursor; i < static_cast<SampleIndex>(n); ++i)
    out[static_cast<std::size_t>(i)] = level;
  return out;
}

StateTimeline nrz_timeline(const std::vector<bool>& bits, Seconds start,
                           Seconds period) {
  LFBS_CHECK(period > 0.0);
  StateTimeline timeline(0.0);
  for (std::size_t k = 0; k < bits.size(); ++k) {
    timeline.add(start + static_cast<double>(k) * period,
                 bits[k] ? 1.0 : 0.0);
  }
  if (!bits.empty()) {
    timeline.add(start + static_cast<double>(bits.size()) * period, 0.0);
  }
  return timeline;
}

}  // namespace lfbs::signal

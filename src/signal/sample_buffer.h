#pragma once

#include <span>
#include <vector>

#include "common/units.h"

namespace lfbs::signal {

/// A block of complex baseband samples at a fixed sample rate — what the
/// reader's ADC hands to the decoder for one epoch.
class SampleBuffer {
 public:
  SampleBuffer() = default;
  SampleBuffer(SampleRate fs, std::vector<Complex> samples);
  /// Zero-filled buffer of `n` samples.
  SampleBuffer(SampleRate fs, std::size_t n);

  SampleRate sample_rate() const { return fs_; }
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  Seconds duration() const {
    return static_cast<double>(samples_.size()) / fs_;
  }

  Complex& operator[](std::size_t i) { return samples_[i]; }
  const Complex& operator[](std::size_t i) const { return samples_[i]; }

  std::span<Complex> span() { return samples_; }
  std::span<const Complex> span() const { return samples_; }

  /// Time of sample i in seconds.
  Seconds time_of(SampleIndex i) const { return static_cast<double>(i) / fs_; }
  /// Sample index nearest to time t (clamped into range).
  SampleIndex index_of(Seconds t) const;

  /// Element-wise accumulate (same rate and size required).
  void accumulate(const SampleBuffer& other);

  /// View of samples [begin, end).
  std::span<const Complex> slice(std::size_t begin, std::size_t end) const;

 private:
  SampleRate fs_ = 0.0;
  std::vector<Complex> samples_;
};

/// Windowed mean of samples [center - length, center) — the "before" half of
/// the edge differential in Eq (3). Clamped to buffer bounds; returns the
/// number of samples actually averaged via `*count` when non-null.
Complex windowed_mean_before(std::span<const Complex> xs, SampleIndex center,
                             std::size_t length, std::size_t* count = nullptr);

/// Windowed mean of samples [center, center + length).
Complex windowed_mean_after(std::span<const Complex> xs, SampleIndex center,
                            std::size_t length, std::size_t* count = nullptr);

}  // namespace lfbs::signal

#include "runtime/frame_bus.h"

#include <algorithm>
#include <bit>

#include "core/lf_decoder.h"
#include "obs/events.h"
#include "obs/metrics.h"

namespace lfbs::runtime {

namespace {

/// splitmix64 finalizer — the same mixer WindowedDecoder uses for
/// per-window seeds. Full avalanche, so near-identical coordinates (stream
/// anchors one sample apart, consecutive window indices) land far apart.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t combine(std::uint64_t h, std::uint64_t v) {
  return mix64(h ^ mix64(v));
}

}  // namespace

std::uint64_t FrameIdentity::key() const {
  return combine(combine(combine(mix64(epoch), window), stream_key),
                 payload_crc);
}

FrameIdentity frame_identity(const FrameEvent& event) {
  FrameIdentity id;
  id.epoch = event.epoch_index;
  id.window = event.window_index;
  // Hash the doubles by bit pattern: both survive the LFBW1 wire
  // bit-exactly, so the key is reproducible on every gateway that sees
  // the frame. origin and hops are deliberately left out — the relay
  // mutates them per hop, and identity must not change in flight.
  std::uint64_t stream_key = mix64(event.stream_index);
  stream_key = combine(stream_key,
                       std::bit_cast<std::uint64_t>(event.stream_start));
  stream_key = combine(stream_key,
                       std::bit_cast<std::uint64_t>(event.rate));
  stream_key = combine(stream_key, event.frame_index);
  id.stream_key = stream_key;
  id.payload_crc = protocol::payload_key(event.frame);
  return id;
}

std::size_t publish_frames(FrameBus& bus, const core::DecodeResult& decode,
                           std::uint64_t epoch_index,
                           std::size_t window_samples) {
  std::size_t published = 0;
  for (std::size_t i = 0; i < decode.streams.size(); ++i) {
    const auto& stream = decode.streams[i];
    for (std::size_t f = 0; f < stream.frames.size(); ++f) {
      FrameEvent event;
      event.stream_index = i;
      event.stream_start = stream.start_sample;
      event.rate = stream.rate;
      event.collided = stream.collided;
      event.confidence = stream.confidence.score();
      event.fallback_stage = stream.confidence.stage;
      event.frame = stream.frames[f];
      event.epoch_index = epoch_index;
      event.window_index =
          window_samples > 0
              ? static_cast<std::uint64_t>(stream.start_sample) /
                    window_samples
              : 0;
      event.frame_index = f;
      bus.publish(event);
      ++published;
    }
  }
  return published;
}

FrameBus::SubscriberId FrameBus::subscribe(Handler handler) {
  std::lock_guard lock(mutex_);
  const SubscriberId id = next_id_++;
  auto next = std::make_shared<SubscriberList>(*subscribers_);
  next->push_back({id, std::move(handler)});
  subscribers_ = std::move(next);
  return id;
}

void FrameBus::unsubscribe(SubscriberId id) {
  std::lock_guard lock(mutex_);
  auto next = std::make_shared<SubscriberList>(*subscribers_);
  next->erase(std::remove_if(next->begin(), next->end(),
                             [&](const Subscriber& s) { return s.id == id; }),
              next->end());
  subscribers_ = std::move(next);
}

void FrameBus::publish(const FrameEvent& event) {
  static obs::Counter& published = obs::metrics().counter("bus.published");
  static obs::Counter& exception_count =
      obs::metrics().counter("bus.handler_exceptions");
  published.add();
  if (obs::EventLog* log = obs::event_log()) {
    log->emit(
        "frame",
        {obs::Field::integer("stream_index",
                             static_cast<std::int64_t>(event.stream_index)),
         obs::Field::num("stream_start", event.stream_start),
         obs::Field::num("rate", event.rate),
         obs::Field::flag("collided", event.collided),
         obs::Field::num("confidence", event.confidence),
         obs::Field::integer(
             "fallback_stage",
             static_cast<std::int64_t>(event.fallback_stage)),
         obs::Field::flag("crc_ok", event.frame.crc_ok),
         obs::Field::flag("anchor_ok", event.frame.anchor_ok)});
  }
  // Snapshot the immutable subscriber list: one shared_ptr copy under the
  // lock, no allocation on the per-frame path. A handler that
  // (un)subscribes re-entrantly swaps in a new list without touching this
  // snapshot, so iteration stays valid and the change applies from the
  // next publish.
  std::shared_ptr<const SubscriberList> snapshot;
  {
    std::lock_guard lock(mutex_);
    ++published_;
    snapshot = subscribers_;
  }
  std::size_t exceptions = 0;
  for (const auto& s : *snapshot) {
    try {
      s.handler(event);
    } catch (...) {
      // Contain: the remaining subscribers still see the event, and the
      // runtime surfaces the count (and degrades health) via its stats.
      ++exceptions;
    }
  }
  if (exceptions > 0) {
    exception_count.add(exceptions);
    std::lock_guard lock(mutex_);
    handler_exceptions_ += exceptions;
  }
}

std::size_t FrameBus::published() const {
  std::lock_guard lock(mutex_);
  return published_;
}

std::size_t FrameBus::handler_exceptions() const {
  std::lock_guard lock(mutex_);
  return handler_exceptions_;
}

}  // namespace lfbs::runtime

#include "runtime/frame_bus.h"

#include <algorithm>

#include "obs/events.h"
#include "obs/metrics.h"

namespace lfbs::runtime {

FrameBus::SubscriberId FrameBus::subscribe(Handler handler) {
  std::lock_guard lock(mutex_);
  const SubscriberId id = next_id_++;
  auto next = std::make_shared<SubscriberList>(*subscribers_);
  next->push_back({id, std::move(handler)});
  subscribers_ = std::move(next);
  return id;
}

void FrameBus::unsubscribe(SubscriberId id) {
  std::lock_guard lock(mutex_);
  auto next = std::make_shared<SubscriberList>(*subscribers_);
  next->erase(std::remove_if(next->begin(), next->end(),
                             [&](const Subscriber& s) { return s.id == id; }),
              next->end());
  subscribers_ = std::move(next);
}

void FrameBus::publish(const FrameEvent& event) {
  static obs::Counter& published = obs::metrics().counter("bus.published");
  static obs::Counter& exception_count =
      obs::metrics().counter("bus.handler_exceptions");
  published.add();
  if (obs::EventLog* log = obs::event_log()) {
    log->emit(
        "frame",
        {obs::Field::integer("stream_index",
                             static_cast<std::int64_t>(event.stream_index)),
         obs::Field::num("stream_start", event.stream_start),
         obs::Field::num("rate", event.rate),
         obs::Field::flag("collided", event.collided),
         obs::Field::num("confidence", event.confidence),
         obs::Field::integer(
             "fallback_stage",
             static_cast<std::int64_t>(event.fallback_stage)),
         obs::Field::flag("crc_ok", event.frame.crc_ok),
         obs::Field::flag("anchor_ok", event.frame.anchor_ok)});
  }
  // Snapshot the immutable subscriber list: one shared_ptr copy under the
  // lock, no allocation on the per-frame path. A handler that
  // (un)subscribes re-entrantly swaps in a new list without touching this
  // snapshot, so iteration stays valid and the change applies from the
  // next publish.
  std::shared_ptr<const SubscriberList> snapshot;
  {
    std::lock_guard lock(mutex_);
    ++published_;
    snapshot = subscribers_;
  }
  std::size_t exceptions = 0;
  for (const auto& s : *snapshot) {
    try {
      s.handler(event);
    } catch (...) {
      // Contain: the remaining subscribers still see the event, and the
      // runtime surfaces the count (and degrades health) via its stats.
      ++exceptions;
    }
  }
  if (exceptions > 0) {
    exception_count.add(exceptions);
    std::lock_guard lock(mutex_);
    handler_exceptions_ += exceptions;
  }
}

std::size_t FrameBus::published() const {
  std::lock_guard lock(mutex_);
  return published_;
}

std::size_t FrameBus::handler_exceptions() const {
  std::lock_guard lock(mutex_);
  return handler_exceptions_;
}

}  // namespace lfbs::runtime

#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

namespace lfbs::runtime {

/// Cooperative producer throttle. A downstream component under memory
/// pressure (the gateway's ResourceBudget saturating) engages the gate;
/// the decode runtime's ingest loop then pauses — bounded, never more
/// than its configured max wait per chunk — before admitting the next
/// chunk to the ring. Releasing wakes every waiter immediately.
///
/// The wait is deliberately bounded rather than indefinite: the gate
/// slows the producer so queues drain, it must never be able to deadlock
/// the pipeline if the releasing side dies. Safe from any thread.
class BackpressureGate {
 public:
  void engage() {
    std::lock_guard lock(mutex_);
    engaged_ = true;
  }

  void release() {
    {
      std::lock_guard lock(mutex_);
      engaged_ = false;
    }
    released_.notify_all();
  }

  bool engaged() const {
    std::lock_guard lock(mutex_);
    return engaged_;
  }

  /// Blocks until the gate releases or `max_wait` passes, whichever comes
  /// first. Returns true when the caller actually waited (for the
  /// caller's throttle accounting).
  template <typename Rep, typename Period>
  bool wait(std::chrono::duration<Rep, Period> max_wait) {
    std::unique_lock lock(mutex_);
    if (!engaged_) return false;
    released_.wait_for(lock, max_wait, [&] { return !engaged_; });
    return true;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable released_;
  bool engaged_ = false;
};

/// Bounded queue with explicit backpressure. The decode runtime uses one
/// instance as the SPSC chunk ring (source thread → window assembler) and
/// one as the single-producer / multi-consumer window job queue (assembler
/// → worker pool); the mutex implementation is safe for both shapes.
/// The producer picks the overflow policy per call:
///
///   - push() blocks until space frees (lossless — file replay, in-memory
///     decode, anything that may stall the producer),
///   - offer() never blocks: when full it drops the item and counts it
///     (live capture, where stalling the producer would lose samples at
///     the ADC instead — §2's 25 Msps feed does not wait).
///
/// Locking is a plain mutex + two condvars: the decode pipeline moves
/// whole chunks/windows (tens of thousands of samples each), so queue
/// operations are nowhere near hot enough to justify a lock-free ring,
/// and a mutex keeps the structure trivially TSan-clean.
template <typename T>
class BoundedRing {
 public:
  explicit BoundedRing(std::size_t capacity) : capacity_(capacity) {}

  /// Blocking push. Returns false (item discarded) only if the ring was
  /// closed while waiting.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || queue_.size() < capacity_; });
    if (closed_) return false;
    enqueue_locked(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: drops the item (counted) when the ring is full.
  bool offer(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_) return false;
      if (queue_.size() >= capacity_) {
        ++dropped_;
        return false;
      }
      enqueue_locked(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; std::nullopt once the ring is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    ++popped_;
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// No more pushes; consumers drain what remains, producers unblock.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t depth() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }
  std::size_t pushed() const {
    std::lock_guard lock(mutex_);
    return pushed_;
  }
  std::size_t popped() const {
    std::lock_guard lock(mutex_);
    return popped_;
  }
  std::size_t dropped() const {
    std::lock_guard lock(mutex_);
    return dropped_;
  }
  /// Deepest the queue has ever been — memory boundedness evidence.
  std::size_t high_watermark() const {
    std::lock_guard lock(mutex_);
    return high_watermark_;
  }

 private:
  void enqueue_locked(T&& item) {
    queue_.push_back(std::move(item));
    ++pushed_;
    high_watermark_ = std::max(high_watermark_, queue_.size());
  }

  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> queue_;
  std::size_t capacity_;
  bool closed_ = false;
  std::size_t pushed_ = 0;
  std::size_t popped_ = 0;
  std::size_t dropped_ = 0;
  std::size_t high_watermark_ = 0;
};

}  // namespace lfbs::runtime

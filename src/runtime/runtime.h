#pragma once

#include <atomic>
#include <cstdint>

#include "core/windowed_decoder.h"
#include "runtime/frame_bus.h"
#include "runtime/ring_buffer.h"
#include "runtime/sample_source.h"
#include "runtime/stats.h"
#include "runtime/supervisor.h"
#include "signal/sample_buffer.h"

namespace lfbs::runtime {

/// Concurrent streaming decode pipeline:
///
///   SampleSource → [chunk ring] → assembler → [job queue] → worker pool
///                                                               │
///            FrameBus ← stitcher thread ← [in-order reorder] ←──┘
///
/// The source is drained on the caller's thread into a bounded chunk ring
/// (blocking or drop-on-overflow per `drop_when_full`). The assembler
/// thread slices the sample stream into WindowedDecoder windows and feeds
/// a bounded job queue; `workers` threads decode windows independently
/// (each window's decoder draws from its own Rng stream, keyed by window
/// index); a single stitcher thread reorders results back into window
/// order and runs the serial continuity-key stitch, so the output is
/// bit-identical to core::WindowedDecoder::decode on the same samples.
/// Decoded frames fan out through the FrameBus (on the stitcher thread)
/// before run() returns the stitched DecodeResult and a stats snapshot.
///
/// A Supervisor wraps the whole pipeline (see supervisor.h): transient
/// source errors are retried with backoff, stalled reads and decodes are
/// detected by a watchdog, a throwing window decode is zero-filled instead
/// of killing the run, subscriber exceptions are isolated on the bus, and
/// the run's health (healthy / degraded / failed) plus per-fault counters
/// come back in RuntimeStats. run() completes and returns on every fault
/// path — it degrades, it never crashes or deadlocks.
struct RuntimeConfig {
  core::WindowedDecoderConfig windowed{};
  /// Window decode threads. 0 is clamped to 1.
  std::size_t workers = 4;
  /// Chunk ring capacity, in chunks.
  std::size_t ring_capacity = 64;
  /// Overflow policy when the decode side falls behind the source: false
  /// blocks the producer (lossless — replay and in-memory decode); true
  /// drops whole chunks and counts them (live capture can't wait), and the
  /// assembler zero-fills the gap to keep the window lattice aligned.
  bool drop_when_full = false;
  /// Fault supervision: source retry/backoff, stall watchdog, worker
  /// exception containment, non-finite scrubbing, health accounting. The
  /// defaults are inert on fault-free runs (bit-identical output).
  SupervisorConfig supervision{};
  /// Streams whose composite decode confidence lands below this floor (or
  /// that needed a degraded fallback stage) are reported to the supervisor
  /// and degrade run health — the channel, not the software, is the fault,
  /// but the operator should see it in the same place.
  double confidence_floor = 0.2;
  /// Optional external stop flag (e.g. a signal handler's atomic). When it
  /// becomes true the ingest loop stops pulling from the source; every
  /// chunk already ingested still decodes, stitches, and publishes before
  /// run() returns with stats.stopped_early set. The flag is only read.
  const std::atomic<bool>* stop_flag = nullptr;
  /// Epoch stamped on every published FrameEvent (FrameIdentity's first
  /// coordinate). A gateway decoding successive captures bumps this so
  /// frames from different runs stay distinguishable across the
  /// federation's dedup.
  std::uint64_t epoch_index = 0;
  /// Optional downstream throttle (gateway overload protection). When the
  /// serving side's ResourceBudget saturates it engages this gate and the
  /// ingest loop pauses — at most backpressure_max_wait per chunk — before
  /// admitting the next chunk to the ring, so queue memory stays flat
  /// instead of growing until eviction. Bounded by construction: a dead
  /// releasing side slows ingest, it can never deadlock the pipeline, and
  /// no chunk is ever dropped by the gate — fault-free runs stay
  /// bit-identical to the serial decoder. The gate is only read here;
  /// the caller owns it and must outlive run().
  BackpressureGate* backpressure = nullptr;
  Seconds backpressure_max_wait = 0.05;
};

struct RuntimeResult {
  core::DecodeResult decode;
  RuntimeStats stats;
};

class DecodeRuntime {
 public:
  explicit DecodeRuntime(RuntimeConfig config);

  const RuntimeConfig& config() const { return config_; }

  /// Subscribers registered here see every decoded frame of subsequent
  /// run() calls; handlers fire on the stitcher thread.
  FrameBus& bus() { return bus_; }

  /// Blocking: drains `source` to end-of-stream through the pipeline and
  /// returns the stitched result. One run at a time per runtime.
  RuntimeResult run(SampleSource& source);

  /// Convenience: streams an in-memory capture through the pipeline.
  RuntimeResult decode(const signal::SampleBuffer& buffer,
                       std::size_t chunk_samples = 1 << 16);

  /// Asks the active run to stop ingesting and drain (same semantics as
  /// RuntimeConfig::stop_flag). Safe from any thread; sticky for the
  /// runtime's lifetime.
  void request_stop() { stop_requested_.store(true); }

 private:
  RuntimeConfig config_;
  FrameBus bus_;
  std::atomic<bool> stop_requested_{false};
};

}  // namespace lfbs::runtime

#pragma once

#include <cstddef>
#include <memory>

#include "reader/session.h"
#include "runtime/runtime.h"

namespace lfbs::runtime {

/// Routes a reader::ReaderSession's epoch decode through the concurrent
/// runtime: each epoch capture is streamed chunk-wise through the pipeline
/// (short epochs fall through to the plain decoder inside the runtime, so
/// results match the session's serial default bit for bit). The returned
/// hook shares ownership of the runtime; subscribe to its FrameBus to see
/// every epoch's frames as they are stitched.
reader::ReaderSession::Decode session_decoder(
    std::shared_ptr<DecodeRuntime> rt, std::size_t chunk_samples = 1 << 16);

}  // namespace lfbs::runtime

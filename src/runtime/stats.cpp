#include "runtime/stats.h"

#include <algorithm>
#include <cmath>

namespace lfbs::runtime {

namespace {

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

const char* to_string(HealthState state) {
  switch (state) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kFailed: return "failed";
  }
  return "unknown";
}

void LatencyRecorder::record(Seconds seconds) {
  std::lock_guard lock(mutex_);
  samples_.push_back(seconds);
}

void LatencyRecorder::summarize(RuntimeStats& stats) const {
  std::vector<double> sorted;
  {
    std::lock_guard lock(mutex_);
    sorted = samples_;
  }
  std::sort(sorted.begin(), sorted.end());
  stats.window_latency_p50_ms = percentile(sorted, 0.50) * 1e3;
  stats.window_latency_p90_ms = percentile(sorted, 0.90) * 1e3;
  stats.window_latency_p99_ms = percentile(sorted, 0.99) * 1e3;
  stats.window_latency_max_ms = sorted.empty() ? 0.0 : sorted.back() * 1e3;
}

}  // namespace lfbs::runtime

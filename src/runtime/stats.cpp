#include "runtime/stats.h"

#include <algorithm>

#include "obs/metrics.h"

namespace lfbs::runtime {

const char* to_string(HealthState state) {
  switch (state) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kFailed: return "failed";
  }
  return "unknown";
}

void LatencyRecorder::record(Seconds seconds) {
  {
    std::lock_guard lock(mutex_);
    samples_.push_back(seconds);
  }
  static obs::HistogramMetric& latency =
      obs::metrics().histogram("runtime.window_latency_ms");
  latency.record(seconds * 1e3);
}

void LatencyRecorder::summarize(RuntimeStats& stats) const {
  std::vector<double> samples;
  {
    std::lock_guard lock(mutex_);
    samples = samples_;
  }
  stats.window_latency_p50_ms =
      obs::Histogram::percentile(samples, 0.50) * 1e3;
  stats.window_latency_p90_ms =
      obs::Histogram::percentile(samples, 0.90) * 1e3;
  stats.window_latency_p99_ms =
      obs::Histogram::percentile(samples, 0.99) * 1e3;
  stats.window_latency_max_ms =
      samples.empty() ? 0.0
                      : *std::max_element(samples.begin(), samples.end()) * 1e3;
}

}  // namespace lfbs::runtime

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/units.h"
#include "runtime/sample_source.h"
#include "runtime/stats.h"

namespace lfbs::runtime {

/// Supervision policy for one DecodeRuntime run. Defaults are production-
/// shaped: a handful of retries with millisecond backoff, watchdog timeouts
/// far above any healthy window decode, and non-finite sample scrubbing on.
/// All of it is inert on a fault-free run — supervision never changes the
/// decoded output unless a fault actually fires.
struct SupervisorConfig {
  /// Retry budget per next_chunk call for transient SourceErrors.
  std::size_t max_source_retries = 3;
  /// Exponential backoff between retries: initial, doubling, capped.
  Seconds retry_backoff_initial = 1e-3;
  Seconds retry_backoff_max = 50e-3;
  /// Watchdog: a source read or a window decode busy longer than its
  /// timeout is counted as a stall and degrades health. The watchdog only
  /// observes — it cannot interrupt a wedged read — but it turns a silent
  /// hang into a counted, visible fault.
  bool watchdog = true;
  Seconds source_stall_timeout = 10.0;
  Seconds worker_stall_timeout = 10.0;
  /// Replace non-finite (NaN/Inf) samples with zeros before decode, so a
  /// corrupt chunk degrades one window instead of poisoning cluster math.
  bool scrub_non_finite = true;
  /// Fault-drill hook, called with the window index before each window
  /// decode; a throwing hook exercises worker exception containment
  /// exactly like a throwing decoder would. Unset in production.
  std::function<void(std::size_t window_index)> decode_fault_hook;
};

/// Per-run supervision: retry-with-backoff around source reads, a stall
/// watchdog over the source and every worker, contained-fault accounting,
/// and the kHealthy → kDegraded → kFailed state machine. One Supervisor
/// instance per DecodeRuntime::run; all members are thread-safe.
class Supervisor {
 public:
  Supervisor(SupervisorConfig config, std::size_t workers);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Starts the watchdog thread (no-op when disabled).
  void start();
  /// Stops the watchdog; called automatically by the destructor.
  void stop();

  /// RAII busy-marker for a watchdog slot; slot 0 is the source, slots
  /// 1..workers are the worker threads.
  class ScopedActivity {
   public:
    ScopedActivity(Supervisor& supervisor, std::size_t slot);
    ~ScopedActivity();
    ScopedActivity(const ScopedActivity&) = delete;
    ScopedActivity& operator=(const ScopedActivity&) = delete;

   private:
    Supervisor& supervisor_;
    std::size_t slot_;
  };
  ScopedActivity track_source() { return {*this, 0}; }
  ScopedActivity track_worker(std::size_t worker) {
    return {*this, 1 + worker};
  }

  /// Supervised read: retries transient SourceErrors with exponential
  /// backoff up to the configured budget; a non-transient error or an
  /// exhausted budget fails the run (health → kFailed) and ends the
  /// stream with std::nullopt so the pipeline drains cleanly.
  std::optional<SampleChunk> next_chunk(SampleSource& source);

  /// Zeroes non-finite samples in place (when enabled) and counts them.
  void scrub(SampleChunk& chunk);

  // Contained-fault records; each degrades health.
  void record_worker_exception();
  void record_subscriber_exceptions(std::size_t count);
  void record_data_loss();  ///< dropped chunks / zero-filled gaps
  /// Streams below the runtime's confidence floor (or decoded only via a
  /// degraded fallback stage). Degrades health when count > 0: the output
  /// is complete but no longer full-trust.
  void record_low_confidence(std::size_t count);

  HealthState health() const {
    return static_cast<HealthState>(health_.load());
  }
  FaultCounters counters() const;

  const SupervisorConfig& config() const { return config_; }

 private:
  struct Slot {
    std::atomic<std::int64_t> busy_since_ns{-1};  ///< -1 when idle
    std::atomic<bool> flagged{false};  ///< current stall already counted
  };

  void degrade();
  void fail();
  void watch();
  void check_slot(Slot& slot, Seconds timeout,
                  std::atomic<std::size_t>& counter, std::int64_t now_ns);

  SupervisorConfig config_;
  std::vector<Slot> slots_;  ///< [0] source, [1..] workers
  std::atomic<int> health_{static_cast<int>(HealthState::kHealthy)};

  std::atomic<std::size_t> source_transient_errors_{0};
  std::atomic<std::size_t> source_retries_{0};
  std::atomic<std::size_t> source_failures_{0};
  std::atomic<std::size_t> source_stalls_{0};
  std::atomic<std::size_t> worker_stalls_{0};
  std::atomic<std::size_t> worker_exceptions_{0};
  std::atomic<std::size_t> subscriber_exceptions_{0};
  std::atomic<std::uint64_t> samples_scrubbed_{0};
  std::atomic<std::size_t> low_confidence_streams_{0};

  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  bool stop_requested_ = false;
  std::thread watchdog_;
};

}  // namespace lfbs::runtime

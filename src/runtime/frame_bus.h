#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/units.h"
#include "core/decode_confidence.h"
#include "protocol/frame.h"

namespace lfbs::core {
struct DecodeResult;
}

namespace lfbs::runtime {

/// One decoded frame, as delivered to FrameBus subscribers.
struct FrameEvent {
  std::size_t stream_index = 0;   ///< index of the stitched stream
  double stream_start = 0.0;      ///< stream anchor, capture samples
  BitRate rate = 0.0;             ///< the stream's estimated bitrate
  bool collided = false;          ///< stream recovered from a collision
  /// Composite decode confidence of the carrying stream in [0, 1]
  /// (DecodeConfidence::score()); consumers can gate on it per frame.
  double confidence = 1.0;
  /// Deepest fallback stage the carrying stream needed (kPrimary on a
  /// clean decode) — CRC-valid frames from a degraded stage are real but
  /// were only reachable under relaxed detection.
  core::FallbackStage fallback_stage = core::FallbackStage::kPrimary;
  protocol::ParsedFrame frame;    ///< payload + integrity flags

  // --- identity coordinates (see FrameIdentity) --------------------------
  /// Which decode run / protocol epoch produced this frame. Stamped from
  /// RuntimeConfig::epoch_index so successive runs on one gateway publish
  /// distinguishable frames.
  std::uint64_t epoch_index = 0;
  /// Processing window containing the carrying stream's anchor.
  std::uint64_t window_index = 0;
  /// Ordinal of this frame within its stream (two identical payloads from
  /// one tag stay distinct).
  std::uint64_t frame_index = 0;

  // --- relay header (federation) -----------------------------------------
  /// Gateway that decoded this frame; 0 until a gateway with a configured
  /// id publishes it. Preserved verbatim across relay hops so a relay can
  /// recognize (and drop) its own frames coming back around a cycle.
  std::uint64_t origin = 0;
  /// Relay hops taken so far; 0 straight off the decoding gateway. Each
  /// relay republish increments it, and frames at the hop limit stop.
  std::uint8_t hops = 0;
};

/// The identity of one decoded frame, stable across gateways and relay
/// hops: every coordinate survives the LFBW1 wire bit-exactly, and the
/// relay header (origin, hops) is deliberately excluded — a frame keeps
/// one identity no matter how it travelled. This is the per-hop dedup key
/// of the federation layer and the accounting key of lfbs_report.
struct FrameIdentity {
  std::uint64_t epoch = 0;        ///< FrameEvent::epoch_index
  std::uint64_t window = 0;       ///< FrameEvent::window_index
  /// Stream-and-position key: the stream's anchor/rate bit patterns and
  /// index, plus the frame's ordinal within the stream.
  std::uint64_t stream_key = 0;
  /// protocol::payload_key of the payload (CRC-16 + bit length).
  std::uint64_t payload_crc = 0;

  /// All four coordinates mixed into one 64-bit dedup key.
  std::uint64_t key() const;

  bool operator==(const FrameIdentity&) const = default;
};

FrameIdentity frame_identity(const FrameEvent& event);

/// Fan-out of decoded frames to registered callbacks. Handlers run on the
/// runtime's stitcher thread, synchronously and in subscription order, so
/// a handler that blocks stalls delivery (by design: it is the natural
/// place for an application to apply its own backpressure).
///
/// Subscribers are isolated from each other: a handler that throws is
/// contained and counted, and the event still reaches every remaining
/// subscriber — one misbehaving consumer cannot take down the stitcher
/// thread or starve its peers.
class FrameBus {
 public:
  using Handler = std::function<void(const FrameEvent&)>;
  using SubscriberId = std::uint64_t;

  SubscriberId subscribe(Handler handler);
  void unsubscribe(SubscriberId id);

  /// Delivers one event to every current subscriber; handler exceptions
  /// are swallowed and counted.
  void publish(const FrameEvent& event);

  std::size_t published() const;
  /// Handler invocations that ended in an exception, across all publishes.
  std::size_t handler_exceptions() const;

 private:
  struct Subscriber {
    SubscriberId id;
    Handler handler;
  };
  using SubscriberList = std::vector<Subscriber>;

  mutable std::mutex mutex_;
  /// Copy-on-write: (un)subscribe builds a fresh list and swaps the
  /// pointer; publish takes a shared_ptr copy under the lock — O(1), no
  /// per-frame allocation — and iterates the immutable snapshot outside
  /// it, so handlers can still (un)subscribe re-entrantly.
  std::shared_ptr<const SubscriberList> subscribers_ =
      std::make_shared<const SubscriberList>();
  SubscriberId next_id_ = 1;
  std::size_t published_ = 0;
  std::size_t handler_exceptions_ = 0;
};

/// Publishes every frame of a stitched decode on `bus` in stream order,
/// stamping the identity coordinates (epoch, window-of-anchor at
/// `window_samples` per window, frame ordinal). Shared by the in-process
/// runtime stitcher and the federation shard merger so a sharded decode
/// publishes byte-identical events to a local run. Returns the number of
/// frames published.
std::size_t publish_frames(FrameBus& bus, const core::DecodeResult& decode,
                           std::uint64_t epoch_index,
                           std::size_t window_samples);

}  // namespace lfbs::runtime

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/units.h"
#include "core/decode_confidence.h"
#include "protocol/frame.h"

namespace lfbs::runtime {

/// One decoded frame, as delivered to FrameBus subscribers.
struct FrameEvent {
  std::size_t stream_index = 0;   ///< index of the stitched stream
  double stream_start = 0.0;      ///< stream anchor, capture samples
  BitRate rate = 0.0;             ///< the stream's estimated bitrate
  bool collided = false;          ///< stream recovered from a collision
  /// Composite decode confidence of the carrying stream in [0, 1]
  /// (DecodeConfidence::score()); consumers can gate on it per frame.
  double confidence = 1.0;
  /// Deepest fallback stage the carrying stream needed (kPrimary on a
  /// clean decode) — CRC-valid frames from a degraded stage are real but
  /// were only reachable under relaxed detection.
  core::FallbackStage fallback_stage = core::FallbackStage::kPrimary;
  protocol::ParsedFrame frame;    ///< payload + integrity flags
};

/// Fan-out of decoded frames to registered callbacks. Handlers run on the
/// runtime's stitcher thread, synchronously and in subscription order, so
/// a handler that blocks stalls delivery (by design: it is the natural
/// place for an application to apply its own backpressure).
///
/// Subscribers are isolated from each other: a handler that throws is
/// contained and counted, and the event still reaches every remaining
/// subscriber — one misbehaving consumer cannot take down the stitcher
/// thread or starve its peers.
class FrameBus {
 public:
  using Handler = std::function<void(const FrameEvent&)>;
  using SubscriberId = std::uint64_t;

  SubscriberId subscribe(Handler handler);
  void unsubscribe(SubscriberId id);

  /// Delivers one event to every current subscriber; handler exceptions
  /// are swallowed and counted.
  void publish(const FrameEvent& event);

  std::size_t published() const;
  /// Handler invocations that ended in an exception, across all publishes.
  std::size_t handler_exceptions() const;

 private:
  struct Subscriber {
    SubscriberId id;
    Handler handler;
  };
  using SubscriberList = std::vector<Subscriber>;

  mutable std::mutex mutex_;
  /// Copy-on-write: (un)subscribe builds a fresh list and swaps the
  /// pointer; publish takes a shared_ptr copy under the lock — O(1), no
  /// per-frame allocation — and iterates the immutable snapshot outside
  /// it, so handlers can still (un)subscribe re-entrantly.
  std::shared_ptr<const SubscriberList> subscribers_ =
      std::make_shared<const SubscriberList>();
  SubscriberId next_id_ = 1;
  std::size_t published_ = 0;
  std::size_t handler_exceptions_ = 0;
};

}  // namespace lfbs::runtime

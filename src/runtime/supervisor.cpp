#include "runtime/supervisor.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/events.h"
#include "obs/metrics.h"

namespace lfbs::runtime {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Supervisor::Supervisor(SupervisorConfig config, std::size_t workers)
    : config_(std::move(config)), slots_(1 + workers) {}

Supervisor::~Supervisor() { stop(); }

Supervisor::ScopedActivity::ScopedActivity(Supervisor& supervisor,
                                           std::size_t slot)
    : supervisor_(supervisor), slot_(slot) {
  supervisor_.slots_[slot_].busy_since_ns.store(now_ns(),
                                               std::memory_order_release);
}

Supervisor::ScopedActivity::~ScopedActivity() {
  auto& slot = supervisor_.slots_[slot_];
  slot.busy_since_ns.store(-1, std::memory_order_release);
  slot.flagged.store(false, std::memory_order_release);
}

void Supervisor::start() {
  if (!config_.watchdog) return;
  watchdog_ = std::thread([this] { watch(); });
}

void Supervisor::stop() {
  {
    std::lock_guard lock(watchdog_mutex_);
    stop_requested_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

void Supervisor::watch() {
  // Poll at a quarter of the tightest timeout so a stall is flagged soon
  // after it crosses the line, clamped to keep the thread near-idle.
  const Seconds tightest =
      std::min(config_.source_stall_timeout, config_.worker_stall_timeout);
  const auto interval = std::chrono::duration<double>(
      std::clamp(tightest / 4.0, 0.5e-3, 250e-3));
  std::unique_lock lock(watchdog_mutex_);
  while (!stop_requested_) {
    watchdog_cv_.wait_for(lock, interval, [&] { return stop_requested_; });
    if (stop_requested_) break;
    const std::int64_t now = now_ns();
    check_slot(slots_[0], config_.source_stall_timeout, source_stalls_, now);
    for (std::size_t w = 1; w < slots_.size(); ++w) {
      check_slot(slots_[w], config_.worker_stall_timeout, worker_stalls_,
                 now);
    }
  }
}

void Supervisor::check_slot(Slot& slot, Seconds timeout,
                            std::atomic<std::size_t>& counter,
                            std::int64_t now) {
  const std::int64_t busy_since =
      slot.busy_since_ns.load(std::memory_order_acquire);
  if (busy_since < 0) return;
  if (static_cast<double>(now - busy_since) < timeout * 1e9) return;
  // Count each stall episode once; the flag clears when the slot idles.
  if (!slot.flagged.exchange(true, std::memory_order_acq_rel)) {
    counter.fetch_add(1, std::memory_order_relaxed);
    obs::metrics().counter("supervisor.stalls").add();
    degrade();
  }
}

std::optional<SampleChunk> Supervisor::next_chunk(SampleSource& source) {
  Seconds backoff = config_.retry_backoff_initial;
  std::size_t attempts = 0;
  for (;;) {
    try {
      auto activity = track_source();
      return source.next_chunk();
    } catch (const SourceError& e) {
      source_transient_errors_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter& transient_errors =
          obs::metrics().counter("supervisor.source_transient_errors");
      transient_errors.add();
      if (!e.transient() || attempts >= config_.max_source_retries) {
        source_failures_.fetch_add(1, std::memory_order_relaxed);
        obs::metrics().counter("supervisor.source_failures").add();
        fail();
        return std::nullopt;
      }
      ++attempts;
      source_retries_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter& retries =
          obs::metrics().counter("supervisor.source_retries");
      retries.add();
      degrade();
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff = std::min(backoff * 2.0, config_.retry_backoff_max);
    } catch (const std::exception&) {
      // Anything else out of a source is unrecoverable by construction.
      source_failures_.fetch_add(1, std::memory_order_relaxed);
      obs::metrics().counter("supervisor.source_failures").add();
      fail();
      return std::nullopt;
    }
  }
}

void Supervisor::scrub(SampleChunk& chunk) {
  if (!config_.scrub_non_finite) return;
  std::uint64_t scrubbed = 0;
  for (auto& sample : chunk.samples) {
    if (std::isfinite(sample.real()) && std::isfinite(sample.imag()))
      continue;
    sample = Complex{};
    ++scrubbed;
  }
  if (scrubbed > 0) {
    samples_scrubbed_.fetch_add(scrubbed, std::memory_order_relaxed);
    static obs::Counter& scrub_counter =
        obs::metrics().counter("supervisor.samples_scrubbed");
    scrub_counter.add(scrubbed);
    degrade();
  }
}

void Supervisor::record_worker_exception() {
  worker_exceptions_.fetch_add(1, std::memory_order_relaxed);
  obs::metrics().counter("supervisor.worker_exceptions").add();
  degrade();
}

void Supervisor::record_subscriber_exceptions(std::size_t count) {
  if (count == 0) return;
  subscriber_exceptions_.fetch_add(count, std::memory_order_relaxed);
  obs::metrics().counter("supervisor.subscriber_exceptions").add(count);
  degrade();
}

void Supervisor::record_data_loss() {
  obs::metrics().counter("supervisor.data_loss").add();
  degrade();
}

void Supervisor::record_low_confidence(std::size_t count) {
  if (count == 0) return;
  low_confidence_streams_.fetch_add(count, std::memory_order_relaxed);
  obs::metrics().counter("supervisor.low_confidence_streams").add(count);
  degrade();
}

void Supervisor::degrade() {
  int expected = static_cast<int>(HealthState::kHealthy);
  // Emit the transition event only when this call actually moved the
  // state — degrade() fires on every fault, transitions are rare.
  if (health_.compare_exchange_strong(
          expected, static_cast<int>(HealthState::kDegraded))) {
    obs::metrics().counter("supervisor.degraded_transitions").add();
    if (obs::EventLog* log = obs::event_log()) {
      log->emit("health", {obs::Field::str("from", "healthy"),
                           obs::Field::str("to", "degraded")});
    }
  }
}

void Supervisor::fail() {
  const int prev = health_.exchange(static_cast<int>(HealthState::kFailed));
  if (prev != static_cast<int>(HealthState::kFailed)) {
    obs::metrics().counter("supervisor.failed_transitions").add();
    if (obs::EventLog* log = obs::event_log()) {
      log->emit("health",
                {obs::Field::str("from",
                                 to_string(static_cast<HealthState>(prev))),
                 obs::Field::str("to", "failed")});
    }
  }
}

FaultCounters Supervisor::counters() const {
  FaultCounters out;
  out.source_transient_errors = source_transient_errors_.load();
  out.source_retries = source_retries_.load();
  out.source_failures = source_failures_.load();
  out.source_stalls = source_stalls_.load();
  out.worker_stalls = worker_stalls_.load();
  out.worker_exceptions = worker_exceptions_.load();
  out.subscriber_exceptions = subscriber_exceptions_.load();
  out.samples_scrubbed = samples_scrubbed_.load();
  out.low_confidence_streams = low_confidence_streams_.load();
  return out;
}

}  // namespace lfbs::runtime

#include "runtime/fault_injector.h"

#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/kv_spec.h"

namespace lfbs::runtime {

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  for (const KvField& field : parse_kv_spec(spec)) {
    if (field.key == "seed") {
      plan.seed = kv_u64(field);
    } else if (field.key == "drop") {
      plan.drop_chunk = kv_number(field);
    } else if (field.key == "truncate") {
      plan.truncate_chunk = kv_number(field);
    } else if (field.key == "corrupt") {
      plan.corrupt_sample = kv_number(field);
    } else if (field.key == "stall") {
      plan.stall = kv_number(field);
    } else if (field.key == "stall-ms") {
      plan.stall_duration = kv_number(field) * 1e-3;
    } else if (field.key == "error") {
      plan.transient_error = kv_number(field);
    } else if (field.key == "eof") {
      plan.premature_eof = kv_number(field);
    } else {
      LFBS_CHECK_MSG(false, "unknown fault spec key: " + field.key);
    }
  }
  return plan;
}

FaultInjectingSource::FaultInjectingSource(SampleSource& inner, FaultPlan plan)
    : inner_(inner), plan_(plan), rng_(plan.seed) {}

SampleRate FaultInjectingSource::sample_rate() const {
  return inner_.sample_rate();
}

void FaultInjectingSource::corrupt(SampleChunk& chunk) {
  for (auto& sample : chunk.samples) {
    if (!rng_.bernoulli(plan_.corrupt_sample)) continue;
    ++stats_.samples_corrupted;
    const bool imag_half = rng_.bernoulli(0.5);
    double value = imag_half ? sample.imag() : sample.real();
    switch (rng_.uniform_u64(4)) {
      case 0: {
        // A single bit flip in the float32 wire image — what a corrupted
        // transfer of an LFBSIQ1 payload would actually deliver.
        auto wire = static_cast<float>(value);
        std::uint32_t bits = 0;
        std::memcpy(&bits, &wire, sizeof bits);
        bits ^= std::uint32_t{1} << rng_.uniform_u64(32);
        std::memcpy(&wire, &bits, sizeof wire);
        value = static_cast<double>(wire);
        break;
      }
      case 1:
        value = std::numeric_limits<double>::quiet_NaN();
        break;
      case 2:
        value = rng_.bernoulli(0.5) ? std::numeric_limits<double>::infinity()
                                    : -std::numeric_limits<double>::infinity();
        break;
      default:
        // Rail saturation: the ADC pinned at full scale.
        value = rng_.bernoulli(0.5) ? 10.0 : -10.0;
        break;
    }
    if (!std::isfinite(value)) ++stats_.samples_non_finite;
    if (imag_half) {
      sample = {sample.real(), value};
    } else {
      sample = {value, sample.imag()};
    }
  }
}

std::optional<SampleChunk> FaultInjectingSource::next_chunk() {
  if (eof_) return std::nullopt;
  // Pre-read faults first, so a supervised retry after a transient error
  // re-reads the very same data from the inner source.
  if (plan_.transient_error > 0.0 && rng_.bernoulli(plan_.transient_error)) {
    ++stats_.errors_thrown;
    throw SourceError("injected transient read error", /*transient=*/true);
  }
  if (plan_.stall > 0.0 && rng_.bernoulli(plan_.stall)) {
    ++stats_.stalls;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(plan_.stall_duration));
  }
  if (plan_.premature_eof > 0.0 && rng_.bernoulli(plan_.premature_eof)) {
    ++stats_.premature_eofs;
    eof_ = true;
    return std::nullopt;
  }
  for (;;) {
    auto chunk = inner_.next_chunk();
    if (!chunk) return std::nullopt;
    if (plan_.drop_chunk > 0.0 && rng_.bernoulli(plan_.drop_chunk)) {
      ++stats_.chunks_dropped;
      continue;  // the next chunk's first_sample exposes the gap
    }
    if (plan_.truncate_chunk > 0.0 && chunk->size() > 1 &&
        rng_.bernoulli(plan_.truncate_chunk)) {
      const auto keep = static_cast<std::size_t>(
          1 + rng_.uniform_u64(chunk->size() - 1));
      ++stats_.chunks_truncated;
      stats_.samples_truncated += chunk->size() - keep;
      chunk->samples.resize(keep);
    }
    if (plan_.corrupt_sample > 0.0) corrupt(*chunk);
    return chunk;
  }
}

}  // namespace lfbs::runtime

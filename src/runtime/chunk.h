#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace lfbs::runtime {

/// One block of contiguous IQ samples in flight between a SampleSource and
/// the window assembler. `first_sample` is the chunk's absolute position in
/// the capture, so a consumer can detect (and account for) chunks lost to
/// ring overflow: a jump in `first_sample` is a gap, which the assembler
/// zero-fills to keep the window lattice aligned with absolute time.
struct SampleChunk {
  std::uint64_t first_sample = 0;
  std::vector<Complex> samples;

  std::size_t size() const { return samples.size(); }
};

}  // namespace lfbs::runtime

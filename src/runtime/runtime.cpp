#include "runtime/runtime.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/chunk.h"
#include "runtime/ring_buffer.h"

namespace lfbs::runtime {

namespace {

/// One window's worth of samples, ready to decode. `short_capture` marks
/// the whole-capture fallback job (capture ≤ 1.5 windows), which decodes
/// with the plain decoder exactly like WindowedDecoder::decode.
struct WindowJob {
  std::size_t index = 0;
  bool short_capture = false;
  signal::SampleBuffer samples;
};

struct WindowOutcome {
  bool short_capture = false;
  core::DecodeResult result;
};

/// Handoff from the worker pool back into window order: workers deliver
/// results as they finish, the stitcher awaits them strictly in sequence.
class ReorderInbox {
 public:
  void deliver(std::size_t index, WindowOutcome outcome) {
    {
      std::lock_guard lock(mutex_);
      ready_.emplace(index, std::move(outcome));
    }
    cv_.notify_all();
  }

  /// Announces the total number of windows (known only once the source is
  /// drained); unblocks the stitcher's final await.
  void set_expected(std::size_t n) {
    {
      std::lock_guard lock(mutex_);
      expected_ = n;
      has_expected_ = true;
    }
    cv_.notify_all();
  }

  /// Blocks until window `index` arrives; std::nullopt once the run is
  /// known to hold no window `index`.
  std::optional<WindowOutcome> await(std::size_t index) {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] {
      return ready_.count(index) != 0 ||
             (has_expected_ && index >= expected_);
    });
    const auto it = ready_.find(index);
    if (it == ready_.end()) return std::nullopt;
    WindowOutcome outcome = std::move(it->second);
    ready_.erase(it);
    return outcome;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::size_t, WindowOutcome> ready_;
  std::size_t expected_ = 0;
  bool has_expected_ = false;
};

}  // namespace

DecodeRuntime::DecodeRuntime(RuntimeConfig config)
    : config_(std::move(config)) {
  LFBS_CHECK(config_.windowed.window > 0.0);
}

RuntimeResult DecodeRuntime::run(SampleSource& source) {
  LFBS_OBS_SPAN(run_span, "run", "runtime");
  static obs::Counter& runs = obs::metrics().counter("runtime.runs");
  static obs::Counter& windows_counter =
      obs::metrics().counter("runtime.windows_decoded");
  static obs::Counter& frames_counter =
      obs::metrics().counter("runtime.frames_published");
  runs.add();
  const SampleRate fs = source.sample_rate();
  LFBS_CHECK_MSG(fs > 0.0, "sample source must declare a sample rate");
  const core::WindowedDecoder decoder(config_.windowed);
  const std::size_t window_samples = decoder.window_samples(fs);
  const std::size_t num_workers = std::max<std::size_t>(1, config_.workers);

  BoundedRing<SampleChunk> ring(
      std::max<std::size_t>(1, config_.ring_capacity));
  BoundedRing<WindowJob> jobs(std::max<std::size_t>(2 * num_workers, 4));
  ReorderInbox inbox;
  LatencyRecorder latency;
  Supervisor supervisor(config_.supervision, num_workers);
  supervisor.start();
  const std::size_t bus_exceptions_before = bus_.handler_exceptions();
  std::atomic<std::size_t> windows_dispatched{0};
  std::atomic<std::size_t> windows_decoded{0};
  std::uint64_t samples_in = 0;   // written by assembler, read after join
  std::uint64_t samples_gap = 0;
  std::size_t frames_published = 0;  // written by stitcher, read after join
  RuntimeResult out;

  const auto t0 = std::chrono::steady_clock::now();

  // Assembler: chunk stream → window-sized jobs. Holds early windows back
  // until the capture is known to be longer than 1.5 windows, so a short
  // capture takes the same whole-buffer plain-decoder path as the serial
  // WindowedDecoder.
  std::thread assembler([&] {
    std::vector<Complex> window;
    window.reserve(window_samples);
    std::vector<WindowJob> held;
    std::uint64_t next_expected = 0;
    std::size_t next_window_index = 0;
    bool known_long = false;

    const auto dispatch = [&](WindowJob job) {
      ++windows_dispatched;
      jobs.push(std::move(job));
    };
    const auto close_full_window = [&] {
      WindowJob job;
      job.index = next_window_index++;
      job.samples = signal::SampleBuffer(fs, std::move(window));
      window = {};
      window.reserve(window_samples);
      if (known_long) {
        dispatch(std::move(job));
      } else {
        held.push_back(std::move(job));
      }
    };
    const auto append = [&](const Complex* data, std::size_t n) {
      std::size_t done = 0;
      while (done < n) {
        const std::size_t take =
            std::min(n - done, window_samples - window.size());
        window.insert(window.end(), data + done, data + done + take);
        done += take;
        if (window.size() == window_samples) close_full_window();
      }
    };

    while (auto chunk = ring.pop()) {
      // A jump in first_sample is a chunk lost to ring overflow: zero-fill
      // so the surviving samples keep their absolute window positions.
      if (chunk->first_sample > next_expected) {
        std::uint64_t gap = chunk->first_sample - next_expected;
        samples_gap += gap;
        const std::vector<Complex> zeros(
            std::min<std::uint64_t>(gap, window_samples), Complex{});
        while (gap > 0) {
          const auto take = std::min<std::uint64_t>(gap, zeros.size());
          append(zeros.data(), static_cast<std::size_t>(take));
          gap -= take;
        }
        next_expected = chunk->first_sample;
      }
      // Skip any overlap (defensive; the bundled sources never rewind).
      std::size_t skip = 0;
      if (chunk->first_sample < next_expected) {
        skip = static_cast<std::size_t>(std::min<std::uint64_t>(
            next_expected - chunk->first_sample, chunk->size()));
      }
      const std::size_t fresh = chunk->size() - skip;
      append(chunk->samples.data() + skip, fresh);
      samples_in += fresh;
      next_expected += fresh;
      if (!known_long &&
          !decoder.is_short_capture(
              static_cast<std::size_t>(next_expected), fs)) {
        known_long = true;
        for (auto& job : held) dispatch(std::move(job));
        held.clear();
      }
    }

    std::size_t expected = 0;
    if (!known_long) {
      // Short capture: reassemble everything and decode it in one piece
      // with the plain decoder, exactly like the serial fall-through.
      std::vector<Complex> all;
      for (auto& job : held) {
        const auto view = job.samples.span();
        all.insert(all.end(), view.begin(), view.end());
      }
      all.insert(all.end(), window.begin(), window.end());
      WindowJob job;
      job.index = 0;
      job.short_capture = true;
      job.samples = signal::SampleBuffer(fs, std::move(all));
      dispatch(std::move(job));
      expected = 1;
    } else {
      // Serial parity: a tail shorter than a quarter window is ignored.
      if (window.size() >= window_samples / 4) {
        WindowJob job;
        job.index = next_window_index++;
        job.samples = signal::SampleBuffer(fs, std::move(window));
        dispatch(std::move(job));
      }
      expected = next_window_index;
    }
    inbox.set_expected(expected);
    jobs.close();
  });

  // Worker pool: windows decode independently and in any order; each
  // window's decoder seed is keyed by window index (WindowedDecoder::
  // decode_window), so results do not depend on which worker ran it.
  std::vector<std::thread> pool;
  pool.reserve(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) {
    pool.emplace_back([&, w] {
      while (auto job = jobs.pop()) {
        const auto start = std::chrono::steady_clock::now();
        LFBS_OBS_SPAN(window_span, "window", "runtime");
        window_span.attr("index", static_cast<double>(job->index));
        window_span.attr("worker", static_cast<double>(w));
        WindowOutcome outcome;
        outcome.short_capture = job->short_capture;
        // Exception containment: a throwing window decode yields an empty
        // (zero-filled) window result, exactly what a silent window would
        // produce — the stitcher carries surviving threads across it — and
        // the run degrades instead of terminating the process.
        try {
          const auto activity = supervisor.track_worker(w);
          if (supervisor.config().decode_fault_hook) {
            supervisor.config().decode_fault_hook(job->index);
          }
          outcome.result =
              job->short_capture
                  ? core::LfDecoder(config_.windowed.decoder)
                        .decode(job->samples)
                  : decoder.decode_window(job->samples, job->index);
        } catch (const std::exception&) {
          outcome.result = core::DecodeResult{};
          supervisor.record_worker_exception();
        }
        latency.record(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count());
        ++windows_decoded;
        windows_counter.add();
        inbox.deliver(job->index, std::move(outcome));
      }
    });
  }

  // Stitcher: folds windows back together strictly in order, then fans
  // the decoded frames out on the bus.
  std::thread stitcher_thread([&] {
    core::WindowStitcher stitcher(config_.windowed, fs);
    std::size_t next = 0;
    bool is_short = false;
    while (auto outcome = inbox.await(next)) {
      if (outcome->short_capture) {
        out.decode = std::move(outcome->result);
        is_short = true;
      } else {
        stitcher.add_window(std::move(outcome->result),
                            next * window_samples);
      }
      ++next;
    }
    if (!is_short) out.decode = stitcher.finish();
    const std::size_t published = publish_frames(
        bus_, out.decode, config_.epoch_index, window_samples);
    frames_published += published;
    frames_counter.add(published);
  });

  // Ingest on the caller's thread: source → chunk ring, with the
  // configured overflow policy. Reads go through the supervisor — retry
  // with backoff on transient errors, scrub non-finite samples — so a
  // flaky source degrades the run instead of wedging or killing it. A
  // stop request (signal handler flag or request_stop) ends ingest early
  // but everything already in flight still drains and publishes.
  const auto stop_requested = [&] {
    return stop_requested_.load(std::memory_order_relaxed) ||
           (config_.stop_flag != nullptr &&
            config_.stop_flag->load(std::memory_order_relaxed));
  };
  bool stopped_early = false;
  std::size_t backpressure_waits = 0;
  Seconds backpressure_seconds = 0.0;
  for (;;) {
    if (stop_requested()) {
      stopped_early = true;
      break;
    }
    auto chunk = supervisor.next_chunk(source);
    if (!chunk) break;
    supervisor.scrub(*chunk);
    // Downstream backpressure: when the serving side's budget saturates,
    // pause (bounded) before admitting the chunk. A delay, never a drop —
    // the chunk goes into the ring either way.
    if (config_.backpressure != nullptr &&
        config_.backpressure->engaged()) {
      const auto wait_start = std::chrono::steady_clock::now();
      if (config_.backpressure->wait(std::chrono::duration<double>(
              config_.backpressure_max_wait))) {
        ++backpressure_waits;
        backpressure_seconds +=
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wait_start)
                .count();
      }
    }
    if (config_.drop_when_full) {
      ring.offer(std::move(*chunk));
    } else {
      ring.push(std::move(*chunk));
    }
  }
  ring.close();

  assembler.join();
  for (auto& t : pool) t.join();
  stitcher_thread.join();
  supervisor.stop();

  // Data lost in flight (ring overflow, zero-filled gaps) is a contained
  // fault: the output is no longer the full capture's decode.
  if (ring.dropped() > 0 || samples_gap > 0) supervisor.record_data_loss();
  supervisor.record_subscriber_exceptions(bus_.handler_exceptions() -
                                          bus_exceptions_before);

  out.stats.wall_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
  out.stats.chunks_in = ring.pushed();
  out.stats.chunks_dropped = ring.dropped();
  out.stats.ring_high_watermark = ring.high_watermark();
  out.stats.samples_in = samples_in;
  out.stats.samples_gap = samples_gap;
  out.stats.backpressure_waits = backpressure_waits;
  out.stats.backpressure_seconds = backpressure_seconds;
  out.stats.windows_dispatched = windows_dispatched.load();
  out.stats.windows_decoded = windows_decoded.load();
  out.stats.streams = out.decode.streams.size();
  out.stats.frames_published = frames_published;

  // Decode-confidence digest: the supervisor treats low-confidence output
  // as a contained fault so the health state reflects decode quality, not
  // just software faults.
  out.stats.erasures = out.decode.diagnostics.erasures;
  out.stats.fallback_passes = out.decode.diagnostics.fallback_passes;
  out.stats.fallback_recoveries = out.decode.diagnostics.fallback_recoveries;
  if (!out.decode.streams.empty()) {
    double sum = 0.0;
    double min_score = 1.0;
    std::size_t low = 0;
    for (const auto& stream : out.decode.streams) {
      const double score = stream.confidence.score();
      sum += score;
      min_score = std::min(min_score, score);
      const bool degraded =
          stream.confidence.stage != core::FallbackStage::kPrimary;
      if (degraded) ++out.stats.degraded_streams;
      if (score < config_.confidence_floor || degraded) ++low;
    }
    out.stats.mean_confidence =
        sum / static_cast<double>(out.decode.streams.size());
    out.stats.min_confidence = min_score;
    supervisor.record_low_confidence(low);
  }

  out.stats.health = supervisor.health();
  out.stats.faults = supervisor.counters();
  out.stats.stopped_early = stopped_early;
  latency.summarize(out.stats);
  obs::metrics().gauge("runtime.ring_high_watermark")
      .set(static_cast<double>(out.stats.ring_high_watermark));
  run_span.attr("windows", static_cast<double>(out.stats.windows_decoded));
  run_span.attr("frames", static_cast<double>(out.stats.frames_published));
  return out;
}

RuntimeResult DecodeRuntime::decode(const signal::SampleBuffer& buffer,
                                    std::size_t chunk_samples) {
  MemorySource source(buffer, chunk_samples);
  return run(source);
}

}  // namespace lfbs::runtime

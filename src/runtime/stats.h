#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/units.h"

namespace lfbs::runtime {

/// Snapshot of one runtime run, taken after the pipeline drains (or on
/// demand mid-run via DecodeRuntime — counters are monotonic).
struct RuntimeStats {
  // Ingest.
  std::size_t chunks_in = 0;        ///< chunks accepted into the ring
  std::size_t chunks_dropped = 0;   ///< chunks lost to ring overflow
  std::uint64_t samples_in = 0;     ///< real samples decoded
  std::uint64_t samples_gap = 0;    ///< zero-filled samples (dropped chunks)
  std::size_t ring_high_watermark = 0;  ///< deepest ring occupancy (chunks)

  // Decode.
  std::size_t windows_dispatched = 0;
  std::size_t windows_decoded = 0;
  double window_latency_p50_ms = 0.0;  ///< per-window decode latency
  double window_latency_p90_ms = 0.0;
  double window_latency_p99_ms = 0.0;
  double window_latency_max_ms = 0.0;

  // Output.
  std::size_t streams = 0;
  std::size_t frames_published = 0;

  // Throughput.
  Seconds wall_seconds = 0.0;
  /// Real samples decoded per wall-clock second, in Msps — the number the
  /// paper's 25 Msps feed has to stay under.
  double effective_msps() const {
    return wall_seconds > 0.0
               ? static_cast<double>(samples_in) / wall_seconds / 1e6
               : 0.0;
  }
};

/// Thread-safe recorder of per-window decode latencies; workers append,
/// the final snapshot computes percentiles.
class LatencyRecorder {
 public:
  void record(Seconds seconds);

  /// Fills the four latency fields of `stats`.
  void summarize(RuntimeStats& stats) const;

 private:
  mutable std::mutex mutex_;
  std::vector<double> samples_;
};

}  // namespace lfbs::runtime

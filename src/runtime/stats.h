#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/units.h"

namespace lfbs::runtime {

/// Aggregate health of a runtime run — the paper's fail-soft philosophy
/// applied to the software pipeline itself. Strictly ordered: health only
/// ever escalates within a run.
///
///   kHealthy:  no fault observed; output is bit-identical to the serial
///              WindowedDecoder path.
///   kDegraded: faults occurred but were contained — retried reads, zero-
///              filled windows, scrubbed samples, dropped chunks, isolated
///              subscriber exceptions. The run completed and decoded what
///              survived.
///   kFailed:   the source died unrecoverably (retries exhausted or a
///              non-transient error). The pipeline still drains and
///              returns whatever it decoded before the failure — a failed
///              run ends cleanly, never by crash or deadlock.
enum class HealthState { kHealthy = 0, kDegraded = 1, kFailed = 2 };

const char* to_string(HealthState state);

/// Per-fault counters, all contained faults observed during one run.
struct FaultCounters {
  std::size_t source_transient_errors = 0;  ///< SourceErrors seen (retried)
  std::size_t source_retries = 0;           ///< retry attempts issued
  std::size_t source_failures = 0;  ///< reads abandoned (retries exhausted
                                    ///< or non-transient error)
  std::size_t source_stalls = 0;    ///< watchdog: source reads over timeout
  std::size_t worker_stalls = 0;    ///< watchdog: window decodes over timeout
  std::size_t worker_exceptions = 0;     ///< windows zero-filled after throw
  std::size_t subscriber_exceptions = 0; ///< FrameBus handlers that threw
  std::uint64_t samples_scrubbed = 0;    ///< non-finite samples zeroed
  /// Streams whose decode confidence fell below the runtime's floor, or
  /// that only decoded through a degraded fallback stage. Not a software
  /// fault — the channel went bad — but the run is no longer delivering
  /// full-trust output, so it degrades health like any contained fault.
  std::size_t low_confidence_streams = 0;

  /// Total contained faults (stall detections excluded from double counts).
  std::size_t total() const {
    return source_transient_errors + source_failures + source_stalls +
           worker_stalls + worker_exceptions + subscriber_exceptions +
           low_confidence_streams +
           static_cast<std::size_t>(samples_scrubbed > 0 ? 1 : 0);
  }
};

/// Snapshot of one runtime run, taken after the pipeline drains (or on
/// demand mid-run via DecodeRuntime — counters are monotonic).
struct RuntimeStats {
  // Ingest.
  std::size_t chunks_in = 0;        ///< chunks accepted into the ring
  std::size_t chunks_dropped = 0;   ///< chunks lost to ring overflow
  std::uint64_t samples_in = 0;     ///< real samples decoded
  std::uint64_t samples_gap = 0;    ///< zero-filled samples (dropped chunks)
  std::size_t ring_high_watermark = 0;  ///< deepest ring occupancy (chunks)
  /// Downstream backpressure (RuntimeConfig::backpressure): chunks whose
  /// ring admission was throttled, and the total time ingest spent paused
  /// at the gate. Throttling delays, it never drops — output bits are
  /// untouched.
  std::size_t backpressure_waits = 0;
  Seconds backpressure_seconds = 0.0;

  // Decode.
  std::size_t windows_dispatched = 0;
  std::size_t windows_decoded = 0;
  double window_latency_p50_ms = 0.0;  ///< per-window decode latency
  double window_latency_p90_ms = 0.0;
  double window_latency_p99_ms = 0.0;
  double window_latency_max_ms = 0.0;

  // Output.
  std::size_t streams = 0;
  std::size_t frames_published = 0;

  // Decode confidence (soft-decision pipeline). Means are over the run's
  // stitched streams; zero when the run decoded none.
  double mean_confidence = 0.0;
  double min_confidence = 0.0;
  std::size_t erasures = 0;           ///< low-confidence boundary slots
  std::size_t fallback_passes = 0;    ///< degraded-mode decode attempts
  std::size_t fallback_recoveries = 0;  ///< streams only fallback found
  std::size_t degraded_streams = 0;   ///< streams decoded past kPrimary

  // Supervision.
  HealthState health = HealthState::kHealthy;
  FaultCounters faults;
  /// The run was cut short by a stop request (operator signal or
  /// DecodeRuntime::request_stop) rather than draining its source. What
  /// was ingested before the stop is fully decoded and published.
  bool stopped_early = false;

  // Throughput.
  Seconds wall_seconds = 0.0;
  /// Real samples decoded per wall-clock second, in Msps — the number the
  /// paper's 25 Msps feed has to stay under.
  double effective_msps() const {
    return wall_seconds > 0.0
               ? static_cast<double>(samples_in) / wall_seconds / 1e6
               : 0.0;
  }
};

/// Thread-safe recorder of per-window decode latencies; workers append,
/// the final snapshot computes percentiles.
class LatencyRecorder {
 public:
  void record(Seconds seconds);

  /// Fills the four latency fields of `stats`.
  void summarize(RuntimeStats& stats) const;

 private:
  mutable std::mutex mutex_;
  std::vector<double> samples_;
};

}  // namespace lfbs::runtime

#include "runtime/session_decoder.h"

#include <utility>

#include "common/check.h"

namespace lfbs::runtime {

reader::ReaderSession::Decode session_decoder(
    std::shared_ptr<DecodeRuntime> rt, std::size_t chunk_samples) {
  LFBS_CHECK(rt != nullptr);
  LFBS_CHECK(chunk_samples > 0);
  return [rt = std::move(rt), chunk_samples](
             const signal::SampleBuffer& buffer) {
    return rt->decode(buffer, chunk_samples).decode;
  };
}

}  // namespace lfbs::runtime

#include "runtime/sample_source.h"

#include <algorithm>

#include "common/check.h"
#include "sim/scenario.h"

namespace lfbs::runtime {

MemorySource::MemorySource(const signal::SampleBuffer& buffer,
                           std::size_t chunk_samples)
    : buffer_(buffer), chunk_samples_(chunk_samples) {
  LFBS_CHECK(chunk_samples_ > 0);
}

SampleRate MemorySource::sample_rate() const { return buffer_.sample_rate(); }

std::optional<SampleChunk> MemorySource::next_chunk() {
  if (position_ >= buffer_.size()) return std::nullopt;
  const std::size_t end =
      std::min(buffer_.size(), position_ + chunk_samples_);
  SampleChunk chunk;
  chunk.first_sample = position_;
  const auto view = buffer_.slice(position_, end);
  chunk.samples.assign(view.begin(), view.end());
  position_ = end;
  return chunk;
}

IqFileSource::IqFileSource(const std::string& path, std::size_t chunk_samples)
    : reader_(path), chunk_samples_(chunk_samples) {
  LFBS_CHECK(chunk_samples_ > 0);
}

SampleRate IqFileSource::sample_rate() const { return reader_.sample_rate(); }

std::optional<SampleChunk> IqFileSource::next_chunk() {
  SampleChunk chunk;
  chunk.first_sample = position_;
  if (reader_.read(chunk_samples_, chunk.samples) == 0) return std::nullopt;
  position_ += chunk.samples.size();
  return chunk;
}

ScenarioSource::ScenarioSource(sim::Scenario& scenario, Rng& rng,
                               Config config)
    : scenario_(scenario), rng_(rng), config_(config) {
  LFBS_CHECK(config_.chunk_samples > 0);
  LFBS_CHECK(config_.epochs > 0);
}

ScenarioSource::~ScenarioSource() = default;

SampleRate ScenarioSource::sample_rate() const {
  return scenario_.config().sample_rate;
}

std::optional<SampleChunk> ScenarioSource::next_chunk() {
  if (position_in_current_ >= current_.size()) {
    if (epochs_generated_ >= config_.epochs) return std::nullopt;
    const std::size_t payload_bits = scenario_.config().frame.payload_bits;
    std::vector<std::vector<std::vector<bool>>> per_tag(
        scenario_.num_tags());
    for (auto& frames : per_tag) {
      for (std::size_t f = 0; f < config_.frames_per_tag; ++f) {
        frames.push_back(rng_.bits(payload_bits));
        sent_payloads_.push_back(frames.back());
      }
    }
    current_ = scenario_.capture_epoch(per_tag, rng_, config_.max_rate);
    position_in_current_ = 0;
    ++epochs_generated_;
  }
  const std::size_t end = std::min(
      current_.size(), position_in_current_ + config_.chunk_samples);
  SampleChunk chunk;
  chunk.first_sample = absolute_position_;
  const auto view = current_.slice(position_in_current_, end);
  chunk.samples.assign(view.begin(), view.end());
  absolute_position_ += chunk.samples.size();
  position_in_current_ = end;
  return chunk;
}

}  // namespace lfbs::runtime

#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/rng.h"
#include "common/units.h"
#include "runtime/sample_source.h"

namespace lfbs::runtime {

/// Declarative fault schedule for a FaultInjectingSource. Every field is a
/// per-event probability drawn from the injector's own seeded Rng, so a
/// given (plan, seed, source) triple replays the exact same fault sequence
/// — fault drills are as reproducible as fault-free runs. A default plan
/// (all probabilities zero) injects nothing and is bit-transparent.
struct FaultPlan {
  std::uint64_t seed = 1;
  /// P(a chunk read from the inner source is discarded whole) — models a
  /// carrier dropout or a lost USB/network transfer. The position gap is
  /// visible downstream, so the assembler zero-fills it.
  double drop_chunk = 0.0;
  /// P(a chunk is cut short at a random point) — a transfer that died
  /// mid-buffer. The tail becomes a gap, like a partial drop.
  double truncate_chunk = 0.0;
  /// Per-sample corruption probability. Each corrupted sample picks one of
  /// four modes: a random single bit flip in the float32 wire image, NaN,
  /// ±Inf, or rail saturation.
  double corrupt_sample = 0.0;
  /// P(a read stalls for `stall_duration` before proceeding) — a blocking
  /// driver hiccup. Exercises the supervisor's stall watchdog.
  double stall = 0.0;
  Seconds stall_duration = 5e-3;
  /// P(a read throws a transient SourceError *before* touching the inner
  /// source) — a retried read loses no data.
  double transient_error = 0.0;
  /// P(the stream ends early at each read; terminal once it fires).
  double premature_eof = 0.0;

  /// True when any fault can fire.
  bool enabled() const {
    return drop_chunk > 0.0 || truncate_chunk > 0.0 ||
           corrupt_sample > 0.0 || stall > 0.0 || transient_error > 0.0 ||
           premature_eof > 0.0;
  }
};

/// Parses a comma-separated "key=value" fault spec, e.g.
///   "seed=7,drop=0.05,corrupt=0.01,stall=0.002,stall-ms=5,error=0.01,
///    truncate=0.02,eof=0.001"
/// Unknown keys throw CheckError (the CLI reports them as a usage error).
FaultPlan parse_fault_plan(const std::string& spec);

/// What a FaultInjectingSource actually did — ground truth the supervisor's
/// observed counters can be validated against.
struct FaultInjectionStats {
  std::size_t chunks_dropped = 0;
  std::size_t chunks_truncated = 0;
  std::uint64_t samples_truncated = 0;
  std::uint64_t samples_corrupted = 0;
  std::uint64_t samples_non_finite = 0;  ///< corrupted to NaN or ±Inf
  std::size_t stalls = 0;
  std::size_t errors_thrown = 0;
  std::size_t premature_eofs = 0;
};

/// Decorator over any SampleSource that injects the faults of a FaultPlan,
/// deterministically. Faults that must be retryable (transient errors,
/// stalls, early EOF) fire before the inner read, so a supervised retry
/// re-reads the same data; data faults (drop, truncate, corrupt) apply to
/// the chunk just read. Chunk positions are preserved — a dropped or
/// truncated span shows up as a `first_sample` gap exactly like a ring
/// overflow on a live capture would.
class FaultInjectingSource : public SampleSource {
 public:
  /// The inner source is borrowed and must outlive the injector.
  FaultInjectingSource(SampleSource& inner, FaultPlan plan);

  SampleRate sample_rate() const override;
  std::optional<SampleChunk> next_chunk() override;

  const FaultPlan& plan() const { return plan_; }
  const FaultInjectionStats& injected() const { return stats_; }

 private:
  void corrupt(SampleChunk& chunk);

  SampleSource& inner_;
  FaultPlan plan_;
  Rng rng_;
  FaultInjectionStats stats_;
  bool eof_ = false;
};

}  // namespace lfbs::runtime

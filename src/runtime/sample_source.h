#pragma once

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.h"
#include "runtime/chunk.h"
#include "signal/iq_io.h"
#include "signal/sample_buffer.h"

namespace lfbs::sim {
class Scenario;
}

namespace lfbs::runtime {

/// Thrown by SampleSource::next_chunk when a read fails. `transient()`
/// separates faults worth retrying (a flaky SDR link hiccup, an EAGAIN-ish
/// condition) from fatal ones (device gone); the runtime's supervisor
/// retries transient errors with exponential backoff and fails the run
/// cleanly — never by crashing — on fatal or persistent ones.
class SourceError : public std::runtime_error {
 public:
  explicit SourceError(const std::string& what, bool transient = true)
      : std::runtime_error(what), transient_(transient) {}
  bool transient() const { return transient_; }

 private:
  bool transient_;
};

/// Where the runtime's samples come from. Implementations are pulled from
/// the producer thread only (single consumer of the source); `next_chunk`
/// returns std::nullopt at end-of-stream and may throw SourceError on a
/// failed read (retried by the supervisor when transient). A live
/// deployment would add an SDR-backed source; everything downstream is
/// source-agnostic.
class SampleSource {
 public:
  virtual ~SampleSource() = default;

  virtual SampleRate sample_rate() const = 0;
  virtual std::optional<SampleChunk> next_chunk() = 0;
};

/// In-memory capture, served in fixed-size chunks. The buffer is borrowed:
/// the caller keeps it alive for the source's lifetime. This is the test
/// source, and what ReaderSession uses to feed an epoch capture through
/// the runtime.
class MemorySource : public SampleSource {
 public:
  MemorySource(const signal::SampleBuffer& buffer, std::size_t chunk_samples);

  SampleRate sample_rate() const override;
  std::optional<SampleChunk> next_chunk() override;

 private:
  const signal::SampleBuffer& buffer_;
  std::size_t chunk_samples_;
  std::size_t position_ = 0;
};

/// LFBSIQ1 file replay via the incremental signal::IqReader — captures far
/// larger than memory stream through without ever being fully resident.
/// Construction throws signal::IqFormatError on a malformed file; a
/// truncated payload streams what exists and reports `truncated()`.
class IqFileSource : public SampleSource {
 public:
  IqFileSource(const std::string& path, std::size_t chunk_samples);

  SampleRate sample_rate() const override;
  std::optional<SampleChunk> next_chunk() override;
  std::uint64_t total_samples() const { return reader_.total(); }
  bool truncated() const { return reader_.truncated(); }
  std::uint64_t declared_samples() const { return reader_.declared(); }

 private:
  signal::IqReader reader_;
  std::size_t chunk_samples_;
  std::uint64_t position_ = 0;
};

/// Live synthetic capture: tags in a sim::Scenario stream random payload
/// frames, epoch after epoch, and the resulting air capture is chunked out.
/// Every payload put on the air is recorded so a consumer can score
/// end-to-end recovery. Generation happens lazily inside next_chunk (on
/// the producer thread), so capture synthesis overlaps decode.
class ScenarioSource : public SampleSource {
 public:
  struct Config {
    std::size_t epochs = 4;
    std::size_t frames_per_tag = 1;
    /// §3.6 rate command applied to listening tags; 0 = no cap.
    BitRate max_rate = 0.0;
    std::size_t chunk_samples = 1 << 16;
  };

  /// The scenario and rng are borrowed and touched only from next_chunk.
  ScenarioSource(sim::Scenario& scenario, Rng& rng, Config config);
  ~ScenarioSource() override;

  SampleRate sample_rate() const override;
  std::optional<SampleChunk> next_chunk() override;

  /// All payloads transmitted so far, across tags and epochs.
  const std::vector<std::vector<bool>>& sent_payloads() const {
    return sent_payloads_;
  }

 private:
  sim::Scenario& scenario_;
  Rng& rng_;
  Config config_;
  std::size_t epochs_generated_ = 0;
  signal::SampleBuffer current_;
  std::size_t position_in_current_ = 0;
  std::uint64_t absolute_position_ = 0;
  std::vector<std::vector<bool>> sent_payloads_;
};

}  // namespace lfbs::runtime

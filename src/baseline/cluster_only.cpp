#include "baseline/cluster_only.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace lfbs::baseline {

ClusterOnly::ClusterOnly(ClusterOnlyConfig config) : config_(config) {
  LFBS_CHECK(config_.noise_power >= 0.0);
  LFBS_CHECK(config_.bits_per_tag > 0);
}

std::vector<Complex> ClusterOnly::centroids(
    const std::vector<Complex>& channels) {
  const std::size_t n = channels.size();
  LFBS_CHECK(n > 0 && n <= 16);
  std::vector<Complex> out(1u << n);
  for (std::size_t combo = 0; combo < out.size(); ++combo) {
    Complex sum{};
    for (std::size_t i = 0; i < n; ++i) {
      if ((combo >> i) & 1u) sum += channels[i];
    }
    out[combo] = sum;
  }
  return out;
}

ClusterOnlyResult ClusterOnly::run(const std::vector<Complex>& channels,
                                   Rng& rng) const {
  const std::size_t n = channels.size();
  const std::vector<Complex> centers = centroids(channels);

  ClusterOnlyResult result;
  result.clusters = centers.size();
  result.min_cluster_distance = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < centers.size(); ++i) {
    for (std::size_t j = i + 1; j < centers.size(); ++j) {
      result.min_cluster_distance =
          std::min(result.min_cluster_distance, std::abs(centers[i] - centers[j]));
    }
  }

  const double sigma = std::sqrt(config_.noise_power / 2.0);
  std::vector<std::size_t> correct(n, 0);
  for (std::size_t bit = 0; bit < config_.bits_per_tag; ++bit) {
    std::size_t combo = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.bernoulli(0.5)) combo |= (1u << i);
    }
    const Complex observed =
        centers[combo] +
        Complex{rng.gaussian(0.0, sigma), rng.gaussian(0.0, sigma)};
    // Nearest-centroid (oracle map) decision.
    std::size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < centers.size(); ++c) {
      const double d = std::norm(observed - centers[c]);
      if (d < best_d) {
        best_d = d;
        best = c;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (((best >> i) & 1u) == ((combo >> i) & 1u)) ++correct[i];
    }
  }

  result.per_tag_accuracy.resize(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    result.per_tag_accuracy[i] = static_cast<double>(correct[i]) /
                                 static_cast<double>(config_.bits_per_tag);
    sum += result.per_tag_accuracy[i];
  }
  result.mean_accuracy = sum / static_cast<double>(n);
  return result;
}

}  // namespace lfbs::baseline

#pragma once

#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "protocol/identification.h"

namespace lfbs::baseline {

/// Stripped-down EPC Gen 2 TDMA, as configured in the paper's §4.2: slots
/// are 96 bits long, the bitrate is 100 kbps, and only the essential
/// protocol elements are kept (Query-style control messages, slotted-ALOHA
/// inventory with Q adaptation; the heavyweight Gen 2 overheads are
/// removed, which *favours* the baseline).
struct TdmaConfig {
  BitRate bitrate = 100.0 * kKbps;
  std::size_t slot_bits = 96;
  /// Reader control message per slot (Query/QueryRep ≈ 22 bits at the
  /// reader's command rate) plus turnaround, expressed in tag-bit times.
  std::size_t control_bits = 4;
  /// Initial Q for inventory (frame size 2^q slots).
  std::size_t initial_q = 4;
};

class Tdma {
 public:
  explicit Tdma(TdmaConfig config);

  const TdmaConfig& config() const { return config_; }

  Seconds slot_duration() const;

  /// Aggregate goodput with `tags` perfectly scheduled data tags — TDMA's
  /// best case: every slot carries one tag's payload, the only loss is the
  /// per-slot control overhead.
  BitRate aggregate_goodput(std::size_t tags) const;

  /// Air time to drain one 96-bit message from each of `tags` tags.
  Seconds round_duration(std::size_t tags) const;

  /// Simulates slotted-ALOHA inventory (Gen 2 style) of `population` tags:
  /// each frame has 2^Q slots, tags pick one uniformly; singleton slots
  /// identify a tag, collision/empty slots burn air time; Q adapts between
  /// frames from the observed collision/empty mix. Returns total air time.
  Seconds identify(std::size_t population, Rng& rng,
                   std::size_t* rounds_out = nullptr) const;

 private:
  TdmaConfig config_;
};

}  // namespace lfbs::baseline

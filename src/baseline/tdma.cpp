#include "baseline/tdma.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace lfbs::baseline {

Tdma::Tdma(TdmaConfig config) : config_(config) {
  LFBS_CHECK(config_.bitrate > 0.0);
  LFBS_CHECK(config_.slot_bits > 0);
}

Seconds Tdma::slot_duration() const {
  return static_cast<double>(config_.slot_bits + config_.control_bits) /
         config_.bitrate;
}

BitRate Tdma::aggregate_goodput(std::size_t tags) const {
  if (tags == 0) return 0.0;
  // Transmissions are serialized: aggregate goodput is one slot's payload
  // per slot duration regardless of the tag count.
  return static_cast<double>(config_.slot_bits) / slot_duration();
}

Seconds Tdma::round_duration(std::size_t tags) const {
  return static_cast<double>(tags) * slot_duration();
}

Seconds Tdma::identify(std::size_t population, Rng& rng,
                       std::size_t* rounds_out) const {
  LFBS_CHECK(population > 0);
  // Identification slots carry EPC + CRC-5.
  const Seconds id_slot =
      static_cast<double>(96 + 5 + config_.control_bits) / config_.bitrate;
  // Empty and collided slots are aborted early (RN16 exchange fails);
  // model them as a quarter of a full slot, which is generous to TDMA.
  const Seconds short_slot = id_slot * 0.25;

  std::size_t remaining = population;
  double q = static_cast<double>(config_.initial_q);
  Seconds elapsed = 0.0;
  std::size_t rounds = 0;
  while (remaining > 0) {
    ++rounds;
    const auto slots = static_cast<std::size_t>(
        1u << static_cast<unsigned>(std::clamp(q, 0.0, 15.0)));
    std::vector<std::size_t> occupancy(slots, 0);
    for (std::size_t t = 0; t < remaining; ++t) {
      ++occupancy[rng.uniform_u64(slots)];
    }
    std::size_t singles = 0, collisions = 0, empties = 0;
    for (std::size_t c : occupancy) {
      if (c == 0) {
        ++empties;
      } else if (c == 1) {
        ++singles;
      } else {
        ++collisions;
      }
    }
    elapsed += static_cast<double>(singles) * id_slot +
               static_cast<double>(collisions + empties) * short_slot;
    remaining -= singles;
    // Gen 2 style Q adaptation: grow on collisions, shrink on empties.
    q += 0.35 * static_cast<double>(collisions) -
         0.15 * static_cast<double>(empties);
    q = std::clamp(q, 0.0, 15.0);
  }
  if (rounds_out != nullptr) *rounds_out = rounds;
  return elapsed;
}

}  // namespace lfbs::baseline

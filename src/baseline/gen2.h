#pragma once

#include <cstddef>

#include "common/rng.h"
#include "common/units.h"

namespace lfbs::baseline {

/// EPC Gen 2 air-interface timings, derived from the Tari (reference
/// interval) and the tag backscatter-link frequency, following the
/// EPCglobal Class-1 Generation-2 specification's structure:
///
///   - reader commands are PIE-encoded: data-0 = 1 Tari, data-1 ≈ 2 Tari,
///     preceded by a frame-sync/preamble;
///   - tag replies are FM0 at the backscatter link frequency (BLF);
///   - T1 (reader→tag turnaround), T2 (tag→reader), T3 (no-reply timeout)
///     separate the exchanges.
///
/// This puts real per-command costs behind the Fig 12 baseline instead of
/// a flat "control bits" fudge.
struct Gen2Timings {
  double tari_s = 6.25e-6;   ///< 6.25 us Tari (common reader profile)
  double blf_hz = 100e3;     ///< tag FM0 link frequency ≈ 100 kbps

  /// Average PIE symbol duration (random data: half 1-Tari, half 2-Tari).
  Seconds reader_bit() const { return 1.5 * tari_s; }
  Seconds tag_bit() const { return 1.0 / blf_hz; }

  Seconds preamble() const { return 12.0 * tari_s; }
  Seconds t1() const { return 62.5e-6; }   ///< max RTcal-derived turnaround
  Seconds t2() const { return 62.5e-6; }
  Seconds t3() const { return 100e-6; }    ///< no-reply timeout

  /// Command durations (bits per the Gen 2 command table).
  Seconds query() const { return preamble() + 22.0 * reader_bit(); }
  Seconds query_rep() const { return preamble() + 4.0 * reader_bit(); }
  Seconds query_adjust() const { return preamble() + 9.0 * reader_bit(); }
  Seconds ack() const { return preamble() + 18.0 * reader_bit(); }

  /// Tag replies: RN16 handle, and PC + EPC + CRC-16 (16+96+16 bits) plus
  /// the FM0 preamble (6 symbols).
  Seconds rn16() const { return (6.0 + 16.0) * tag_bit(); }
  Seconds epc_reply() const { return (6.0 + 16.0 + 96.0 + 16.0) * tag_bit(); }
};

/// Discrete-event Gen 2 inventory round (the full baseline; the stripped
/// `Tdma` keeps only the essentials, which *favours* TDMA in comparisons).
///
/// Protocol per the spec: the reader opens a round with Query(Q); each tag
/// draws a 16-bit slot counter in [0, 2^Q); QueryRep decrements counters;
/// a tag at zero backscatters RN16; a singleton is ACKed and replies with
/// its EPC; collisions and empties burn their exchange times. Between
/// rounds Q adapts with the standard C-constant algorithm.
class Gen2Inventory {
 public:
  struct Config {
    Gen2Timings timings{};
    std::size_t initial_q = 4;
    /// Q-algorithm constant (spec: 0.1 <= C <= 0.5).
    double q_constant = 0.35;
    std::size_t max_rounds = 64;
  };

  struct Stats {
    Seconds elapsed = 0.0;
    std::size_t rounds = 0;
    std::size_t slots = 0;
    std::size_t singles = 0;
    std::size_t collisions = 0;
    std::size_t empties = 0;
    std::size_t identified = 0;

    /// Slot efficiency: successful reads over slots used (ALOHA optimum
    /// is 1/e ≈ 0.368 at matched frame size).
    double slot_efficiency() const {
      return slots > 0 ? static_cast<double>(singles) /
                             static_cast<double>(slots)
                       : 0.0;
    }
  };

  explicit Gen2Inventory(Config config);
  Gen2Inventory() : Gen2Inventory(Config{}) {}

  const Config& config() const { return config_; }

  /// Inventories `population` tags; returns full accounting.
  Stats run(std::size_t population, Rng& rng) const;

 private:
  Config config_;
};

}  // namespace lfbs::baseline

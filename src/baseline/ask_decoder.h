#pragma once

#include <vector>

#include "common/units.h"
#include "signal/sample_buffer.h"

namespace lfbs::baseline {

/// Conventional single-tag ASK (on-off keying) amplitude decoder — the
/// robustness baseline of §5.4 / Fig 14.
///
/// Unlike LF-Backscatter it does not use edges: it integrates the signal
/// amplitude over each full bit period and thresholds it halfway between
/// the two amplitude levels. Full-bit integration is why it tolerates about
/// 4 dB more noise than edge-based decoding — and why it cannot separate
/// concurrent transmitters.
struct AskDecoderConfig {
  BitRate rate = 100.0 * kKbps;
  /// Fraction of the level gap used for start-of-stream detection.
  double start_threshold = 0.5;
  /// Timing loop gain for tracking clock drift via observed transitions.
  double timing_gain = 0.1;
};

struct AskResult {
  std::vector<bool> bits;
  double start_sample = -1.0;  ///< -1 when no stream was found
  double level_low = 0.0;      ///< estimated |S| of the detuned state
  double level_high = 0.0;     ///< estimated |S| of the tuned state
};

class AskDecoder {
 public:
  explicit AskDecoder(AskDecoderConfig config);

  const AskDecoderConfig& config() const { return config_; }

  /// Decodes the single ASK stream in the buffer (if any).
  AskResult decode(const signal::SampleBuffer& buffer) const;

 private:
  AskDecoderConfig config_;
};

}  // namespace lfbs::baseline

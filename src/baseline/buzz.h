#pragma once

#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace lfbs::baseline {

/// Reimplementation of Buzz [Wang et al., SIGCOMM 2012] as described in
/// §2.2 and §4.2 of the LF-Backscatter paper.
///
/// All tags transmit bit-by-bit in lock-step; round k applies a known
/// random combination d_k ∈ {0,1}^n, so the reader observes
///   y_k = Σ_i d_ki · h_i · b_i + noise
/// per bit position. After enough rounds the (complex) linear system is
/// solved for the bits. The scheme is *rateless*: rounds are added until
/// the rounded solution explains the observations.
///
/// Costs modelled, matching the paper's critique:
///  - channel coefficients must be estimated (compressive sensing) before
///    data transfer, and re-estimated whenever the channel moves;
///  - every round retransmits the full message, so goodput divides by the
///    number of rounds;
///  - lock-step transmission requires matched clocks across tags.
struct BuzzConfig {
  BitRate bitrate = 100.0 * kKbps;
  std::size_t message_bits = 96;
  /// Initial rounds as a fraction of the tag count (complex measurements
  /// carry two real equations, so 0.6·n is just above determinedness).
  double initial_round_factor = 0.6;
  /// Extra rounds added per rateless retry, as a fraction of the tag count.
  double round_increment = 0.25;
  /// Give up when rounds exceed this multiple of the tag count.
  double max_round_factor = 3.0;
  /// Channel-estimation preamble length, in bit times per tag.
  double estimation_bits_per_tag = 2.0;
  /// Symbol-level receiver noise power (E|n|² per lock-step bit).
  double noise_power = 1e-4;
};

struct BuzzTransferResult {
  std::vector<std::vector<bool>> decoded;  ///< per tag, message_bits long
  std::size_t rounds_used = 0;
  bool success = false;       ///< residual check passed
  Seconds air_time = 0.0;     ///< estimation preamble + data rounds
  std::size_t bit_errors = 0; ///< vs. ground truth (filled by caller tools)
};

class Buzz {
 public:
  /// `channels` are the true per-tag coefficients; Buzz estimates its own
  /// working copies from the preamble.
  Buzz(BuzzConfig config, std::vector<Complex> channels);

  const BuzzConfig& config() const { return config_; }
  std::size_t num_tags() const { return channels_.size(); }

  /// Compressive-sensing channel estimation from a signature preamble.
  /// Returns the air time consumed and stores the estimates for decode.
  Seconds estimate_channels(Rng& rng);

  /// Perturbs the *true* channel (environment dynamics between estimation
  /// and transfer — the Fig 1 effect). Estimates keep their stale values.
  void perturb_channels(double relative_error, Rng& rng);

  /// One lock-step transfer of `messages[i]` from tag i (all equal length
  /// == message_bits). Requires estimate_channels() first.
  BuzzTransferResult transfer(
      const std::vector<std::vector<bool>>& messages, Rng& rng) const;

  /// Aggregate goodput for a *successful* transfer with the given rounds.
  BitRate goodput(const BuzzTransferResult& result) const;

 private:
  BuzzConfig config_;
  std::vector<Complex> channels_;   ///< ground truth
  std::vector<Complex> estimates_;  ///< what the decoder believes
  bool estimated_ = false;
};

}  // namespace lfbs::baseline

#include "baseline/ask_decoder.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "dsp/filters.h"
#include "dsp/stats.h"

namespace lfbs::baseline {

AskDecoder::AskDecoder(AskDecoderConfig config) : config_(config) {
  LFBS_CHECK(config_.rate > 0.0);
  LFBS_CHECK(config_.timing_gain > 0.0 && config_.timing_gain <= 1.0);
}

AskResult AskDecoder::decode(const signal::SampleBuffer& buffer) const {
  AskResult result;
  if (buffer.empty()) return result;
  const double spb = samples_per_bit(buffer.sample_rate(), config_.rate);
  LFBS_CHECK(spb >= 4.0);

  // Amplitude envelope, lightly smoothed (used for timing and bit
  // integration), plus a heavily smoothed copy for level estimation — at
  // low SNR the light envelope's percentiles no longer resolve the two
  // levels, but mid-bit plateaus of a half-bit average still do.
  const std::vector<double> mag = dsp::magnitude(buffer.span());
  const auto smooth_window =
      static_cast<std::size_t>(std::clamp(spb / 8.0, 1.0, 64.0));
  const std::vector<double> env = dsp::moving_average(mag, smooth_window);
  const auto level_window =
      static_cast<std::size_t>(std::clamp(spb / 2.0, 2.0, 256.0));
  const std::vector<double> level_env = dsp::moving_average(mag, level_window);

  // Two amplitude levels: robust percentiles of the envelope. The "idle"
  // level dominates early samples; the tuned level is the other mode. Note
  // the tuned level can be *lower* than idle (destructive combination with
  // the environment reflection) — the anchor bit resolves the mapping.
  const double lo = dsp::percentile(level_env, 5.0);
  const double hi = dsp::percentile(level_env, 95.0);
  if (hi - lo < 1e-12) return result;
  // No-signal gate: the two-level dynamic range must clear the *within-
  // level* scatter, or the buffer is silence. (Deviation from the overall
  // median would be inflated by the signal's own bimodality.)
  std::vector<double> dev(level_env.size());
  for (std::size_t i = 0; i < level_env.size(); ++i) {
    dev[i] = std::min(std::abs(level_env[i] - lo),
                      std::abs(level_env[i] - hi));
  }
  if (hi - lo < 5.0 * dsp::median(dev)) return result;
  const double mid = 0.5 * (lo + hi);

  // Idle level = whichever side the first samples sit on.
  const std::size_t idle_probe =
      std::min<std::size_t>(env.size(), static_cast<std::size_t>(spb));
  double idle = 0.0;
  for (std::size_t i = 0; i < idle_probe; ++i) idle += env[i];
  idle /= static_cast<double>(idle_probe);
  const bool idle_is_low = idle < mid;
  result.level_low = idle_is_low ? lo : hi;
  result.level_high = idle_is_low ? hi : lo;

  // Start of stream: first sustained departure from the idle level. The
  // anchor bit is a 1, so the first non-idle stretch is the first bit.
  const auto sustain = static_cast<std::size_t>(std::max(2.0, spb / 4.0));
  std::size_t start = env.size();
  std::size_t run = 0;
  for (std::size_t i = 0; i < env.size(); ++i) {
    const bool departed = idle_is_low ? env[i] > mid : env[i] < mid;
    run = departed ? run + 1 : 0;
    if (run >= sustain) {
      start = i - run + 1;
      break;
    }
  }
  if (start == env.size()) return result;
  result.start_sample = static_cast<double>(start);

  // Bit-by-bit integration with a simple timing loop: integrate the middle
  // 70% of each bit period, and nudge the phase whenever a level transition
  // is observed inside the bit.
  double phase = static_cast<double>(start);
  const double n = static_cast<double>(env.size());
  while (phase + spb < n) {
    const auto lo_idx = static_cast<std::size_t>(phase + 0.15 * spb);
    const auto hi_idx = static_cast<std::size_t>(phase + 0.85 * spb);
    double sum = 0.0;
    for (std::size_t i = lo_idx; i < hi_idx && i < env.size(); ++i)
      sum += env[i];
    const double level = sum / std::max(1.0, static_cast<double>(hi_idx - lo_idx));
    const bool bit = idle_is_low ? level > mid : level < mid;
    result.bits.push_back(bit);

    // Timing recovery: locate a mid-bit transition (if any) near the bit
    // boundary and pull the phase toward it.
    if (!result.bits.empty() && result.bits.size() >= 2 &&
        result.bits[result.bits.size() - 1] !=
            result.bits[result.bits.size() - 2]) {
      // Search for the crossing around the nominal boundary.
      const auto lo_s = static_cast<std::size_t>(
          std::max(0.0, phase - 0.3 * spb));
      const auto hi_s = static_cast<std::size_t>(
          std::min(n - 1.0, phase + 0.3 * spb));
      for (std::size_t i = lo_s; i + 1 <= hi_s; ++i) {
        const bool before_high = env[i] > mid;
        const bool after_high = env[i + 1] > mid;
        if (before_high != after_high) {
          const double crossing = static_cast<double>(i) + 0.5;
          phase += config_.timing_gain * (crossing - phase);
          break;
        }
      }
    }
    phase += spb;
  }
  return result;
}

}  // namespace lfbs::baseline

#include "baseline/buzz.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "dsp/linalg.h"
#include "dsp/omp.h"

namespace lfbs::baseline {

namespace {

/// Greedy bit-flip polishing: flip any single bit that lowers the residual
/// of D_h · b against the observations; repeat until a fixed point.
void polish(const dsp::Matrix& dh, std::span<const Complex> y,
            std::vector<bool>& bits) {
  const std::size_t n = bits.size();
  std::vector<Complex> x(n);
  bool improved = true;
  std::size_t sweeps = 0;
  while (improved && sweeps < 8) {
    improved = false;
    ++sweeps;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t v = 0; v < n; ++v) x[v] = bits[v] ? 1.0 : 0.0;
      const double before = dsp::residual_norm(dh, x, y);
      x[i] = bits[i] ? 0.0 : 1.0;
      const double after = dsp::residual_norm(dh, x, y);
      if (after + 1e-12 < before) {
        bits[i] = !bits[i];
        improved = true;
      }
    }
  }
}

}  // namespace

Buzz::Buzz(BuzzConfig config, std::vector<Complex> channels)
    : config_(config), channels_(std::move(channels)) {
  LFBS_CHECK(!channels_.empty());
  LFBS_CHECK(config_.bitrate > 0.0);
  LFBS_CHECK(config_.message_bits > 0);
}

Seconds Buzz::estimate_channels(Rng& rng) {
  const std::size_t n = channels_.size();
  const auto measurements = std::max<std::size_t>(
      8, static_cast<std::size_t>(std::ceil(config_.estimation_bits_per_tag *
                                            static_cast<double>(n))));
  // Signature preamble: random 0/1 tag activations per measurement slot;
  // the reader solves the sparse system with OMP (compressive sensing).
  dsp::Matrix a(measurements, n);
  std::vector<Complex> y(measurements);
  const double sigma = std::sqrt(config_.noise_power / 2.0);
  for (std::size_t m = 0; m < measurements; ++m) {
    for (std::size_t i = 0; i < n; ++i) {
      a.at(m, i) = rng.bernoulli(0.5) ? 1.0 : 0.0;
    }
  }
  // Every tag must be active in at least one measurement slot or its
  // coefficient is unobservable.
  for (std::size_t i = 0; i < n; ++i) {
    bool any = false;
    for (std::size_t m = 0; m < measurements; ++m) any = any || a.at(m, i) != 0.0;
    if (!any) a.at(rng.uniform_u64(measurements), i) = 1.0;
  }
  for (std::size_t m = 0; m < measurements; ++m) {
    Complex sum{};
    for (std::size_t i = 0; i < n; ++i) {
      if (a.at(m, i) != 0.0) sum += channels_[i];
    }
    y[m] = sum + Complex{rng.gaussian(0.0, sigma), rng.gaussian(0.0, sigma)};
  }
  const dsp::SparseSolution sol =
      dsp::orthogonal_matching_pursuit(a, y, n, 1e-9);
  estimates_ = sol.coefficients;
  estimated_ = true;
  return static_cast<double>(measurements) / config_.bitrate;
}

void Buzz::perturb_channels(double relative_error, Rng& rng) {
  for (Complex& h : channels_) {
    const double mag = std::abs(h) * relative_error;
    h += Complex{rng.gaussian(0.0, mag), rng.gaussian(0.0, mag)};
  }
}

BuzzTransferResult Buzz::transfer(
    const std::vector<std::vector<bool>>& messages, Rng& rng) const {
  LFBS_CHECK_MSG(estimated_, "estimate_channels() must run first");
  const std::size_t n = channels_.size();
  LFBS_CHECK(messages.size() == n);
  for (const auto& m : messages) LFBS_CHECK(m.size() == config_.message_bits);

  BuzzTransferResult result;
  const auto max_rounds = static_cast<std::size_t>(
      std::ceil(config_.max_round_factor * static_cast<double>(n)));
  auto rounds = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(config_.initial_round_factor * static_cast<double>(n))));
  const auto increment = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(config_.round_increment * static_cast<double>(n))));
  const double sigma = std::sqrt(config_.noise_power / 2.0);

  // Accumulated observations: rows grow as the rateless scheme adds rounds.
  std::vector<std::vector<double>> d;                // combination rows
  std::vector<std::vector<Complex>> y;               // per round, per bit
  const auto add_round = [&] {
    std::vector<double> row(n);
    // An all-zero combination carries no information; redraw (matters for
    // small tag counts).
    bool any = false;
    while (!any) {
      for (std::size_t i = 0; i < n; ++i) {
        row[i] = rng.bernoulli(0.5) ? 1.0 : 0.0;
        any = any || row[i] != 0.0;
      }
    }
    std::vector<Complex> obs(config_.message_bits);
    for (std::size_t j = 0; j < config_.message_bits; ++j) {
      Complex sum{};
      for (std::size_t i = 0; i < n; ++i) {
        if (row[i] != 0.0 && messages[i][j]) sum += channels_[i];
      }
      obs[j] = sum +
               Complex{rng.gaussian(0.0, sigma), rng.gaussian(0.0, sigma)};
    }
    d.push_back(std::move(row));
    y.push_back(std::move(obs));
  };

  while (true) {
    while (d.size() < rounds) add_round();

    // Build D·diag(ĥ) from the *estimated* channels. The unknown bits are
    // *real* 0/1 values, so stack the real and imaginary parts of each
    // complex observation into two real equations — every round contributes
    // two constraints, which is what lets Buzz run with fewer rounds than
    // tags.
    const std::size_t m = d.size();
    dsp::Matrix dh(2 * m, n);
    for (std::size_t k = 0; k < m; ++k) {
      for (std::size_t i = 0; i < n; ++i) {
        const Complex coeff = d[k][i] * estimates_[i];
        dh.at(k, i) = coeff.real();
        dh.at(m + k, i) = coeff.imag();
      }
    }

    result.decoded.assign(n, std::vector<bool>(config_.message_bits, false));
    double worst_residual = 0.0;
    std::vector<Complex> column(2 * m);
    for (std::size_t j = 0; j < config_.message_bits; ++j) {
      for (std::size_t k = 0; k < m; ++k) {
        column[k] = y[k][j].real();
        column[m + k] = y[k][j].imag();
      }
      const std::vector<Complex> x = dsp::least_squares(dh, column, 1e-3);
      std::vector<bool> bits(n, false);
      if (!x.empty()) {
        for (std::size_t i = 0; i < n; ++i) bits[i] = x[i].real() > 0.5;
      }
      polish(dh, column, bits);
      std::vector<Complex> xb(n);
      for (std::size_t i = 0; i < n; ++i) xb[i] = bits[i] ? 1.0 : 0.0;
      const double residual = dsp::residual_norm(dh, xb, column) /
                              std::sqrt(static_cast<double>(2 * m));
      worst_residual = std::max(worst_residual, residual);
      for (std::size_t i = 0; i < n; ++i) result.decoded[i][j] = bits[i];
    }

    // Rateless acceptance: the rounded solution must explain every bit
    // column to within a few noise standard deviations.
    const double threshold =
        4.0 * std::sqrt(config_.noise_power / 2.0) +
        0.05 * std::abs(estimates_[0]);
    result.rounds_used = d.size();
    if (worst_residual <= threshold) {
      result.success = true;
      break;
    }
    if (d.size() + increment > max_rounds) {
      result.success = false;
      break;
    }
    rounds = d.size() + increment;
  }

  const double data_bits =
      static_cast<double>(result.rounds_used * config_.message_bits);
  result.air_time = data_bits / config_.bitrate;
  return result;
}

BitRate Buzz::goodput(const BuzzTransferResult& result) const {
  if (result.air_time <= 0.0) return 0.0;
  const double delivered = result.success
                               ? static_cast<double>(num_tags()) *
                                     static_cast<double>(config_.message_bits)
                               : 0.0;
  return delivered / result.air_time;
}

}  // namespace lfbs::baseline

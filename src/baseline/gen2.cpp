#include "baseline/gen2.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace lfbs::baseline {

Gen2Inventory::Gen2Inventory(Config config) : config_(config) {
  LFBS_CHECK(config_.timings.tari_s > 0.0);
  LFBS_CHECK(config_.timings.blf_hz > 0.0);
  LFBS_CHECK(config_.q_constant >= 0.1 && config_.q_constant <= 0.5);
  LFBS_CHECK(config_.max_rounds > 0);
}

Gen2Inventory::Stats Gen2Inventory::run(std::size_t population,
                                        Rng& rng) const {
  LFBS_CHECK(population > 0);
  const Gen2Timings& t = config_.timings;

  Stats stats;
  std::size_t remaining = population;
  double q = static_cast<double>(config_.initial_q);

  while (remaining > 0 && stats.rounds < config_.max_rounds) {
    ++stats.rounds;
    const auto q_now = static_cast<unsigned>(std::clamp(q, 0.0, 15.0));
    const auto frame_slots = static_cast<std::size_t>(1u << q_now);

    // Each remaining tag draws a slot counter in [0, 2^Q).
    std::vector<std::size_t> occupancy(frame_slots, 0);
    for (std::size_t i = 0; i < remaining; ++i) {
      ++occupancy[rng.uniform_u64(frame_slots)];
    }

    // Query opens the round; each subsequent slot is advanced by QueryRep.
    stats.elapsed += t.query();
    double q_float = q;
    for (std::size_t slot = 0; slot < frame_slots; ++slot) {
      ++stats.slots;
      if (slot > 0) stats.elapsed += t.query_rep();

      if (occupancy[slot] == 0) {
        // No reply: the reader waits out T1 + T3.
        ++stats.empties;
        stats.elapsed += t.t1() + t.t3();
        q_float = std::max(0.0, q_float - config_.q_constant);
      } else if (occupancy[slot] == 1) {
        // Singleton: RN16 handshake, ACK, EPC backscatter.
        ++stats.singles;
        ++stats.identified;
        --remaining;
        stats.elapsed += t.t1() + t.rn16() + t.t2() + t.ack() + t.t1() +
                         t.epc_reply() + t.t2();
      } else {
        // Collision: the garbled RN16 still costs its air time.
        ++stats.collisions;
        stats.elapsed += t.t1() + t.rn16() + t.t2();
        q_float = std::min(15.0, q_float + config_.q_constant);
      }
    }
    // QueryAdjust (or a fresh Query) opens the next round with the adapted Q.
    q = q_float;
    if (remaining > 0) stats.elapsed += t.query_adjust();
  }
  return stats;
}

}  // namespace lfbs::baseline

#pragma once

#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace lfbs::baseline {

/// Pure IQ-cluster separation of synchronized concurrent tags, after
/// Angerer et al. [6] — the §2.3 baseline.
///
/// With N tags transmitting bit-synchronously, the received IQ vector of
/// each bit falls into one of 2^N clusters (one per bit combination). The
/// paper's point — which this model reproduces — is that the scheme stops
/// working beyond ~2 tags because clusters crowd together and the dwell
/// time between transitions shrinks.
///
/// The decoder here is even given an oracle cluster map (ideal centroids
/// computed from the true channel coefficients), so its failures are purely
/// geometric: clusters closer together than the noise.
struct ClusterOnlyConfig {
  double noise_power = 1e-4;  ///< per-symbol receiver noise E|n|²
  std::size_t bits_per_tag = 96;
};

struct ClusterOnlyResult {
  /// Fraction of bits decoded correctly, per tag.
  std::vector<double> per_tag_accuracy;
  double mean_accuracy = 0.0;
  /// Smallest distance between two cluster centroids — the scaling culprit.
  double min_cluster_distance = 0.0;
  std::size_t clusters = 0;  ///< 2^N
};

class ClusterOnly {
 public:
  explicit ClusterOnly(ClusterOnlyConfig config);

  /// Simulates synchronized transmission of random bits from tags with the
  /// given channel coefficients and nearest-centroid decoding.
  ClusterOnlyResult run(const std::vector<Complex>& channels, Rng& rng) const;

  /// The 2^N ideal cluster centroids for a set of coefficients.
  static std::vector<Complex> centroids(const std::vector<Complex>& channels);

 private:
  ClusterOnlyConfig config_;
};

}  // namespace lfbs::baseline

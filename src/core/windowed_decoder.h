#pragma once

#include <cstdint>

#include "core/lf_decoder.h"

namespace lfbs::core {

/// Streaming decode for long captures (extension beyond the paper).
///
/// The base decoder assumes quasi-stationary stream phases: valid for the
/// paper's short (~1 ms) epochs, but over the hundreds of milliseconds a
/// 0.5 kbps frame needs, *relative* crystal drift slides tags' edge
/// lattices across each other — colliding pairs drift apart mid-epoch and
/// faster tags sweep through slower tags' phases, corrupting long bursts.
///
/// The windowed decoder bounds that: it chops the capture into windows
/// short enough that every configuration (collided or separate) is
/// quasi-static, decodes each window independently, and stitches the
/// per-window streams into end-to-end threads using three continuity keys:
///   - bitrate,
///   - lattice phase (the predicted next boundary of the thread),
///   - the edge vector (the tag's channel coefficient, stable over the
///     whole capture) — which also resolves per-window polarity, since a
///     window that opens mid-stream may start on a falling edge and decode
///     inverted.
/// Gaps between windows (a tag holding its level across a cut, or a window
/// where its group was lost) are filled by timing: the number of missing
/// bits falls out of the boundary positions, and their value is the
/// thread's last level.
///
/// The two phases are exposed separately so the concurrent runtime
/// (src/runtime) can decode windows on a worker pool and stitch on a single
/// thread: decode_window() is pure and safe to call from any thread, while
/// a WindowStitcher consumes window results strictly in window order.
struct WindowedDecoderConfig {
  DecoderConfig decoder;
  /// Processing window. Must be long enough that the slowest expected tag
  /// shows min_edges edges per window, short enough that relative drift
  /// within a window stays inside the grouping tolerance.
  Seconds window = 20e-3;
  /// Lattice-phase continuity tolerance at a stitch, in samples, plus a
  /// drift allowance proportional to the gap.
  double phase_tolerance = 8.0;
  /// Edge-vector continuity: |e_s - (+/-)e_t| must be below this fraction
  /// of |e_t|.
  double vector_tolerance = 0.4;
};

/// Serial half of the windowed decode: consumes per-window DecodeResults
/// strictly in window order and assembles end-to-end threads via the three
/// continuity keys. Not thread-safe; the runtime funnels all worker output
/// through one stitcher thread.
class WindowStitcher {
 public:
  WindowStitcher(const WindowedDecoderConfig& config, SampleRate sample_rate);

  /// Folds in the decode of the window starting at absolute sample
  /// `offset_samples`. Windows must arrive in capture order.
  void add_window(DecodeResult window, std::size_t offset_samples);

  /// Emits the stitched threads (trimmed, frame-scanned) together with the
  /// accumulated diagnostics. The stitcher is spent afterwards.
  DecodeResult finish();

  /// Number of windows folded in so far.
  std::size_t windows() const { return windows_; }

 private:
  /// An end-to-end stream under assembly.
  struct Thread {
    BitRate rate = 0.0;
    double period = 0.0;          ///< samples per bit (refined from anchors)
    bool period_refined = false;  ///< true once measured across a stitch
    Complex edge_vector;
    double start_abs = 0.0;       ///< anchor position in capture samples
    double anchor_pos = 0.0;      ///< last stitched stream's measured anchor
    std::size_t bits_at_anchor = 0;
    double next_boundary = 0.0;   ///< predicted boundary after the last bit
    bool last_level = false;
    bool collided = false;
    std::vector<bool> bits;
    // Soft-decision aggregation: per-fragment confidence components,
    // weighted by fragment bit count, folded into one per-thread
    // DecodeConfidence at finish().
    double conf_weight = 0.0;
    double snr_sum = 0.0;
    double edge_snr_sum = 0.0;
    double edge_conf_sum = 0.0;
    double margin_sum = 0.0;
    double separation_sum = 0.0;
    std::size_t erasures = 0;
    FallbackStage stage = FallbackStage::kPrimary;
  };

  WindowedDecoderConfig config_;
  double fs_ = 0.0;
  std::size_t windows_ = 0;
  DecodeResult result_;  ///< accumulates diagnostics until finish()
  std::vector<Thread> threads_;
};

class WindowedDecoder {
 public:
  explicit WindowedDecoder(WindowedDecoderConfig config);

  const WindowedDecoderConfig& config() const { return config_; }

  /// Decodes a capture of any length. Short captures (≤ 1.5 windows) fall
  /// through to the plain decoder. Equivalent to decode_window() over every
  /// window followed by a WindowStitcher — the runtime's parallel path
  /// produces bit-identical output.
  DecodeResult decode(const signal::SampleBuffer& buffer) const;

  /// Window length in samples at the given rate.
  std::size_t window_samples(SampleRate fs) const;

  /// True when `total_samples` is short enough that decode() would fall
  /// through to the plain (unwindowed) decoder.
  bool is_short_capture(std::size_t total_samples, SampleRate fs) const;

  /// Decodes one window independently of every other window. `slice` holds
  /// the window's samples only; positions in the result are window-local.
  /// Deterministic and thread-safe: the decoder's k-means seed is mixed
  /// with `window_index`, giving every window (and hence every runtime
  /// worker) its own reproducible common::Rng stream regardless of which
  /// thread decodes it or in what order.
  DecodeResult decode_window(const signal::SampleBuffer& slice,
                             std::size_t window_index) const;

  /// The per-window decoder seed: splitmix64 of (seed, window_index).
  static std::uint64_t window_seed(std::uint64_t seed,
                                   std::size_t window_index);

 private:
  WindowedDecoderConfig config_;
};

}  // namespace lfbs::core

#pragma once

#include "core/lf_decoder.h"

namespace lfbs::core {

/// Streaming decode for long captures (extension beyond the paper).
///
/// The base decoder assumes quasi-stationary stream phases: valid for the
/// paper's short (~1 ms) epochs, but over the hundreds of milliseconds a
/// 0.5 kbps frame needs, *relative* crystal drift slides tags' edge
/// lattices across each other — colliding pairs drift apart mid-epoch and
/// faster tags sweep through slower tags' phases, corrupting long bursts.
///
/// The windowed decoder bounds that: it chops the capture into windows
/// short enough that every configuration (collided or separate) is
/// quasi-static, decodes each window independently, and stitches the
/// per-window streams into end-to-end threads using three continuity keys:
///   - bitrate,
///   - lattice phase (the predicted next boundary of the thread),
///   - the edge vector (the tag's channel coefficient, stable over the
///     whole capture) — which also resolves per-window polarity, since a
///     window that opens mid-stream may start on a falling edge and decode
///     inverted.
/// Gaps between windows (a tag holding its level across a cut, or a window
/// where its group was lost) are filled by timing: the number of missing
/// bits falls out of the boundary positions, and their value is the
/// thread's last level.
struct WindowedDecoderConfig {
  DecoderConfig decoder;
  /// Processing window. Must be long enough that the slowest expected tag
  /// shows min_edges edges per window, short enough that relative drift
  /// within a window stays inside the grouping tolerance.
  Seconds window = 20e-3;
  /// Lattice-phase continuity tolerance at a stitch, in samples, plus a
  /// drift allowance proportional to the gap.
  double phase_tolerance = 8.0;
  /// Edge-vector continuity: |e_s - (+/-)e_t| must be below this fraction
  /// of |e_t|.
  double vector_tolerance = 0.4;
};

class WindowedDecoder {
 public:
  explicit WindowedDecoder(WindowedDecoderConfig config);

  const WindowedDecoderConfig& config() const { return config_; }

  /// Decodes a capture of any length. Short captures (≤ 1.5 windows) fall
  /// through to the plain decoder.
  DecodeResult decode(const signal::SampleBuffer& buffer) const;

 private:
  WindowedDecoderConfig config_;
};

}  // namespace lfbs::core

#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace lfbs::core {

/// Fallback chain position a stream's published result came from. Ordering
/// matters: later stages mean more degradation was needed.
enum class FallbackStage : int {
  kPrimary = 0,        ///< full Edge+IQ+Error chain, first pass
  kReseeded = 1,       ///< perturbed k-means seeds
  kNoErrorCorrection = 2,  ///< Edge+IQ (Fig 9 middle rung)
  kEdgeOnly = 3,       ///< Edge (Fig 9 bottom rung)
  kRelaxedDetection = 4,   ///< lowered / adaptive edge threshold re-detect
};

inline const char* to_string(FallbackStage stage) {
  switch (stage) {
    case FallbackStage::kPrimary: return "primary";
    case FallbackStage::kReseeded: return "reseeded";
    case FallbackStage::kNoErrorCorrection: return "no-error-correction";
    case FallbackStage::kEdgeOnly: return "edge-only";
    case FallbackStage::kRelaxedDetection: return "relaxed-detection";
  }
  return "unknown";
}

/// Per-stream soft-decision summary, aggregated from the stages that
/// produced the stream: edge detection SNR, Viterbi path margins, and
/// k-means cluster separation.
struct DecodeConfidence {
  /// Mean edge SNR over the stream's boundaries, dB over the noise spread.
  double edge_snr_db = 0.0;
  /// Mean per-boundary edge confidence in [0, 1] (logistic of edge SNR).
  double edge_confidence = 1.0;
  /// Mean per-boundary Viterbi margin (log-likelihood-ratio proxy);
  /// 0 when the error-correction stage did not run.
  double path_margin = 0.0;
  /// Cluster separation from the k-means stage: min inter-centroid
  /// distance over mean intra-cluster spread. 0 when clustering didn't run.
  double cluster_separation = 0.0;
  /// Boundaries demoted to erasures by the soft Viterbi pass.
  std::size_t erasures = 0;
  /// Which fallback rung produced the published result.
  FallbackStage stage = FallbackStage::kPrimary;

  /// Scalar confidence in [0, 1]. Dominated by the edge-confidence term so
  /// the score degrades monotonically as injected noise rises; the margin
  /// and separation terms refine it, and every fallback rung taken charges
  /// a fixed penalty (a result that needed degraded modes is less
  /// trustworthy even if it came out CRC-clean).
  double score() const {
    const double margin_term =
        path_margin > 0.0 ? 1.0 - std::exp(-path_margin / 4.0) : 0.5;
    const double sep_term =
        cluster_separation > 0.0
            ? 1.0 - std::exp(-cluster_separation / 3.0)
            : 0.5;
    double s = 0.7 * edge_confidence + 0.2 * margin_term + 0.1 * sep_term;
    s -= 0.08 * static_cast<double>(stage);
    return std::clamp(s, 0.0, 1.0);
  }
};

}  // namespace lfbs::core

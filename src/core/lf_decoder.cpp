#include "core/lf_decoder.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "common/check.h"
#include "common/rng.h"
#include "core/bit_decoder.h"
#include "dsp/linalg.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lfbs::core {

namespace {

/// Sentinel for "no measured edge at this slot" in BoundarySlots::snrs.
constexpr double kNoEdgeSnr = -1e9;

/// Boundary slots of one group: mid positions, the span of the group's own
/// measured edges, and the extracted IQ differential per boundary.
struct BoundarySlots {
  std::vector<double> positions;
  std::vector<Complex> diffs;
  /// Per-slot soft decision: the (weakest) detected edge's confidence, or
  /// 1.0 where no edge was detected ("confidently no edge" — the hold
  /// states are as trustworthy as the detection threshold is strict).
  std::vector<double> confidences;
  /// Per-slot edge SNR in dB; kNoEdgeSnr where no edge was detected.
  std::vector<double> snrs;

  /// Mean detected-edge SNR over the lattice [start, start+step, ...].
  double mean_snr(std::size_t start, std::size_t step) const {
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t k = start; k < snrs.size(); k += step) {
      if (snrs[k] > kNoEdgeSnr) {
        sum += snrs[k];
        ++n;
      }
    }
    return n > 0 ? sum / static_cast<double>(n) : 0.0;
  }
  /// Mean per-slot confidence over the lattice.
  double mean_confidence(std::size_t start, std::size_t step) const {
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t k = start; k < confidences.size(); k += step) {
      sum += confidences[k];
      ++n;
    }
    return n > 0 ? sum / static_cast<double>(n) : 1.0;
  }
};

/// A decoded stream before framing, kept with enough context for the
/// interference-cancellation pass.
struct PendingStream {
  std::size_t slots_ref = 0;   ///< index into the decode's slot store
  std::size_t start = 0;       ///< first slot of this stream's bit lattice
  std::size_t step = 1;        ///< slots per bit
  std::vector<bool> bits;
  Complex edge_vector;         ///< rising-edge IQ differential
  double snr_db = 0.0;         ///< edge power over boundary residual power
  bool collided = false;
  double start_sample = 0.0;
  BitRate rate = 0.0;
  // Soft-decision aggregates feeding DecodeConfidence.
  double edge_snr_db = 0.0;       ///< mean detected-edge SNR on the lattice
  double edge_confidence = 1.0;   ///< mean per-slot confidence
  double path_margin = 0.0;       ///< mean Viterbi margin (0 if stage off)
  double cluster_separation = 0.0;
  std::size_t erasures = 0;
};

/// Residue-consensus step estimation over component boundary indices.
std::pair<std::size_t, std::size_t> component_step(
    const std::vector<std::size_t>& nonzero, std::size_t total,
    std::vector<std::size_t> allowed, double consensus) {
  if (nonzero.empty()) return {1, 0};
  std::sort(allowed.begin(), allowed.end(), std::greater<>());
  for (std::size_t step : allowed) {
    if (step == 0 || step > total) continue;
    std::map<std::size_t, std::size_t> residues;
    for (std::size_t n : nonzero) ++residues[n % step];
    const auto dominant = std::max_element(
        residues.begin(), residues.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    const double share = static_cast<double>(dominant->second) /
                         static_cast<double>(nonzero.size());
    if (share >= consensus) {
      for (std::size_t n : nonzero) {
        if (n % step == dominant->first) return {step, n};
      }
    }
  }
  return {1, nonzero.front()};
}

/// Drops trailing frames that are entirely zero — the decoded level after a
/// tag goes idle — so they don't count as CRC failures.
void trim_trailing_zeros(std::vector<bool>& bits, std::size_t frame_bits) {
  while (bits.size() >= frame_bits) {
    const bool all_zero =
        std::none_of(bits.end() - static_cast<std::ptrdiff_t>(frame_bits),
                     bits.end(), [](bool b) { return b; });
    if (!all_zero) break;
    bits.resize(bits.size() - frame_bits);
  }
}

}  // namespace

std::vector<std::vector<bool>> DecodeResult::valid_payloads() const {
  std::vector<std::vector<bool>> out;
  for (const DecodedStream& s : streams) {
    for (const protocol::ParsedFrame& f : s.frames) {
      if (f.valid()) out.push_back(f.payload);
    }
  }
  return out;
}

std::size_t DecodeResult::frames_attempted() const {
  std::size_t n = 0;
  for (const DecodedStream& s : streams) n += s.frames.size();
  return n;
}

std::size_t DecodeResult::frames_failed() const {
  std::size_t n = 0;
  for (const DecodedStream& s : streams) {
    for (const protocol::ParsedFrame& f : s.frames) {
      if (!f.valid()) ++n;
    }
  }
  return n;
}

LfDecoder::LfDecoder(DecoderConfig config) : config_(std::move(config)) {
  LFBS_CHECK(config_.max_rate > 0.0);
  LFBS_CHECK(!config_.rate_plan.rates.empty());
}

DecodeResult LfDecoder::decode_pass(const signal::SampleBuffer& buffer,
                                    const DecoderConfig& cfg) const {
  LFBS_OBS_SPAN(span, "decode_pass", "core");
  span.attr("samples", static_cast<double>(buffer.size()));
  static obs::Counter& passes = obs::metrics().counter("core.decode_passes");
  passes.add();
  DecodeResult result;
  if (buffer.empty()) return result;
  Rng rng(cfg.seed);

  const double spb = samples_per_bit(buffer.sample_rate(), cfg.max_rate);
  // Grouping tolerances are physical times (edge ramp ~0.12 us, position
  // noise), not sample counts: the configured values are defined at the
  // paper's 25 Msps and scale with the ADC rate, so decoding works
  // identically at 2.5 and 25 Msps.
  const double fs_scale =
      cfg.auto_scale_edge ? buffer.sample_rate() / (25.0 * kMsps) : 1.0;
  const double group_tolerance =
      std::max(1.2, cfg.group_tolerance * fs_scale);
  const double merge_radius = std::max(2.0, cfg.merge_radius * fs_scale);

  // --- Stage 1: edge detection -------------------------------------------
  signal::EdgeDetectorConfig ec = cfg.edge;
  if (cfg.auto_scale_edge) {
    // Short detection windows: long ones smear neighbouring tags' edges
    // together. Boundary re-measurement below re-averages with windows
    // stretched to just short of the neighbouring edges, recovering SNR.
    ec.window = static_cast<std::size_t>(std::clamp(spb / 12.0, 2.0, 3.0));
    ec.guard = 1;
    // |dS| plateaus for about 2·guard + ramp samples around an edge; a
    // smaller separation would report one physical edge twice. Edges of
    // *different* tags closer than this merge into a single detection and
    // are handled as a collision — this is the system's collision radius,
    // and it should stay near the physical edge width (§2.4).
    ec.min_separation = std::max<std::size_t>(
        3, static_cast<std::size_t>(5.0 * fs_scale));
  }
  const signal::EdgeDetector edge_detector(ec);
  const std::vector<signal::Edge> edges = edge_detector.detect(buffer);
  result.diagnostics.edges = edges.size();
  if (edges.empty()) return result;

  // --- Stage 2: stream grouping ------------------------------------------
  StreamDetectorConfig sc;
  sc.lattice_period = spb;
  sc.base_tolerance = group_tolerance;
  sc.drift_tolerance_ppm = cfg.drift_tolerance_ppm;
  sc.min_edges = cfg.min_edges;
  sc.merge_radius = merge_radius;
  for (BitRate r : cfg.rate_plan.rates) {
    const double m = cfg.max_rate / r;
    if (std::abs(m - std::round(m)) < 1e-6) {
      sc.valid_steps.push_back(static_cast<std::int64_t>(std::llround(m)));
    }
  }
  const StreamDetector stream_detector(sc);
  const std::vector<StreamGroup> groups = stream_detector.detect(edges);
  result.diagnostics.groups = groups.size();
  if (cfg.trace) {
    std::fprintf(stderr, "[lfbs] edges=%zu groups=%zu spb=%.1f\n",
                 edges.size(), groups.size(), spb);
  }

  const CollisionDetector collision_detector(cfg.collision);
  const CollisionSeparator separator(cfg.separator);
  const ErrorCorrector corrector(cfg.corrector);
  const double bguard = 4.0;

  // --- Stage 3: boundary differential extraction -------------------------
  // Extraction is reused by the over-merge fallback below, so it is keyed
  // on the group itself (its own edges span the measurement; all other
  // edges bound the averaging windows).
  const auto extract_slots = [&](const StreamGroup& group) {
    std::vector<bool> member(edges.size(), false);
    for (std::size_t ei : group.edge_indices) member[ei] = true;

    struct MeasuredEdge {
      double lead, trail;
      double confidence, snr_db;
    };
    std::map<std::int64_t, MeasuredEdge> measured;
    for (std::size_t k = 0; k < group.edge_indices.size(); ++k) {
      const signal::Edge& e = edges[group.edge_indices[k]];
      const auto epos = static_cast<double>(e.position);
      const std::int64_t slot = group.lattice_indices[k];
      auto [it, inserted] = measured.try_emplace(
          slot, MeasuredEdge{epos, epos, e.confidence, e.snr_db});
      if (!inserted) {
        it->second.lead = std::min(it->second.lead, epos);
        it->second.trail = std::max(it->second.trail, epos);
        // Merged (colliding) detections: keep the weakest link.
        it->second.confidence = std::min(it->second.confidence, e.confidence);
        it->second.snr_db = std::min(it->second.snr_db, e.snr_db);
      }
    }
    std::vector<double> foreign_positions;
    foreign_positions.reserve(edges.size());
    for (std::size_t ei = 0; ei < edges.size(); ++ei) {
      if (!member[ei]) {
        foreign_positions.push_back(static_cast<double>(edges[ei].position));
      }
    }

    const double bit_period = group.slope * static_cast<double>(group.step);
    const auto wmax =
        static_cast<std::size_t>(std::clamp(bit_period / 3.0, 2.0, 40.0));
    const double tail_margin = static_cast<double>(wmax) + bguard + 1.0;

    BoundarySlots slots;
    for (std::int64_t n = group.start_index;; n += group.step) {
      const double predicted = group.position_of(n);
      double lead = predicted, trail = predicted;
      double slot_conf = 1.0;
      double slot_snr = kNoEdgeSnr;
      const auto it = measured.find(n);
      if (it != measured.end()) {
        lead = it->second.lead;
        trail = it->second.trail;
        slot_conf = it->second.confidence;
        slot_snr = it->second.snr_db;
      }
      if (trail >= static_cast<double>(buffer.size()) - tail_margin) break;
      if (lead < tail_margin) continue;

      double before_gap = 1e9, after_gap = 1e9;
      const auto lo =
          std::lower_bound(foreign_positions.begin(), foreign_positions.end(),
                           lead - group_tolerance);
      if (lo != foreign_positions.begin()) before_gap = lead - *(lo - 1);
      const auto hi =
          std::upper_bound(foreign_positions.begin(), foreign_positions.end(),
                           trail + group_tolerance);
      if (hi != foreign_positions.end()) after_gap = *hi - trail;
      const double gb = std::clamp(before_gap / 3.0, 1.0, bguard);
      const double ga = std::clamp(after_gap / 3.0, 1.0, bguard);
      const auto wb = static_cast<std::size_t>(
          std::clamp(before_gap - gb - 1.0, 2.0, static_cast<double>(wmax)));
      const auto wa = static_cast<std::size_t>(
          std::clamp(after_gap - ga - 1.0, 2.0, static_cast<double>(wmax)));

      const Complex before = signal::windowed_mean_before(
          buffer.span(), static_cast<SampleIndex>(std::llround(lead - gb)),
          wb);
      const Complex after = signal::windowed_mean_after(
          buffer.span(), static_cast<SampleIndex>(std::llround(trail + ga)),
          wa);
      slots.positions.push_back(0.5 * (lead + trail));
      slots.diffs.push_back(after - before);
      slots.confidences.push_back(slot_conf);
      slots.snrs.push_back(slot_snr);
    }
    return slots;
  };

  std::vector<BoundarySlots> all_slots(groups.size());
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    all_slots[gi] = extract_slots(groups[gi]);
  }

  // --- Stage 4+5: per-group decode ----------------------------------------
  // Decodes one boundary-slot set as a single stream. `lattice_step` is
  // the owning group's bit-period step (sets the reported rate).
  const auto decode_slots_single = [&](std::size_t slots_ref,
                                       const BoundarySlots& slots,
                                       std::int64_t lattice_step,
                                       std::span<const Complex> diffs,
                                       Rng& krng) -> PendingStream {
    PendingStream ps;
    ps.slots_ref = slots_ref;
    ps.start = 0;
    ps.step = 1;
    ps.start_sample = slots.positions.front();
    ps.rate = cfg.max_rate / static_cast<double>(lattice_step);
    ps.edge_snr_db = slots.mean_snr(0, 1);
    ps.edge_confidence = slots.mean_confidence(0, 1);
    if (diffs.size() >= 3) {
      const dsp::KMeansResult fit =
          dsp::kmeans(diffs, 3, krng, cfg.collision.kmeans);
      const ThreeClusterLabels labels = label_three_clusters(diffs, fit);
      ps.edge_vector = 0.5 * (labels.rising - labels.falling);
      double residual2 = 0.0;
      for (std::size_t k = 0; k < diffs.size(); ++k) {
        const Complex expected = labels.states[k] == 1    ? labels.rising
                                 : labels.states[k] == -1 ? labels.falling
                                                          : labels.constant;
        residual2 += std::norm(diffs[k] - expected);
      }
      residual2 /= static_cast<double>(diffs.size());
      ps.snr_db =
          linear_to_db(std::norm(ps.edge_vector) / std::max(residual2, 1e-18));
      // Cluster separation: the closest centroid pair over the intra-cluster
      // scatter — how unambiguous the rising/falling/constant decision was.
      double min_dist2 = 1e300;
      for (std::size_t a = 0; a < fit.centroids.size(); ++a) {
        for (std::size_t b = a + 1; b < fit.centroids.size(); ++b) {
          min_dist2 =
              std::min(min_dist2, std::norm(fit.centroids[a] - fit.centroids[b]));
        }
      }
      ps.cluster_separation =
          std::sqrt(min_dist2 / std::max(residual2, 1e-18));
      if (cfg.error_correction) {
        const ErrorCorrector::SoftResult soft = corrector.correct_soft(
            diffs, labels,
            cfg.robustness.enabled ? std::span<const double>(slots.confidences)
                                   : std::span<const double>{},
            cfg.robustness.soft);
        ps.bits = soft.bits;
        ps.erasures = soft.erasures;
        double margin_sum = 0.0;
        for (double m : soft.bit_margins) margin_sum += m;
        ps.path_margin =
            soft.bit_margins.empty()
                ? 0.0
                : margin_sum / static_cast<double>(soft.bit_margins.size());
      } else {
        ps.bits = integrate_states(labels.states);
      }
    } else {
      const std::vector<EdgeState> states = classify_simple(diffs);
      ps.edge_vector = diffs.front();
      ps.bits = integrate_states(states);
    }
    return ps;
  };
  const auto decode_single = [&](std::size_t gi,
                                 std::span<const Complex> diffs,
                                 Rng& krng) -> PendingStream {
    return decode_slots_single(gi, all_slots[gi], groups[gi].step, diffs,
                               krng);
  };

  // Over-merge fallback: when a "collision" group resists separation, its
  // member edges may really belong to two distinct tags whose lattice
  // phases were close enough to fuse. If the positional residuals against
  // the joint fit are bimodal, split the group at the widest residual gap
  // and decode the halves as their own streams.
  const auto try_residual_split =
      [&](const StreamGroup& group)
      -> std::optional<std::pair<StreamGroup, StreamGroup>> {
    if (group.edge_indices.size() < 2 * sc.min_edges) return std::nullopt;
    struct Member {
      double residual;
      std::size_t k;
    };
    std::vector<Member> members;
    members.reserve(group.edge_indices.size());
    for (std::size_t k = 0; k < group.edge_indices.size(); ++k) {
      const double pos =
          static_cast<double>(edges[group.edge_indices[k]].position);
      members.push_back(
          {pos - group.position_of(group.lattice_indices[k]), k});
    }
    std::sort(members.begin(), members.end(),
              [](const Member& a, const Member& b) {
                return a.residual < b.residual;
              });
    // Widest gap with enough members on both sides.
    double best_gap = 0.0;
    std::size_t split_at = 0;
    for (std::size_t i = sc.min_edges; i + sc.min_edges <= members.size();
         ++i) {
      const double gap = members[i].residual - members[i - 1].residual;
      if (gap > best_gap) {
        best_gap = gap;
        split_at = i;
      }
    }
    if (split_at == 0 || best_gap < 2.5) return std::nullopt;

    const auto build = [&](std::size_t lo, std::size_t hi) {
      StreamGroup g;
      g.slope = group.slope;
      double mean_res = 0.0;
      std::vector<std::size_t> ks;
      for (std::size_t i = lo; i < hi; ++i) {
        mean_res += members[i].residual;
        ks.push_back(members[i].k);
      }
      mean_res /= static_cast<double>(hi - lo);
      g.intercept = group.intercept + mean_res;
      std::sort(ks.begin(), ks.end());
      for (std::size_t k : ks) {
        g.edge_indices.push_back(group.edge_indices[k]);
        g.lattice_indices.push_back(group.lattice_indices[k]);
      }
      const auto [step, residue] =
          stream_detector.estimate_step(g.lattice_indices);
      g.step = step;
      g.start_index = residue;
      return g;
    };
    return std::make_pair(build(0, split_at),
                          build(split_at, members.size()));
  };

  std::vector<PendingStream> pending;
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    const StreamGroup& group = groups[gi];
    const BoundarySlots& slots = all_slots[gi];
    if (slots.diffs.empty()) continue;

    CollisionAssessment assess;
    if (cfg.collision_recovery) {
      assess = collision_detector.assess(slots.diffs, rng);
    } else {
      assess.colliders = 1;
    }
    if (cfg.trace) {
      std::fprintf(stderr, "[lfbs]   group@%.1f: %zu boundaries colliders=%zu\n",
                   group.intercept, slots.diffs.size(), assess.colliders);
    }

    if (assess.colliders == 1) {
      pending.push_back(decode_single(gi, slots.diffs, rng));
      continue;
    }
    // Candidate component sub-steps, in joint-boundary units (shared by the
    // two- and three-way paths below).
    std::vector<std::size_t> allowed;
    for (std::int64_t m : sc.valid_steps) {
      if (m % group.step == 0) {
        allowed.push_back(static_cast<std::size_t>(m / group.step));
      }
    }
    const auto lattice_of = [](const std::vector<EdgeState>& states) {
      std::vector<std::size_t> nonzero;
      for (std::size_t i = 0; i < states.size(); ++i) {
        if (states[i] != 0) nonzero.push_back(i);
      }
      return nonzero;
    };
    const auto make_pending = [&](std::vector<bool> bits, std::size_t start,
                                  std::size_t step, Complex evec,
                                  double sigma, double margin = 0.0) {
      PendingStream ps;
      ps.slots_ref = gi;
      ps.collided = true;
      ps.start = start;
      ps.step = step;
      ps.start_sample = slots.positions[start];
      ps.rate = cfg.max_rate / static_cast<double>(group.step * step);
      ps.bits = std::move(bits);
      ps.edge_vector = evec;
      ps.snr_db = linear_to_db(std::norm(evec) /
                               std::max(2.0 * sigma * sigma, 1e-18));
      ps.edge_snr_db = slots.mean_snr(start, step);
      ps.edge_confidence = slots.mean_confidence(start, step);
      ps.path_margin = margin;
      pending.push_back(std::move(ps));
    };

    dsp::KMeansResult fit9 = std::move(assess.fit);
    if (assess.colliders >= 3) {
      // Three-way collisions are rare (P ≈ 0.018 at the paper's 16-node /
      // 100 kbps point). The paper defers them to the next epoch's fresh
      // random offsets (§3.2); as an extension we first attempt a full
      // 3-tag separation against the 27-cluster grid, then fall back to a
      // two-tag separation of the strongest components, then to deferral.
      const auto sep3 = separator.separate_three(slots.diffs, fit9);
      if (sep3.has_value() && cfg.error_correction) {
        std::vector<EdgeState> s3[3] = {sep3->states1, sep3->states2,
                                        sep3->states3};
        Complex e3[3] = {sep3->e1, sep3->e2, sep3->e3};
        for (int t = 0; t < 3; ++t) {
          if (normalize_anchor(s3[t])) e3[t] = -e3[t];
        }
        bool ok = true;
        std::size_t starts[3], steps[3];
        const std::size_t n = slots.diffs.size();
        std::vector<bool> toggles[3];
        for (int t = 0; t < 3; ++t) {
          const std::vector<std::size_t> nz = lattice_of(s3[t]);
          if (nz.empty()) {
            ok = false;
            break;
          }
          const auto [st, s0] =
              component_step(nz, n, allowed, sc.step_consensus);
          steps[t] = st;
          starts[t] = s0;
          toggles[t].assign(n, false);
          for (std::size_t k = s0; k < n; k += st) toggles[t][k] = true;
        }
        if (ok) {
          double sigma2 = 0.0;
          for (std::size_t k = 0; k < n; ++k) {
            const Complex expected = static_cast<double>(s3[0][k]) * e3[0] +
                                     static_cast<double>(s3[1][k]) * e3[1] +
                                     static_cast<double>(s3[2][k]) * e3[2];
            sigma2 += std::norm(slots.diffs[k] - expected);
          }
          const double sigma =
              std::sqrt(sigma2 / (2.0 * static_cast<double>(n)) + 1e-18);
          const auto joint = corrector.correct_joint3(
              slots.diffs, e3[0], e3[1], e3[2], toggles[0], toggles[1],
              toggles[2], sigma);
          const std::vector<bool>* levels[3] = {&joint.levels1, &joint.levels2,
                                                &joint.levels3};
          for (int t = 0; t < 3; ++t) {
            std::vector<bool> bits;
            for (std::size_t k = starts[t]; k < n; k += steps[t]) {
              bits.push_back((*levels[t])[k]);
            }
            make_pending(std::move(bits), starts[t], steps[t], e3[t], sigma,
                         joint.margin / static_cast<double>(n));
          }
          ++result.diagnostics.collision_groups;
          continue;
        }
      }
      ++result.diagnostics.unresolved_groups;
      if (slots.diffs.size() < 9) continue;
      fit9 = dsp::kmeans(slots.diffs, 9, rng, cfg.collision.kmeans);
    }

    const auto separation = separator.separate(slots.diffs, fit9);
    if (!separation.has_value()) {
      if (const auto halves = try_residual_split(group)) {
        BoundarySlots a = extract_slots(halves->first);
        BoundarySlots b = extract_slots(halves->second);
        if (!a.diffs.empty() && !b.diffs.empty()) {
          // Keep the split halves' slot positions alive for the
          // cancellation pass.
          all_slots.push_back(std::move(a));
          const std::size_t ref_a = all_slots.size() - 1;
          all_slots.push_back(std::move(b));
          const std::size_t ref_b = all_slots.size() - 1;
          pending.push_back(decode_slots_single(
              ref_a, all_slots[ref_a], halves->first.step,
              all_slots[ref_a].diffs, rng));
          pending.back().collided = true;
          pending.push_back(decode_slots_single(
              ref_b, all_slots[ref_b], halves->second.step,
              all_slots[ref_b].diffs, rng));
          pending.back().collided = true;
          ++result.diagnostics.collision_groups;
          continue;
        }
      }
      ++result.diagnostics.unresolved_groups;
      pending.push_back(decode_single(gi, slots.diffs, rng));
      continue;
    }
    ++result.diagnostics.collision_groups;

    // Anchor normalization (two-way): each tag's first toggle is its
    // rising anchor.
    std::vector<EdgeState> s1 = separation->states1;
    std::vector<EdgeState> s2 = separation->states2;
    Complex e1 = separation->e1;
    Complex e2 = separation->e2;
    if (normalize_anchor(s1)) e1 = -e1;
    if (normalize_anchor(s2)) e2 = -e2;

    // Refine (e1, e2) and the residual offset by least squares against the
    // hard assignment, then measure the noise level.
    Complex offset{};
    {
      dsp::Matrix design(slots.diffs.size(), 3);
      for (std::size_t k = 0; k < slots.diffs.size(); ++k) {
        design.at(k, 0) = static_cast<double>(s1[k]);
        design.at(k, 1) = static_cast<double>(s2[k]);
        design.at(k, 2) = 1.0;
      }
      const std::vector<Complex> coef =
          dsp::least_squares(design, slots.diffs, 1e-9);
      if (coef.size() == 3) {
        const double floor = 0.2 * std::min(std::abs(e1), std::abs(e2));
        if (std::abs(coef[0]) > floor && std::abs(coef[1]) > floor) {
          e1 = coef[0];
          e2 = coef[1];
          offset = coef[2];
        }
      }
    }
    double sigma2 = 0.0;
    for (std::size_t k = 0; k < slots.diffs.size(); ++k) {
      const Complex expected = static_cast<double>(s1[k]) * e1 +
                               static_cast<double>(s2[k]) * e2 + offset;
      sigma2 += std::norm(slots.diffs[k] - expected);
    }
    const double sigma = std::sqrt(
        sigma2 / (2.0 * static_cast<double>(slots.diffs.size())) + 1e-18);

    // Per-component bit lattices from the hard states.
    const std::vector<std::size_t> nz1 = lattice_of(s1);
    const std::vector<std::size_t> nz2 = lattice_of(s2);
    if (nz1.empty() || nz2.empty()) {
      ++result.diagnostics.unresolved_groups;
      pending.push_back(decode_single(gi, slots.diffs, rng));
      continue;
    }
    const auto [step1, start1] =
        component_step(nz1, s1.size(), allowed, sc.step_consensus);
    const auto [step2, start2] =
        component_step(nz2, s2.size(), allowed, sc.step_consensus);

    if (cfg.error_correction) {
      // Joint 4-state Viterbi over both tags' levels.
      const std::size_t n = slots.diffs.size();
      std::vector<bool> toggle1(n, false), toggle2(n, false);
      for (std::size_t k = start1; k < n; k += step1) toggle1[k] = true;
      for (std::size_t k = start2; k < n; k += step2) toggle2[k] = true;
      std::vector<Complex> centered(slots.diffs.begin(), slots.diffs.end());
      for (Complex& z : centered) z -= offset;
      const ErrorCorrector::JointResult joint =
          corrector.correct_joint(centered, e1, e2, toggle1, toggle2, sigma);
      std::vector<bool> bits1, bits2;
      for (std::size_t k = start1; k < n; k += step1)
        bits1.push_back(joint.levels1[k]);
      for (std::size_t k = start2; k < n; k += step2)
        bits2.push_back(joint.levels2[k]);
      make_pending(std::move(bits1), start1, step1, e1, sigma,
                   joint.margin / static_cast<double>(n));
      make_pending(std::move(bits2), start2, step2, e2, sigma,
                   joint.margin / static_cast<double>(n));
    } else {
      make_pending(integrate_states(subsample_states(s1, start1, step1)),
                   start1, step1, e1, sigma);
      make_pending(integrate_states(subsample_states(s2, start2, step2)),
                   start2, step2, e2, sigma);
    }
  }

  // --- Stage 6: framing ----------------------------------------------------
  const auto finalize = [&](const PendingStream& ps) {
    DecodedStream stream;
    stream.start_sample = ps.start_sample;
    stream.rate = ps.rate;
    stream.collided = ps.collided;
    stream.edge_vector = ps.edge_vector;
    stream.snr_db = ps.snr_db;
    if (cfg.robustness.enabled) {
      stream.confidence.edge_snr_db = ps.edge_snr_db;
      stream.confidence.edge_confidence = ps.edge_confidence;
      stream.confidence.path_margin = ps.path_margin;
      stream.confidence.cluster_separation = ps.cluster_separation;
      stream.confidence.erasures = ps.erasures;
    }
    stream.bits = ps.bits;
    trim_trailing_zeros(stream.bits, cfg.frame.frame_bits());
    stream.frames = protocol::parse_stream(stream.bits, cfg.frame);
    // A missed or spurious edge can slip the bit stream and poison every
    // later frame of the rigid parse; re-scan with CRC resynchronization
    // and keep whichever recovers more frames.
    std::size_t ok = 0;
    for (const auto& f : stream.frames) {
      if (f.valid()) ++ok;
    }
    if (ok < stream.frames.size()) {
      auto rescued = protocol::scan_frames(stream.bits, cfg.frame);
      if (rescued.size() > ok) stream.frames = std::move(rescued);
    }
    return stream;
  };
  const auto valid_frames = [](const DecodedStream& s) {
    std::size_t n = 0;
    for (const auto& f : s.frames) {
      if (f.valid()) ++n;
    }
    return n;
  };

  std::vector<DecodedStream> streams;
  streams.reserve(pending.size());
  for (const PendingStream& ps : pending) streams.push_back(finalize(ps));

  // --- Stage 7: transient-interference cancellation ------------------------
  // Two streams whose offsets drift *through* each other mid-epoch corrupt a
  // burst of boundaries (the foreign edge sits inside the measurement span
  // for tens of bits). For CRC-failed frames, subtract the decoded edge
  // contributions of CRC-valid frames of other streams at nearby boundary
  // positions and re-decode. Two rounds: streams repaired in round one can
  // donate their contributions in round two.
  if (cfg.collision_recovery && cfg.error_correction &&
      cfg.interference_cancellation) {
    const double zone = group_tolerance + 1.5;
    const std::size_t frame_bits = cfg.frame.frame_bits();
    for (int round = 0; round < 2; ++round) {
      struct Contribution {
        double position;
        Complex vector;
        std::size_t stream;
      };
      std::vector<Contribution> confident;
      for (std::size_t si = 0; si < streams.size(); ++si) {
        const PendingStream& ps = pending[si];
        const BoundarySlots& slots = all_slots[ps.slots_ref];
        // Contribute only boundaries inside CRC-valid frames: bits decoded
        // elsewhere are not trustworthy.
        for (std::size_t fi = 0; fi < streams[si].frames.size(); ++fi) {
          if (!streams[si].frames[fi].valid()) continue;
          const std::size_t bit_lo = fi * frame_bits;
          const std::size_t bit_hi =
              std::min(ps.bits.size(), (fi + 1) * frame_bits);
          bool prev = bit_lo == 0 ? false : ps.bits[bit_lo - 1];
          for (std::size_t j = bit_lo; j < bit_hi; ++j) {
            const std::size_t slot = ps.start + j * ps.step;
            if (slot >= slots.positions.size()) break;
            const int state =
                static_cast<int>(ps.bits[j]) - static_cast<int>(prev);
            prev = ps.bits[j];
            if (state != 0) {
              confident.push_back({slots.positions[slot],
                                   static_cast<double>(state) * ps.edge_vector,
                                   si});
            }
          }
        }
      }
      std::sort(confident.begin(), confident.end(),
                [](const Contribution& a, const Contribution& b) {
                  return a.position < b.position;
                });

      bool any_repaired = false;
      for (std::size_t si = 0; si < streams.size(); ++si) {
        if (pending[si].collided) continue;  // jointly decoded already
        if (streams[si].frames.empty()) continue;
        if (valid_frames(streams[si]) == streams[si].frames.size()) continue;
        const PendingStream& ps = pending[si];
        const BoundarySlots& slots = all_slots[ps.slots_ref];
        std::vector<Complex> corrected(slots.diffs.begin(), slots.diffs.end());
        bool touched = false;
        for (std::size_t k = 0; k < corrected.size(); ++k) {
          const double pos = slots.positions[k];
          auto it = std::lower_bound(
              confident.begin(), confident.end(), pos - zone,
              [](const Contribution& c, double v) { return c.position < v; });
          for (; it != confident.end() && it->position <= pos + zone; ++it) {
            if (it->stream == si) continue;
            corrected[k] -= it->vector;
            touched = true;
          }
        }
        if (!touched) continue;
        Rng krng(cfg.seed ^ (0x9e37ull + si + 131 * round));
        DecodedStream redone = finalize(decode_slots_single(
            ps.slots_ref, all_slots[ps.slots_ref],
            static_cast<std::int64_t>(
                std::llround(cfg.max_rate / ps.rate)),
            corrected, krng));
        if (valid_frames(redone) > valid_frames(streams[si])) {
          streams[si] = std::move(redone);
          any_repaired = true;
        }
      }
      if (!any_repaired) break;
    }
  }

  for (const DecodedStream& s : streams) {
    result.diagnostics.erasures += s.confidence.erasures;
  }
  result.streams = std::move(streams);
  return result;
}

namespace {

std::size_t stream_valid_frames(const DecodedStream& s) {
  std::size_t n = 0;
  for (const auto& f : s.frames) {
    if (f.valid()) ++n;
  }
  return n;
}

std::size_t total_valid_frames(const DecodeResult& r) {
  std::size_t n = 0;
  for (const DecodedStream& s : r.streams) n += stream_valid_frames(s);
  return n;
}

/// Fallback fires only when a pass recovered *nothing* CRC-valid — the
/// "stream silently vanished" failure the ladder exists for. Partial CRC
/// failures are left alone: re-decoding a mostly-healthy capture with
/// degraded settings trades known-good structure (window seams, collision
/// assignments) for noise, and chronic partial failure is the health
/// ledger's and rate controller's job, not the demodulator's.
bool needs_fallback(const DecodeResult& r) {
  return total_valid_frames(r) == 0;
}

}  // namespace

DecodeResult LfDecoder::decode(const signal::SampleBuffer& buffer) const {
  DecodeResult result = decode_pass(buffer, config_);
  if (!config_.robustness.enabled || !config_.robustness.fallback) {
    return result;
  }
  if (buffer.empty() || !needs_fallback(result)) return result;

  // The Fig 9 degradation ladder, cheapest first. Later rungs deliberately
  // shed machinery (error correction, IQ separation) or relax detection —
  // each result is only trusted where the CRC agrees.
  struct Rung {
    FallbackStage stage;
    DecoderConfig cfg;
  };
  std::vector<Rung> ladder;
  {
    DecoderConfig c = config_;
    c.seed = config_.seed ^ 0xa5a5f00d5eedULL;  // perturbed k-means restarts
    ladder.push_back({FallbackStage::kReseeded, std::move(c)});
  }
  {
    DecoderConfig c = config_;
    c.error_correction = false;
    c.interference_cancellation = false;
    ladder.push_back({FallbackStage::kNoErrorCorrection, std::move(c)});
  }
  {
    DecoderConfig c = config_;
    c.collision_recovery = false;
    c.error_correction = false;
    c.interference_cancellation = false;
    ladder.push_back({FallbackStage::kEdgeOnly, std::move(c)});
  }
  for (const double scale : {0.65, 0.45}) {
    // Weak-edge re-detection: a fading channel pushes edges under the
    // nominal threshold, and the whole stream silently vanishes. Re-detect
    // with a lowered, adaptive (blockwise) threshold; the full chain then
    // runs on whatever appears, and the CRC arbitrates.
    DecoderConfig c = config_;
    c.edge.adaptive_threshold = true;
    c.edge.threshold_sigma = std::max(config_.robustness.relaxed_floor_sigma,
                                      config_.edge.threshold_sigma * scale);
    ladder.push_back({FallbackStage::kRelaxedDetection, std::move(c)});
  }

  // Match fallback streams to primary ones by sample-extent overlap: a
  // degraded re-detect of the same tag can shift the anchor by several bit
  // periods, so anchor proximity alone would mistake it for a new stream
  // and publish the tag twice.
  const double fs = buffer.sample_rate();
  const auto extent = [&](const DecodedStream& s) {
    const double len =
        s.rate > 0.0 ? static_cast<double>(s.bits.size()) * fs / s.rate : 0.0;
    return std::pair<double, double>(s.start_sample, s.start_sample + len);
  };
  // Fabrication guard for streams the primary pass never saw: a CRC-valid
  // frame must appear in the rigid anchor-aligned parse. scan_frames tries
  // every bit offset, which on a noise-only "stream" is thousands of
  // CRC-collision lottery tickets; the rigid parse only has L/frame_bits.
  const auto rigidly_valid = [&](const DecodedStream& s) {
    for (const auto& f : protocol::parse_stream(s.bits, config_.frame)) {
      if (f.valid()) return true;
    }
    return false;
  };
  static obs::Counter& fb_passes =
      obs::metrics().counter("core.fallback_passes");
  static obs::Counter& fb_recoveries =
      obs::metrics().counter("core.fallback_recoveries");
  for (const Rung& rung : ladder) {
    if (!needs_fallback(result)) break;
    LFBS_OBS_SPAN(rung_span, "fallback_pass", "core");
    rung_span.attr("stage", static_cast<double>(rung.stage));
    DecodeResult alt = decode_pass(buffer, rung.cfg);
    ++result.diagnostics.fallback_passes;
    fb_passes.add();
    for (DecodedStream& cand : alt.streams) {
      if (stream_valid_frames(cand) == 0) continue;  // CRC gate
      cand.confidence.stage = rung.stage;
      const auto [clo, chi] = extent(cand);
      DecodedStream* match = nullptr;
      bool overlapped = false;
      double best_overlap = 0.0;
      for (DecodedStream& have : result.streams) {
        const auto [hlo, hhi] = extent(have);
        const double shorter = std::min(chi - clo, hhi - hlo);
        if (shorter <= 0.0) continue;
        const double overlap =
            (std::min(chi, hhi) - std::max(clo, hlo)) / shorter;
        if (overlap <= 0.5) continue;
        overlapped = true;
        // Co-transmitting tags overlap in time too; the edge vector (the
        // tag's channel coefficient, polarity-tolerant) is the identity
        // key, exactly as in the window stitcher.
        const double direct = std::abs(cand.edge_vector - have.edge_vector);
        const double flipped = std::abs(cand.edge_vector + have.edge_vector);
        const double vscale = std::max(std::abs(have.edge_vector), 1e-12);
        if (std::min(direct, flipped) > 0.5 * vscale) continue;
        if (overlap > best_overlap) {
          best_overlap = overlap;
          match = &have;
        }
      }
      if (match == nullptr && overlapped) {
        // Overlaps live streams but matches none of their channel vectors:
        // most likely a re-decode of their unseparated mixture. Publishing
        // it would duplicate or fabricate — drop it.
        continue;
      }
      if (match == nullptr) {
        // A stream the primary pass never saw (e.g. edges below the nominal
        // threshold) — recovered outright, if the rigid parse agrees.
        if (!rigidly_valid(cand)) continue;
        result.streams.push_back(std::move(cand));
        ++result.diagnostics.fallback_recoveries;
        fb_recoveries.add();
      } else if (stream_valid_frames(cand) > stream_valid_frames(*match)) {
        *match = std::move(cand);
        ++result.diagnostics.fallback_recoveries;
        fb_recoveries.add();
      }
    }
  }
  std::sort(result.streams.begin(), result.streams.end(),
            [](const DecodedStream& a, const DecodedStream& b) {
              return a.start_sample < b.start_sample;
            });
  return result;
}

}  // namespace lfbs::core

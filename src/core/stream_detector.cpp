#include "core/stream_detector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>

#include "common/check.h"

namespace lfbs::core {

namespace {

/// Incremental least-squares fit of position = intercept + slope * n.
struct LatticeFit {
  double sn = 0.0, sn2 = 0.0, sp = 0.0, snp = 0.0;
  std::size_t count = 0;

  void add(double n, double pos) {
    sn += n;
    sn2 += n * n;
    sp += pos;
    snp += n * pos;
    ++count;
  }

  /// Returns false while the fit is under-determined (fewer than 2 distinct
  /// abscissae).
  bool solve(double* intercept, double* slope) const {
    if (count < 2) return false;
    const double denom = static_cast<double>(count) * sn2 - sn * sn;
    if (std::abs(denom) < 1e-9) return false;
    *slope = (static_cast<double>(count) * snp - sn * sp) / denom;
    *intercept = (sp - *slope * sn) / static_cast<double>(count);
    return true;
  }
};

struct WorkingGroup {
  StreamGroup group;
  LatticeFit fit;
  double last_position = 0.0;
};

}  // namespace

StreamDetector::StreamDetector(StreamDetectorConfig config)
    : config_(std::move(config)) {
  LFBS_CHECK(config_.lattice_period > 1.0);
  LFBS_CHECK(config_.base_tolerance > 0.0);
  LFBS_CHECK(config_.min_edges >= 1);
  LFBS_CHECK(config_.step_consensus > 0.5 && config_.step_consensus <= 1.0);
}

std::vector<StreamGroup> StreamDetector::detect(
    std::span<const signal::Edge> edges) const {
  std::vector<WorkingGroup> working;

  for (std::size_t i = 0; i < edges.size(); ++i) {
    const double pos = static_cast<double>(edges[i].position);

    // Find the group whose lattice best explains this edge.
    double best_residual = std::numeric_limits<double>::infinity();
    WorkingGroup* best = nullptr;
    std::int64_t best_n = 0;
    for (WorkingGroup& wg : working) {
      const double rel = (pos - wg.group.intercept) / wg.group.slope;
      const auto n = static_cast<std::int64_t>(std::llround(rel));
      if (n < 0) continue;
      const double predicted = wg.group.position_of(n);
      const double residual = std::abs(pos - predicted);
      const double gap = pos - wg.last_position;
      const double tol = config_.base_tolerance +
                         config_.drift_tolerance_ppm * 1e-6 * std::max(gap, 0.0);
      if (residual <= tol && residual < best_residual) {
        best_residual = residual;
        best = &wg;
        best_n = n;
      }
    }

    if (best != nullptr) {
      best->group.edge_indices.push_back(i);
      best->group.lattice_indices.push_back(best_n);
      best->fit.add(static_cast<double>(best_n), pos);
      best->last_position = pos;
      double intercept = 0.0, slope = 0.0;
      if (best->fit.solve(&intercept, &slope)) {
        // Clamp the fitted slope to the drift budget so one outlier cannot
        // derail the lattice.
        const double lo =
            config_.lattice_period * (1.0 - config_.drift_tolerance_ppm * 1e-6);
        const double hi =
            config_.lattice_period * (1.0 + config_.drift_tolerance_ppm * 1e-6);
        best->group.slope = std::clamp(slope, lo, hi);
        best->group.intercept = intercept;
      }
    } else {
      WorkingGroup wg;
      wg.group.intercept = pos;
      wg.group.slope = config_.lattice_period;
      wg.group.edge_indices.push_back(i);
      wg.group.lattice_indices.push_back(0);
      wg.fit.add(0.0, pos);
      wg.last_position = pos;
      working.push_back(std::move(wg));
    }
  }

  // Merge pass: collapse groups whose lattice phases (mod the lattice
  // period) nearly coincide. Splinters and near-collisions become one
  // group; downstream stages treat multi-tag groups as collisions.
  const auto phase_distance = [&](const WorkingGroup& a,
                                  const WorkingGroup& b) {
    const double period = config_.lattice_period;
    double d = std::fmod(b.group.intercept - a.group.intercept, period);
    if (d < 0) d += period;
    return std::min(d, period - d);
  };
  bool merged = true;
  while (merged) {
    merged = false;
    for (std::size_t i = 0; i < working.size() && !merged; ++i) {
      for (std::size_t j = i + 1; j < working.size() && !merged; ++j) {
        if (phase_distance(working[i], working[j]) > config_.merge_radius) {
          continue;
        }
        // Rebuild group i from the union of both edge sets, re-deriving
        // lattice indices against the earlier group's phase.
        WorkingGroup& a = working[i];
        WorkingGroup& b = working[j];
        const double base = std::min(a.group.intercept, b.group.intercept);
        const double slope = a.group.slope;
        std::vector<std::size_t> union_edges = a.group.edge_indices;
        union_edges.insert(union_edges.end(), b.group.edge_indices.begin(),
                           b.group.edge_indices.end());
        std::sort(union_edges.begin(), union_edges.end());
        WorkingGroup fused;
        fused.group.intercept = base;
        fused.group.slope = slope;
        for (std::size_t ei : union_edges) {
          const double pos = static_cast<double>(edges[ei].position);
          const auto n = std::max<std::int64_t>(
              0, static_cast<std::int64_t>(std::llround((pos - base) / slope)));
          fused.group.edge_indices.push_back(ei);
          fused.group.lattice_indices.push_back(n);
          fused.fit.add(static_cast<double>(n), pos);
          fused.last_position = pos;
        }
        double intercept = 0.0, new_slope = 0.0;
        if (fused.fit.solve(&intercept, &new_slope)) {
          const double lo = config_.lattice_period *
                            (1.0 - config_.drift_tolerance_ppm * 1e-6);
          const double hi = config_.lattice_period *
                            (1.0 + config_.drift_tolerance_ppm * 1e-6);
          fused.group.slope = std::clamp(new_slope, lo, hi);
          fused.group.intercept = intercept;
        }
        a = std::move(fused);
        working.erase(working.begin() + static_cast<std::ptrdiff_t>(j));
        merged = true;
      }
    }
  }

  // Outlier prune: a spurious edge that *seeded* a group drags its lattice
  // phase off the true stream. With the full fit now dominated by the real
  // edges, members with large residuals are dropped and the group is
  // re-anchored at its first surviving edge.
  const double prune_tol =
      std::max(config_.base_tolerance, config_.merge_radius) + 1.0;
  for (WorkingGroup& wg : working) {
    if (wg.group.edge_indices.size() < 2 * config_.min_edges) continue;
    WorkingGroup pruned;
    pruned.group.intercept = wg.group.intercept;
    pruned.group.slope = wg.group.slope;
    bool dropped = false;
    for (std::size_t k = 0; k < wg.group.edge_indices.size(); ++k) {
      const double pos =
          static_cast<double>(edges[wg.group.edge_indices[k]].position);
      const std::int64_t n = wg.group.lattice_indices[k];
      if (std::abs(pos - wg.group.position_of(n)) > prune_tol) {
        dropped = true;
        continue;
      }
      pruned.group.edge_indices.push_back(wg.group.edge_indices[k]);
      pruned.group.lattice_indices.push_back(n);
      pruned.fit.add(static_cast<double>(n), pos);
      pruned.last_position = pos;
    }
    if (!dropped || pruned.group.edge_indices.size() < config_.min_edges) {
      continue;
    }
    // Re-anchor lattice indices at the first surviving edge.
    const std::int64_t base = pruned.group.lattice_indices.front();
    for (std::int64_t& n : pruned.group.lattice_indices) n -= base;
    pruned.fit = {};
    for (std::size_t k = 0; k < pruned.group.edge_indices.size(); ++k) {
      pruned.fit.add(
          static_cast<double>(pruned.group.lattice_indices[k]),
          static_cast<double>(edges[pruned.group.edge_indices[k]].position));
    }
    double intercept = 0.0, slope = 0.0;
    if (pruned.fit.solve(&intercept, &slope)) {
      const double lo =
          config_.lattice_period * (1.0 - config_.drift_tolerance_ppm * 1e-6);
      const double hi =
          config_.lattice_period * (1.0 + config_.drift_tolerance_ppm * 1e-6);
      pruned.group.slope = std::clamp(slope, lo, hi);
      pruned.group.intercept = intercept;
    }
    wg = std::move(pruned);
  }

  // Leading-edge strength trim: the first edge of a group is treated as
  // the stream's anchor downstream, so a weak spurious edge that happens to
  // land on the lattice a few slots early would shift and sign-flip the
  // whole decode. Real edges share the tag's reflection magnitude; noise
  // flukes sit just above the detection threshold.
  for (WorkingGroup& wg : working) {
    if (wg.group.edge_indices.size() < 2 * config_.min_edges) continue;
    std::vector<double> strengths;
    strengths.reserve(wg.group.edge_indices.size());
    for (std::size_t ei : wg.group.edge_indices) {
      strengths.push_back(edges[ei].strength);
    }
    std::nth_element(strengths.begin(),
                     strengths.begin() + strengths.size() / 2,
                     strengths.end());
    const double floor = 0.5 * strengths[strengths.size() / 2];
    std::size_t drop = 0;
    while (drop + config_.min_edges < wg.group.edge_indices.size() &&
           edges[wg.group.edge_indices[drop]].strength < floor) {
      ++drop;
    }
    if (drop == 0) continue;
    wg.group.edge_indices.erase(wg.group.edge_indices.begin(),
                                wg.group.edge_indices.begin() +
                                    static_cast<std::ptrdiff_t>(drop));
    const std::int64_t base = wg.group.lattice_indices[drop];
    wg.group.lattice_indices.erase(wg.group.lattice_indices.begin(),
                                   wg.group.lattice_indices.begin() +
                                       static_cast<std::ptrdiff_t>(drop));
    for (std::int64_t& n : wg.group.lattice_indices) n -= base;
    wg.group.intercept += wg.group.slope * static_cast<double>(base);
  }

  std::vector<StreamGroup> result;
  for (WorkingGroup& wg : working) {
    if (wg.group.edge_indices.size() < config_.min_edges) continue;
    const std::vector<SubStream> subs =
        split_streams(wg.group.lattice_indices);
    for (const SubStream& sub : subs) {
      if (sub.members.size() < config_.min_edges) continue;
      StreamGroup g;
      g.intercept = wg.group.intercept;
      g.slope = wg.group.slope;
      g.step = sub.step;
      g.start_index = sub.start;
      g.edge_indices.reserve(sub.members.size());
      g.lattice_indices.reserve(sub.members.size());
      for (std::size_t m : sub.members) {
        g.edge_indices.push_back(wg.group.edge_indices[m]);
        g.lattice_indices.push_back(wg.group.lattice_indices[m]);
      }
      result.push_back(std::move(g));
    }
  }
  std::sort(result.begin(), result.end(),
            [](const StreamGroup& a, const StreamGroup& b) {
              return a.intercept < b.intercept;
            });
  return result;
}

std::vector<StreamDetector::SubStream> StreamDetector::split_streams(
    std::span<const std::int64_t> indices) const {
  LFBS_CHECK(!indices.empty());
  struct Frame {
    std::vector<std::size_t> members;
    std::size_t depth;
  };
  std::vector<SubStream> out;
  std::vector<Frame> stack;
  {
    std::vector<std::size_t> all(indices.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    stack.push_back({std::move(all), 0});
  }

  std::vector<std::int64_t> steps = config_.valid_steps;
  if (steps.empty()) steps.push_back(1);
  std::sort(steps.begin(), steps.end(), std::greater<>());

  // A real NRZ stream toggles at roughly half of its bit boundaries, so its
  // edges should occupy a healthy fraction of its lattice slots. Hypotheses
  // that leave the lattice nearly empty are artifacts (e.g. two co-phased
  // slow tags whose residues happen to share a parity).
  constexpr double kMinOccupancy = 0.15;
  const auto occupancy = [&](const std::vector<std::size_t>& members,
                             std::int64_t step) {
    std::int64_t lo = indices[members.front()], hi = lo;
    for (std::size_t m : members) {
      lo = std::min(lo, indices[m]);
      hi = std::max(hi, indices[m]);
    }
    const double slots = static_cast<double>(hi - lo) /
                             static_cast<double>(step) + 1.0;
    return static_cast<double>(members.size()) / slots;
  };

  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    const auto& members = frame.members;

    // Hypothesis A: a single stream — the largest valid step whose dominant
    // residue class has consensus; "strong" when its lattice occupancy is
    // also plausible for an NRZ stream.
    std::int64_t single_step = 1;
    bool single_strong = false;
    std::vector<std::size_t> single_members = members;
    std::vector<std::size_t> single_leftover;
    for (std::int64_t step : steps) {
      std::map<std::int64_t, std::vector<std::size_t>> classes;
      for (std::size_t m : members) {
        classes[((indices[m] % step) + step) % step].push_back(m);
      }
      auto dominant = classes.begin();
      for (auto it = classes.begin(); it != classes.end(); ++it) {
        if (it->second.size() > dominant->second.size()) dominant = it;
      }
      // Consensus over *structured* edges only: classes too small to be a
      // stream are background (spurious edges, or a faster tag drifting
      // through this phase group mid-epoch) and must not veto a clear
      // periodic stream.
      std::size_t structured_total = 0;
      for (const auto& [residue, cls] : classes) {
        if (cls.size() >= config_.min_edges) structured_total += cls.size();
      }
      // The dominant class must be a meaningful fraction of the *whole*
      // group (not just of the structured subset): a fast stream's edges
      // spread over many residues, and a chance 3-edge alignment must not
      // hijack it. Thin unstructured background (spurious edges, a faster
      // tag drifting through this phase mid-epoch) is tolerated.
      const std::size_t dominant_floor = std::max<std::size_t>(
          config_.min_edges,
          static_cast<std::size_t>(0.15 * static_cast<double>(members.size())));
      if (dominant->second.size() < dominant_floor) continue;
      const double share = static_cast<double>(dominant->second.size()) /
                           static_cast<double>(std::max<std::size_t>(
                               structured_total, 1));
      if (share < config_.step_consensus) continue;
      const bool strong = occupancy(dominant->second, step) >= kMinOccupancy;
      if (!single_strong || strong) {
        single_step = step;
        single_members = dominant->second;
        single_leftover.clear();
        for (const auto& [residue, cls] : classes) {
          if (residue == dominant->first) continue;
          single_leftover.insert(single_leftover.end(), cls.begin(),
                                 cls.end());
        }
      }
      if (strong) {
        single_strong = true;
        break;  // largest strong step wins outright
      }
    }

    // Hypothesis B (only when no strong single stream exists): several
    // co-phased slower streams. Two tags can share a phase modulo the
    // max-rate period yet occupy different lattice slots — separate
    // streams, not a collision.
    if (!single_strong && frame.depth < 4) {
      std::int64_t split_step = 0;
      std::size_t split_class_count = SIZE_MAX;
      std::vector<std::vector<std::size_t>> split_classes;
      for (std::int64_t step : steps) {
        if (step <= 1) break;
        std::map<std::int64_t, std::vector<std::size_t>> classes;
        for (std::size_t m : members) {
          classes[((indices[m] % step) + step) % step].push_back(m);
        }
        std::vector<std::vector<std::size_t>> big;
        std::size_t covered = 0;
        for (auto& [residue, cls] : classes) {
          if (cls.size() >= config_.min_edges &&
              occupancy(cls, step) >= kMinOccupancy) {
            covered += cls.size();
            big.push_back(std::move(cls));
          }
        }
        const double coverage = static_cast<double>(covered) /
                                static_cast<double>(members.size());
        if (big.size() >= 2 && big.size() <= 4 && coverage >= 0.9 &&
            big.size() * 2 <= static_cast<std::size_t>(step) &&
            big.size() < split_class_count) {
          split_step = step;
          split_class_count = big.size();
          split_classes = std::move(big);
        }
      }
      if (split_step > 0) {
        for (auto& cls : split_classes) {
          stack.push_back({std::move(cls), frame.depth + 1});
        }
        continue;
      }
    }

    // Accept the single-stream hypothesis; recurse on any leftover class
    // that might be a sparser co-phased stream. Step-1 emissions must look
    // like a stream (healthy slot occupancy): thin uniform residue is
    // crossing contamination or noise, not a tag.
    if (single_step == 1 &&
        (members.size() < 6 || occupancy(single_members, 1) < 0.1) &&
        frame.depth > 0) {
      continue;
    }
    SubStream sub;
    sub.step = single_step;
    sub.start = indices[single_members.front()];
    sub.members = std::move(single_members);
    out.push_back(std::move(sub));
    if (single_leftover.size() >= config_.min_edges && frame.depth < 4) {
      stack.push_back({std::move(single_leftover), frame.depth + 1});
    }
  }
  return out;
}

std::pair<std::int64_t, std::int64_t> StreamDetector::estimate_step(
    std::span<const std::int64_t> indices) const {
  LFBS_CHECK(!indices.empty());
  std::vector<std::int64_t> steps = config_.valid_steps;
  if (steps.empty()) {
    // Free-form: gcd of index differences.
    std::int64_t g = 0;
    for (std::size_t i = 1; i < indices.size(); ++i) {
      g = std::gcd(g, indices[i] - indices.front());
    }
    const std::int64_t step = std::max<std::int64_t>(g, 1);
    return {step, indices.front() % step};
  }
  std::sort(steps.begin(), steps.end(), std::greater<>());
  for (std::int64_t step : steps) {
    // Largest valid step with residue-class consensus wins: a slower lattice
    // explains the data with fewer free slots, so prefer it when consistent.
    std::map<std::int64_t, std::size_t> residues;
    for (std::int64_t n : indices) ++residues[((n % step) + step) % step];
    const auto dominant = std::max_element(
        residues.begin(), residues.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    const double share = static_cast<double>(dominant->second) /
                         static_cast<double>(indices.size());
    if (share >= config_.step_consensus) {
      // Anchor the lattice at the first index in the dominant class.
      for (std::int64_t n : indices) {
        if (((n % step) + step) % step == dominant->first) return {step, n};
      }
    }
  }
  return {1, indices.front()};
}

}  // namespace lfbs::core

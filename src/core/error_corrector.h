#pragma once

#include <span>
#include <vector>

#include "common/units.h"
#include "core/bit_decoder.h"

namespace lfbs::core {

/// Soft-decision controls for ErrorCorrector::correct_soft. (Free struct so
/// it is complete where member default arguments need it.)
struct SoftDecisionConfig {
  /// Boundaries whose edge confidence falls below this become erasures.
  double erasure_threshold = 0.25;
  /// Erasure emission: the per-state Gaussian with its sigmas inflated by
  /// this factor — wide enough that transitions and priors dominate, but
  /// the observation still breaks exact ties deterministically.
  double erasure_sigma_scale = 8.0;
};

/// Soft output of an erasure-aware correction pass.
struct SoftDecisionResult {
  std::vector<bool> bits;
  /// Per-boundary Viterbi score margins (log-likelihood-ratio proxies):
  /// how decisively each step's state beat the runner-up.
  std::vector<double> bit_margins;
  /// Terminal margin of the winning path over the best alternative.
  double path_margin = 0.0;
  double log_score = 0.0;
  std::size_t erasures = 0;  ///< boundaries demoted to erasures
};

/// Viterbi error correction (§3.5, Fig 6).
///
/// Certain edge sequences are physically impossible — a rising edge can
/// never follow a rising edge. The corrector runs a 4-state Viterbi decoder
/// over the boundary differentials:
///
///   ↑   rising edge            (level becomes 1)
///   ↓   falling edge           (level becomes 0)
///   −₊  no edge, level is 1    (last edge was rising)
///   −₋  no edge, level is 0    (last edge was falling)
///
/// with the transition constraints of a binary level signal — from ↑ or −₊
/// (level 1) only ↓ or −₊ can follow; from ↓ or −₋ (level 0) only ↑ or −₋ —
/// and 2-D Gaussian emissions fit to the observed IQ clusters. The most
/// likely state path directly yields the bit sequence, recovering missed
/// and spurious edges without any tag-side coding.
class ErrorCorrector {
 public:
  struct Config {
    /// Prior probability that a boundary carries an edge (bits flip half
    /// the time for random payloads).
    double edge_probability = 0.5;
    /// Floor on fitted cluster sigmas.
    double min_sigma = 1e-6;
  };

  explicit ErrorCorrector(Config config);
  ErrorCorrector() : ErrorCorrector(Config{}) {}

  /// Corrects a labelled single stream: returns the maximum-likelihood bit
  /// sequence given the boundary differentials and the cluster geometry.
  std::vector<bool> correct(std::span<const Complex> points,
                            const ThreeClusterLabels& labels) const;

  using SoftConfig = SoftDecisionConfig;
  using SoftResult = SoftDecisionResult;

  /// Erasure-aware variant of correct(): boundaries whose confidence (from
  /// EdgeDetector, in [0,1]; boundaries with no detected edge pass 1.0 —
  /// "confidently no edge") is below the erasure threshold are decoded with
  /// wide Gaussians so the 4-state machine's transition structure fills
  /// them in. With an empty `confidences` span the bit sequence is
  /// identical to correct().
  SoftResult correct_soft(std::span<const Complex> points,
                          const ThreeClusterLabels& labels,
                          std::span<const double> confidences,
                          const SoftConfig& soft = SoftConfig()) const;

  /// Corrects a separated collision component. `points` are the component's
  /// boundary differentials with the *other* component's assigned
  /// contribution subtracted; `edge_vector` is the component's ±e.
  std::vector<bool> correct_component(std::span<const Complex> points,
                                      Complex edge_vector) const;

  /// Joint decode of a two-tag collision: a 4-state Viterbi over the level
  /// pair (l1, l2) whose transition from (l1,l2) to (l1',l2') emits
  /// (l1'-l1)·e1 + (l2'-l2)·e2 at each shared boundary. Strictly better
  /// than decoding each component against the other's hard decisions.
  ///
  /// `toggle1[k]` / `toggle2[k]` say whether the tag may change level at
  /// boundary k (false before its anchor slot and off its bit lattice, for
  /// mixed-rate collisions). `sigma` is the isotropic noise level of the
  /// differentials.
  struct JointResult {
    std::vector<bool> levels1;  ///< tag 1 level after each boundary
    std::vector<bool> levels2;
    /// Terminal Viterbi margin: winning path score minus the best
    /// alternative ending (0 when nothing else survives).
    double margin = 0.0;
  };
  JointResult correct_joint(std::span<const Complex> points, Complex e1,
                            Complex e2, const std::vector<bool>& toggle1,
                            const std::vector<bool>& toggle2,
                            double sigma) const;

  /// Three-tag extension of correct_joint: an 8-state Viterbi over the
  /// level triple (l1, l2, l3).
  struct Joint3Result {
    std::vector<bool> levels1, levels2, levels3;
    double margin = 0.0;  ///< terminal Viterbi margin, as in JointResult
  };
  Joint3Result correct_joint3(std::span<const Complex> points, Complex e1,
                              Complex e2, Complex e3,
                              const std::vector<bool>& toggle1,
                              const std::vector<bool>& toggle2,
                              const std::vector<bool>& toggle3,
                              double sigma) const;

 private:
  SoftResult run(std::span<const Complex> points, Complex rising,
                 Complex falling, Complex constant,
                 std::span<const Complex> rising_pts,
                 std::span<const Complex> falling_pts,
                 std::span<const Complex> constant_pts,
                 std::span<const double> confidences,
                 const SoftConfig& soft) const;

  Config config_;
};

}  // namespace lfbs::core

#include "core/bit_decoder.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace lfbs::core {

ThreeClusterLabels label_three_clusters(std::span<const Complex> points,
                                        const dsp::KMeansResult& fit) {
  LFBS_CHECK(!points.empty());
  LFBS_CHECK(fit.centroids.size() == 3);
  LFBS_CHECK(fit.assignment.size() == points.size());

  // Constant cluster: nearest the origin.
  std::size_t constant_idx = 0;
  for (std::size_t i = 1; i < 3; ++i) {
    if (std::abs(fit.centroids[i]) < std::abs(fit.centroids[constant_idx])) {
      constant_idx = i;
    }
  }
  // Rising cluster: owns the anchor (first) point. If the anchor landed in
  // the constant cluster (a missed anchor edge), fall back to the stronger
  // remaining centroid.
  std::size_t rising_idx = fit.assignment.front();
  if (rising_idx == constant_idx) {
    rising_idx = 3;  // sentinel
    double best = -1.0;
    for (std::size_t i = 0; i < 3; ++i) {
      if (i == constant_idx) continue;
      if (std::abs(fit.centroids[i]) > best) {
        best = std::abs(fit.centroids[i]);
        rising_idx = i;
      }
    }
  }
  std::size_t falling_idx = 3;
  for (std::size_t i = 0; i < 3; ++i) {
    if (i != constant_idx && i != rising_idx) falling_idx = i;
  }
  LFBS_CHECK(falling_idx < 3);

  ThreeClusterLabels out;
  out.rising = fit.centroids[rising_idx];
  out.falling = fit.centroids[falling_idx];
  out.constant = fit.centroids[constant_idx];
  out.states.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::size_t a = fit.assignment[i];
    out.states.push_back(a == rising_idx ? 1 : (a == falling_idx ? -1 : 0));
  }
  return out;
}

std::vector<EdgeState> classify_simple(std::span<const Complex> points) {
  LFBS_CHECK(!points.empty());
  const Complex anchor = points.front();
  const double anchor_mag = std::abs(anchor);
  std::vector<EdgeState> states;
  states.reserve(points.size());
  for (const Complex& p : points) {
    if (std::abs(p) < 0.5 * anchor_mag) {
      states.push_back(0);
      continue;
    }
    // Projection onto the anchor direction decides rising vs falling.
    const double proj = p.real() * anchor.real() + p.imag() * anchor.imag();
    states.push_back(proj >= 0.0 ? 1 : -1);
  }
  return states;
}

bool normalize_anchor(std::vector<EdgeState>& states) {
  for (EdgeState s : states) {
    if (s == 0) continue;
    if (s == 1) return false;
    for (EdgeState& t : states) t = -t;
    return true;
  }
  return false;
}

std::vector<bool> integrate_states(std::span<const EdgeState> states) {
  std::vector<bool> bits;
  bits.reserve(states.size());
  bool level = false;
  for (EdgeState s : states) {
    if (s == 1) {
      level = true;
    } else if (s == -1) {
      level = false;
    }
    bits.push_back(level);
  }
  return bits;
}

std::vector<EdgeState> subsample_states(std::span<const EdgeState> states,
                                        std::size_t offset, std::size_t step) {
  LFBS_CHECK(step >= 1);
  std::vector<EdgeState> out;
  for (std::size_t i = offset; i < states.size(); i += step) {
    out.push_back(states[i]);
  }
  return out;
}

}  // namespace lfbs::core

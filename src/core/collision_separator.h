#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/units.h"
#include "dsp/kmeans.h"

namespace lfbs::core {

/// Per-boundary edge state of one tag: -1 falling, 0 constant, +1 rising.
using EdgeState = int;

/// Two-tag collision separation (§3.4, Fig 5).
///
/// The nine cluster centroids of a two-tag collision are the linear
/// combinations a·e1 + b·e2, (a, b) ∈ {-1, 0, 1}², of the two tags' edge
/// vectors. Geometrically they form a 3×3 grid: the four corners ±e1±e2,
/// the four side midpoints ±e1 and ±e2, and the origin. The separator
/// recovers e1 and e2 by finding equally spaced collinear centroid triples
/// (the parallelogram sides) and taking their midpoints — no channel
/// estimation required.
struct SeparationResult {
  Complex e1;  ///< edge vector of component 1
  Complex e2;  ///< edge vector of component 2
  /// Per-boundary states, same length as the input points.
  std::vector<EdgeState> states1;
  std::vector<EdgeState> states2;
  /// Mean distance from each point to its matched combination, as a
  /// fraction of min(|e1|, |e2|) — a separation quality figure.
  double residual = 0.0;
};

struct SeparatorConfig {
  /// A centroid counts as the midpoint of a pair when it sits within this
  /// fraction of the pair's span from the geometric midpoint.
  double midpoint_tolerance = 0.2;
  /// Maximum acceptable matching residual: |centroid - (a e1 + b e2)| must
  /// be below this fraction of min(|e1|, |e2|) for every centroid.
  double match_tolerance = 0.5;
  /// Reject when |e1| or |e2| is below this fraction of the strongest
  /// centroid (degenerate / single-tag geometry).
  double min_edge_fraction = 0.05;
};

/// Three-tag separation result (extension beyond the paper, which defers
/// three-way collisions to the next epoch): the 27 cluster centroids of a
/// 3-tag collision are the grid a·e1 + b·e2 + c·e3, (a,b,c) ∈ {-1,0,1}³,
/// projected into the IQ plane.
struct Separation3Result {
  Complex e1, e2, e3;
  std::vector<EdgeState> states1, states2, states3;
  double residual = 0.0;
};

class CollisionSeparator {
 public:
  explicit CollisionSeparator(SeparatorConfig config);

  const SeparatorConfig& config() const { return config_; }

  /// Attempts to separate a 9-cluster fit into two per-tag state sequences.
  /// `points` are the boundary differentials the fit was computed on.
  /// Returns nullopt when the geometry does not support separation (caller
  /// falls back to single-stream decoding or defers to the next epoch).
  std::optional<SeparationResult> separate(
      std::span<const Complex> points, const dsp::KMeansResult& fit) const;

  /// Attempts to separate a 27-cluster fit into three per-tag state
  /// sequences. The axis vectors ±e_k are themselves grid points, so the
  /// search tries centroid triples as (e1, e2, e3) hypotheses and keeps the
  /// one whose 27-point grid matches all centroids bijectively. Succeeds
  /// only when the three edge vectors are pairwise well-conditioned in the
  /// IQ plane; otherwise the caller falls back to two-way separation.
  std::optional<Separation3Result> separate_three(
      std::span<const Complex> points, const dsp::KMeansResult& fit) const;

 private:
  SeparatorConfig config_;
};

}  // namespace lfbs::core

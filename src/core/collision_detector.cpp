#include "core/collision_detector.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace lfbs::core {

namespace {

/// Maximum pairwise distance between the fit's centroids: the scale against
/// which the within-cluster residual is judged.
double centroid_spread(const dsp::KMeansResult& fit) {
  double spread = 0.0;
  for (std::size_t i = 0; i < fit.centroids.size(); ++i) {
    for (std::size_t j = i + 1; j < fit.centroids.size(); ++j) {
      spread = std::max(spread, std::abs(fit.centroids[i] - fit.centroids[j]));
    }
  }
  return spread;
}

double rms_residual(const dsp::KMeansResult& fit, std::size_t n) {
  return std::sqrt(fit.inertia / static_cast<double>(std::max<std::size_t>(n, 1)));
}

}  // namespace

CollisionDetector::CollisionDetector(CollisionDetectorConfig config)
    : config_(std::move(config)) {
  LFBS_CHECK(config_.min_points_per_cluster >= 1);
  LFBS_CHECK(config_.residual_fraction > 0.0);
}

CollisionAssessment CollisionDetector::assess(
    std::span<const Complex> boundary_diffs, Rng& rng) const {
  LFBS_CHECK(!boundary_diffs.empty());
  CollisionAssessment out;
  const std::size_t n = boundary_diffs.size();

  // Escalating hypothesis test, per §3.3: start from the single-stream
  // (3-cluster) hypothesis and escalate only when the fit is poor — the
  // within-cluster residual is what a second tag's edge vector inflates.
  std::vector<std::size_t> ladder = {3};
  if (n >= 9 * config_.min_points_per_cluster) ladder.push_back(9);
  if (config_.consider_three_way && n >= 27 * config_.min_points_per_cluster) {
    ladder.push_back(27);
  }

  for (std::size_t idx = 0; idx < ladder.size(); ++idx) {
    const std::size_t k = std::min(ladder[idx], n);
    dsp::KMeansResult fit = dsp::kmeans(boundary_diffs, k, rng, config_.kmeans);
    const double residual = rms_residual(fit, n);
    const double spread = centroid_spread(fit);
    out.counts.push_back(k);
    out.bic_scores.push_back(dsp::kmeans_bic(boundary_diffs, fit));
    const bool good_fit =
        spread > 0.0 && residual <= config_.residual_fraction * spread;
    const bool last = idx + 1 == ladder.size();
    if (good_fit || last) {
      out.colliders = k <= 3 ? 1 : (k == 9 ? 2 : 3);
      out.fit = std::move(fit);
      // If we ran out of ladder without a good fit, report the deepest
      // hypothesis; the pipeline treats a failed separation gracefully.
      return out;
    }
  }
  LFBS_CHECK_MSG(false, "unreachable: ladder always returns");
  return out;
}

}  // namespace lfbs::core

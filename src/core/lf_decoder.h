#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "core/collision_detector.h"
#include "core/collision_separator.h"
#include "core/decode_confidence.h"
#include "core/error_corrector.h"
#include "core/stream_detector.h"
#include "protocol/epoch.h"
#include "protocol/frame.h"
#include "signal/edge_detector.h"
#include "signal/sample_buffer.h"

namespace lfbs::core {

/// Soft-decision / degraded-mode controls (PR 3 tentpole).
struct RobustnessConfig {
  /// Compute per-stream DecodeConfidence and run the error-correction stage
  /// erasure-aware. Does not change the decoded bits of a primary pass:
  /// edges that cleared the detection threshold always sit above the
  /// erasure cutoff, so erasures only fire in degraded re-decodes.
  bool enabled = true;
  /// On CRC failure (or an empty decode), re-decode down the Fig 9 chain —
  /// perturbed k-means seeds → Edge+IQ → Edge → relaxed/adaptive detection —
  /// keeping, per stream, the best CRC-clean result. Never discards a
  /// primary stream; CRC gating prevents fabrication.
  bool fallback = true;
  /// Erasure demotion threshold and wide-Gaussian scale for the soft
  /// Viterbi pass.
  ErrorCorrector::SoftConfig soft{};
  /// The relaxed-detection rungs never drop threshold_sigma below this.
  double relaxed_floor_sigma = 2.5;
};

/// Configuration of the full LF-Backscatter reader-side decoder.
struct DecoderConfig {
  /// Valid tag bitrates (all multiples of the base rate; the evaluation set
  /// also divides max_rate, which the stream detector exploits).
  protocol::RatePlan rate_plan = protocol::RatePlan::paper_rates();
  BitRate max_rate = 100.0 * kKbps;
  protocol::FrameConfig frame{};

  /// Stage toggles, matching the Fig 9 breakdown:
  ///  - collision_recovery off  → "Edge" (time-domain separation only)
  ///  - collision_recovery on   → "Edge+IQ"
  ///  - error_correction on too → "Edge+IQ+Error"
  bool collision_recovery = true;
  bool error_correction = true;
  /// Stage 7 (extension): subtract CRC-confident streams' contributions
  /// from failed streams at transiently-contaminated boundaries and
  /// re-decode. Only active when both stages above are on.
  bool interference_cancellation = true;

  /// Edge detection; when auto_scale_edge is set the window/guard are
  /// derived from the oversampling ratio at decode time.
  signal::EdgeDetectorConfig edge{};
  bool auto_scale_edge = true;

  /// Stream grouping tolerances (see StreamDetectorConfig).
  double group_tolerance = 3.5;
  /// Groups with closer lattice phases than this merge into one collision
  /// group (see StreamDetectorConfig::merge_radius).
  double merge_radius = 5.0;
  double drift_tolerance_ppm = 400.0;
  std::size_t min_edges = 3;

  CollisionDetectorConfig collision{};
  SeparatorConfig separator{};
  ErrorCorrector::Config corrector{};

  /// Seed for k-means restarts; decoding is fully deterministic given the
  /// input buffer and this seed — including the fallback chain, whose
  /// perturbed seeds derive from this one.
  std::uint64_t seed = 0x1f5eedULL;

  /// Soft-decision confidence + degraded-mode fallback (see above).
  RobustnessConfig robustness{};

  /// Dump per-stage diagnostics to stderr (development aid).
  bool trace = false;
};

/// One decoded tag stream.
struct DecodedStream {
  double start_sample = 0.0;  ///< position of the stream's anchor edge
  BitRate rate = 0.0;         ///< estimated tag bitrate
  bool collided = false;      ///< recovered from a collision
  std::vector<bool> bits;     ///< raw decoded bits (anchor first)
  std::vector<protocol::ParsedFrame> frames;  ///< framed & CRC-checked
  /// Rising-edge IQ differential of this stream — essentially the tag's
  /// channel coefficient. Stable across an epoch, which is what the
  /// windowed decoder uses to stitch streams across processing windows.
  Complex edge_vector;
  /// Estimated per-stream SNR: edge power over the residual scatter of the
  /// boundary differentials around their assigned states. Deployments use
  /// this for §3.6 rate decisions (weak streams → lower the max rate).
  double snr_db = 0.0;
  /// Soft-decision summary: edge SNR/confidence, Viterbi margins, cluster
  /// separation, erasures, and which fallback rung produced this stream.
  /// Only meaningful when DecoderConfig::robustness.enabled.
  DecodeConfidence confidence{};
};

struct DecodeDiagnostics {
  std::size_t edges = 0;              ///< edges detected
  std::size_t groups = 0;             ///< stream groups formed
  std::size_t collision_groups = 0;   ///< groups decoded via IQ separation
  std::size_t unresolved_groups = 0;  ///< ≥3-way or failed separations
  std::size_t erasures = 0;           ///< boundaries demoted to erasures
  std::size_t fallback_passes = 0;    ///< degraded-mode re-decodes attempted
  std::size_t fallback_recoveries = 0;  ///< streams improved by a re-decode
};

struct DecodeResult {
  std::vector<DecodedStream> streams;
  DecodeDiagnostics diagnostics;

  /// All CRC-valid payloads across streams.
  std::vector<std::vector<bool>> valid_payloads() const;
  std::size_t frames_attempted() const;
  std::size_t frames_failed() const;
};

/// The LF-Backscatter decoder: edges → streams → collision separation →
/// Viterbi correction → frames. See DESIGN.md §4 for the stage walk-through.
class LfDecoder {
 public:
  explicit LfDecoder(DecoderConfig config);

  const DecoderConfig& config() const { return config_; }

  DecodeResult decode(const signal::SampleBuffer& buffer) const;

 private:
  /// One pass of the stage pipeline under a (possibly degraded) config.
  DecodeResult decode_pass(const signal::SampleBuffer& buffer,
                           const DecoderConfig& cfg) const;

  DecoderConfig config_;
};

}  // namespace lfbs::core

#pragma once

#include <span>
#include <vector>

#include "common/units.h"
#include "core/collision_separator.h"
#include "dsp/kmeans.h"

namespace lfbs::core {

/// Three-cluster classification of a single stream's boundary differentials
/// plus the anchor-based cluster labelling of Table 1.
struct ThreeClusterLabels {
  Complex rising;    ///< centroid of the +e cluster
  Complex falling;   ///< centroid of the -e cluster
  Complex constant;  ///< centroid of the no-edge cluster (≈ origin)
  std::vector<EdgeState> states;  ///< per-boundary edge states
};

/// Labels a 3-cluster k-means fit using the anchor convention: the first
/// boundary of a stream is the idle→anchor transition, i.e. a rising edge,
/// so whichever cluster owns the first point is "+1"; the centroid nearest
/// the origin is "constant"; the remaining one is "-1". Points are then
/// classified by nearest centroid.
ThreeClusterLabels label_three_clusters(std::span<const Complex> points,
                                        const dsp::KMeansResult& fit);

/// Fallback classifier for streams with too few boundaries to cluster:
/// thresholds |Δ| against half the anchor magnitude and signs by projection
/// onto the anchor differential.
std::vector<EdgeState> classify_simple(std::span<const Complex> points);

/// Normalizes a separated component's sign so its first non-constant state
/// is +1 (its anchor is a rising edge). Returns true when a flip occurred.
bool normalize_anchor(std::vector<EdgeState>& states);

/// NRZ integration (Table 1): level starts at 0; +1 sets it, -1 clears it,
/// 0 holds it; bit k is the level after boundary k.
std::vector<bool> integrate_states(std::span<const EdgeState> states);

/// Extracts the sub-stream of a separated component: the component's own
/// bit boundaries sit every `step` joint boundaries starting at `offset`.
std::vector<EdgeState> subsample_states(std::span<const EdgeState> states,
                                        std::size_t offset, std::size_t step);

}  // namespace lfbs::core

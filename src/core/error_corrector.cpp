#include "core/error_corrector.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "dsp/gaussian.h"
#include "dsp/viterbi.h"

namespace lfbs::core {

namespace {

// State indices for the 4-state edge machine.
constexpr std::size_t kRising = 0;    // ↑
constexpr std::size_t kFalling = 1;   // ↓
constexpr std::size_t kHoldHigh = 2;  // −₊ (no edge, level 1)
constexpr std::size_t kHoldLow = 3;   // −₋ (no edge, level 0)

/// Fits a 2-D Gaussian to the points of one cluster; degenerate clusters
/// fall back to an isotropic Gaussian around the centroid with a spread
/// proportional to `scale`.
dsp::Gaussian2D fit_or_default(std::span<const Complex> pts, Complex centroid,
                               double scale, double min_sigma) {
  if (pts.size() >= 4) {
    dsp::Gaussian2D g = dsp::fit_gaussian2d(pts, min_sigma);
    return g;
  }
  dsp::Gaussian2D g;
  g.mean_i = centroid.real();
  g.mean_q = centroid.imag();
  g.sigma_i = std::max(0.25 * scale, min_sigma);
  g.sigma_q = g.sigma_i;
  g.rho = 0.0;
  return g;
}

}  // namespace

ErrorCorrector::ErrorCorrector(Config config) : config_(config) {
  LFBS_CHECK(config_.edge_probability > 0.0 && config_.edge_probability < 1.0);
}

std::vector<bool> ErrorCorrector::correct(
    std::span<const Complex> points, const ThreeClusterLabels& labels) const {
  return correct_soft(points, labels, {}).bits;
}

ErrorCorrector::SoftResult ErrorCorrector::correct_soft(
    std::span<const Complex> points, const ThreeClusterLabels& labels,
    std::span<const double> confidences, const SoftConfig& soft) const {
  LFBS_CHECK(points.size() == labels.states.size());
  LFBS_CHECK(confidences.empty() || confidences.size() == points.size());
  std::vector<Complex> rising_pts, falling_pts, constant_pts;
  for (std::size_t i = 0; i < points.size(); ++i) {
    switch (labels.states[i]) {
      case 1:
        rising_pts.push_back(points[i]);
        break;
      case -1:
        falling_pts.push_back(points[i]);
        break;
      default:
        constant_pts.push_back(points[i]);
        break;
    }
  }
  return run(points, labels.rising, labels.falling, labels.constant,
             rising_pts, falling_pts, constant_pts, confidences, soft);
}

std::vector<bool> ErrorCorrector::correct_component(
    std::span<const Complex> points, Complex edge_vector) const {
  return run(points, edge_vector, -edge_vector, Complex{}, {}, {}, {}, {},
             SoftConfig())
      .bits;
}

ErrorCorrector::JointResult ErrorCorrector::correct_joint(
    std::span<const Complex> points, Complex e1, Complex e2,
    const std::vector<bool>& toggle1, const std::vector<bool>& toggle2,
    double sigma) const {
  LFBS_CHECK(!points.empty());
  LFBS_CHECK(points.size() == toggle1.size());
  LFBS_CHECK(points.size() == toggle2.size());
  const double inv_two_sigma2 = 1.0 / (2.0 * std::max(sigma * sigma, 1e-18));
  const double log_edge = std::log(config_.edge_probability);
  const double log_hold = std::log(1.0 - config_.edge_probability);

  // State = l1 + 2*l2; DP over boundaries. Emission sits on the transition,
  // so this is a bespoke loop rather than the per-state dsp::Viterbi.
  constexpr std::size_t kStates = 4;
  const std::size_t n = points.size();
  std::vector<double> score(kStates, -1e300);
  score[0] = 0.0;  // both tags idle at level 0 before their anchors
  std::vector<std::vector<std::uint8_t>> backptr(
      n, std::vector<std::uint8_t>(kStates, 0));
  std::vector<double> next(kStates);

  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t to = 0; to < kStates; ++to) {
      const int l1p = static_cast<int>(to & 1u);
      const int l2p = static_cast<int>((to >> 1) & 1u);
      double best = -1e300;
      std::uint8_t arg = 0;
      for (std::size_t from = 0; from < kStates; ++from) {
        const int l1 = static_cast<int>(from & 1u);
        const int l2 = static_cast<int>((from >> 1) & 1u);
        if (l1 != l1p && !toggle1[k]) continue;
        if (l2 != l2p && !toggle2[k]) continue;
        const Complex expected = static_cast<double>(l1p - l1) * e1 +
                                 static_cast<double>(l2p - l2) * e2;
        double cand = score[from] - std::norm(points[k] - expected) *
                                        inv_two_sigma2;
        if (toggle1[k]) cand += (l1 != l1p) ? log_edge : log_hold;
        if (toggle2[k]) cand += (l2 != l2p) ? log_edge : log_hold;
        if (cand > best) {
          best = cand;
          arg = static_cast<std::uint8_t>(from);
        }
      }
      next[to] = best;
      backptr[k][to] = arg;
    }
    score.swap(next);
  }

  std::size_t state = 0;
  double best = score[0];
  double second = -1e300;
  for (std::size_t s = 1; s < kStates; ++s) {
    if (score[s] > best) {
      second = best;
      best = score[s];
      state = s;
    } else if (score[s] > second) {
      second = score[s];
    }
  }
  JointResult out;
  out.margin = (second > -1e299) ? best - second : 0.0;
  out.levels1.resize(n);
  out.levels2.resize(n);
  for (std::size_t k = n; k-- > 0;) {
    out.levels1[k] = (state & 1u) != 0;
    out.levels2[k] = (state & 2u) != 0;
    state = backptr[k][state];
  }
  return out;
}

ErrorCorrector::Joint3Result ErrorCorrector::correct_joint3(
    std::span<const Complex> points, Complex e1, Complex e2, Complex e3,
    const std::vector<bool>& toggle1, const std::vector<bool>& toggle2,
    const std::vector<bool>& toggle3, double sigma) const {
  LFBS_CHECK(!points.empty());
  LFBS_CHECK(points.size() == toggle1.size());
  LFBS_CHECK(points.size() == toggle2.size());
  LFBS_CHECK(points.size() == toggle3.size());
  const double inv_two_sigma2 = 1.0 / (2.0 * std::max(sigma * sigma, 1e-18));
  const double log_edge = std::log(config_.edge_probability);
  const double log_hold = std::log(1.0 - config_.edge_probability);
  const Complex evec[3] = {e1, e2, e3};

  constexpr std::size_t kStates = 8;  // l1 + 2*l2 + 4*l3
  const std::size_t n = points.size();
  std::vector<double> score(kStates, -1e300);
  score[0] = 0.0;
  std::vector<std::vector<std::uint8_t>> backptr(
      n, std::vector<std::uint8_t>(kStates, 0));
  std::vector<double> next(kStates);

  for (std::size_t k = 0; k < n; ++k) {
    const bool can[3] = {toggle1[k], toggle2[k], toggle3[k]};
    for (std::size_t to = 0; to < kStates; ++to) {
      double best = -1e300;
      std::uint8_t arg = 0;
      for (std::size_t from = 0; from < kStates; ++from) {
        Complex expected{};
        double prior = 0.0;
        bool feasible = true;
        for (std::size_t t = 0; t < 3; ++t) {
          const int l = static_cast<int>((from >> t) & 1u);
          const int lp = static_cast<int>((to >> t) & 1u);
          if (l != lp && !can[t]) {
            feasible = false;
            break;
          }
          expected += static_cast<double>(lp - l) * evec[t];
          if (can[t]) prior += (l != lp) ? log_edge : log_hold;
        }
        if (!feasible) continue;
        const double cand =
            score[from] + prior -
            std::norm(points[k] - expected) * inv_two_sigma2;
        if (cand > best) {
          best = cand;
          arg = static_cast<std::uint8_t>(from);
        }
      }
      next[to] = best;
      backptr[k][to] = arg;
    }
    score.swap(next);
  }

  std::size_t state = 0;
  double best = score[0];
  double second = -1e300;
  for (std::size_t s2 = 1; s2 < kStates; ++s2) {
    if (score[s2] > best) {
      second = best;
      best = score[s2];
      state = s2;
    } else if (score[s2] > second) {
      second = score[s2];
    }
  }
  Joint3Result out;
  out.margin = (second > -1e299) ? best - second : 0.0;
  out.levels1.resize(n);
  out.levels2.resize(n);
  out.levels3.resize(n);
  for (std::size_t k = n; k-- > 0;) {
    out.levels1[k] = (state & 1u) != 0;
    out.levels2[k] = (state & 2u) != 0;
    out.levels3[k] = (state & 4u) != 0;
    state = backptr[k][state];
  }
  return out;
}

ErrorCorrector::SoftResult ErrorCorrector::run(
    std::span<const Complex> points, Complex rising, Complex falling,
    Complex constant, std::span<const Complex> rising_pts,
    std::span<const Complex> falling_pts,
    std::span<const Complex> constant_pts,
    std::span<const double> confidences, const SoftConfig& soft) const {
  LFBS_CHECK(!points.empty());
  const double scale = std::max(std::abs(rising), std::abs(falling));

  const dsp::Gaussian2D g_rise =
      fit_or_default(rising_pts, rising, scale, config_.min_sigma);
  const dsp::Gaussian2D g_fall =
      fit_or_default(falling_pts, falling, scale, config_.min_sigma);
  const dsp::Gaussian2D g_hold =
      fit_or_default(constant_pts, constant, scale, config_.min_sigma);

  // Erasure emissions: the same cluster means with inflated sigmas, so a
  // distrusted observation barely discriminates between states and the
  // transition structure decides.
  const auto widen = [&](dsp::Gaussian2D g) {
    g.sigma_i *= soft.erasure_sigma_scale;
    g.sigma_q *= soft.erasure_sigma_scale;
    g.rho = 0.0;
    return g;
  };
  const dsp::Gaussian2D w_rise = widen(g_rise);
  const dsp::Gaussian2D w_fall = widen(g_fall);
  const dsp::Gaussian2D w_hold = widen(g_hold);

  SoftResult out;
  std::vector<bool> erased(points.size(), false);
  if (!confidences.empty()) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (confidences[i] < soft.erasure_threshold) {
        erased[i] = true;
        ++out.erasures;
      }
    }
  }

  const double log_edge = std::log(config_.edge_probability);
  const double log_hold = std::log(1.0 - config_.edge_probability);
  const double kNo = dsp::Viterbi::kForbidden;

  // Rows: from-state; columns: to-state {↑, ↓, −₊, −₋}. After ↑ or −₊ the
  // level is 1, so the next boundary is either a falling edge or a hold at
  // 1; symmetrically for level 0.
  std::vector<std::vector<double>> transition = {
      /* from ↑  */ {kNo, log_edge, log_hold, kNo},
      /* from ↓  */ {log_edge, kNo, kNo, log_hold},
      /* from −₊ */ {kNo, log_edge, log_hold, kNo},
      /* from −₋ */ {log_edge, kNo, kNo, log_hold},
  };
  // The first boundary of a stream is the idle→anchor rising edge.
  std::vector<double> initial = {0.0, kNo, kNo, kNo};

  const dsp::Viterbi viterbi(std::move(transition), std::move(initial));
  const auto emission = [&](std::size_t step, std::size_t state) {
    const Complex& z = points[step];
    const bool wide = erased[step];
    switch (state) {
      case kRising:
        return (wide ? w_rise : g_rise).log_pdf(z);
      case kFalling:
        return (wide ? w_fall : g_fall).log_pdf(z);
      default:
        return (wide ? w_hold : g_hold).log_pdf(z);
    }
  };
  const dsp::Viterbi::Path path = viterbi.decode(points.size(), emission);

  out.bits.reserve(points.size());
  for (std::size_t s : path.states) {
    out.bits.push_back(s == kRising || s == kHoldHigh);
  }
  out.bit_margins = path.margins;
  out.path_margin = path.final_margin;
  out.log_score = path.log_score;
  return out;
}

}  // namespace lfbs::core

#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "dsp/kmeans.h"

namespace lfbs::core {

/// Verdict on how many tags are toggling at one stream group's boundaries.
///
/// Each colliding tag contributes one of three edge states (rising, falling,
/// constant) to every shared boundary, so k colliding tags produce 3^k
/// clusters of boundary IQ differentials (§3.3). The detector fits k-means
/// at 3, 9 (and 27 when the data could support it) clusters and picks the
/// best BIC.
struct CollisionAssessment {
  std::size_t colliders = 1;       ///< 1, 2, or 3
  dsp::KMeansResult fit;           ///< fit at the chosen cluster count
  std::vector<double> bic_scores;  ///< per candidate, same order as counts
  std::vector<std::size_t> counts; ///< candidate cluster counts tried
};

struct CollisionDetectorConfig {
  /// Minimum boundary points per cluster for a candidate to be considered:
  /// fitting 9 clusters to 12 points proves nothing.
  std::size_t min_points_per_cluster = 3;
  /// Consider the 27-cluster (3-tag) hypothesis at all. The paper shows
  /// P(3-way collision) ≈ 0.018 at 16 nodes / 100 kbps; such groups are
  /// flagged and re-tried in a later epoch rather than separated.
  bool consider_three_way = true;
  /// "Is k clusters a good fit?" test (§3.3): a fit is accepted when its
  /// RMS within-cluster residual is below this fraction of the centroid
  /// spread. A second colliding tag inflates the 3-cluster residual to the
  /// order of its own edge magnitude, failing this test.
  double residual_fraction = 0.08;
  dsp::KMeansOptions kmeans;
};

class CollisionDetector {
 public:
  explicit CollisionDetector(CollisionDetectorConfig config);

  const CollisionDetectorConfig& config() const { return config_; }

  /// Assesses the boundary differentials of one stream group. `rng` drives
  /// k-means seeding only.
  CollisionAssessment assess(std::span<const Complex> boundary_diffs,
                             Rng& rng) const;

 private:
  CollisionDetectorConfig config_;
};

}  // namespace lfbs::core

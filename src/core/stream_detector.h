#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/units.h"
#include "signal/edge_detector.h"

namespace lfbs::core {

/// A stream group: edges that fall on one common lattice.
///
/// Because every valid bitrate divides the maximum rate (§3.2), all edges of
/// one tag land on a lattice with period T_min = 1/max_rate anchored at the
/// tag's random start offset. Tags whose offsets differ by more than an edge
/// width form distinct groups; tags that picked (nearly) the same offset
/// merge into a single *collision* group, and keep colliding all epoch —
/// exactly the repetition the IQ separation stage relies on.
struct StreamGroup {
  /// Fitted lattice: position(n) ≈ intercept + slope · n, in samples.
  /// The slope absorbs the tag's clock drift (±150–200 ppm).
  double intercept = 0.0;
  double slope = 0.0;

  std::vector<std::size_t> edge_indices;      ///< into the input edge array
  std::vector<std::int64_t> lattice_indices;  ///< lattice slot per edge

  /// Bit period in lattice units (m: the tag transmits at max_rate / m).
  /// For a collision group this is the *joint* lattice step.
  std::int64_t step = 1;
  /// Lattice index of the first bit boundary (the anchor edge).
  std::int64_t start_index = 0;

  /// Predicted sample position of lattice slot n.
  double position_of(std::int64_t n) const {
    return intercept + slope * static_cast<double>(n);
  }
};

struct StreamDetectorConfig {
  /// Nominal lattice period in samples (fs / max_rate).
  double lattice_period = 250.0;
  /// Edges within this many samples of a group's lattice point belong to
  /// the group; closer offsets than this between two tags read as one
  /// (colliding) group. Should be a little above the edge width.
  double base_tolerance = 5.0;
  /// Allowance for clock drift between consecutive member edges, in ppm of
  /// the gap. Must exceed the worst tag crystal (paper decodes ±200 ppm).
  double drift_tolerance_ppm = 400.0;
  /// Groups with fewer edges are discarded as noise: a real stream repeats
  /// on a valid-rate lattice, a spurious edge does not (§3.2).
  std::size_t min_edges = 3;
  /// Valid bit-period steps in lattice units (max_rate / rate for every
  /// valid rate), used to snap the estimated step. Empty = free-form gcd.
  std::vector<std::int64_t> valid_steps;
  /// Fraction of member edges that must agree with a step hypothesis.
  double step_consensus = 0.85;
  /// Post-pass: groups whose lattice phases differ by at most this many
  /// samples (circularly, mod the lattice period) are merged. This folds
  /// splinter groups (jitter pushed a few edges past base_tolerance) and
  /// near-collisions back into one group, where the IQ separation stage can
  /// handle them as a collision.
  double merge_radius = 6.0;
};

/// Groups detected edges into per-tag (or per-collision) streams and
/// estimates each group's lattice timing, clock drift, and bit-period step.
class StreamDetector {
 public:
  explicit StreamDetector(StreamDetectorConfig config);

  const StreamDetectorConfig& config() const { return config_; }

  /// `edges` must be sorted by position (EdgeDetector guarantees this).
  std::vector<StreamGroup> detect(std::span<const signal::Edge> edges) const;

  /// One stream hypothesis over a subset of a phase group's edges.
  struct SubStream {
    std::int64_t step = 1;
    std::int64_t start = 0;
    std::vector<std::size_t> members;  ///< positions into the index array
  };

  /// Splits the lattice indices of one phase group into streams. Two tags
  /// can share a phase modulo the max-rate period yet occupy different
  /// lattice slots (e.g. a 0.5 kbps and a 1 kbps tag whose anchors are two
  /// slots apart) — they are separate streams, not a collision, and are
  /// told apart by their residue classes.
  std::vector<SubStream> split_streams(
      std::span<const std::int64_t> indices) const;

  /// Estimates the bit-period step for a set of lattice indices: the largest
  /// valid step such that at least `step_consensus` of the indices share a
  /// residue class. Exposed for the collision separator, which re-runs it on
  /// each separated component. Returns {step, residue}.
  std::pair<std::int64_t, std::int64_t> estimate_step(
      std::span<const std::int64_t> indices) const;

 private:
  StreamDetectorConfig config_;
};

}  // namespace lfbs::core

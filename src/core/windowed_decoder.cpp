#include "core/windowed_decoder.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lfbs::core {

namespace {

/// Drops trailing all-zero frames (decoded idle level), same convention as
/// the base decoder.
void trim_trailing_zeros(std::vector<bool>& bits, std::size_t frame_bits) {
  while (bits.size() >= frame_bits) {
    const bool all_zero =
        std::none_of(bits.end() - static_cast<std::ptrdiff_t>(frame_bits),
                     bits.end(), [](bool b) { return b; });
    if (!all_zero) break;
    bits.resize(bits.size() - frame_bits);
  }
}

}  // namespace

WindowStitcher::WindowStitcher(const WindowedDecoderConfig& config,
                               SampleRate sample_rate)
    : config_(config), fs_(sample_rate) {
  LFBS_CHECK(fs_ > 0.0);
}

void WindowStitcher::add_window(DecodeResult window,
                                std::size_t offset_samples) {
  LFBS_OBS_SPAN(span, "stitch", "core");
  span.attr("window_streams", static_cast<double>(window.streams.size()));
  static obs::Counter& stitched =
      obs::metrics().counter("core.windows_stitched");
  stitched.add();
  ++windows_;
  const double fs = fs_;
  result_.diagnostics.edges += window.diagnostics.edges;
  result_.diagnostics.groups += window.diagnostics.groups;
  result_.diagnostics.collision_groups +=
      window.diagnostics.collision_groups;
  result_.diagnostics.unresolved_groups +=
      window.diagnostics.unresolved_groups;
  result_.diagnostics.erasures += window.diagnostics.erasures;
  result_.diagnostics.fallback_passes += window.diagnostics.fallback_passes;
  result_.diagnostics.fallback_recoveries +=
      window.diagnostics.fallback_recoveries;

  // Earlier streams first so head-of-thread matching is stable.
  std::sort(window.streams.begin(), window.streams.end(),
            [](const DecodedStream& a, const DecodedStream& b) {
              return a.start_sample < b.start_sample;
            });

  std::vector<bool> thread_taken(threads_.size(), false);
  for (DecodedStream& s : window.streams) {
    if (s.bits.empty() || s.rate <= 0.0) continue;
    const double abs_start =
        s.start_sample + static_cast<double>(offset_samples);
    const double period = fs / s.rate;
    // Fragment weight for the thread's confidence aggregation: longer
    // fragments say more about the thread's health.
    const double weight = static_cast<double>(s.bits.size());
    const auto fold_confidence = [&](Thread& thread) {
      thread.conf_weight += weight;
      thread.snr_sum += s.snr_db * weight;
      thread.edge_snr_sum += s.confidence.edge_snr_db * weight;
      thread.edge_conf_sum += s.confidence.edge_confidence * weight;
      thread.margin_sum += s.confidence.path_margin * weight;
      thread.separation_sum += s.confidence.cluster_separation * weight;
      thread.erasures += s.confidence.erasures;
      // The thread is only as trustworthy as its most-degraded fragment.
      thread.stage = std::max(thread.stage, s.confidence.stage);
    };

    // Find the best continuing thread.
    double best_score = std::numeric_limits<double>::infinity();
    std::size_t best_thread = threads_.size();
    bool best_flip = false;
    std::size_t best_expand = 1;
    for (std::size_t t = 0; t < threads_.size(); ++t) {
      if (thread_taken[t]) continue;
      Thread& thread = threads_[t];
      // A short window can under-determine a fragment's rate: a stream
      // whose edges happened to sit on a coarser lattice decodes at a
      // sub-multiple rate. Its bits are then exact m-fold repetitions of
      // the true levels, so it can be expanded and stitched.
      std::size_t expand = 1;
      if (std::abs(thread.rate - s.rate) > 0.01 * thread.rate) {
        const double ratio = thread.rate / s.rate;
        const auto m = static_cast<std::size_t>(std::llround(ratio));
        if (m < 2 || m > 200 ||
            std::abs(ratio - static_cast<double>(m)) > 0.01) {
          continue;
        }
        expand = m;
      }
      const double gap = abs_start - thread.next_boundary;
      if (gap < -2.0 * period) continue;  // going backwards
      // Phase continuity. Until the thread's period has been measured
      // across a stitch, the nominal period accumulates the tag's full
      // crystal error over the span since the last anchor; afterwards
      // only residual jitter remains.
      const double span = std::max(abs_start - thread.anchor_pos, 0.0);
      const double drift_allowance =
          (thread.period_refined ? 60e-6 : 400e-6) * span;
      const double tol = config_.phase_tolerance + drift_allowance;
      const double residual =
          std::abs(std::remainder(gap, period));
      if (residual > tol) continue;
      // Edge-vector continuity, allowing a polarity flip.
      const double direct = std::abs(s.edge_vector - thread.edge_vector);
      const double flipped = std::abs(s.edge_vector + thread.edge_vector);
      const double scale = std::max(std::abs(thread.edge_vector), 1e-12);
      const bool flip = flipped < direct;
      if (std::min(direct, flipped) > config_.vector_tolerance * scale) {
        continue;
      }
      double score = residual / tol + std::min(direct, flipped) / scale;
      if (expand > 1) score += 0.5;  // prefer exact-rate matches
      if (score < best_score) {
        best_score = score;
        best_thread = t;
        best_flip = flip;
        best_expand = expand;
      }
    }

    std::vector<bool> bits = std::move(s.bits);
    if (best_thread < threads_.size()) {
      Thread& thread = threads_[best_thread];
      thread_taken[best_thread] = true;
      if (best_flip) bits.flip();
      if (best_expand > 1) {
        std::vector<bool> expanded;
        expanded.reserve(bits.size() * best_expand);
        for (bool b : bits) {
          expanded.insert(expanded.end(), best_expand, b);
        }
        bits = std::move(expanded);
      }
      // Refine the thread period from the measured anchor-to-anchor span:
      // the bit count between anchors is unambiguous once rounded at the
      // (coarser) nominal period.
      const double span = abs_start - thread.anchor_pos;
      const auto span_bits =
          static_cast<std::int64_t>(std::llround(span / thread.period));
      if (span_bits > 200) {
        const double measured = span / static_cast<double>(span_bits);
        const double nominal = fs / thread.rate;
        if (std::abs(measured / nominal - 1.0) < 400e-6) {
          thread.period = measured;
          thread.period_refined = true;
        }
      }
      // Fill the inter-window gap from timing: missing boundaries carry
      // the thread's held level. All arithmetic is at the thread's own
      // (refined) period.
      const double tperiod = thread.period;
      const auto gap_bits = static_cast<std::int64_t>(
          std::llround((abs_start - thread.next_boundary) / tperiod));
      std::size_t dropped = 0;
      if (gap_bits >= 0) {
        thread.bits.insert(thread.bits.end(),
                           static_cast<std::size_t>(gap_bits),
                           thread.last_level);
      } else {
        // Overlapping re-decode of the seam: drop the duplicate head.
        dropped = static_cast<std::size_t>(-gap_bits);
        if (dropped >= bits.size()) continue;
        bits.erase(bits.begin(),
                   bits.begin() + static_cast<std::ptrdiff_t>(dropped));
      }
      thread.bits.insert(thread.bits.end(), bits.begin(), bits.end());
      thread.next_boundary =
          abs_start + static_cast<double>(dropped + bits.size()) * tperiod;
      thread.anchor_pos = abs_start;
      thread.bits_at_anchor = thread.bits.size();
      thread.last_level = thread.bits.back();
      thread.collided = thread.collided || s.collided;
      // Keep the freshest vector estimate (channel can creep slowly).
      thread.edge_vector = best_flip ? -s.edge_vector : s.edge_vector;
      fold_confidence(thread);
    } else {
      Thread thread;
      thread.rate = s.rate;
      thread.period = period;
      thread.edge_vector = s.edge_vector;
      thread.start_abs = abs_start;
      thread.anchor_pos = abs_start;
      thread.bits = std::move(bits);
      thread.bits_at_anchor = thread.bits.size();
      thread.next_boundary =
          abs_start + static_cast<double>(thread.bits.size()) * period;
      thread.last_level = thread.bits.back();
      thread.collided = s.collided;
      fold_confidence(thread);
      threads_.push_back(std::move(thread));
      // A thread born in this window is not a stitch target for the
      // window's remaining streams (and keeps thread_taken in step with
      // the threads vector).
      thread_taken.push_back(true);
    }
  }
}

DecodeResult WindowStitcher::finish() {
  for (Thread& thread : threads_) {
    DecodedStream stream;
    stream.start_sample = thread.start_abs;
    stream.rate = thread.rate;
    stream.collided = thread.collided;
    stream.edge_vector = thread.edge_vector;
    if (thread.conf_weight > 0.0) {
      stream.snr_db = thread.snr_sum / thread.conf_weight;
      stream.confidence.edge_snr_db =
          thread.edge_snr_sum / thread.conf_weight;
      stream.confidence.edge_confidence =
          thread.edge_conf_sum / thread.conf_weight;
      stream.confidence.path_margin =
          thread.margin_sum / thread.conf_weight;
      stream.confidence.cluster_separation =
          thread.separation_sum / thread.conf_weight;
    }
    stream.confidence.erasures = thread.erasures;
    stream.confidence.stage = thread.stage;
    stream.bits = std::move(thread.bits);
    trim_trailing_zeros(stream.bits, config_.decoder.frame.frame_bits());
    // Seams can slip a bit; resynchronize on CRC-valid frames.
    stream.frames =
        protocol::scan_frames(stream.bits, config_.decoder.frame);
    result_.streams.push_back(std::move(stream));
  }
  threads_.clear();
  return std::move(result_);
}

WindowedDecoder::WindowedDecoder(WindowedDecoderConfig config)
    : config_(std::move(config)) {
  LFBS_CHECK(config_.window > 0.0);
  LFBS_CHECK(config_.phase_tolerance > 0.0);
  LFBS_CHECK(config_.vector_tolerance > 0.0);
}

std::size_t WindowedDecoder::window_samples(SampleRate fs) const {
  const auto n = static_cast<std::size_t>(config_.window * fs);
  LFBS_CHECK(n > 0);
  return n;
}

bool WindowedDecoder::is_short_capture(std::size_t total_samples,
                                       SampleRate fs) const {
  return static_cast<double>(total_samples) / fs <= 1.5 * config_.window;
}

std::uint64_t WindowedDecoder::window_seed(std::uint64_t seed,
                                           std::size_t window_index) {
  // splitmix64 over the combined word: even adjacent windows get
  // uncorrelated k-means restart streams.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull *
                               (static_cast<std::uint64_t>(window_index) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

DecodeResult WindowedDecoder::decode_window(const signal::SampleBuffer& slice,
                                            std::size_t window_index) const {
  DecoderConfig dc = config_.decoder;
  dc.seed = window_seed(config_.decoder.seed, window_index);
  // The degraded-mode ladder must not run per window: a fragment with zero
  // CRC-valid frames is *normal* here (seam-truncated frames, sub-multiple
  // rate repetitions) and the stitcher repairs it from timing. Re-decoding
  // such a window under relaxed thresholds replaces good bits with degraded
  // ones mid-thread. The ladder instead runs over the whole capture when
  // the stitched result comes back empty (see decode()).
  dc.robustness.fallback = false;
  return LfDecoder(dc).decode(slice);
}

DecodeResult WindowedDecoder::decode(const signal::SampleBuffer& buffer) const {
  if (buffer.empty() ||
      is_short_capture(buffer.size(), buffer.sample_rate())) {
    return LfDecoder(config_.decoder).decode(buffer);
  }
  const double fs = buffer.sample_rate();
  const std::size_t window_samples_n = window_samples(fs);

  WindowStitcher stitcher(config_, fs);
  std::size_t window_index = 0;
  for (std::size_t offset = 0; offset < buffer.size();
       offset += window_samples_n, ++window_index) {
    const std::size_t end =
        std::min(buffer.size(), offset + window_samples_n);
    if (end - offset < window_samples_n / 4) break;  // ignore a tiny tail
    const auto slice_span = buffer.slice(offset, end);
    signal::SampleBuffer slice(
        fs, std::vector<Complex>(slice_span.begin(), slice_span.end()));
    stitcher.add_window(decode_window(slice, window_index), offset);
  }
  DecodeResult result = stitcher.finish();
  // Whole-capture degraded fallback: only when windowing + stitching
  // produced nothing at all does a single-pass decode with the ladder get
  // a shot at the full buffer (the per-window ladder is disabled, see
  // decode_window).
  if (config_.decoder.robustness.enabled &&
      config_.decoder.robustness.fallback) {
    std::size_t valid = 0;
    for (const auto& s : result.streams) {
      for (const auto& f : s.frames) valid += f.valid();
    }
    if (valid == 0) {
      DecodeResult whole = LfDecoder(config_.decoder).decode(buffer);
      std::size_t whole_valid = 0;
      for (const auto& s : whole.streams) {
        for (const auto& f : s.frames) whole_valid += f.valid();
      }
      if (whole_valid > 0) return whole;
    }
  }
  return result;
}

}  // namespace lfbs::core

#include "core/collision_separator.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace lfbs::core {

namespace {

/// The nine (a, b) combinations in a fixed order.
constexpr std::array<std::pair<int, int>, 9> kCombos = {{{-1, -1},
                                                         {-1, 0},
                                                         {-1, 1},
                                                         {0, -1},
                                                         {0, 0},
                                                         {0, 1},
                                                         {1, -1},
                                                         {1, 0},
                                                         {1, 1}}};

/// Greedy one-to-one matching of centroids to the 9 combination points of a
/// candidate (e1, e2). Returns the maximum match distance, or infinity when
/// a bijection cannot be formed.
double match_quality(std::span<const Complex> centroids, Complex e1,
                     Complex e2) {
  struct Entry {
    double d;
    std::size_t centroid;
    std::size_t combo;
  };
  std::vector<Entry> entries;
  entries.reserve(centroids.size() * kCombos.size());
  for (std::size_t i = 0; i < centroids.size(); ++i) {
    for (std::size_t j = 0; j < kCombos.size(); ++j) {
      const Complex expected = static_cast<double>(kCombos[j].first) * e1 +
                               static_cast<double>(kCombos[j].second) * e2;
      entries.push_back({std::abs(centroids[i] - expected), i, j});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.d < b.d; });
  std::vector<bool> centroid_used(centroids.size(), false);
  std::vector<bool> combo_used(kCombos.size(), false);
  std::size_t matched = 0;
  double worst = 0.0;
  for (const Entry& e : entries) {
    if (centroid_used[e.centroid] || combo_used[e.combo]) continue;
    centroid_used[e.centroid] = true;
    combo_used[e.combo] = true;
    worst = std::max(worst, e.d);
    if (++matched == centroids.size()) break;
  }
  if (matched != centroids.size()) {
    return std::numeric_limits<double>::infinity();
  }
  return worst;
}

}  // namespace

CollisionSeparator::CollisionSeparator(SeparatorConfig config)
    : config_(config) {
  LFBS_CHECK(config_.midpoint_tolerance > 0.0);
  LFBS_CHECK(config_.match_tolerance > 0.0);
}

std::optional<SeparationResult> CollisionSeparator::separate(
    std::span<const Complex> points, const dsp::KMeansResult& fit) const {
  if (fit.centroids.size() != 9 || points.empty()) return std::nullopt;
  const auto& centroids = fit.centroids;

  // Origin cluster: the centroid nearest zero (both tags constant).
  std::size_t origin = 0;
  for (std::size_t i = 1; i < centroids.size(); ++i) {
    if (std::abs(centroids[i]) < std::abs(centroids[origin])) origin = i;
  }
  // Work in origin-relative coordinates so residual receiver offsets do not
  // bias the grid matching.
  std::vector<Complex> shifted(centroids.size());
  for (std::size_t i = 0; i < centroids.size(); ++i) {
    shifted[i] = centroids[i] - centroids[origin];
  }
  std::vector<Complex> outer;
  outer.reserve(8);
  for (std::size_t i = 0; i < shifted.size(); ++i) {
    if (i != origin) outer.push_back(shifted[i]);
  }

  double strongest = 0.0;
  for (const Complex& c : outer) strongest = std::max(strongest, std::abs(c));
  if (strongest <= 0.0) return std::nullopt;

  // Paper construction: find equally spaced collinear triples among the 8
  // outer centroids — the parallelogram sides — whose midpoints are ±e1/±e2.
  struct Midpoint {
    std::size_t index;  ///< into `outer`
    double error;       ///< |centroid - geometric midpoint| / pair span
  };
  std::vector<Midpoint> midpoints;
  for (std::size_t i = 0; i < outer.size(); ++i) {
    for (std::size_t j = i + 1; j < outer.size(); ++j) {
      const Complex mid = (outer[i] + outer[j]) * 0.5;
      const double span = std::abs(outer[i] - outer[j]);
      if (span <= 0.0) continue;
      for (std::size_t k = 0; k < outer.size(); ++k) {
        if (k == i || k == j) continue;
        const double err = std::abs(outer[k] - mid) / span;
        if (err <= config_.midpoint_tolerance) {
          midpoints.push_back({k, err});
        }
      }
    }
  }
  std::sort(midpoints.begin(), midpoints.end(),
            [](const Midpoint& a, const Midpoint& b) {
              return a.error < b.error;
            });

  // Candidate (e1, e2): pick midpoint centroids pairwise non-collinear,
  // best match over the full 9-point grid wins.
  double best_quality = std::numeric_limits<double>::infinity();
  Complex best_e1, best_e2;
  const auto consider = [&](Complex e1, Complex e2) {
    const double weakest = std::min(std::abs(e1), std::abs(e2));
    if (weakest < config_.min_edge_fraction * strongest) return;
    // Skip near-collinear candidates (degenerate parallelogram).
    const double cross = std::abs(e1.real() * e2.imag() - e1.imag() * e2.real());
    if (cross < 0.05 * std::abs(e1) * std::abs(e2)) return;
    const double q = match_quality(shifted, e1, e2);
    if (q < best_quality) {
      best_quality = q;
      best_e1 = e1;
      best_e2 = e2;
    }
  };
  for (std::size_t a = 0; a < midpoints.size(); ++a) {
    for (std::size_t b = a + 1; b < midpoints.size(); ++b) {
      consider(outer[midpoints[a].index], outer[midpoints[b].index]);
    }
  }
  // Fallback: exhaustive hypothesis over all outer centroid pairs. This
  // covers noisy fits where a side midpoint was smeared out of tolerance.
  if (!std::isfinite(best_quality)) {
    for (std::size_t a = 0; a < outer.size(); ++a) {
      for (std::size_t b = a + 1; b < outer.size(); ++b) {
        consider(outer[a], outer[b]);
      }
    }
  }
  if (!std::isfinite(best_quality)) return std::nullopt;
  const double weakest = std::min(std::abs(best_e1), std::abs(best_e2));
  if (best_quality > config_.match_tolerance * weakest) return std::nullopt;

  // Classify every boundary point against the recovered grid. Points are
  // classified directly (not via their k-means cluster) so a slightly wrong
  // cluster boundary does not propagate.
  SeparationResult result;
  result.e1 = best_e1;
  result.e2 = best_e2;
  result.states1.reserve(points.size());
  result.states2.reserve(points.size());
  const Complex offset = centroids[origin];
  double residual_sum = 0.0;
  for (const Complex& p : points) {
    double best_d = std::numeric_limits<double>::infinity();
    std::pair<int, int> best_combo{0, 0};
    for (const auto& [a, b] : kCombos) {
      const Complex expected = offset + static_cast<double>(a) * best_e1 +
                               static_cast<double>(b) * best_e2;
      const double d = std::abs(p - expected);
      if (d < best_d) {
        best_d = d;
        best_combo = {a, b};
      }
    }
    result.states1.push_back(best_combo.first);
    result.states2.push_back(best_combo.second);
    residual_sum += best_d;
  }
  result.residual =
      residual_sum / (static_cast<double>(points.size()) * weakest);
  return result;
}

std::optional<Separation3Result> CollisionSeparator::separate_three(
    std::span<const Complex> points, const dsp::KMeansResult& fit) const {
  if (fit.centroids.size() != 27 || points.empty()) return std::nullopt;
  const auto& centroids = fit.centroids;

  // Origin cluster and origin-relative coordinates.
  std::size_t origin = 0;
  for (std::size_t i = 1; i < centroids.size(); ++i) {
    if (std::abs(centroids[i]) < std::abs(centroids[origin])) origin = i;
  }
  std::vector<Complex> outer;
  outer.reserve(26);
  for (std::size_t i = 0; i < centroids.size(); ++i) {
    if (i != origin) outer.push_back(centroids[i] - centroids[origin]);
  }
  double strongest = 0.0;
  for (const Complex& c : outer) strongest = std::max(strongest, std::abs(c));
  if (strongest <= 0.0) return std::nullopt;

  // The 27 (a, b, c) combinations, and a grid matcher.
  std::vector<std::array<int, 3>> combos;
  combos.reserve(27);
  for (int a = -1; a <= 1; ++a) {
    for (int b = -1; b <= 1; ++b) {
      for (int c = -1; c <= 1; ++c) combos.push_back({a, b, c});
    }
  }
  std::vector<Complex> shifted(centroids.size());
  for (std::size_t i = 0; i < centroids.size(); ++i) {
    shifted[i] = centroids[i] - centroids[origin];
  }
  const auto grid_quality = [&](Complex e1, Complex e2, Complex e3) {
    struct Entry {
      double d;
      std::size_t centroid, combo;
    };
    std::vector<Entry> entries;
    entries.reserve(shifted.size() * combos.size());
    for (std::size_t i = 0; i < shifted.size(); ++i) {
      for (std::size_t j = 0; j < combos.size(); ++j) {
        const Complex expected = static_cast<double>(combos[j][0]) * e1 +
                                 static_cast<double>(combos[j][1]) * e2 +
                                 static_cast<double>(combos[j][2]) * e3;
        entries.push_back({std::abs(shifted[i] - expected), i, j});
      }
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.d < b.d; });
    std::vector<bool> cu(shifted.size(), false), gu(combos.size(), false);
    std::size_t matched = 0;
    double worst = 0.0;
    for (const Entry& e : entries) {
      if (cu[e.centroid] || gu[e.combo]) continue;
      cu[e.centroid] = true;
      gu[e.combo] = true;
      worst = std::max(worst, e.d);
      if (++matched == shifted.size()) break;
    }
    return matched == shifted.size()
               ? worst
               : std::numeric_limits<double>::infinity();
  };

  // Hypothesis search: the axis vectors are themselves outer centroids.
  // Restrict candidates to the 12 smallest-magnitude outer centroids (the
  // axes are never the largest grid points) to keep the search tight.
  std::vector<std::size_t> order(outer.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return std::abs(outer[a]) < std::abs(outer[b]);
  });
  const std::size_t pool = std::min<std::size_t>(order.size(), 12);

  double best_quality = std::numeric_limits<double>::infinity();
  Complex be1, be2, be3;
  for (std::size_t x = 0; x < pool; ++x) {
    for (std::size_t y = x + 1; y < pool; ++y) {
      for (std::size_t z = y + 1; z < pool; ++z) {
        const Complex e1 = outer[order[x]];
        const Complex e2 = outer[order[y]];
        const Complex e3 = outer[order[z]];
        const double weakest =
            std::min({std::abs(e1), std::abs(e2), std::abs(e3)});
        if (weakest < config_.min_edge_fraction * strongest) continue;
        // Pairwise conditioning: near-collinear axes are inseparable.
        const auto cross = [](Complex u, Complex v) {
          return std::abs(u.real() * v.imag() - u.imag() * v.real());
        };
        if (cross(e1, e2) < 0.1 * std::abs(e1) * std::abs(e2) ||
            cross(e1, e3) < 0.1 * std::abs(e1) * std::abs(e3) ||
            cross(e2, e3) < 0.1 * std::abs(e2) * std::abs(e3)) {
          continue;
        }
        // Antipodal pairs are the same axis.
        if (std::abs(e1 + e2) < 0.2 * std::abs(e1) ||
            std::abs(e1 + e3) < 0.2 * std::abs(e1) ||
            std::abs(e2 + e3) < 0.2 * std::abs(e2)) {
          continue;
        }
        const double q = grid_quality(e1, e2, e3);
        if (q < best_quality) {
          best_quality = q;
          be1 = e1;
          be2 = e2;
          be3 = e3;
        }
      }
    }
  }
  if (!std::isfinite(best_quality)) return std::nullopt;
  const double weakest = std::min({std::abs(be1), std::abs(be2), std::abs(be3)});
  if (best_quality > config_.match_tolerance * weakest) return std::nullopt;

  Separation3Result result;
  result.e1 = be1;
  result.e2 = be2;
  result.e3 = be3;
  const Complex offset = centroids[origin];
  double residual_sum = 0.0;
  for (const Complex& p : points) {
    double best_d = std::numeric_limits<double>::infinity();
    std::array<int, 3> best_combo{0, 0, 0};
    for (const auto& combo : combos) {
      const Complex expected = offset + static_cast<double>(combo[0]) * be1 +
                               static_cast<double>(combo[1]) * be2 +
                               static_cast<double>(combo[2]) * be3;
      const double d = std::abs(p - expected);
      if (d < best_d) {
        best_d = d;
        best_combo = combo;
      }
    }
    result.states1.push_back(best_combo[0]);
    result.states2.push_back(best_combo[1]);
    result.states3.push_back(best_combo[2]);
    residual_sum += best_d;
  }
  result.residual =
      residual_sum / (static_cast<double>(points.size()) * weakest);
  return result;
}

}  // namespace lfbs::core

// Section 2.4 analysis: edge-packing capacity and collision probabilities.
//
// Paper numbers: at 25 Msps a 100 kbps bit spans 250 samples and an edge is
// ~3 samples wide, so ~83 edges stack per bit; with 16 nodes at 100 kbps
// P(two-node collision) = 0.1890 and P(three-node) = 0.0181; at 10 kbps
// even 200 nodes keep P(>=3-node) below 0.0022.
#include <cstdio>

#include "sim/collision_math.h"
#include "sim/table.h"

using namespace lfbs;

int main() {
  sim::print_banner(
      "Section 2.4", "edge packing and collision probability",
      "closed form vs Monte-Carlo (200k epochs), paper values alongside");

  Rng rng(2024);

  sim::CollisionModel fast;
  fast.num_tags = 16;
  fast.samples_per_bit = 250.0;
  std::printf("edge capacity per 100 kbps bit at 25 Msps: %.0f (paper: 83)\n\n",
              fast.edge_capacity());

  sim::Table table({"operating point", "quantity", "closed form",
                    "Monte-Carlo", "paper"});
  table.add_row({"16 nodes @ 100 kbps", "P(2-node collision)",
                 sim::fmt(fast.collision_probability(2), 4),
                 sim::fmt(fast.monte_carlo(2, 200000, rng), 4), "0.1890"});
  table.add_row({"16 nodes @ 100 kbps", "P(3-node collision)",
                 sim::fmt(fast.collision_probability(3), 4),
                 sim::fmt(fast.monte_carlo(3, 200000, rng), 4), "0.0181"});

  sim::CollisionModel slow;
  slow.num_tags = 200;
  slow.samples_per_bit = 2500.0;  // 10 kbps at 25 Msps
  double p_three_plus = 0.0;
  for (std::size_t k = 3; k <= 8; ++k) {
    p_three_plus += slow.collision_probability(k);
  }
  double mc_three_plus = 0.0;
  for (std::size_t k = 3; k <= 8; ++k) {
    mc_three_plus += slow.monte_carlo(k, 50000, rng);
  }
  table.add_row({"200 nodes @ 10 kbps", "P(>=3-node collision)",
                 sim::fmt(p_three_plus, 4), sim::fmt(mc_three_plus, 4),
                 "< 0.0022"});
  table.print();
  return 0;
}

// Extension bench (§5.2 discussion): "one easy approach is to set bitrate
// to a lower number, say 10 kbps, and allow LF-Backscatter RFIDs to
// concurrently transmit their ID. In this setting, we can not only support
// a few hundred tags..."
//
// At 10 kbps a bit spans 1250 samples (12.5 Msps here), so the edge-packing
// budget is ~hundreds of offsets. This bench pushes the node count far past
// the paper's 16-tag hardware limit and measures single-epoch recovery.
#include <cstdio>

#include "sim/scenario.h"
#include "sim/table.h"

using namespace lfbs;

int main() {
  sim::print_banner(
      "Extension: scalability at 10 kbps",
      "single-epoch ID recovery far beyond the paper's 16-tag testbed",
      "all tags at 10 kbps, 12.5 Msps reader, one 113-bit frame each; "
      "unrecovered tags would retry next epoch with fresh offsets");

  sim::Table table({"tags", "crystals", "recovered", "recovery",
                    "collision groups", "unresolved"});
  for (double drift_ppm : {150.0, 5.0}) {
  for (std::size_t tags : {16u, 32u, 64u, 100u}) {
    Rng rng(9090 + tags);
    sim::ScenarioConfig sc;
    sc.num_tags = tags;
    sc.rates = {10.0 * kKbps};
    sc.sample_rate = 12.5 * kMsps;
    sc.clock_drift_ppm = drift_ppm;
    sc.epoch_duration = 113.0 / (10.0 * kKbps) + 0.4e-3;
    sim::Scenario scenario(sc, rng);
    auto dc = scenario.default_decoder();
    // The reader has commanded a 10 kbps network (§3.6), so it folds at the
    // 10 kbps lattice — 1250 samples of offset space instead of 125.
    dc.rate_plan.rates = {0.5 * kKbps, 1.0 * kKbps, 2.0 * kKbps,
                          5.0 * kKbps, 10.0 * kKbps};
    dc.max_rate = 10.0 * kKbps;
    const auto outcome = scenario.run_epoch(dc, rng);
    table.add_row(
        {std::to_string(tags),
         sim::fmt(drift_ppm, 0) + " ppm",
         std::to_string(outcome.payloads_recovered),
         sim::fmt_percent(static_cast<double>(outcome.payloads_recovered) /
                          static_cast<double>(tags)),
         std::to_string(outcome.decode.diagnostics.collision_groups),
         std::to_string(outcome.decode.diagnostics.unresolved_groups)});
  }
  }
  table.print();
  std::printf(
      "\nfinding: the paper's scaling argument (edge slots are plentiful at "
      "10 kbps) only counts *offset* collisions. Over an 11.7 ms epoch,\n"
      "+/-150 ppm crystals drift tags across each other's lattices "
      "(crossings), and at ~100 tags nearly every tag gets crossed — the\n"
      "dominant loss. With batch-matched (5 ppm) crystals the offset-only "
      "analysis holds and scaling works as the paper expects.\n");
  return 0;
}

// Figure 1: channel-coefficient dynamics that force Buzz-style linear
// separation to re-estimate, under (a) people moving near a static tag,
// (b) tag rotation in place, and (c) near-field coupling of two tags
// brought together.
//
// The bench prints summary statistics of each 12 s coefficient trace, plus
// a demonstration of the consequence: Buzz decoding with estimates taken
// before the movement collapses, while LF-Backscatter needs no channel
// estimates at all (it only assumes stability within one ~1 ms epoch).
#include <cstdio>

#include "baseline/buzz.h"
#include "core/lf_decoder.h"
#include "protocol/frame.h"
#include "reader/receiver.h"
#include "tag/tag.h"
#include "channel/dynamics.h"
#include "sim/table.h"

using namespace lfbs;

namespace {

void print_stats(const std::string& name,
                 const channel::TraceStats& stats, sim::Table& table) {
  table.add_row({name, sim::fmt(stats.mean_magnitude, 3),
                 sim::fmt(stats.magnitude_stddev, 3),
                 sim::fmt(stats.total_excursion, 3)});
}

/// Buzz frame success rate when the true channel has drifted from the
/// estimates by `relative_error`.
double buzz_success_with_drift(double relative_error, std::size_t trials) {
  std::size_t ok = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    Rng rng(9000 + t);
    std::vector<Complex> channels;
    for (int i = 0; i < 8; ++i) {
      channels.push_back(
          std::polar(rng.uniform(0.06, 0.2), rng.uniform(0.0, 6.2831)));
    }
    baseline::Buzz buzz(baseline::BuzzConfig{}, channels);
    buzz.estimate_channels(rng);
    buzz.perturb_channels(relative_error, rng);
    std::vector<std::vector<bool>> messages;
    for (int i = 0; i < 8; ++i) messages.push_back(rng.bits(96));
    const auto result = buzz.transfer(messages, rng);
    bool all = result.success;
    if (all) {
      for (int i = 0; i < 8; ++i) {
        if (result.decoded[i] != messages[i]) all = false;
      }
    }
    if (all) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(trials);
}

/// LF-Backscatter frame success while the channel coefficient *moves
/// during the epoch*: the decoder's only channel assumption is stability
/// within one (short) epoch (§3.4).
double lf_success_under_motion(double excursion_per_epoch,
                               std::size_t trials) {
  std::size_t ok = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    Rng rng(7000 + t);
    const Complex h0 =
        std::polar(rng.uniform(0.1, 0.2), rng.uniform(0.0, 6.2831));
    const Seconds duration = 1.5e-3;
    const SampleRate fs = 5.0 * kMsps;
    const auto n = static_cast<std::size_t>(duration * fs);

    // Coefficient rotates by `excursion_per_epoch` of a full turn within
    // the epoch — a greatly exaggerated version of Fig 1's second-scale
    // dynamics, to find the tolerance.
    std::vector<std::vector<Complex>> coeffs(1, std::vector<Complex>(n));
    for (std::size_t i = 0; i < n; ++i) {
      const double angle = 2.0 * M_PI * excursion_per_epoch *
                           static_cast<double>(i) / static_cast<double>(n);
      coeffs[0][i] = h0 * std::polar(1.0, angle);
    }

    protocol::FrameConfig fc;
    const auto payload = rng.bits(fc.payload_bits);
    tag::TagConfig tc;
    tag::Tag tag(tc, rng);
    const auto tx = tag.transmit_epoch({protocol::build_frame(payload, fc)},
                                       duration, rng);
    channel::ChannelModel ch;
    ch.add_tag(h0);
    const auto levels =
        tx.timeline.render(fs, n, 0.12e-6);
    auto buffer = ch.compose_time_varying(fs, {levels}, coeffs);
    channel::add_awgn(buffer, 1e-6, rng);

    core::DecoderConfig dc;
    dc.frame = fc;
    const auto valid = core::LfDecoder(dc).decode(buffer).valid_payloads();
    for (const auto& p : valid) {
      if (p == payload) {
        ++ok;
        break;
      }
    }
  }
  return static_cast<double>(ok) / static_cast<double>(trials);
}

}  // namespace

int main() {
  sim::print_banner(
      "Figure 1", "received-signal dynamics under movement scenarios",
      "12 s coefficient traces at 1 kHz; baseline |h| = 0.25 at 2 m");

  Rng rng(555);
  const Complex h0{0.21, 0.13};
  const SampleRate fs = 1000.0;
  const Seconds duration = 12.0;

  sim::Table table({"scenario", "mean |h|", "stddev |h|",
                    "total IQ excursion"});
  {
    channel::PeopleMovementModel model;
    const auto trace = model.generate(h0, fs, duration, rng);
    print_stats("(a) people movement", channel::summarize_trace(trace), table);
  }
  {
    channel::TagRotationModel model;
    const auto trace = model.generate(h0, fs, duration, rng);
    print_stats("(b) tag rotation", channel::summarize_trace(trace), table);
  }
  {
    channel::CouplingModel model;
    const auto traces = model.generate(h0, Complex{-0.12, 0.17}, fs, duration, rng);
    print_stats("(c) coupled tag 1", channel::summarize_trace(traces[0]), table);
    print_stats("(c) coupled tag 2", channel::summarize_trace(traces[1]), table);
  }
  // Control: a static channel barely moves.
  {
    std::vector<Complex> static_trace(
        static_cast<std::size_t>(fs * duration), h0);
    print_stats("static control", channel::summarize_trace(static_trace),
                table);
  }
  table.print();

  std::printf(
      "\nLF-Backscatter decoding while the coefficient moves *within* one "
      "1.5 ms epoch\n(Fig 1's dynamics are ~1000x slower than even the "
      "smallest excursion here):\n");
  sim::Table motion({"coefficient rotation per epoch", "LF frame success"});
  for (double excursion : {0.0, 0.02, 0.05, 0.1, 0.25}) {
    motion.add_row({sim::fmt_percent(excursion) + " of a turn",
                    sim::fmt_percent(lf_success_under_motion(excursion, 10))});
  }
  motion.print();

  std::printf("\nconsequence for channel-estimation schemes (8 Buzz tags, "
              "stale estimates):\n");
  sim::Table impact({"channel drift vs estimate", "Buzz success rate",
                     "LF-Backscatter"});
  for (double err : {0.0, 0.05, 0.15, 0.3}) {
    impact.add_row({sim::fmt_percent(err),
                    sim::fmt_percent(buzz_success_with_drift(err, 10)),
                    "unaffected (no estimation)"});
  }
  impact.print();
  return 0;
}

// Figure 10: aggregate LF-Backscatter throughput when all sixteen nodes
// raise their bitrate — how far can edges be packed before the time domain
// saturates?
//
// Paper result: throughput scales up to ~200 kbps per node and crashes
// past it (at 250 kbps and a 25 Msps reader, 16 nodes already exceed the
// ~33-node edge-packing budget); IQ separation and error correction pull
// throughput back up when nearly all edges collide.
#include <cstdio>

#include "sim/metrics.h"
#include "sim/scenario.h"
#include "sim/plot.h"
#include "sim/table.h"

using namespace lfbs;

namespace {

double run_point(BitRate rate, bool iq, bool error, std::size_t epochs,
                 std::uint64_t seed) {
  sim::ThroughputMeter meter;
  for (std::size_t e = 0; e < epochs; ++e) {
    Rng rng(seed + e * 7919);
    sim::ScenarioConfig sc;
    sc.num_tags = 16;
    sc.rates = {rate};
    // One 113-bit frame plus start jitter must fit the epoch.
    sc.epoch_duration = 115.0 / rate + 0.25e-3;
    sim::Scenario scenario(sc, rng);
    core::DecoderConfig dc = scenario.default_decoder();
    dc.rate_plan.rates = {rate};
    dc.max_rate = rate;
    dc.collision_recovery = iq;
    dc.error_correction = error;
    const auto outcome = scenario.run_epoch(dc, rng);
    meter.add(outcome.bits_recovered, outcome.duration);
  }
  return meter.goodput();
}

}  // namespace

int main() {
  sim::print_banner(
      "Figure 10", "throughput vs per-node bitrate (16 nodes)",
      "16 nodes, common bitrate swept 25..300 kbps, 25 Msps reader");

  sim::Table table({"bitrate (kbps)", "Edge (kbps)", "Edge+IQ (kbps)",
                    "Edge+IQ+Error (kbps)", "max (kbps)"});
  std::vector<double> xs, edge_ys, iq_ys, full_ys;
  for (double rate_kbps : {25.0, 50.0, 100.0, 150.0, 200.0, 250.0, 300.0}) {
    const BitRate rate = rate_kbps * kKbps;
    const double edge = run_point(rate, false, false, 6, 97);
    const double edge_iq = run_point(rate, true, false, 6, 97);
    const double full = run_point(rate, true, true, 6, 97);
    table.add_row({sim::fmt(rate_kbps, 0), sim::fmt(edge / 1e3, 0),
                   sim::fmt(edge_iq / 1e3, 0), sim::fmt(full / 1e3, 0),
                   sim::fmt(16.0 * rate_kbps * 96.0 / 115.0, 0)});
    xs.push_back(rate_kbps);
    edge_ys.push_back(edge / 1e3);
    iq_ys.push_back(edge_iq / 1e3);
    full_ys.push_back(full / 1e3);
  }
  table.print();

  std::printf("\naggregate throughput (kbps) vs per-node bitrate (kbps):\n");
  sim::AsciiPlot plot(60, 12);
  plot.add_series("Edge", xs, edge_ys);
  plot.add_series("Edge+IQ", xs, iq_ys);
  plot.add_series("Edge+IQ+Error", xs, full_ys);
  plot.print();

  std::printf(
      "\npaper: aggregate throughput grows to ~200 kbps/node, then crashes; "
      "IQ + error correction keep 250 kbps usable\n");
  return 0;
}

// Figure 14: bit error rate vs SNR for LF-Backscatter's edge-differential
// decoding and conventional full-bit ASK amplitude decoding, single tag.
//
// Paper result: LF-Backscatter needs roughly 4 dB more SNR than ASK for the
// same BER; both go error-free above ~15 dB. Via the radar equation this
// derates a 10 ft ASK range to ~8.1 ft (printed below).
#include <cstdio>

#include "baseline/ask_decoder.h"
#include "channel/channel_model.h"
#include "channel/link_budget.h"
#include "channel/noise.h"
#include "core/lf_decoder.h"
#include "reader/receiver.h"
#include "sim/metrics.h"
#include "sim/plot.h"
#include "sim/table.h"
#include "tag/tag.h"

#include <tuple>

using namespace lfbs;

namespace {

struct BerPoint {
  double lf = 0.0;
  double ask = 0.0;
};

BerPoint measure(double snr_db, std::size_t epochs, std::uint64_t seed) {
  const BitRate rate = 100.0 * kKbps;
  const Complex h{0.08, 0.06};
  const double signal_power = std::norm(h);

  sim::BerMeter lf_meter, ask_meter;
  for (std::size_t e = 0; e < epochs; ++e) {
    Rng rng(seed + e * 6151);
    reader::ReceiverConfig rc;
    rc.sample_rate = 5.0 * kMsps;
    rc.noise_power = channel::noise_power_for_snr(signal_power, snr_db);
    channel::ChannelModel ch;
    ch.add_tag(h);
    reader::Receiver receiver(rc, ch);

    // One long raw bit stream; the leading 1 is the anchor.
    std::vector<bool> bits = rng.bits(2400);
    bits[0] = true;
    tag::TagConfig tc;
    tc.rate = rate;
    tag::Tag tag(tc, rng);
    const Seconds duration = 2400.0 / rate + 0.3e-3;
    const auto tx = tag.transmit_epoch({bits}, duration, rng);
    const auto buffer = receiver.receive_epoch({{tx.timeline}}, duration, rng);

    // LF-Backscatter decode. Low-SNR single-tag configuration: with no
    // neighbouring tags to avoid, the edge detector can afford windows a
    // third of a bit long (the multi-tag default uses ~3-sample windows,
    // tuned for edge packing, which would cost several more dB here).
    core::DecoderConfig dc;
    dc.auto_scale_edge = false;
    const double spb = samples_per_bit(rc.sample_rate, rate);
    dc.edge.window = static_cast<std::size_t>(spb / 3.0);
    dc.edge.guard = 2;
    dc.edge.min_separation = static_cast<std::size_t>(spb / 2.0);
    dc.edge.threshold_sigma = 3.0;  // single tag: no background to reject
    dc.group_tolerance = 10.0;
    dc.merge_radius = 12.0;
    dc.corrector.edge_probability = 0.5;
    core::LfDecoder decoder(dc);
    const auto result = decoder.decode(buffer);
    const core::DecodedStream* best = nullptr;
    for (const auto& s : result.streams) {
      if (best == nullptr || s.bits.size() > best->bits.size()) best = &s;
    }
    if (best != nullptr) {
      // BER is measured after frame synchronization (a missed anchor edge
      // shifts the stream; real receivers re-align on the frame header):
      // align within +/-8 bits before counting errors.
      std::size_t best_err = tx.bits.size();
      for (int shift = -8; shift <= 8; ++shift) {
        // shift > 0: decoder missed leading bits; shift < 0: a spurious
        // early edge prepended bits.
        const std::size_t sent_off = shift > 0 ? shift : 0;
        const std::size_t got_off = shift < 0 ? -shift : 0;
        if (sent_off >= tx.bits.size() || got_off >= best->bits.size()) {
          continue;
        }
        std::size_t err = 0, inv_err = 0;
        const std::size_t n = std::min(best->bits.size() - got_off,
                                       tx.bits.size() - sent_off);
        for (std::size_t i = 0; i < n; ++i) {
          if (best->bits[i + got_off] != tx.bits[i + sent_off]) {
            ++err;
          } else {
            ++inv_err;
          }
        }
        // Polarity is resolved by the frame anchor in the real protocol; a
        // spurious pre-anchor edge can flip it, which frame sync (not the
        // channel) corrects — measure BER after polarity resolution.
        err = std::min(err, inv_err);
        // BER is the error rate over the decoded span; truncated streams
        // are a framing loss, handled by retransmission at the protocol
        // layer, and would otherwise masquerade as a ~50% error floor.
        if (n > 0) {
          best_err = std::min(best_err, err * tx.bits.size() / n);
        }
      }
      lf_meter.add(std::min(best_err, tx.bits.size()), tx.bits.size());
    } else {
      lf_meter.add(tx.bits.size(), tx.bits.size());  // total loss
    }

    // Conventional ASK decode.
    baseline::AskDecoderConfig ac;
    ac.rate = rate;
    const baseline::AskDecoder ask(ac);
    auto ask_result = ask.decode(buffer);
    ask_result.bits.resize(std::min(ask_result.bits.size(), tx.bits.size()));
    ask_meter.compare(tx.bits, ask_result.bits);
  }
  return {lf_meter.ber(), ask_meter.ber()};
}

}  // namespace

int main() {
  sim::print_banner(
      "Figure 14", "SNR vs BER: LF-Backscatter vs conventional ASK",
      "single 100 kbps tag, 5 Msps reader, ~24 kbit per point; SNR = tag "
      "reflection power |h|^2 over noise power");

  sim::Table table({"SNR (dB)", "ASK BER", "LF-Backscatter BER"});
  std::vector<std::tuple<int, double, double>> curve;
  for (int snr = -6; snr <= 16; snr += 2) {
    const BerPoint pt = measure(snr, 10, 4242 + snr);
    curve.emplace_back(snr, pt.ask, pt.lf);
    table.add_row({std::to_string(snr),
                   pt.ask > 0 ? sim::fmt(pt.ask, 6) : "0 (error-free)",
                   pt.lf > 0 ? sim::fmt(pt.lf, 6) : "0 (error-free)"});
  }
  table.print();

  std::printf("\nBER vs SNR (log y; points at the floor are error-free):\n");
  sim::AsciiPlot plot(56, 12);
  plot.set_log_y(true);
  {
    std::vector<double> xs, ask_ys, lf_ys;
    for (const auto& [snr, ask, lf] : curve) {
      xs.push_back(snr);
      ask_ys.push_back(ask);
      lf_ys.push_back(lf);
    }
    plot.add_series("ASK", xs, ask_ys);
    plot.add_series("LF-Backscatter", xs, lf_ys);
  }
  plot.print();

  // Waterfall knees: the lowest SNR above which each scheme stays clean.
  double lf_clean_at = -8.0, ask_clean_at = -8.0;
  for (const auto& [snr, ask, lf] : curve) {
    if (ask > 0.0) ask_clean_at = snr + 2.0;
    if (lf > 0.0) lf_clean_at = snr + 2.0;
  }

  const double gap_db = lf_clean_at - ask_clean_at;
  std::printf("\nerror-free above: ASK %.0f dB, LF %.0f dB -> gap ~%.0f dB "
              "(paper: ~4 dB, both clean above ~15 dB)\n",
              ask_clean_at, lf_clean_at, gap_db);

  // Range derating via the radar equation (§5.4).
  std::printf("range derating at the measured gap: 10 ft ASK -> %.1f ft LF "
              "(paper: 8.1 ft); 30 ft -> %.1f ft (paper: 23.7 ft)\n",
              channel::LinkBudget::derated_range(10.0, gap_db),
              channel::LinkBudget::derated_range(30.0, gap_db));
  return 0;
}

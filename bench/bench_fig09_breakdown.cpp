// Figure 9: contribution of each decoding module to LF-Backscatter's
// throughput — edge-based concurrency alone ("Edge"), plus IQ cluster
// collision detection/separation ("Edge+IQ"), plus Viterbi error
// correction ("Edge+IQ+Error").
//
// Paper result: edge concurrency does most of the work; collision recovery
// adds ~5.6% and error correction another ~7.7% at 16 nodes.
#include <cstdio>

#include "sim/metrics.h"
#include "sim/scenario.h"
#include "sim/table.h"

using namespace lfbs;

namespace {

double run_point(std::size_t nodes, bool iq, bool error, std::size_t epochs,
                 std::uint64_t seed) {
  sim::ThroughputMeter meter;
  for (std::size_t e = 0; e < epochs; ++e) {
    Rng rng(seed + e * 7919);
    sim::ScenarioConfig sc;
    sc.num_tags = nodes;
    sim::Scenario scenario(sc, rng);
    core::DecoderConfig dc = scenario.default_decoder();
    dc.collision_recovery = iq;
    dc.error_correction = error;
    const auto outcome = scenario.run_epoch(dc, rng);
    meter.add(outcome.bits_recovered, outcome.duration);
  }
  return meter.goodput();
}

}  // namespace

int main() {
  sim::print_banner(
      "Figure 9", "throughput breakdown by decoding module",
      "same workload as Figure 8 with pipeline stages toggled "
      "(Edge / Edge+IQ / Edge+IQ+Error)");

  sim::Table table({"nodes", "Edge (kbps)", "Edge+IQ (kbps)",
                    "Edge+IQ+Error (kbps)"});
  for (std::size_t nodes : {4u, 8u, 12u, 16u}) {
    const double edge = run_point(nodes, false, false, 8, 42 + nodes);
    const double edge_iq = run_point(nodes, true, false, 8, 42 + nodes);
    const double full = run_point(nodes, true, true, 8, 42 + nodes);
    table.add_row({std::to_string(nodes), sim::fmt(edge / 1e3, 0),
                   sim::fmt(edge_iq / 1e3, 0), sim::fmt(full / 1e3, 0)});
  }
  table.print();
  std::printf(
      "\npaper: each stage adds throughput; at 16 nodes IQ separation adds "
      "~5.6%% and error correction ~7.7%% over edge-only decoding\n");
  return 0;
}

// Figure 4: the comparator/capacitor wake-up circuit as a free random
// offset source. The capacitor charging curve depends on incoming energy,
// part tolerance, and charging noise, so the comparator fire time varies —
// across tags and across epochs.
#include <cstdio>

#include "dsp/stats.h"
#include "sim/table.h"
#include "tag/start_trigger.h"

using namespace lfbs;

int main() {
  sim::print_banner(
      "Figure 4", "comparator fire time vs incoming energy",
      "RC = 50 us +/-20%, threshold 0.6 of nominal V-infinity; fire delays "
      "in microseconds; bit period at 100 kbps is 10 us");

  Rng rng(31);
  sim::Table table({"incoming energy", "mean fire delay (us)",
                    "per-epoch jitter, 1 sigma (us)",
                    "offset spread mod 10 us bit"});
  for (double energy : {0.7, 0.85, 1.0, 1.15, 1.3}) {
    // Across parts: draw many triggers; per part: repeated fires.
    std::vector<double> delays;
    dsp::RunningStats per_epoch_jitter;
    for (int part = 0; part < 200; ++part) {
      tag::StartTrigger trigger(tag::StartTrigger::Config{}, rng);
      std::vector<double> fires;
      for (int epoch = 0; epoch < 8; ++epoch) {
        fires.push_back(trigger.fire_delay(energy, rng) * 1e6);
      }
      delays.push_back(fires.front());
      per_epoch_jitter.add(dsp::stddev(fires));
    }
    // How uniformly do the offsets cover one 10 us bit period?
    std::vector<double> offsets;
    for (double d : delays) offsets.push_back(std::fmod(d, 10.0));
    table.add_row({sim::fmt(energy, 2), sim::fmt(dsp::mean(delays), 1),
                   sim::fmt(per_epoch_jitter.mean(), 3),
                   sim::fmt(dsp::stddev(offsets), 2) + " us sd"});
  }
  table.print();
  std::printf(
      "\nacross-part delay spread covers several bit periods, so offsets "
      "mod one bit are effectively random — the free randomization of "
      "Section 3.2\n");
  return 0;
}

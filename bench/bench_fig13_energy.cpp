// Figure 13: tag energy efficiency (bits per microjoule) of TDMA (EPC
// Gen 2), Buzz, and LF-Backscatter as the node count grows.
//
// Paper result: LF-Backscatter is ~20x more efficient than Buzz and about
// two orders of magnitude more efficient than EPC Gen 2. Power numbers come
// from the activity-based model in src/energy (our stand-in for the paper's
// SPICE simulation of synthesized Verilog; calibration in EXPERIMENTS.md).
#include <cstdio>

#include "baseline/buzz.h"
#include "baseline/tdma.h"
#include "energy/power_model.h"
#include "sim/scenario.h"
#include "sim/table.h"

using namespace lfbs;

namespace {

/// Per-node goodputs for the Fig 8 workload (quick re-run).
struct PerNode {
  double lf = 0.0, buzz = 0.0, tdma = 0.0;
};

PerNode per_node_goodput(std::size_t nodes, std::uint64_t seed) {
  PerNode out;
  // LF: physical simulation, a few epochs.
  std::size_t bits = 0;
  Seconds time = 0.0;
  for (std::size_t e = 0; e < 4; ++e) {
    Rng rng(seed + e * 7919);
    sim::ScenarioConfig sc;
    sc.num_tags = nodes;
    sim::Scenario scenario(sc, rng);
    const auto outcome = scenario.run_epoch(scenario.default_decoder(), rng);
    bits += outcome.bits_recovered;
    time += outcome.duration;
  }
  out.lf = static_cast<double>(bits) / time / static_cast<double>(nodes);

  // Buzz: one estimated+rateless transfer.
  Rng rng(seed + 101);
  std::vector<Complex> channels;
  for (std::size_t i = 0; i < nodes; ++i) {
    channels.push_back(
        std::polar(rng.uniform(0.06, 0.2), rng.uniform(0.0, 6.2831)));
  }
  baseline::Buzz buzz(baseline::BuzzConfig{}, channels);
  Seconds air = buzz.estimate_channels(rng);
  std::vector<std::vector<bool>> messages;
  for (std::size_t i = 0; i < nodes; ++i) messages.push_back(rng.bits(96));
  const auto result = buzz.transfer(messages, rng);
  air += result.air_time;
  out.buzz = result.success
                 ? 96.0 * static_cast<double>(nodes) / air /
                       static_cast<double>(nodes)
                 : 0.0;

  // TDMA: serialized slots.
  const baseline::Tdma tdma{baseline::TdmaConfig{}};
  out.tdma = tdma.aggregate_goodput(nodes) / static_cast<double>(nodes);
  return out;
}

}  // namespace

int main() {
  sim::print_banner(
      "Figure 13", "energy efficiency (bits/uJ) vs number of devices",
      "per-node goodput from the Fig 8 workload divided by modelled tag "
      "power; Gen 2 and Buzz include the 1 kB packet FIFO their protocols "
      "need, LF-Backscatter does not (Table 3)");

  const energy::PowerModel model;
  const BitRate rate = 100.0 * kKbps;

  // Tag power is workload-independent; print it once.
  const auto p_lf =
      model.tag_power(energy::Protocol::kLfBackscatter, rate, false);
  const auto p_buzz = model.tag_power(energy::Protocol::kBuzz, rate, true);
  const auto p_gen2 = model.tag_power(energy::Protocol::kEpcGen2, rate, true);
  std::printf("modelled tag power: LF=%.1f uW, Buzz=%.1f uW, Gen2=%.1f uW\n\n",
              p_lf.total_w * 1e6, p_buzz.total_w * 1e6, p_gen2.total_w * 1e6);

  sim::Table table({"nodes", "TDMA (bits/uJ)", "Buzz (bits/uJ)",
                    "LF-Backscatter (bits/uJ)", "LF/Buzz", "LF/TDMA"});
  for (std::size_t nodes : {1u, 4u, 8u, 12u, 16u}) {
    const PerNode g = per_node_goodput(nodes, 42 + nodes);
    const double lf = model.bits_per_microjoule(
        energy::Protocol::kLfBackscatter, rate, g.lf, false);
    const double buzz =
        model.bits_per_microjoule(energy::Protocol::kBuzz, rate, g.buzz, true);
    const double tdma = model.bits_per_microjoule(energy::Protocol::kEpcGen2,
                                                  rate, g.tdma, true);
    table.add_row({std::to_string(nodes), sim::fmt(tdma, 1),
                   sim::fmt(buzz, 1), sim::fmt(lf, 1),
                   sim::fmt_ratio(buzz > 0 ? lf / buzz : 0.0),
                   sim::fmt_ratio(tdma > 0 ? lf / tdma : 0.0)});
  }
  table.print();
  std::printf(
      "\npaper: LF-Backscatter ~20x more efficient than Buzz, ~100x more "
      "than EPC Gen 2\n");
  return 0;
}

// Figure 2: why raw IQ-cluster separation (Angerer et al.) does not scale —
// N synchronized tags produce 2^N clusters whose spacing collapses as N
// grows. The paper shows clean 4-cluster structure for 2 tags (Fig 2b) and
// a hopeless 64-cluster smear for 6 tags (Fig 2c).
#include <cstdio>

#include "baseline/cluster_only.h"
#include "common/rng.h"
#include "sim/plot.h"
#include "sim/table.h"

using namespace lfbs;

int main() {
  sim::print_banner(
      "Figure 2", "IQ clusters of N synchronized tags (cluster-only decode)",
      "oracle nearest-centroid decoding with true channel coefficients — "
      "failures are purely geometric (2^N clusters vs noise)");

  baseline::ClusterOnlyConfig cc;
  cc.bits_per_tag = 2000;
  cc.noise_power = 2e-4;
  const baseline::ClusterOnly decoder(cc);

  sim::Table table({"tags", "clusters", "min cluster distance",
                    "mean bit accuracy"});
  for (std::size_t n = 1; n <= 6; ++n) {
    // Average over placements.
    double acc = 0.0, dist = 0.0;
    const std::size_t trials = 8;
    for (std::size_t t = 0; t < trials; ++t) {
      Rng rng(100 * n + t);
      std::vector<Complex> channels;
      for (std::size_t i = 0; i < n; ++i) {
        channels.push_back(
            std::polar(rng.uniform(0.06, 0.2), rng.uniform(0.0, 6.2831)));
      }
      const auto result = decoder.run(channels, rng);
      acc += result.mean_accuracy;
      dist += result.min_cluster_distance;
    }
    table.add_row({std::to_string(n), std::to_string(1u << n),
                   sim::fmt(dist / trials, 4),
                   sim::fmt_percent(acc / trials)});
  }
  table.print();

  // The Fig 2(b)/2(c) constellations themselves: received IQ points for 2
  // and 6 synchronized tags (scatter; compare how the 4 clusters of the
  // 2-tag case collapse into a 64-cluster smear at 6 tags).
  for (std::size_t n : {2u, 6u}) {
    Rng rng(500 + n);
    std::vector<Complex> channels;
    for (std::size_t i = 0; i < n; ++i) {
      channels.push_back(
          std::polar(rng.uniform(0.06, 0.2), rng.uniform(0.0, 6.2831)));
    }
    const auto centres = baseline::ClusterOnly::centroids(channels);
    std::vector<double> xs, ys;
    for (int k = 0; k < 600; ++k) {
      const Complex c = centres[rng.uniform_u64(centres.size())] +
                        Complex{rng.gaussian(0.0, 0.01),
                                rng.gaussian(0.0, 0.01)};
      xs.push_back(c.real());
      ys.push_back(c.imag());
    }
    std::printf("\nIQ constellation, %zu synchronized tags (%zu clusters):\n",
                n, centres.size());
    sim::AsciiPlot plot(56, 14);
    plot.add_series("samples", xs, ys);
    plot.print();
  }

  std::printf(
      "\npaper: clean separation at 2 tags, unusable at 6 (64 crowded "
      "clusters); Angerer et al. conclude the technique stops at ~2 tags\n");
  return 0;
}

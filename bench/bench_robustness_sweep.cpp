// Extension bench: decode robustness under noise — the seed-configured
// decoder versus the degraded-mode fallback ladder, swept over SNR.
//
// At high SNR the two are bit-identical (the ladder never fires: this is
// the PR's core invariant). As SNR drops below the 6-sigma edge detection
// threshold the primary decode starts returning *nothing* — the stream
// silently vanishes — and the fallback ladder (reseeded k-means, simpler
// Fig 9 stage chain, relaxed adaptive detection) recovers CRC-clean frames
// from captures the seed decoder gave up on. The composite confidence
// score decreases monotonically with the injected noise, so an operator
// can read channel quality off the decode itself.
//
// Usage: bench_robustness_sweep [--json PATH] [--smoke] [--trace-out PATH]
//   --json writes {"points": [{snr_db, baseline_valid, fallback_valid,
//          mean_confidence, fallback_passes, recoveries}, ...]} for
//          scripts/run_all.sh to archive as BENCH_robustness.json.
//   --smoke sweeps only three SNR points with one epoch each (CI
//          sanitizer job).
//   --trace-out writes the sweep's JSONL telemetry (stage spans) — the CI
//          smoke step feeds it to lfbs_report to prove the round trip.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "channel/channel_model.h"
#include "channel/noise.h"
#include "core/lf_decoder.h"
#include "obs/events.h"
#include "obs/trace.h"
#include "protocol/frame.h"
#include "reader/receiver.h"
#include "sim/table.h"
#include "tag/tag.h"

using namespace lfbs;

namespace {

struct Point {
  double snr_db = 0.0;
  std::size_t baseline_valid = 0;
  std::size_t fallback_valid = 0;
  std::size_t fallback_passes = 0;
  std::size_t recoveries = 0;
  /// Captures at this point where the baseline decoded zero valid frames
  /// and the fallback ladder recovered at least one.
  std::size_t rescued_captures = 0;
  double mean_confidence = 0.0;
};

signal::SampleBuffer make_capture(double snr_db, std::uint64_t seed) {
  const Complex h{0.08, 0.06};
  Rng rng(seed);
  reader::ReceiverConfig rc;
  rc.sample_rate = 5.0 * kMsps;
  rc.noise_power = channel::noise_power_for_snr(std::norm(h), snr_db);
  channel::ChannelModel ch;
  ch.add_tag(h);
  reader::Receiver receiver(rc, ch);
  protocol::FrameConfig fc;
  std::vector<std::vector<bool>> frames;
  for (int f = 0; f < 8; ++f) {
    frames.push_back(protocol::build_frame(rng.bits(96), fc));
  }
  tag::TagConfig tc;
  tag::Tag tag(tc, rng);
  const Seconds duration = 8 * 113.0 / tc.rate + 1e-3;
  const auto tx = tag.transmit_epoch(frames, duration, rng);
  std::vector<signal::StateTimeline> timelines{tx.timeline};
  return receiver.receive_epoch(timelines, duration, rng);
}

Point run_point(double snr_db, std::size_t epochs, std::uint64_t seed) {
  Point p;
  p.snr_db = snr_db;
  double conf_sum = 0.0;
  std::size_t conf_n = 0;
  for (std::size_t e = 0; e < epochs; ++e) {
    const auto buffer = make_capture(snr_db, seed + e * 6151);
    std::size_t capture_valid[2] = {0, 0};
    for (int fb = 0; fb < 2; ++fb) {
      core::DecoderConfig dc;
      dc.robustness.fallback = fb != 0;
      const auto result = core::LfDecoder(dc).decode(buffer);
      std::size_t valid = 0;
      for (const auto& s : result.streams) {
        for (const auto& f : s.frames) valid += f.valid();
      }
      capture_valid[fb] = valid;
      if (fb != 0) {
        p.fallback_valid += valid;
        p.fallback_passes += result.diagnostics.fallback_passes;
        p.recoveries += result.diagnostics.fallback_recoveries;
        for (const auto& s : result.streams) {
          conf_sum += s.confidence.score();
          ++conf_n;
        }
      } else {
        p.baseline_valid += valid;
      }
    }
    if (capture_valid[0] == 0 && capture_valid[1] > 0) ++p.rescued_captures;
  }
  p.mean_confidence = conf_n > 0 ? conf_sum / static_cast<double>(conf_n)
                                 : 0.0;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string trace_out;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_robustness_sweep [--json PATH] [--smoke] "
                   "[--trace-out PATH]\n");
      return 2;
    }
  }

  std::unique_ptr<obs::JsonlWriter> telemetry_writer;
  std::unique_ptr<obs::Tracer> tracer;
  if (!trace_out.empty()) {
    telemetry_writer = std::make_unique<obs::JsonlWriter>(trace_out);
    if (!telemetry_writer->ok()) {
      std::fprintf(stderr, "error: cannot open --trace-out %s\n",
                   trace_out.c_str());
      return 2;
    }
    tracer = std::make_unique<obs::Tracer>();
    tracer->set_sink(telemetry_writer.get());
    obs::set_tracer(tracer.get());
  }

  sim::print_banner(
      "Robustness", "degraded-mode decode vs SNR, single tag",
      "baseline = seed decoder config; fallback adds the degraded-mode "
      "ladder (reseed, stage shedding, relaxed adaptive detection)");

  const std::vector<double> snrs =
      smoke ? std::vector<double>{18.0, 8.0, 6.0}
            : std::vector<double>{20.0, 16.0, 12.0, 10.0, 8.0, 7.0, 6.0,
                                  5.0};
  const std::size_t epochs = smoke ? 1 : 3;

  sim::Table table({"SNR (dB)", "baseline frames", "fallback frames",
                    "ladder passes", "captures rescued", "confidence"});
  std::vector<Point> points;
  for (double snr : snrs) {
    points.push_back(run_point(snr, epochs, 77));
    const Point& p = points.back();
    table.add_row({sim::fmt(p.snr_db, 0), std::to_string(p.baseline_valid),
                   std::to_string(p.fallback_valid),
                   std::to_string(p.fallback_passes),
                   std::to_string(p.rescued_captures),
                   sim::fmt(p.mean_confidence, 3)});
  }
  table.print();

  std::size_t rescued_points = 0;
  for (const Point& p : points) {
    if (p.rescued_captures > 0) ++rescued_points;
  }
  std::printf("\nSNR points with a capture the baseline decoded to nothing "
              "and the fallback recovered CRC-clean frames from: %zu\n",
              rescued_points);

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::fprintf(f, "{\"points\": [");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      std::fprintf(f,
                   "%s{\"snr_db\": %g, \"baseline_valid\": %zu, "
                   "\"fallback_valid\": %zu, \"mean_confidence\": %.4f, "
                   "\"fallback_passes\": %zu, \"recoveries\": %zu, "
                   "\"rescued_captures\": %zu}",
                   i == 0 ? "" : ", ", p.snr_db, p.baseline_valid,
                   p.fallback_valid, p.mean_confidence, p.fallback_passes,
                   p.recoveries, p.rescued_captures);
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (tracer) {
    obs::set_tracer(nullptr);
    tracer->flush();
    telemetry_writer->flush();
    std::printf("wrote %s (%zu spans)\n", trace_out.c_str(),
                tracer->recorded());
  }
  return 0;
}

// Table 2: accuracy of IQ cluster-based separation of fully colliding
// edges, under three settings:
//   100 kbps with 14 background nodes, 100 kbps without background,
//   10 kbps without background.
//
// Paper result: 80.88% / 86.89% / 95.40% — background chatter raises the
// noise floor; lower bitrates allow longer differential averaging.
#include <cstdio>

#include "channel/channel_model.h"
#include "core/lf_decoder.h"
#include "reader/receiver.h"
#include "sim/table.h"
#include "tag/tag.h"

using namespace lfbs;

namespace {

/// Runs one trial: two tags with *identical* start offsets (a full
/// collision) plus optional background tags; returns per-bit accuracy of
/// the two recovered collision components.
double collision_accuracy(BitRate rate, std::size_t background,
                          std::uint64_t seed) {
  Rng rng(seed);
  reader::ReceiverConfig rc;
  rc.sample_rate = 25.0 * kMsps;
  rc.noise_power = 1e-5;
  channel::ChannelModel ch;

  // The two colliders.
  std::vector<Complex> h;
  for (int i = 0; i < 2; ++i) {
    h.push_back(std::polar(rng.uniform(0.08, 0.16), rng.uniform(0.0, 6.2831)));
    ch.add_tag(h.back());
  }
  for (std::size_t i = 0; i < background; ++i) {
    ch.add_tag(std::polar(rng.uniform(0.06, 0.2), rng.uniform(0.0, 6.2831)));
  }

  const std::size_t nbits = 150;
  const Seconds start = 60e-6;
  const Seconds duration = start + (static_cast<double>(nbits) + 4.0) / rate;

  // Colliders: same start, same rate, tiny sub-sample skew.
  std::vector<std::vector<bool>> sent;
  std::vector<signal::StateTimeline> timelines;
  for (int i = 0; i < 2; ++i) {
    std::vector<bool> bits = rng.bits(nbits);
    bits[0] = true;  // anchor
    sent.push_back(bits);
    const Seconds skew = rng.uniform(0.0, 0.04e-6);
    timelines.push_back(
        signal::nrz_timeline(bits, start + skew, 1.0 / rate));
  }
  // Background tags run the normal comparator/clock physics at 100 kbps.
  for (std::size_t i = 0; i < background; ++i) {
    tag::TagConfig tc;
    tc.rate = 100.0 * kKbps;
    tc.incoming_energy = rng.uniform(0.7, 1.3);
    tag::Tag t(tc, rng);
    std::vector<bool> bits = rng.bits(
        static_cast<std::size_t>(duration * 100.0 * kKbps * 0.9));
    if (!bits.empty()) bits[0] = true;
    const auto tx = t.transmit_epoch({bits}, duration, rng);
    timelines.push_back(tx.timeline);
  }

  reader::Receiver receiver(rc, ch);
  const auto buffer = receiver.receive_epoch(timelines, duration, rng);

  core::DecoderConfig dc;
  dc.rate_plan.rates = {rate, 100.0 * kKbps};
  dc.max_rate = 100.0 * kKbps;
  const core::LfDecoder decoder(dc);
  const auto result = decoder.decode(buffer);

  // Match each collider's sent bits against its best decoded stream.
  double total = 0.0;
  for (int i = 0; i < 2; ++i) {
    std::size_t best = 0;
    for (const auto& s : result.streams) {
      std::size_t match = 0;
      const std::size_t n = std::min(s.bits.size(), sent[i].size());
      for (std::size_t b = 0; b < n; ++b) {
        if (s.bits[b] == sent[i][b]) ++match;
      }
      best = std::max(best, match);
    }
    total += static_cast<double>(best) / static_cast<double>(nbits);
  }
  return total / 2.0;
}

double average_accuracy(BitRate rate, std::size_t background,
                        std::size_t trials) {
  double sum = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    sum += collision_accuracy(rate, background, 1000 + t * 37);
  }
  return sum / static_cast<double>(trials);
}

}  // namespace

int main() {
  sim::print_banner(
      "Table 2", "separating edge collisions with IQ-based classification",
      "two tags with identical start offsets (every edge collides); "
      "accuracy = per-bit agreement of the separated components");

  const std::size_t trials = 12;
  sim::Table table({"setting", "accuracy (ours)", "accuracy (paper)"});
  table.add_row({"100 kbps with background nodes",
                 sim::fmt_percent(average_accuracy(100.0 * kKbps, 14, trials)),
                 "80.88%"});
  table.add_row({"100 kbps w/o background nodes",
                 sim::fmt_percent(average_accuracy(100.0 * kKbps, 0, trials)),
                 "86.89%"});
  table.add_row({"10 kbps w/o background nodes",
                 sim::fmt_percent(average_accuracy(10.0 * kKbps, 0, trials)),
                 "95.40%"});
  table.print();
  return 0;
}

// Ablation study (not a paper figure): how much each decoder design choice
// contributes at the paper's 16-node / 100 kbps operating point, measured
// as per-epoch frame recovery over 20 random deployments.
//
// Ablated knobs (see DESIGN.md §4):
//   - interference cancellation (stage 7, transient-crossing repair)
//   - three-way collision separation (27-cluster grid extension)
//   - joint Viterbi (error_correction; hard decisions otherwise)
//   - IQ collision recovery entirely (paper's Fig 9 "Edge" mode)
//   - group merge radius (splinter folding vs pile-up chaining)
#include <cstdio>

#include "sim/scenario.h"
#include "sim/table.h"

using namespace lfbs;

namespace {

double recovery(const core::DecoderConfig& dc, std::size_t seeds,
                Seconds epoch = 1.5e-3, std::size_t frames_per_tag = 1) {
  std::size_t sent = 0, rec = 0;
  for (std::size_t seed = 1; seed <= seeds; ++seed) {
    Rng rng(seed * 1000 + 7);
    sim::ScenarioConfig sc;
    sc.num_tags = 16;
    sc.epoch_duration = epoch;
    sim::Scenario scenario(sc, rng);
    core::DecoderConfig cfg = dc;
    cfg.frame = sc.frame;
    const auto outcome = scenario.run_epoch(cfg, rng, frames_per_tag);
    sent += outcome.sent_payloads.size();
    rec += outcome.payloads_recovered;
  }
  return static_cast<double>(rec) / static_cast<double>(sent);
}

}  // namespace

int main() {
  sim::print_banner(
      "Ablation", "decoder design choices at 16 nodes / 100 kbps",
      "per-epoch frame recovery over 20 deployments; higher is better");

  const std::size_t seeds = 20;
  core::DecoderConfig base;

  sim::Table table({"configuration", "frame recovery"});
  table.add_row({"full decoder", sim::fmt_percent(recovery(base, seeds))});

  {
    core::DecoderConfig cfg = base;
    cfg.interference_cancellation = false;
    table.add_row({"- interference cancellation",
                   sim::fmt_percent(recovery(cfg, seeds))});
  }
  {
    core::DecoderConfig cfg = base;
    cfg.collision.consider_three_way = false;
    table.add_row({"- three-way separation",
                   sim::fmt_percent(recovery(cfg, seeds))});
  }
  {
    core::DecoderConfig cfg = base;
    cfg.error_correction = false;
    table.add_row({"- joint Viterbi (hard decisions)",
                   sim::fmt_percent(recovery(cfg, seeds))});
  }
  {
    core::DecoderConfig cfg = base;
    cfg.collision_recovery = false;
    table.add_row({"- IQ collision recovery (edge-only)",
                   sim::fmt_percent(recovery(cfg, seeds))});
  }
  for (double merge : {2.0, 5.0, 8.0}) {
    core::DecoderConfig cfg = base;
    cfg.merge_radius = merge;
    table.add_row({"merge radius " + sim::fmt(merge, 0) + " samples",
                   sim::fmt_percent(recovery(cfg, seeds))});
  }
  table.print();

  // Second operating point: longer epochs make *transient* effects matter —
  // colliding pairs drift apart mid-epoch and streams cross each other.
  std::printf("\nlong-epoch operating point (4.8 ms, 4 frames/tag):\n");
  sim::Table long_table({"configuration", "frame recovery"});
  long_table.add_row(
      {"full decoder",
       sim::fmt_percent(recovery(base, seeds, 4.8e-3, 4))});
  {
    core::DecoderConfig cfg = base;
    cfg.interference_cancellation = false;
    long_table.add_row({"- interference cancellation",
                        sim::fmt_percent(recovery(cfg, seeds, 4.8e-3, 4))});
  }
  {
    core::DecoderConfig cfg = base;
    cfg.collision.consider_three_way = false;
    long_table.add_row({"- three-way separation",
                        sim::fmt_percent(recovery(cfg, seeds, 4.8e-3, 4))});
  }
  long_table.print();

  std::printf(
      "\nthe default merge radius balances splinter folding (too small "
      "fragments drifting collision pairs) against pile-up chaining (too "
      "large fuses distinct tags into unseparable 3+ groups)\n");
  return 0;
}

// Figure 12: time to inventory N RFID tags (96-bit EPC + CRC-5) with TDMA,
// Buzz, and LF-Backscatter.
//
// Paper result: LF-Backscatter reads identifiers 17x faster than TDMA and
// 9.5x faster than Buzz at 16 tags.
#include <cstdio>

#include "baseline/buzz.h"
#include "baseline/gen2.h"
#include "baseline/tdma.h"
#include "protocol/identification.h"
#include "sim/scenario.h"
#include "sim/table.h"

using namespace lfbs;

namespace {

/// LF-Backscatter inventory: every tag blasts its EPC frame each epoch with
/// a fresh random offset; epochs repeat until every tag has been read.
Seconds lf_identify(std::size_t nodes, Rng& rng, std::size_t* epochs_out) {
  sim::ScenarioConfig sc;
  sc.num_tags = nodes;
  sc.frame.payload_bits = 96;
  sc.frame.crc = protocol::CrcKind::kCrc5;
  sc.epoch_duration = 1.3e-3;

  const std::vector<protocol::EpcId> population =
      protocol::random_epcs(nodes, rng);
  protocol::IdentificationSession session(population);

  std::size_t epochs = 0;
  while (!session.complete() && epochs < 50) {
    // Fresh scenario per epoch: the carrier restart re-randomizes every
    // tag's comparator offset (§3.2).
    Rng epoch_rng = rng.split();
    sim::Scenario scenario(sc, epoch_rng);
    std::vector<std::vector<std::vector<bool>>> payloads;
    for (std::size_t i = 0; i < nodes; ++i) payloads.push_back({population[i]});
    const auto outcome = scenario.run_epoch_with_payloads(
        scenario.default_decoder(), payloads, epoch_rng);
    session.record_round(outcome.decode.valid_payloads(), sc.epoch_duration);
    ++epochs;
  }
  if (epochs_out != nullptr) *epochs_out = epochs;
  return session.elapsed();
}

/// Buzz inventory: channel estimation + lock-step rounds; rateless retries
/// are part of the transfer itself.
Seconds buzz_identify(std::size_t nodes, Rng& rng) {
  std::vector<Complex> channels;
  for (std::size_t i = 0; i < nodes; ++i) {
    channels.push_back(
        std::polar(rng.uniform(0.06, 0.2), rng.uniform(0.0, 6.2831)));
  }
  baseline::BuzzConfig bc;
  bc.message_bits = 96 + 5;
  baseline::Buzz buzz(bc, channels);
  Seconds air = buzz.estimate_channels(rng);
  std::vector<std::vector<bool>> ids;
  for (std::size_t i = 0; i < nodes; ++i) ids.push_back(rng.bits(96 + 5));
  const auto result = buzz.transfer(ids, rng);
  air += result.air_time;
  if (!result.success) air *= 2.0;  // one full retry on failure
  return air;
}

}  // namespace

int main() {
  sim::print_banner(
      "Figure 12", "node identification time vs number of devices",
      "96-bit EPC + CRC-5 per tag; LF epochs repeat with fresh random "
      "offsets until all tags are read; TDMA uses Gen2-style slotted "
      "ALOHA with Q adaptation");

  const baseline::Tdma tdma{baseline::TdmaConfig{}};
  const baseline::Gen2Inventory gen2;
  sim::Table table({"nodes", "Gen2 full (ms)", "TDMA stripped (ms)",
                    "Buzz (ms)", "LF-Backscatter (ms)", "LF epochs",
                    "TDMA/LF", "Buzz/LF"});
  for (std::size_t nodes : {4u, 8u, 12u, 16u}) {
    Rng rng(1234 + nodes);
    double gen2_ms = 0.0, tdma_ms = 0.0, buzz_ms = 0.0, lf_ms = 0.0;
    std::size_t lf_epochs = 0;
    const std::size_t trials = 5;
    for (std::size_t t = 0; t < trials; ++t) {
      gen2_ms += gen2.run(nodes, rng).elapsed * 1e3;
      tdma_ms += tdma.identify(nodes, rng) * 1e3;
      buzz_ms += buzz_identify(nodes, rng) * 1e3;
      std::size_t epochs = 0;
      lf_ms += lf_identify(nodes, rng, &epochs) * 1e3;
      lf_epochs += epochs;
    }
    gen2_ms /= trials;
    tdma_ms /= trials;
    buzz_ms /= trials;
    lf_ms /= trials;
    table.add_row({std::to_string(nodes), sim::fmt(gen2_ms, 1),
                   sim::fmt(tdma_ms, 1), sim::fmt(buzz_ms, 1),
                   sim::fmt(lf_ms, 1),
                   sim::fmt(static_cast<double>(lf_epochs) / trials, 1),
                   sim::fmt_ratio(tdma_ms / lf_ms),
                   sim::fmt_ratio(buzz_ms / lf_ms)});
  }
  table.print();
  std::printf(
      "\n'Gen2 full' runs the discrete-event Query/RN16/ACK engine with "
      "spec-derived timings; 'TDMA stripped' is the paper's pared-down "
      "baseline (which favours TDMA).\n");
  std::printf(
      "\npaper: at 16 tags LF identification is 17x faster than TDMA and "
      "9.5x faster than Buzz\n");
  return 0;
}

// Decoder performance benchmarks (google-benchmark). Not a paper figure:
// sanity that the software decoder keeps up with the 25 Msps stream the
// paper's USRP front end produces, plus microbenchmarks of the hot stages.
#include <benchmark/benchmark.h>

#include "core/lf_decoder.h"
#include "dsp/kmeans.h"
#include "dsp/viterbi.h"
#include "signal/edge_detector.h"
#include "sim/scenario.h"

using namespace lfbs;

namespace {

signal::SampleBuffer make_epoch(std::size_t tags, std::uint64_t seed) {
  Rng rng(seed);
  reader::ReceiverConfig rc;
  channel::ChannelModel ch;
  std::vector<tag::Tag> tag_objs;
  for (std::size_t i = 0; i < tags; ++i) {
    ch.add_tag(std::polar(rng.uniform(0.06, 0.2), rng.uniform(0.0, 6.2831)));
    tag::TagConfig tc;
    tc.incoming_energy = rng.uniform(0.7, 1.3);
    tag_objs.emplace_back(tc, rng);
  }
  reader::Receiver receiver(rc, ch);
  protocol::FrameConfig fc;
  std::vector<signal::StateTimeline> timelines;
  for (auto& t : tag_objs) {
    timelines.push_back(
        t.transmit_epoch({protocol::build_frame(rng.bits(96), fc)}, 1.5e-3,
                         rng)
            .timeline);
  }
  return receiver.receive_epoch(timelines, 1.5e-3, rng);
}

void BM_FullDecode16Tags(benchmark::State& state) {
  const auto buffer = make_epoch(16, 11);
  const core::LfDecoder decoder{core::DecoderConfig{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(decoder.decode(buffer));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buffer.size()));
  state.counters["samples/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(buffer.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullDecode16Tags)->Unit(benchmark::kMillisecond);

void BM_EdgeDetection(benchmark::State& state) {
  const auto buffer = make_epoch(16, 12);
  const signal::EdgeDetector detector{signal::EdgeDetectorConfig{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect(buffer));
  }
  state.counters["samples/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(buffer.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EdgeDetection)->Unit(benchmark::kMillisecond);

void BM_KMeans9(benchmark::State& state) {
  Rng rng(5);
  std::vector<Complex> points;
  for (int i = 0; i < 400; ++i) {
    points.push_back({rng.uniform(-1, 1), rng.uniform(-1, 1)});
  }
  for (auto _ : state) {
    Rng krng(7);
    benchmark::DoNotOptimize(dsp::kmeans(points, 9, krng));
  }
}
BENCHMARK(BM_KMeans9)->Unit(benchmark::kMicrosecond);

void BM_Viterbi4State(benchmark::State& state) {
  const double e = std::log(0.5);
  const double no = dsp::Viterbi::kForbidden;
  const dsp::Viterbi viterbi({{no, e, e, no},
                              {e, no, no, e},
                              {no, e, e, no},
                              {e, no, no, e}},
                             {0.0, no, no, no});
  for (auto _ : state) {
    benchmark::DoNotOptimize(viterbi.decode(
        400, [](std::size_t s, std::size_t st) {
          return -0.1 * static_cast<double>((s * 31 + st) % 7);
        }));
  }
}
BENCHMARK(BM_Viterbi4State)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();

// Figure 11: co-existence of slow and fast tags — two nodes at each of the
// paper's bitrates {0.5, 1, 2, 5, 10, 50, 100} kbps stream concurrently.
//
// Paper result: slow nodes see zero loss next to fast nodes; every node's
// achieved throughput tracks its upper bound (its own bitrate).
#include <cstdio>
#include <set>

#include "sim/scenario.h"
#include "sim/table.h"

using namespace lfbs;

int main() {
  sim::print_banner(
      "Figure 11", "throughput of concurrent nodes at mixed bitrates",
      "two nodes at each of {2, 5, 10, 50, 100} kbps (the figure's ten "
      "nodes; the paper's text also lists 0.5/1 kbps, covered by the test "
      "suite); 12.5 Msps reader, batch-matched (5 ppm) crystals; epoch "
      "fits one 113-bit frame of the slowest tag, faster tags stream "
      "back-to-back");

  const std::vector<double> rate_set = {2, 5, 10, 50, 100};
  sim::ScenarioConfig sc;
  sc.num_tags = rate_set.size() * 2;
  sc.rates.clear();
  for (double r : rate_set) {
    sc.rates.push_back(r * kKbps);
    sc.rates.push_back(r * kKbps);
  }
  sc.sample_rate = 12.5 * kMsps;
  // Batch-matched crystals: over a 227 ms epoch, generic +/-150 ppm parts
  // would drift faster tags across slower tags' edge lattices (see
  // EXPERIMENTS.md); the paper does not discuss this effect.
  sc.clock_drift_ppm = 5.0;
  // 113 bits at 2 kbps = 56.5 ms, plus comparator start margin.
  sc.epoch_duration = 113.0 / (2.0 * kKbps) + 1e-3;

  const std::size_t trials = 10;
  std::vector<double> sent_frames(sc.num_tags, 0.0);
  std::vector<double> recovered_frames(sc.num_tags, 0.0);
  for (std::size_t t = 0; t < trials; ++t) {
    Rng rng(777 + t * 131);
    sim::Scenario scenario(sc, rng);

    // Fill the epoch: each tag streams as many frames as its rate allows
    // (leaving margin for the comparator start delay).
    std::vector<std::vector<std::vector<bool>>> payloads(sc.num_tags);
    for (std::size_t i = 0; i < sc.num_tags; ++i) {
      const double usable = sc.epoch_duration - 2e-3;
      const auto frames = std::max<std::size_t>(
          1, static_cast<std::size_t>(usable * sc.rates[i] / 113.0));
      for (std::size_t f = 0; f < frames; ++f) {
        payloads[i].push_back(rng.bits(96));
      }
      sent_frames[i] += static_cast<double>(frames);
    }
    const auto outcome = scenario.run_epoch_with_payloads(
        scenario.default_decoder(), payloads, rng);

    std::multiset<std::vector<bool>> pool;
    for (const auto& p : outcome.decode.valid_payloads()) pool.insert(p);
    for (std::size_t i = 0; i < sc.num_tags; ++i) {
      for (const auto& sent : payloads[i]) {
        const auto it = pool.find(sent);
        if (it != pool.end()) {
          pool.erase(it);
          recovered_frames[i] += 1.0;
        }
      }
    }
  }

  sim::Table table({"node", "bitrate", "loss rate", "achieved (bps)",
                    "upper bound (bps)"});
  for (std::size_t i = 0; i < sc.num_tags; ++i) {
    const double rate = sc.rates[i];
    const double loss =
        sent_frames[i] > 0
            ? 1.0 - recovered_frames[i] / sent_frames[i]
            : 1.0;
    const double achieved = recovered_frames[i] * 96.0 /
                            (static_cast<double>(trials) * sc.epoch_duration);
    const double upper = rate * 96.0 / 113.0;
    table.add_row({std::to_string(i), format_rate(rate),
                   sim::fmt_percent(loss), sim::fmt(achieved, 0),
                   sim::fmt(upper, 0)});
  }
  table.print();
  std::printf(
      "\npaper: slow nodes have zero loss despite fast nodes chattering; "
      "every node tracks its upper bound (y-axis in logscale there)\n");
  return 0;
}

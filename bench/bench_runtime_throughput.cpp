// Extension bench: effective decode throughput of the concurrent runtime
// (src/runtime) versus worker count, against the serial WindowedDecoder
// baseline on the same capture.
//
// The paper's reader drinks 25 Msps continuously (§2); a deployment's
// decode pipeline has to keep its effective samples/sec above the ADC rate
// or fall behind without bound. Windows are independent until the stitch,
// so throughput should scale with workers until the serial stitch or the
// memory system saturates (on a single-core host the curve is flat — the
// interesting column is then bit-identical output at every width).
//
// Usage: bench_runtime_throughput [--json PATH] [--duration MS]
//   --json writes {"serial_msps": ..., "workers": {"1": ..., ...}} for
//   scripts/run_all.sh to archive as BENCH_runtime.json.
#include <chrono>
#include <cstdio>
#include <ctime>
#include <string>
#include <vector>

#include "channel/channel_model.h"
#include "control/fleet_tracker.h"
#include "core/windowed_decoder.h"
#include "net/frame_server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "protocol/frame.h"
#include "reader/receiver.h"
#include "runtime/runtime.h"
#include "sim/table.h"
#include "tag/tag.h"

#include <algorithm>

using namespace lfbs;

namespace {

/// A long continuous multi-tag capture (the windowed decoder's habitat).
signal::SampleBuffer make_capture(std::size_t num_tags, Seconds duration) {
  Rng rng(424242);
  reader::ReceiverConfig rc;
  rc.sample_rate = 5.0 * kMsps;
  rc.noise_power = 1e-5;
  channel::ChannelModel ch;
  std::vector<tag::Tag> tags;
  protocol::FrameConfig fc;
  for (std::size_t i = 0; i < num_tags; ++i) {
    ch.add_tag(std::polar(rng.uniform(0.08, 0.2), rng.uniform(0.0, 6.2831)));
    tag::TagConfig tc;
    tc.clock.drift_ppm = 150.0;
    tc.incoming_energy = rng.uniform(0.7, 1.3);
    tags.emplace_back(tc, rng);
  }
  std::vector<signal::StateTimeline> timelines;
  for (auto& t : tags) {
    std::vector<std::vector<bool>> frames;
    const auto n = static_cast<std::size_t>((duration - 1e-3) *
                                            (100.0 * kKbps) / 113.0);
    for (std::size_t f = 0; f < n; ++f) {
      frames.push_back(protocol::build_frame(rng.bits(96), fc));
    }
    timelines.push_back(t.transmit_epoch(frames, duration, rng).timeline);
  }
  reader::Receiver receiver(rc, ch);
  return receiver.receive_epoch(timelines, duration, rng);
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// CPU seconds consumed by the calling thread. The publish-path contract
/// is about what FrameServer::publish costs the stitcher thread, so the
/// measurement excludes scheduler noise by construction.
double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Publish rate (frames/sec) of FrameServer::publish with one subscribed
/// client that never reads. publish() runs on the caller (stitcher)
/// thread and never touches a socket; with the subscriber parked, the
/// event loop blocks in poll and the timed loop is exactly the path the
/// decode pipeline pays per frame: encode + quota check + bounded enqueue
/// (steady-state: each publish also drops the oldest queued frame).
double publish_rate_once(bool admission,
                         control::FleetTracker* tracker = nullptr) {
  runtime::FrameEvent event;
  event.stream_start = 1234.5;
  event.rate = 100.0 * kKbps;
  event.frame.payload = std::vector<bool>(96, true);
  event.frame.anchor_ok = true;
  event.frame.crc_ok = true;

  {
    net::FrameServerConfig sc;
    sc.drain_timeout = 0.1;
    sc.send_buffer_bytes = 4096;  // park the event loop early
    if (admission) {
      sc.admission.enabled = true;
      sc.admission.max_connections = 8;
      // Generous quotas: the admission machinery runs on every publish
      // but never sheds by quota — this isolates its bookkeeping cost.
      sc.admission.best_effort.max_frames_per_sec = 1e12;
      sc.admission.best_effort.max_queue_bytes = std::size_t{1} << 30;
    }
    net::FrameServer server(sc);
    // A raw subscriber that handshakes and then never reads.
    net::TcpConnection conn =
        net::TcpConnection::connect("127.0.0.1", server.port(), 5.0);
    std::vector<std::uint8_t> handshake;
    net::Hello hello;
    hello.role = net::PeerRole::kFrameSubscriber;
    hello.name = admission ? "admitted" : "plain";
    net::encode_hello(hello, handshake);
    net::encode_subscribe({}, handshake);
    std::size_t sent = 0;
    while (sent < handshake.size()) {
      const std::ptrdiff_t n = conn.write_some(handshake.data() + sent,
                                               handshake.size() - sent);
      if (n > 0) sent += static_cast<std::size_t>(n);
    }
    server.wait_for_subscriber(5.0);

    constexpr std::size_t kFrames = 50000;
    const double t0 = thread_cpu_seconds();
    for (std::size_t i = 0; i < kFrames; ++i) {
      event.window_index = i;
      server.publish(event);
      // The serve-mode control plane's whole cost on this thread: one
      // FleetTracker fold per published frame (the gateway's bus tap).
      if (tracker != nullptr) tracker->observe_frame(event);
    }
    const double elapsed = thread_cpu_seconds() - t0;
    server.shutdown(/*drain=*/false);
    conn.close();
    return static_cast<double>(kFrames) / elapsed;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  double duration_ms = 160.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--duration" && i + 1 < argc) {
      duration_ms = atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_runtime_throughput [--json PATH] "
                   "[--duration MS]\n");
      return 2;
    }
  }

  sim::print_banner(
      "Extension: streaming runtime throughput",
      "effective decode samples/sec vs window-worker count",
      "3 tags at 100 kbps, 5 Msps, windowed at 20 ms; serial baseline is "
      "core::WindowedDecoder::decode on the same capture");

  const auto capture = make_capture(3, duration_ms * 1e-3);
  std::printf("capture: %zu samples (%.0f ms at %.1f Msps)\n\n",
              capture.size(), duration_ms, capture.sample_rate() / 1e6);

  core::WindowedDecoderConfig wc;

  // Serial baseline (best of 2 to shed first-touch noise).
  double serial_seconds = 1e30;
  core::DecodeResult serial;
  for (int rep = 0; rep < 2; ++rep) {
    const double t0 = now_seconds();
    serial = core::WindowedDecoder(wc).decode(capture);
    serial_seconds = std::min(serial_seconds, now_seconds() - t0);
  }
  const double serial_msps =
      static_cast<double>(capture.size()) / serial_seconds / 1e6;

  sim::Table table({"pipeline", "workers", "wall (ms)", "effective Msps",
                    "speedup", "streams", "identical to serial"});
  table.add_row({"serial", "-", sim::fmt(serial_seconds * 1e3, 1),
                 sim::fmt(serial_msps, 2), "1.00x",
                 std::to_string(serial.streams.size()), "-"});

  std::string json = "{\n  \"serial_msps\": " + sim::fmt(serial_msps, 3) +
                     ",\n  \"workers\": {";
  bool first = true;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    runtime::RuntimeConfig rc;
    rc.windowed = wc;
    rc.workers = workers;
    double best = 1e30;
    runtime::RuntimeResult run;
    for (int rep = 0; rep < 2; ++rep) {
      runtime::DecodeRuntime rt(rc);
      run = rt.decode(capture);
      best = std::min(best, run.stats.wall_seconds);
    }
    const double msps = static_cast<double>(capture.size()) / best / 1e6;
    bool identical = run.decode.streams.size() == serial.streams.size();
    for (std::size_t i = 0; identical && i < serial.streams.size(); ++i) {
      identical = run.decode.streams[i].bits == serial.streams[i].bits;
    }
    table.add_row({"runtime", std::to_string(workers),
                   sim::fmt(best * 1e3, 1), sim::fmt(msps, 2),
                   sim::fmt(msps / serial_msps, 2) + "x",
                   std::to_string(run.decode.streams.size()),
                   identical ? "yes" : "NO"});
    json += std::string(first ? "" : ",") + "\n    \"" +
            std::to_string(workers) + "\": " + sim::fmt(msps, 3);
    first = false;
    if (!identical) {
      table.print();
      std::fprintf(stderr,
                   "FAIL: runtime at %zu workers diverged from serial\n",
                   workers);
      return 1;
    }
  }
  json += "\n  }";
  table.print();
  std::printf(
      "\nnote: speedup tracks available cores; a single-core host shows "
      "~1x while the paper's 25 Msps budget needs the multi-core curve.\n");

  // Telemetry overhead: the same decode with the tracer attached (bounded
  // ring, no sink). Metrics are always on, so the baseline above already
  // pays for them; the span machinery must cost no more than a couple of
  // percent, and the traced output must stay bit-identical to serial.
  {
    runtime::RuntimeConfig rc;
    rc.windowed = wc;
    rc.workers = 2;
    double plain = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
      runtime::DecodeRuntime rt(rc);
      plain = std::min(plain, rt.decode(capture).stats.wall_seconds);
    }
    obs::Tracer tracer;
    obs::set_tracer(&tracer);
    double traced = 1e30;
    runtime::RuntimeResult traced_run;
    for (int rep = 0; rep < 3; ++rep) {
      runtime::DecodeRuntime rt(rc);
      traced_run = rt.decode(capture);
      traced = std::min(traced, traced_run.stats.wall_seconds);
    }
    obs::set_tracer(nullptr);
    const double overhead_pct = (traced - plain) / plain * 100.0;
    bool identical =
        traced_run.decode.streams.size() == serial.streams.size();
    for (std::size_t i = 0; identical && i < serial.streams.size(); ++i) {
      identical = traced_run.decode.streams[i].bits == serial.streams[i].bits;
    }
    std::printf(
        "tracer overhead at 2 workers: %.1f%% (%zu spans, %zu dropped), "
        "traced output %s serial\n",
        overhead_pct, tracer.recorded(), tracer.dropped(),
        identical ? "identical to" : "DIVERGED from");
    // Per-window latency distribution off the shared registry histogram —
    // the same obs::Histogram the runtime's percentile summary uses.
    const obs::MetricsSnapshot snap = obs::metrics().snapshot();
    if (const obs::Histogram* h =
            snap.histogram("runtime.window_latency_ms")) {
      std::printf(
          "window latency (all runs): %llu windows, p50 %.1f ms, p99 %.1f "
          "ms\n",
          static_cast<unsigned long long>(h->count()), h->percentile(0.50),
          h->percentile(0.99));
      // The regression gate (scripts/check_bench_regression.sh) compares
      // these against the committed BENCH_summary.json baseline.
      json += ",\n  \"window_latency_p50_ms\": " +
              sim::fmt(h->percentile(0.50), 3) +
              ",\n  \"window_latency_p99_ms\": " +
              sim::fmt(h->percentile(0.99), 3);
    }
    json += ",\n  \"tracer_overhead_pct\": " + sim::fmt(overhead_pct, 2) +
            ",\n  \"tracer_spans\": " + std::to_string(tracer.recorded());
    if (!identical) {
      std::fprintf(stderr, "FAIL: traced runtime diverged from serial\n");
      return 1;
    }
  }
  // Publish-path admission overhead: the gateway's overload protection
  // (per-class token bucket, quota bookkeeping, budget hooks) rides on
  // every FrameServer::publish — it must cost the stitcher thread almost
  // nothing when nothing is being shed. Clamped at 0 because the gate's
  // extractor reads non-negative numbers, and a negative overhead is just
  // measurement noise anyway.
  {
    // Interleaved pairs: alternating the two configs inside one loop
    // keeps slow system phases (frequency scaling, a background task)
    // from landing entirely on one side of the comparison, and taking
    // the minimum per-pair ratio makes the estimate robust — a real
    // regression (extra work on every publish) shows up in every pair,
    // one noisy rep does not.
    double plain_fps = 0.0, admitted_fps = 0.0;
    double overhead_pct = 1e30;
    for (int rep = 0; rep < 5; ++rep) {
      const double plain = publish_rate_once(false);
      const double admitted = publish_rate_once(true);
      plain_fps = std::max(plain_fps, plain);
      admitted_fps = std::max(admitted_fps, admitted);
      overhead_pct = std::min(overhead_pct, (plain / admitted - 1.0) * 100.0);
    }
    overhead_pct = std::max(0.0, overhead_pct);
    std::printf(
        "publish path: %.0f kframes/s plain, %.0f kframes/s with admission "
        "on (%.2f%% overhead)\n",
        plain_fps / 1e3, admitted_fps / 1e3, overhead_pct);
    json += ",\n  \"publish_kfps\": " + sim::fmt(admitted_fps / 1e3, 1) +
            ",\n  \"publish_admission_overhead_pct\": " +
            sim::fmt(overhead_pct, 2);
  }
  // Control-plane sensing overhead: a serving gateway with --control taps
  // the frame bus and folds every published frame into the FleetTracker on
  // this same stitcher thread. Same interleaved-pairs / min-over-pairs
  // methodology as the admission stanza; the regression gate caps the
  // result absolutely (≤2%) — sensing must be nearly free, the scheduling
  // work happens off the publish path at epoch boundaries.
  {
    double tapped_fps = 0.0;
    double overhead_pct = 1e30;
    for (int rep = 0; rep < 5; ++rep) {
      const double plain = publish_rate_once(false);
      control::FleetTracker tracker;
      const double tapped = publish_rate_once(false, &tracker);
      tapped_fps = std::max(tapped_fps, tapped);
      overhead_pct = std::min(overhead_pct, (plain / tapped - 1.0) * 100.0);
    }
    overhead_pct = std::max(0.0, overhead_pct);
    std::printf(
        "publish path: %.0f kframes/s with the control-plane tracker "
        "tapping the bus (%.2f%% overhead)\n",
        tapped_fps / 1e3, overhead_pct);
    json += ",\n  \"publish_control_overhead_pct\": " +
            sim::fmt(overhead_pct, 2);
  }
  json += "\n}\n";

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

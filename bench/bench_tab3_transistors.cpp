// Table 3: tag hardware complexity — transistor counts of an EPC Gen 2
// RFID chip, a Buzz tag, and an LF-Backscatter tag, with and without the
// 1 kB packet FIFO the first two need.
//
// Paper values: Gen 2 22704 / 34992, Buzz 1792 / 14080, LF 176 / 176.
#include <cstdio>

#include "energy/transistor_model.h"
#include "sim/table.h"

using namespace lfbs;

int main() {
  sim::print_banner(
      "Table 3", "hardware complexity of RFID chip, Buzz, LF-Backscatter",
      "per-component transistor inventory; totals match the paper's "
      "synthesized-Verilog numbers exactly");

  sim::Table table({"protocol", "w/o FIFO", "w/ 1 kB FIFO", "paper w/o",
                    "paper w/"});
  const struct {
    energy::Protocol p;
    const char* without;
    const char* with;
  } rows[] = {
      {energy::Protocol::kEpcGen2, "22704", "34992"},
      {energy::Protocol::kBuzz, "1792", "14080"},
      {energy::Protocol::kLfBackscatter, "176", "176"},
  };
  for (const auto& row : rows) {
    table.add_row({energy::protocol_name(row.p),
                   std::to_string(energy::transistor_count(row.p, false)),
                   std::to_string(energy::transistor_count(row.p, true)),
                   row.without, row.with});
  }
  table.print();

  std::printf("\nper-component breakdown (with FIFO where needed):\n");
  sim::Table parts({"protocol", "control", "demod", "CRC", "RNG", "modulator",
                    "clocking", "FIFO"});
  for (const auto& row : rows) {
    const auto b = energy::transistor_breakdown(row.p, true);
    parts.add_row({energy::protocol_name(row.p),
                   std::to_string(b.control_logic),
                   std::to_string(b.demodulator), std::to_string(b.crc),
                   std::to_string(b.rng), std::to_string(b.modulator),
                   std::to_string(b.clocking), std::to_string(b.fifo)});
  }
  parts.print();
  return 0;
}

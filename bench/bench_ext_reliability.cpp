// Extension bench (§3.6): link-layer reliability via broadcast ACK +
// next-epoch retransmission. Not a paper figure — the paper sketches the
// mechanism and argues collision patterns re-roll each epoch; this bench
// quantifies it: delivery ratio, epochs-to-deliver distribution, and the
// goodput cost of the retransmissions.
#include <cstdio>

#include "protocol/reliability.h"
#include "sim/scenario.h"
#include "sim/table.h"

using namespace lfbs;

int main() {
  sim::print_banner(
      "Extension: reliable transfer",
      "broadcast-ACK retransmission over laissez-faire epochs",
      "frames per tag queued up front; each epoch re-rolls comparator "
      "offsets, so collision victims usually deliver on the next try");

  sim::Table table({"tags", "frames", "delivered", "abandoned", "epochs",
                    "1st try", "2nd try", ">=3rd try",
                    "goodput w/ retx (kbps)"});
  for (std::size_t tags : {8u, 16u}) {
    Rng rng(4040 + tags);
    const std::size_t frames_per_tag = 6;

    protocol::ReliableTransfer link(tags);
    std::vector<std::vector<bool>> all_payloads;
    for (std::size_t t = 0; t < tags; ++t) {
      for (std::size_t f = 0; f < frames_per_tag; ++f) {
        auto payload = rng.bits(96);
        link.enqueue(t, payload);
        all_payloads.push_back(std::move(payload));
      }
    }

    Seconds air_time = 0.0;
    std::size_t delivered_bits = 0;
    while (link.pending() > 0 && link.epochs() < 40) {
      // Fresh scenario per epoch: carrier restart re-randomizes offsets.
      Rng epoch_rng = rng.split();
      sim::ScenarioConfig sc;
      sc.num_tags = tags;
      sim::Scenario scenario(sc, epoch_rng);
      const auto payloads = link.epoch_payloads(1);
      const auto outcome = scenario.run_epoch_with_payloads(
          scenario.default_decoder(), payloads, epoch_rng);
      air_time += outcome.duration;
      delivered_bits +=
          96 * link.on_epoch_decoded(outcome.decode.valid_payloads());
    }

    const auto& lat = link.latency_histogram();
    const auto at = [&](std::size_t i) {
      return i < lat.size() ? lat[i] : 0u;
    };
    std::size_t third_plus = 0;
    for (std::size_t i = 3; i < lat.size(); ++i) third_plus += lat[i];
    table.add_row({std::to_string(tags),
                   std::to_string(tags * frames_per_tag),
                   std::to_string(link.delivered()),
                   std::to_string(link.abandoned()),
                   std::to_string(link.epochs()), std::to_string(at(1)),
                   std::to_string(at(2)), std::to_string(third_plus),
                   sim::fmt(static_cast<double>(delivered_bits) / air_time /
                                1e3,
                            0)});
  }
  table.print();
  std::printf(
      "\nthe per-epoch losses of Fig 8 convert into 1-2 extra epochs of "
      "latency under reliability — fresh offsets re-roll collisions, as "
      "Section 3.6 argues\n");
  return 0;
}

// Figure 8: aggregate goodput of TDMA, Buzz, and LF-Backscatter as the
// number of concurrent 100 kbps nodes grows from 4 to 16.
//
// Paper result: LF-Backscatter tracks the maximum; at 16 nodes it is 16.4x
// TDMA and 7.9x Buzz. Absolute numbers differ on our software testbed (see
// EXPERIMENTS.md); the ordering and rough factors are the reproduction
// target.
#include <cstdio>

#include "baseline/buzz.h"
#include "baseline/tdma.h"
#include "sim/metrics.h"
#include "sim/scenario.h"
#include "sim/plot.h"
#include "sim/table.h"

using namespace lfbs;

namespace {

struct Point {
  double lf = 0.0, buzz = 0.0, tdma = 0.0, max = 0.0;
};

Point run_point(std::size_t nodes, std::size_t epochs, std::uint64_t seed) {
  Point pt;

  // --- LF-Backscatter: full physical simulation --------------------------
  sim::ThroughputMeter lf;
  for (std::size_t e = 0; e < epochs; ++e) {
    Rng rng(seed + e * 7919);
    sim::ScenarioConfig sc;
    sc.num_tags = nodes;
    sim::Scenario scenario(sc, rng);
    const auto outcome = scenario.run_epoch(scenario.default_decoder(), rng);
    lf.add(outcome.bits_recovered, outcome.duration);
    if (e == 0) {
      pt.max = static_cast<double>(outcome.bits_sent) / outcome.duration;
    }
  }
  pt.lf = lf.goodput();

  // --- Buzz: lock-step rateless linear separation ------------------------
  sim::ThroughputMeter buzz_meter;
  for (std::size_t e = 0; e < epochs; ++e) {
    Rng rng(seed + 31 + e * 104729);
    std::vector<Complex> channels;
    for (std::size_t i = 0; i < nodes; ++i) {
      channels.push_back(
          std::polar(rng.uniform(0.06, 0.2), rng.uniform(0.0, 6.2831)));
    }
    baseline::Buzz buzz(baseline::BuzzConfig{}, channels);
    Seconds air = buzz.estimate_channels(rng);
    std::vector<std::vector<bool>> messages;
    for (std::size_t i = 0; i < nodes; ++i) messages.push_back(rng.bits(96));
    const auto result = buzz.transfer(messages, rng);
    air += result.air_time;
    std::size_t delivered = 0;
    if (result.success) {
      for (std::size_t i = 0; i < nodes; ++i) {
        if (result.decoded[i] == messages[i]) delivered += 96;
      }
    }
    buzz_meter.add(delivered, air);
  }
  pt.buzz = buzz_meter.goodput();

  // --- TDMA: serialized slots ---------------------------------------------
  const baseline::Tdma tdma{baseline::TdmaConfig{}};
  pt.tdma = tdma.aggregate_goodput(nodes);
  return pt;
}

}  // namespace

int main() {
  sim::print_banner(
      "Figure 8", "aggregate throughput vs number of devices",
      "16-node deployment, 100 kbps tags, 96-bit payloads, 25 Msps reader; "
      "goodput = CRC-clean payload bits per second of air time");

  sim::Table table({"nodes", "max (kbps)", "TDMA (kbps)", "Buzz (kbps)",
                    "LF-Backscatter (kbps)", "LF/TDMA", "LF/Buzz"});
  std::vector<double> xs, max_ys, tdma_ys, buzz_ys, lf_ys;
  for (std::size_t nodes : {4u, 8u, 12u, 16u}) {
    const Point pt = run_point(nodes, 10, 42 + nodes);
    table.add_row({std::to_string(nodes), sim::fmt(pt.max / 1e3, 0),
                   sim::fmt(pt.tdma / 1e3, 0), sim::fmt(pt.buzz / 1e3, 0),
                   sim::fmt(pt.lf / 1e3, 0), sim::fmt_ratio(pt.lf / pt.tdma),
                   sim::fmt_ratio(pt.lf / pt.buzz)});
    xs.push_back(static_cast<double>(nodes));
    max_ys.push_back(pt.max / 1e3);
    tdma_ys.push_back(pt.tdma / 1e3);
    buzz_ys.push_back(pt.buzz / 1e3);
    lf_ys.push_back(pt.lf / 1e3);
  }
  table.print();

  std::printf("\naggregate throughput (kbps) vs node count:\n");
  sim::AsciiPlot plot(52, 11);
  plot.add_series("max", xs, max_ys);
  plot.add_series("LF", xs, lf_ys);
  plot.add_series("Buzz", xs, buzz_ys);
  plot.add_series("TDMA", xs, tdma_ys);
  plot.print();
  std::printf(
      "\npaper: at 16 nodes LF-Backscatter ~= max, 16.4x TDMA, 7.9x Buzz\n");
  return 0;
}

// Figure 5: the nine clusters formed by two colliding edges are the linear
// combinations a·e1 + b·e2 with a, b in {-1, 0, 1} — a 3x3 grid whose side
// midpoints are the edge vectors themselves. The separator recovers e1 and
// e2 from collinear centroid triples, with no channel estimation.
#include <cmath>
#include <cstdio>

#include "core/collision_separator.h"
#include "dsp/kmeans.h"
#include "sim/plot.h"
#include "sim/table.h"

using namespace lfbs;

int main() {
  sim::print_banner(
      "Figure 5", "nine clusters of two colliding edges (parallelogram)",
      "synthetic collision: 400 boundaries, random states per tag, "
      "noise sigma = 8% of |e2|");

  Rng rng(7);
  const Complex e1{0.062, -0.114};
  const Complex e2{-0.071, -0.032};
  const double sigma = 0.08 * std::abs(e2);

  std::vector<Complex> points;
  std::vector<int> truth1, truth2;
  int s1 = 0, s2 = 0;  // current levels
  for (int k = 0; k < 400; ++k) {
    const int l1 = rng.bernoulli(0.5) ? 1 : 0;
    const int l2 = rng.bernoulli(0.5) ? 1 : 0;
    const int d1 = l1 - s1;
    const int d2 = l2 - s2;
    s1 = l1;
    s2 = l2;
    truth1.push_back(d1);
    truth2.push_back(d2);
    points.push_back(static_cast<double>(d1) * e1 +
                     static_cast<double>(d2) * e2 +
                     Complex{rng.gaussian(0.0, sigma),
                             rng.gaussian(0.0, sigma)});
  }

  const dsp::KMeansResult fit = dsp::kmeans(points, 9, rng);
  std::printf("k-means centroids (I, Q):\n");
  for (const Complex& c : fit.centroids) {
    std::printf("  (%+.4f, %+.4f)\n", c.real(), c.imag());
  }

  std::printf("\nboundary differentials in the IQ plane (the 3x3 grid):\n");
  {
    std::vector<double> xs, ys;
    for (const Complex& p : points) {
      xs.push_back(p.real());
      ys.push_back(p.imag());
    }
    sim::AsciiPlot plot(56, 15);
    plot.add_series("dS", xs, ys);
    plot.print();
  }

  core::CollisionSeparator separator{core::SeparatorConfig{}};
  const auto sep = separator.separate(points, fit);
  if (!sep.has_value()) {
    std::printf("\nseparation FAILED (unexpected for this geometry)\n");
    return 1;
  }

  // The separator may return the vectors in either order/sign.
  const auto close = [](Complex a, Complex b) {
    return std::abs(a - b) < 0.25 * std::abs(b) ||
           std::abs(a + b) < 0.25 * std::abs(b);
  };
  const bool direct = close(sep->e1, e1) && close(sep->e2, e2);
  const bool swapped = close(sep->e1, e2) && close(sep->e2, e1);

  // Sign ambiguity per component is resolved by the anchor bit in the full
  // pipeline; here infer the global flip from the first non-constant state.
  int flip1 = 1, flip2 = 1;
  for (std::size_t k = 0; k < points.size(); ++k) {
    const int got1 = direct ? sep->states1[k] : sep->states2[k];
    if (truth1[k] != 0 && got1 != 0) {
      flip1 = truth1[k] * got1;
      break;
    }
  }
  for (std::size_t k = 0; k < points.size(); ++k) {
    const int got2 = direct ? sep->states2[k] : sep->states1[k];
    if (truth2[k] != 0 && got2 != 0) {
      flip2 = truth2[k] * got2;
      break;
    }
  }
  std::size_t correct = 0;
  for (std::size_t k = 0; k < points.size(); ++k) {
    const int got1 = direct ? sep->states1[k] : sep->states2[k];
    const int got2 = direct ? sep->states2[k] : sep->states1[k];
    if (got1 * flip1 == truth1[k] && got2 * flip2 == truth2[k]) ++correct;
  }

  sim::Table table({"quantity", "truth", "recovered"});
  table.add_row({"e1 (I,Q)",
                 "(" + sim::fmt(e1.real(), 4) + ", " + sim::fmt(e1.imag(), 4) + ")",
                 "(" + sim::fmt(sep->e1.real(), 4) + ", " +
                     sim::fmt(sep->e1.imag(), 4) + ")"});
  table.add_row({"e2 (I,Q)",
                 "(" + sim::fmt(e2.real(), 4) + ", " + sim::fmt(e2.imag(), 4) + ")",
                 "(" + sim::fmt(sep->e2.real(), 4) + ", " +
                     sim::fmt(sep->e2.imag(), 4) + ")"});
  table.add_row({"vector match (up to order/sign)", "-",
                 (direct || swapped) ? "yes" : "NO"});
  table.add_row({"per-boundary state accuracy", "-",
                 sim::fmt_percent(static_cast<double>(correct) /
                                  static_cast<double>(points.size()))});
  table.print();
  return 0;
}

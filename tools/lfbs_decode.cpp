// lfbs_decode: decode an LFBSIQ1 capture file and print what was heard.
//
// Usage:
//   lfbs_decode <capture.lfbsiq> [--crc5] [--payload N] [--max-rate KBPS]
//               [--windowed MS] [--workers N] [--edge-only]
//               [--resample MSPS] [--inject-faults SPEC] [--trace]
//
// --workers N streams the file through the concurrent decode runtime
// (src/runtime) with N window workers instead of the serial decoder; the
// frames are identical, and a stats line reports the pipeline's throughput.
// (--workers with --resample falls back to an in-memory source, since
// resampling needs the whole capture first.)
//
// --inject-faults SPEC runs a fault drill on the streaming path: the
// capture replays through a deterministic FaultInjectingSource (e.g.
// "seed=7,drop=0.05,corrupt=0.01,error=0.01") and the health / fault
// stats report how the pipeline degraded. Implies --workers 1 when no
// worker count was given; incompatible with --resample.
//
// --min-confidence X hides streams whose composite decode confidence
// (edge SNR + Viterbi margin + cluster separation, in [0,1]) falls below
// X; their frames do not count toward the exit status.
//
// Exit status: 0 when at least one CRC-valid frame was decoded (from a
// stream above the confidence floor); 1 when the decode ran but produced
// no such frame; 2 on a usage error or a malformed/unreadable capture
// (one-line diagnostic).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <utility>

#include "common/check.h"
#include "core/windowed_decoder.h"
#include "dsp/resample.h"
#include "runtime/fault_injector.h"
#include "runtime/runtime.h"
#include "signal/iq_io.h"
#include "sim/table.h"

using namespace lfbs;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: lfbs_decode <capture.lfbsiq> [--crc5] [--payload N] "
               "[--max-rate KBPS] [--windowed MS] [--workers N] "
               "[--edge-only] [--no-fallback] [--min-confidence X] "
               "[--resample MSPS] [--inject-faults SPEC] [--trace]\n"
               "exit status: 0 = at least one CRC-valid frame (above the "
               "--min-confidence floor)\n"
               "             1 = decode ran, no such frame\n"
               "             2 = usage error or malformed capture\n");
}

std::string bits_hex(const std::vector<bool>& bits) {
  std::string out;
  for (std::size_t i = 0; i < bits.size(); i += 4) {
    unsigned nibble = 0;
    for (std::size_t b = 0; b < 4 && i + b < bits.size(); ++b) {
      nibble = (nibble << 1) | (bits[i + b] ? 1u : 0u);
    }
    out += "0123456789abcdef"[nibble & 0xF];
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  if (std::string(argv[1]) == "--help" || std::string(argv[1]) == "-h") {
    usage();
    return 0;
  }
  const std::string path = argv[1];
  core::DecoderConfig dc;
  double window_ms = 0.0;
  double min_confidence = 0.0;
  double resample_msps = 0.0;
  std::size_t workers = 0;
  runtime::FaultPlan fault_plan;
  bool inject_faults = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--crc5") {
      dc.frame.crc = protocol::CrcKind::kCrc5;
    } else if (arg == "--payload" && i + 1 < argc) {
      dc.frame.payload_bits = static_cast<std::size_t>(atoi(argv[++i]));
    } else if (arg == "--max-rate" && i + 1 < argc) {
      dc.max_rate = atof(argv[++i]) * kKbps;
      if (!dc.rate_plan.is_valid(dc.max_rate)) {
        dc.rate_plan.rates.push_back(dc.max_rate);
      }
    } else if (arg == "--windowed" && i + 1 < argc) {
      window_ms = atof(argv[++i]);
    } else if (arg == "--workers" && i + 1 < argc) {
      workers = static_cast<std::size_t>(atoi(argv[++i]));
    } else if (arg == "--resample" && i + 1 < argc) {
      resample_msps = atof(argv[++i]);
    } else if (arg == "--inject-faults" && i + 1 < argc) {
      try {
        fault_plan = runtime::parse_fault_plan(argv[++i]);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
      }
      inject_faults = true;
    } else if (arg == "--edge-only") {
      dc.collision_recovery = false;
      dc.error_correction = false;
    } else if (arg == "--no-fallback") {
      dc.robustness.fallback = false;
    } else if (arg == "--min-confidence" && i + 1 < argc) {
      min_confidence = atof(argv[++i]);
    } else if (arg == "--trace") {
      dc.trace = true;
    } else {
      usage();
      return 2;
    }
  }

  core::WindowedDecoderConfig wc;
  wc.decoder = dc;
  if (window_ms > 0.0) wc.window = window_ms * 1e-3;

  if (inject_faults && resample_msps > 0.0) {
    std::fprintf(stderr,
                 "error: --inject-faults needs the streaming path; drop "
                 "--resample\n");
    return 2;
  }
  if (inject_faults && workers == 0) workers = 1;

  core::DecodeResult result;
  double sample_rate = 0.0;
  std::size_t sample_count = 0;
  try {
    if (workers > 0 && resample_msps <= 0.0) {
      // Stream the file through the concurrent runtime: the capture is
      // never fully resident, and windows decode on `workers` threads.
      runtime::RuntimeConfig rc;
      rc.windowed = wc;
      rc.workers = workers;
      runtime::IqFileSource file_source(path, 1 << 16);
      sample_rate = file_source.sample_rate();
      sample_count = file_source.total_samples();
      std::printf("%s: %zu samples at %.6g Msps (%.3f ms)\n", path.c_str(),
                  sample_count, sample_rate / 1e6,
                  static_cast<double>(sample_count) / sample_rate * 1e3);
      if (file_source.truncated()) {
        std::fprintf(stderr,
                     "warning: truncated capture — header declares %llu "
                     "samples, file holds %llu; decoding what exists\n",
                     static_cast<unsigned long long>(
                         file_source.declared_samples()),
                     static_cast<unsigned long long>(
                         file_source.total_samples()));
      }
      runtime::FaultInjectingSource faulty(file_source, fault_plan);
      runtime::SampleSource& source =
          inject_faults ? static_cast<runtime::SampleSource&>(faulty)
                        : file_source;
      runtime::DecodeRuntime rt(rc);
      auto run = rt.run(source);
      result = std::move(run.decode);
      std::printf(
          "runtime: %zu workers, %zu windows, %.2f effective Msps, "
          "window p50/p99 %.1f/%.1f ms, ring high-water %zu, dropped %zu\n",
          workers, run.stats.windows_decoded, run.stats.effective_msps(),
          run.stats.window_latency_p50_ms, run.stats.window_latency_p99_ms,
          run.stats.ring_high_watermark, run.stats.chunks_dropped);
      if (inject_faults) {
        const auto& in = faulty.injected();
        const auto& f = run.stats.faults;
        std::printf(
            "injected: drops=%zu truncated=%zu corrupted=%llu stalls=%zu "
            "errors=%zu early-eof=%zu\n",
            in.chunks_dropped, in.chunks_truncated,
            static_cast<unsigned long long>(in.samples_corrupted),
            in.stalls, in.errors_thrown, in.premature_eofs);
        std::printf(
            "health: %s (retries=%zu source-failures=%zu "
            "worker-exceptions=%zu scrubbed=%llu gap-samples=%llu)\n",
            runtime::to_string(run.stats.health), f.source_retries,
            f.source_failures, f.worker_exceptions,
            static_cast<unsigned long long>(f.samples_scrubbed),
            static_cast<unsigned long long>(run.stats.samples_gap));
      }
    } else {
      signal::SampleBuffer buffer = signal::load_iq(path);
      if (resample_msps > 0.0 &&
          std::abs(resample_msps * 1e6 - buffer.sample_rate()) > 1.0) {
        auto samples = dsp::resample_linear(
            buffer.span(), buffer.sample_rate(), resample_msps * 1e6);
        std::printf("resampled %.6g -> %.6g Msps\n",
                    buffer.sample_rate() / 1e6, resample_msps);
        buffer = signal::SampleBuffer(resample_msps * 1e6, std::move(samples));
      }
      sample_rate = buffer.sample_rate();
      sample_count = buffer.size();
      std::printf("%s: %zu samples at %.6g Msps (%.3f ms)\n", path.c_str(),
                  buffer.size(), buffer.sample_rate() / 1e6,
                  buffer.duration() * 1e3);
      if (workers > 0) {
        runtime::RuntimeConfig rc;
        rc.windowed = wc;
        rc.workers = workers;
        runtime::DecodeRuntime rt(rc);
        auto run = rt.decode(buffer);
        result = std::move(run.decode);
        std::printf("runtime: %zu workers, %zu windows, %.2f effective "
                    "Msps, dropped %zu\n",
                    workers, run.stats.windows_decoded,
                    run.stats.effective_msps(), run.stats.chunks_dropped);
      } else if (window_ms > 0.0) {
        result = core::WindowedDecoder(wc).decode(buffer);
      } else {
        result = core::LfDecoder(dc).decode(buffer);
      }
    }
  } catch (const signal::IqFormatError& e) {
    // Malformed / truncated capture: one line naming the defect, not a
    // backtrace.
    std::fprintf(stderr, "error: %s [%s]\n", e.what(),
                 signal::to_string(e.code()));
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  std::printf("edges=%zu groups=%zu collisions=%zu unresolved=%zu\n",
              result.diagnostics.edges, result.diagnostics.groups,
              result.diagnostics.collision_groups,
              result.diagnostics.unresolved_groups);
  if (result.diagnostics.fallback_passes > 0) {
    std::printf("fallback: %zu degraded passes, %zu streams recovered, "
                "%zu erasures\n",
                result.diagnostics.fallback_passes,
                result.diagnostics.fallback_recoveries,
                result.diagnostics.erasures);
  }

  sim::Table table({"stream", "start (us)", "rate", "SNR (dB)", "conf",
                    "stage", "collided", "bits", "frames ok/total",
                    "first payload (hex)"});
  std::size_t valid_total = 0;
  std::size_t hidden = 0;
  for (std::size_t i = 0; i < result.streams.size(); ++i) {
    const auto& s = result.streams[i];
    const double conf = s.confidence.score();
    if (conf < min_confidence) {
      ++hidden;
      continue;
    }
    std::size_t ok = 0;
    std::string first;
    for (const auto& f : s.frames) {
      if (f.valid()) {
        if (first.empty()) first = bits_hex(f.payload);
        ++ok;
      }
    }
    valid_total += ok;
    table.add_row({std::to_string(i),
                   sim::fmt(s.start_sample / sample_rate * 1e6, 1),
                   format_rate(s.rate), sim::fmt(s.snr_db, 1),
                   sim::fmt(conf, 2), core::to_string(s.confidence.stage),
                   s.collided ? "yes" : "no", std::to_string(s.bits.size()),
                   std::to_string(ok) + "/" + std::to_string(s.frames.size()),
                   first.empty() ? "-" : first});
  }
  table.print();
  if (hidden > 0) {
    std::printf("(%zu stream%s below --min-confidence %.2f hidden)\n", hidden,
                hidden == 1 ? "" : "s", min_confidence);
  }
  return valid_total > 0 ? 0 : 1;
}

// lfbs_decode: decode an LFBSIQ1 capture file and print what was heard.
//
// Usage:
//   lfbs_decode <capture.lfbsiq> [--crc5] [--payload N] [--max-rate KBPS]
//               [--windowed MS] [--workers N] [--edge-only]
//               [--resample MSPS] [--trace]
//
// --workers N streams the file through the concurrent decode runtime
// (src/runtime) with N window workers instead of the serial decoder; the
// frames are identical, and a stats line reports the pipeline's throughput.
// (--workers with --resample falls back to an in-memory source, since
// resampling needs the whole capture first.)
//
// Exit status: 0 when at least one CRC-valid frame was decoded.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

#include "common/check.h"
#include "core/windowed_decoder.h"
#include "dsp/resample.h"
#include "runtime/runtime.h"
#include "signal/iq_io.h"
#include "sim/table.h"

using namespace lfbs;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: lfbs_decode <capture.lfbsiq> [--crc5] [--payload N] "
               "[--max-rate KBPS] [--windowed MS] [--workers N] "
               "[--edge-only] [--resample MSPS] [--trace]\n");
}

std::string bits_hex(const std::vector<bool>& bits) {
  std::string out;
  for (std::size_t i = 0; i < bits.size(); i += 4) {
    unsigned nibble = 0;
    for (std::size_t b = 0; b < 4 && i + b < bits.size(); ++b) {
      nibble = (nibble << 1) | (bits[i + b] ? 1u : 0u);
    }
    out += "0123456789abcdef"[nibble & 0xF];
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string path = argv[1];
  core::DecoderConfig dc;
  double window_ms = 0.0;
  double resample_msps = 0.0;
  std::size_t workers = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--crc5") {
      dc.frame.crc = protocol::CrcKind::kCrc5;
    } else if (arg == "--payload" && i + 1 < argc) {
      dc.frame.payload_bits = static_cast<std::size_t>(atoi(argv[++i]));
    } else if (arg == "--max-rate" && i + 1 < argc) {
      dc.max_rate = atof(argv[++i]) * kKbps;
      if (!dc.rate_plan.is_valid(dc.max_rate)) {
        dc.rate_plan.rates.push_back(dc.max_rate);
      }
    } else if (arg == "--windowed" && i + 1 < argc) {
      window_ms = atof(argv[++i]);
    } else if (arg == "--workers" && i + 1 < argc) {
      workers = static_cast<std::size_t>(atoi(argv[++i]));
    } else if (arg == "--resample" && i + 1 < argc) {
      resample_msps = atof(argv[++i]);
    } else if (arg == "--edge-only") {
      dc.collision_recovery = false;
      dc.error_correction = false;
    } else if (arg == "--trace") {
      dc.trace = true;
    } else {
      usage();
      return 2;
    }
  }

  core::WindowedDecoderConfig wc;
  wc.decoder = dc;
  if (window_ms > 0.0) wc.window = window_ms * 1e-3;

  core::DecodeResult result;
  double sample_rate = 0.0;
  std::size_t sample_count = 0;
  try {
    if (workers > 0 && resample_msps <= 0.0) {
      // Stream the file through the concurrent runtime: the capture is
      // never fully resident, and windows decode on `workers` threads.
      runtime::RuntimeConfig rc;
      rc.windowed = wc;
      rc.workers = workers;
      runtime::IqFileSource source(path, 1 << 16);
      sample_rate = source.sample_rate();
      sample_count = source.total_samples();
      std::printf("%s: %zu samples at %.6g Msps (%.3f ms)\n", path.c_str(),
                  sample_count, sample_rate / 1e6,
                  static_cast<double>(sample_count) / sample_rate * 1e3);
      runtime::DecodeRuntime rt(rc);
      auto run = rt.run(source);
      result = std::move(run.decode);
      std::printf(
          "runtime: %zu workers, %zu windows, %.2f effective Msps, "
          "window p50/p99 %.1f/%.1f ms, ring high-water %zu, dropped %zu\n",
          workers, run.stats.windows_decoded, run.stats.effective_msps(),
          run.stats.window_latency_p50_ms, run.stats.window_latency_p99_ms,
          run.stats.ring_high_watermark, run.stats.chunks_dropped);
    } else {
      signal::SampleBuffer buffer = signal::load_iq(path);
      if (resample_msps > 0.0 &&
          std::abs(resample_msps * 1e6 - buffer.sample_rate()) > 1.0) {
        auto samples = dsp::resample_linear(
            buffer.span(), buffer.sample_rate(), resample_msps * 1e6);
        std::printf("resampled %.6g -> %.6g Msps\n",
                    buffer.sample_rate() / 1e6, resample_msps);
        buffer = signal::SampleBuffer(resample_msps * 1e6, std::move(samples));
      }
      sample_rate = buffer.sample_rate();
      sample_count = buffer.size();
      std::printf("%s: %zu samples at %.6g Msps (%.3f ms)\n", path.c_str(),
                  buffer.size(), buffer.sample_rate() / 1e6,
                  buffer.duration() * 1e3);
      if (workers > 0) {
        runtime::RuntimeConfig rc;
        rc.windowed = wc;
        rc.workers = workers;
        runtime::DecodeRuntime rt(rc);
        auto run = rt.decode(buffer);
        result = std::move(run.decode);
        std::printf("runtime: %zu workers, %zu windows, %.2f effective "
                    "Msps, dropped %zu\n",
                    workers, run.stats.windows_decoded,
                    run.stats.effective_msps(), run.stats.chunks_dropped);
      } else if (window_ms > 0.0) {
        result = core::WindowedDecoder(wc).decode(buffer);
      } else {
        result = core::LfDecoder(dc).decode(buffer);
      }
    }
  } catch (const lfbs::CheckError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  std::printf("edges=%zu groups=%zu collisions=%zu unresolved=%zu\n",
              result.diagnostics.edges, result.diagnostics.groups,
              result.diagnostics.collision_groups,
              result.diagnostics.unresolved_groups);

  sim::Table table({"stream", "start (us)", "rate", "SNR (dB)", "collided",
                    "bits", "frames ok/total", "first payload (hex)"});
  std::size_t valid_total = 0;
  for (std::size_t i = 0; i < result.streams.size(); ++i) {
    const auto& s = result.streams[i];
    std::size_t ok = 0;
    std::string first;
    for (const auto& f : s.frames) {
      if (f.valid()) {
        if (first.empty()) first = bits_hex(f.payload);
        ++ok;
      }
    }
    valid_total += ok;
    table.add_row({std::to_string(i),
                   sim::fmt(s.start_sample / sample_rate * 1e6, 1),
                   format_rate(s.rate), sim::fmt(s.snr_db, 1),
                   s.collided ? "yes" : "no", std::to_string(s.bits.size()),
                   std::to_string(ok) + "/" + std::to_string(s.frames.size()),
                   first.empty() ? "-" : first});
  }
  table.print();
  return valid_total > 0 ? 0 : 1;
}

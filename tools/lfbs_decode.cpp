// lfbs_decode: decode an LFBSIQ1 capture file and print what was heard.
//
// Usage:
//   lfbs_decode <capture.lfbsiq> [--crc5] [--payload N] [--max-rate KBPS]
//               [--windowed MS] [--workers N] [--edge-only]
//               [--resample MSPS] [--inject-faults SPEC] [--trace]
//
// --workers N streams the file through the concurrent decode runtime
// (src/runtime) with N window workers instead of the serial decoder; the
// frames are identical, and a stats line reports the pipeline's throughput.
// (--workers with --resample falls back to an in-memory source, since
// resampling needs the whole capture first.)
//
// --inject-faults SPEC runs a fault drill on the streaming path: the
// capture replays through a deterministic FaultInjectingSource (e.g.
// "seed=7,drop=0.05,corrupt=0.01,error=0.01") and the health / fault
// stats report how the pipeline degraded. Implies --workers 1 when no
// worker count was given; incompatible with --resample.
//
// --min-confidence X hides streams whose composite decode confidence
// (edge SNR + Viterbi margin + cluster separation, in [0,1]) falls below
// X; their frames do not count toward the exit status.
//
// Observability (see README "Observability"):
//   --trace-out PATH      JSONL telemetry: stage spans, frame events,
//                         health/ledger/rate transitions ("-" = stdout)
//   --trace-chrome PATH   Chrome trace-event JSON (chrome://tracing); holds
//                         the most recent spans up to the tracer's ring
//   --metrics-out PATH    Prometheus text exposition of the run's metrics
//   --stats-interval SEC  periodic stats line on stderr + snapshot events
//   --stats-json PATH     one final JSON document: decode diagnostics,
//                         runtime stats + fault counters, per-tag ledger
//
// Exit status: 0 when at least one CRC-valid frame was decoded (from a
// stream above the confidence floor); 1 when the decode ran but produced
// no such frame; 2 on a usage error or a malformed/unreadable capture
// (one-line diagnostic).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/shutdown.h"
#include "core/windowed_decoder.h"
#include "dsp/resample.h"
#include "obs/events.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "reader/health_ledger.h"
#include "runtime/fault_injector.h"
#include "runtime/runtime.h"
#include "signal/iq_io.h"
#include "sim/table.h"

using namespace lfbs;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: lfbs_decode <capture.lfbsiq> [--crc5] [--payload N] "
               "[--max-rate KBPS] [--windowed MS] [--workers N] "
               "[--edge-only] [--no-fallback] [--min-confidence X] "
               "[--resample MSPS] [--inject-faults SPEC] [--trace]\n"
               "               [--trace-out PATH] [--trace-chrome PATH] "
               "[--metrics-out PATH] [--stats-interval SEC] "
               "[--stats-json PATH]\n"
               "exit status: 0 = at least one CRC-valid frame (above the "
               "--min-confidence floor)\n"
               "             1 = decode ran, no such frame\n"
               "             2 = usage error or malformed capture\n");
}

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Writes the --stats-json document: decode diagnostics, the runtime's
/// stats and fault counters (streaming path only), and a per-tag health
/// ledger summary built by folding the final result in as one epoch.
/// Schema documented in README ("Observability").
bool write_stats_json(const std::string& path, const std::string& capture,
                      double sample_rate, std::size_t sample_count,
                      const core::DecodeResult& result,
                      const std::optional<runtime::RuntimeStats>& stats) {
  std::ofstream os(path);
  if (!os.is_open()) return false;

  const std::size_t attempted = result.frames_attempted();
  const std::size_t failed = result.frames_failed();
  os << "{\n  \"capture\": {\"path\": \"" << obs::json_escape(capture)
     << "\", \"samples\": " << sample_count
     << ", \"sample_rate\": " << num(sample_rate) << "},\n";
  os << "  \"decode\": {\"streams\": " << result.streams.size()
     << ", \"frames_valid\": " << (attempted - failed)
     << ", \"frames_failed\": " << failed
     << ", \"edges\": " << result.diagnostics.edges
     << ", \"groups\": " << result.diagnostics.groups
     << ", \"collision_groups\": " << result.diagnostics.collision_groups
     << ", \"unresolved_groups\": " << result.diagnostics.unresolved_groups
     << ", \"erasures\": " << result.diagnostics.erasures
     << ", \"fallback_passes\": " << result.diagnostics.fallback_passes
     << ", \"fallback_recoveries\": "
     << result.diagnostics.fallback_recoveries << "}";

  if (stats.has_value()) {
    const runtime::RuntimeStats& s = *stats;
    const runtime::FaultCounters& f = s.faults;
    os << ",\n  \"runtime\": {\"health\": \"" << runtime::to_string(s.health)
       << "\", \"wall_seconds\": " << num(s.wall_seconds)
       << ", \"effective_msps\": " << num(s.effective_msps())
       << ", \"windows_decoded\": " << s.windows_decoded
       << ", \"frames_published\": " << s.frames_published
       << ", \"window_latency_ms\": {\"p50\": "
       << num(s.window_latency_p50_ms)
       << ", \"p90\": " << num(s.window_latency_p90_ms)
       << ", \"p99\": " << num(s.window_latency_p99_ms)
       << ", \"max\": " << num(s.window_latency_max_ms) << "}"
       << ", \"chunks_dropped\": " << s.chunks_dropped
       << ", \"samples_gap\": " << s.samples_gap
       << ", \"ring_high_watermark\": " << s.ring_high_watermark
       << ", \"mean_confidence\": " << num(s.mean_confidence)
       << ", \"degraded_streams\": " << s.degraded_streams
       << ",\n    \"faults\": {\"source_transient_errors\": "
       << f.source_transient_errors
       << ", \"source_retries\": " << f.source_retries
       << ", \"source_failures\": " << f.source_failures
       << ", \"source_stalls\": " << f.source_stalls
       << ", \"worker_stalls\": " << f.worker_stalls
       << ", \"worker_exceptions\": " << f.worker_exceptions
       << ", \"subscriber_exceptions\": " << f.subscriber_exceptions
       << ", \"samples_scrubbed\": " << f.samples_scrubbed
       << ", \"low_confidence_streams\": " << f.low_confidence_streams
       << "}}";
  }

  // Per-tag health from one ledger epoch over the final result: each
  // stream keyed by its channel edge vector, exactly how a long-running
  // ReaderSession would track it.
  reader::HealthLedger ledger;
  const reader::EpochHealth epoch = ledger.observe(result);
  os << ",\n  \"health_ledger\": {\"tracked\": " << epoch.tracked
     << ", \"quarantined\": " << epoch.quarantined
     << ", \"probation\": " << epoch.probation
     << ", \"mean_confidence\": " << num(epoch.mean_confidence)
     << ", \"entries\": [";
  for (std::size_t i = 0; i < ledger.entries().size(); ++i) {
    const reader::HealthEntry& e = ledger.entries()[i];
    os << (i > 0 ? ", " : "") << "{\"edge_re\": " << num(e.edge_vector.real())
       << ", \"edge_im\": " << num(e.edge_vector.imag()) << ", \"state\": \""
       << reader::to_string(e.state)
       << "\", \"consecutive_failures\": " << e.consecutive_failures
       << ", \"epochs_seen\": " << e.epochs_seen
       << ", \"epochs_failed\": " << e.epochs_failed
       << ", \"last_confidence\": " << num(e.last_confidence) << "}";
  }
  os << "]}\n}\n";
  return os.good();
}

std::string bits_hex(const std::vector<bool>& bits) {
  std::string out;
  for (std::size_t i = 0; i < bits.size(); i += 4) {
    unsigned nibble = 0;
    for (std::size_t b = 0; b < 4 && i + b < bits.size(); ++b) {
      nibble = (nibble << 1) | (bits[i + b] ? 1u : 0u);
    }
    out += "0123456789abcdef"[nibble & 0xF];
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  if (std::string(argv[1]) == "--help" || std::string(argv[1]) == "-h") {
    usage();
    return 0;
  }
  const std::string path = argv[1];
  core::DecoderConfig dc;
  double window_ms = 0.0;
  double min_confidence = 0.0;
  double resample_msps = 0.0;
  std::size_t workers = 0;
  runtime::FaultPlan fault_plan;
  bool inject_faults = false;
  std::string trace_out;
  std::string trace_chrome;
  std::string metrics_out;
  std::string stats_json;
  double stats_interval = 0.0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--crc5") {
      dc.frame.crc = protocol::CrcKind::kCrc5;
    } else if (arg == "--payload" && i + 1 < argc) {
      dc.frame.payload_bits = static_cast<std::size_t>(atoi(argv[++i]));
    } else if (arg == "--max-rate" && i + 1 < argc) {
      dc.max_rate = atof(argv[++i]) * kKbps;
      if (!dc.rate_plan.is_valid(dc.max_rate)) {
        dc.rate_plan.rates.push_back(dc.max_rate);
      }
    } else if (arg == "--windowed" && i + 1 < argc) {
      window_ms = atof(argv[++i]);
    } else if (arg == "--workers" && i + 1 < argc) {
      workers = static_cast<std::size_t>(atoi(argv[++i]));
    } else if (arg == "--resample" && i + 1 < argc) {
      resample_msps = atof(argv[++i]);
    } else if (arg == "--inject-faults" && i + 1 < argc) {
      try {
        fault_plan = runtime::parse_fault_plan(argv[++i]);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
      }
      inject_faults = true;
    } else if (arg == "--edge-only") {
      dc.collision_recovery = false;
      dc.error_correction = false;
    } else if (arg == "--no-fallback") {
      dc.robustness.fallback = false;
    } else if (arg == "--min-confidence" && i + 1 < argc) {
      min_confidence = atof(argv[++i]);
    } else if (arg == "--trace") {
      dc.trace = true;
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (arg == "--trace-chrome" && i + 1 < argc) {
      trace_chrome = argv[++i];
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (arg == "--stats-json" && i + 1 < argc) {
      stats_json = argv[++i];
    } else if (arg == "--stats-interval" && i + 1 < argc) {
      stats_interval = atof(argv[++i]);
    } else {
      usage();
      return 2;
    }
  }

  core::WindowedDecoderConfig wc;
  wc.decoder = dc;
  if (window_ms > 0.0) wc.window = window_ms * 1e-3;

  if (inject_faults && resample_msps > 0.0) {
    std::fprintf(stderr,
                 "error: --inject-faults needs the streaming path; drop "
                 "--resample\n");
    return 2;
  }
  if (inject_faults && workers == 0) workers = 1;

  // Telemetry wiring: a null tracer/event-log (no flags) keeps every
  // instrumented hot path at one pointer load and branch.
  std::unique_ptr<obs::JsonlWriter> telemetry_writer;
  std::unique_ptr<obs::Tracer> tracer;
  std::unique_ptr<obs::EventLog> event_log;
  if (!trace_out.empty() || !trace_chrome.empty()) {
    tracer = std::make_unique<obs::Tracer>();
  }
  if (!trace_out.empty()) {
    telemetry_writer = std::make_unique<obs::JsonlWriter>(trace_out);
    if (!telemetry_writer->ok()) {
      std::fprintf(stderr, "error: cannot open --trace-out %s\n",
                   trace_out.c_str());
      return 2;
    }
    // Spans and structured events share the writer, so the JSONL file is
    // one interleaved, time-ordered telemetry stream.
    tracer->set_sink(telemetry_writer.get());
    event_log = std::make_unique<obs::EventLog>(*telemetry_writer);
    obs::set_event_log(event_log.get());
  }
  if (tracer) obs::set_tracer(tracer.get());

  std::unique_ptr<obs::SnapshotEmitter> emitter;
  if (stats_interval > 0.0) {
    emitter = std::make_unique<obs::SnapshotEmitter>(stats_interval, [&] {
      const obs::MetricsSnapshot snap = obs::metrics().snapshot();
      if (obs::EventLog* log = obs::event_log()) log->snapshot(snap);
      if (!metrics_out.empty()) obs::write_prometheus_file(snap, metrics_out);
      const std::uint64_t* windows = snap.counter("runtime.windows_decoded");
      const std::uint64_t* frames = snap.counter("bus.published");
      const std::uint64_t* passes = snap.counter("core.decode_passes");
      std::fprintf(stderr,
                   "stats: windows=%llu frames=%llu decode_passes=%llu\n",
                   static_cast<unsigned long long>(windows ? *windows : 0),
                   static_cast<unsigned long long>(frames ? *frames : 0),
                   static_cast<unsigned long long>(passes ? *passes : 0));
    });
  }

  core::DecodeResult result;
  std::optional<runtime::RuntimeStats> run_stats;
  double sample_rate = 0.0;
  std::size_t sample_count = 0;
  try {
    if (workers > 0 && resample_msps <= 0.0) {
      // Stream the file through the concurrent runtime: the capture is
      // never fully resident, and windows decode on `workers` threads.
      runtime::RuntimeConfig rc;
      rc.windowed = wc;
      rc.workers = workers;
      // Ctrl-C during a streaming decode stops ingest, drains the windows
      // already in flight, and still prints stats / writes --stats-json;
      // the process then exits 128+signal (130 for SIGINT).
      install_shutdown_handlers();
      rc.stop_flag = &shutdown_flag();
      runtime::IqFileSource file_source(path, 1 << 16);
      sample_rate = file_source.sample_rate();
      sample_count = file_source.total_samples();
      std::printf("%s: %zu samples at %.6g Msps (%.3f ms)\n", path.c_str(),
                  sample_count, sample_rate / 1e6,
                  static_cast<double>(sample_count) / sample_rate * 1e3);
      if (file_source.truncated()) {
        std::fprintf(stderr,
                     "warning: truncated capture — header declares %llu "
                     "samples, file holds %llu; decoding what exists\n",
                     static_cast<unsigned long long>(
                         file_source.declared_samples()),
                     static_cast<unsigned long long>(
                         file_source.total_samples()));
      }
      runtime::FaultInjectingSource faulty(file_source, fault_plan);
      runtime::SampleSource& source =
          inject_faults ? static_cast<runtime::SampleSource&>(faulty)
                        : file_source;
      runtime::DecodeRuntime rt(rc);
      auto run = rt.run(source);
      result = std::move(run.decode);
      run_stats = run.stats;
      std::printf(
          "runtime: %zu workers, %zu windows, %.2f effective Msps, "
          "window p50/p99 %.1f/%.1f ms, ring high-water %zu, dropped %zu\n",
          workers, run.stats.windows_decoded, run.stats.effective_msps(),
          run.stats.window_latency_p50_ms, run.stats.window_latency_p99_ms,
          run.stats.ring_high_watermark, run.stats.chunks_dropped);
      if (inject_faults) {
        const auto& in = faulty.injected();
        const auto& f = run.stats.faults;
        std::printf(
            "injected: drops=%zu truncated=%zu corrupted=%llu stalls=%zu "
            "errors=%zu early-eof=%zu\n",
            in.chunks_dropped, in.chunks_truncated,
            static_cast<unsigned long long>(in.samples_corrupted),
            in.stalls, in.errors_thrown, in.premature_eofs);
        std::printf(
            "health: %s (retries=%zu source-failures=%zu "
            "worker-exceptions=%zu scrubbed=%llu gap-samples=%llu)\n",
            runtime::to_string(run.stats.health), f.source_retries,
            f.source_failures, f.worker_exceptions,
            static_cast<unsigned long long>(f.samples_scrubbed),
            static_cast<unsigned long long>(run.stats.samples_gap));
      }
    } else {
      signal::SampleBuffer buffer = signal::load_iq(path);
      if (resample_msps > 0.0 &&
          std::abs(resample_msps * 1e6 - buffer.sample_rate()) > 1.0) {
        auto samples = dsp::resample_linear(
            buffer.span(), buffer.sample_rate(), resample_msps * 1e6);
        std::printf("resampled %.6g -> %.6g Msps\n",
                    buffer.sample_rate() / 1e6, resample_msps);
        buffer = signal::SampleBuffer(resample_msps * 1e6, std::move(samples));
      }
      sample_rate = buffer.sample_rate();
      sample_count = buffer.size();
      std::printf("%s: %zu samples at %.6g Msps (%.3f ms)\n", path.c_str(),
                  buffer.size(), buffer.sample_rate() / 1e6,
                  buffer.duration() * 1e3);
      if (workers > 0) {
        runtime::RuntimeConfig rc;
        rc.windowed = wc;
        rc.workers = workers;
        install_shutdown_handlers();
        rc.stop_flag = &shutdown_flag();
        runtime::DecodeRuntime rt(rc);
        auto run = rt.decode(buffer);
        result = std::move(run.decode);
        run_stats = run.stats;
        std::printf("runtime: %zu workers, %zu windows, %.2f effective "
                    "Msps, dropped %zu\n",
                    workers, run.stats.windows_decoded,
                    run.stats.effective_msps(), run.stats.chunks_dropped);
      } else if (window_ms > 0.0) {
        result = core::WindowedDecoder(wc).decode(buffer);
      } else {
        result = core::LfDecoder(dc).decode(buffer);
      }
    }
  } catch (const signal::IqFormatError& e) {
    // Malformed / truncated capture: one line naming the defect, not a
    // backtrace.
    std::fprintf(stderr, "error: %s [%s]\n", e.what(),
                 signal::to_string(e.code()));
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  // Telemetry finalization. Serial paths have no FrameBus, so their frame
  // events are emitted here — every frame appears in the JSONL stream on
  // either path.
  if (emitter) emitter->stop();  // fires one final snapshot tick
  if (obs::EventLog* log = obs::event_log();
      log != nullptr && !run_stats.has_value()) {
    for (std::size_t i = 0; i < result.streams.size(); ++i) {
      const auto& s = result.streams[i];
      for (const auto& f : s.frames) {
        log->emit(
            "frame",
            {obs::Field::integer("stream_index",
                                 static_cast<std::int64_t>(i)),
             obs::Field::num("stream_start", s.start_sample),
             obs::Field::num("rate", s.rate),
             obs::Field::flag("collided", s.collided),
             obs::Field::num("confidence", s.confidence.score()),
             obs::Field::integer(
                 "fallback_stage",
                 static_cast<std::int64_t>(s.confidence.stage)),
             obs::Field::flag("crc_ok", f.crc_ok),
             obs::Field::flag("anchor_ok", f.anchor_ok)});
      }
    }
  }
  if (tracer && !trace_chrome.empty()) {
    // Export before the final flush: with a JSONL sink attached the ring
    // only holds spans not yet auto-flushed.
    std::ofstream os(trace_chrome);
    if (os.is_open()) {
      tracer->export_chrome(os);
    } else {
      std::fprintf(stderr, "warning: cannot open --trace-chrome %s\n",
                   trace_chrome.c_str());
    }
  }
  if (tracer) tracer->flush();
  if (telemetry_writer) telemetry_writer->flush();
  if (!metrics_out.empty() &&
      !obs::write_prometheus_file(obs::metrics().snapshot(), metrics_out)) {
    std::fprintf(stderr, "warning: cannot open --metrics-out %s\n",
                 metrics_out.c_str());
  }
  if (!stats_json.empty() &&
      !write_stats_json(stats_json, path, sample_rate, sample_count, result,
                        run_stats)) {
    std::fprintf(stderr, "warning: cannot write --stats-json %s\n",
                 stats_json.c_str());
  }
  obs::set_tracer(nullptr);
  obs::set_event_log(nullptr);

  if (run_stats.has_value() && run_stats->stopped_early) {
    std::fprintf(stderr,
                 "interrupted: stopped ingest after %llu samples; decoded "
                 "everything in flight\n",
                 static_cast<unsigned long long>(run_stats->samples_in));
  }
  std::printf("edges=%zu groups=%zu collisions=%zu unresolved=%zu\n",
              result.diagnostics.edges, result.diagnostics.groups,
              result.diagnostics.collision_groups,
              result.diagnostics.unresolved_groups);
  if (result.diagnostics.fallback_passes > 0) {
    std::printf("fallback: %zu degraded passes, %zu streams recovered, "
                "%zu erasures\n",
                result.diagnostics.fallback_passes,
                result.diagnostics.fallback_recoveries,
                result.diagnostics.erasures);
  }

  sim::Table table({"stream", "start (us)", "rate", "SNR (dB)", "conf",
                    "stage", "collided", "bits", "frames ok/total",
                    "first payload (hex)"});
  std::size_t valid_total = 0;
  std::size_t hidden = 0;
  for (std::size_t i = 0; i < result.streams.size(); ++i) {
    const auto& s = result.streams[i];
    const double conf = s.confidence.score();
    if (conf < min_confidence) {
      ++hidden;
      continue;
    }
    std::size_t ok = 0;
    std::string first;
    for (const auto& f : s.frames) {
      if (f.valid()) {
        if (first.empty()) first = bits_hex(f.payload);
        ++ok;
      }
    }
    valid_total += ok;
    table.add_row({std::to_string(i),
                   sim::fmt(s.start_sample / sample_rate * 1e6, 1),
                   format_rate(s.rate), sim::fmt(s.snr_db, 1),
                   sim::fmt(conf, 2), core::to_string(s.confidence.stage),
                   s.collided ? "yes" : "no", std::to_string(s.bits.size()),
                   std::to_string(ok) + "/" + std::to_string(s.frames.size()),
                   first.empty() ? "-" : first});
  }
  table.print();
  if (hidden > 0) {
    std::printf("(%zu stream%s below --min-confidence %.2f hidden)\n", hidden,
                hidden == 1 ? "" : "s", min_confidence);
  }
  return shutdown_exit_code(valid_total > 0 ? 0 : 1);
}
